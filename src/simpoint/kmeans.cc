#include "simpoint/kmeans.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace smarts::simpoint {

namespace {

double
sqDist(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double diff = a[i] - b[i];
        d += diff * diff;
    }
    return d;
}

/**
 * X-means BIC of a clustering under the identical spherical
 * Gaussian model (Pelleg & Moore).
 */
double
bicScore(const std::vector<std::vector<double>> &points,
         const Clustering &clustering)
{
    const double r = static_cast<double>(points.size());
    const double m = static_cast<double>(points.front().size());
    const unsigned k = clustering.k;

    std::vector<double> sizes(k, 0.0);
    double sumSq = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const unsigned c = clustering.assignment[i];
        sizes[c] += 1.0;
        sumSq += sqDist(points[i], clustering.centroids[c]);
    }
    const double denom = r > k ? r - k : 1.0;
    const double variance = std::max(sumSq / denom, 1e-12);

    double loglik = 0.0;
    for (unsigned c = 0; c < k; ++c)
        if (sizes[c] > 0)
            loglik += sizes[c] * std::log(sizes[c] / r);
    loglik -= r * m / 2.0 * std::log(2.0 * M_PI * variance);
    loglik -= denom / 2.0;

    const double params = k * (m + 1.0);
    return loglik - params / 2.0 * std::log(r);
}

} // namespace

Clustering
kmeans(const std::vector<std::vector<double>> &points, unsigned k,
       Xoshiro256StarStar &rng)
{
    if (points.empty())
        SMARTS_FATAL("kmeans called with no points");
    k = std::min<unsigned>(k, points.size());

    Clustering result;
    result.k = k;
    result.assignment.assign(points.size(), 0);

    // k-means++ seeding.
    result.centroids.push_back(points[rng.below(points.size())]);
    std::vector<double> best(points.size(),
                             std::numeric_limits<double>::max());
    while (result.centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            best[i] = std::min(
                best[i], sqDist(points[i], result.centroids.back()));
            total += best[i];
        }
        if (total <= 0.0) {
            // All points coincide with chosen centroids.
            result.centroids.push_back(
                points[rng.below(points.size())]);
            continue;
        }
        double pick = rng.uniform() * total;
        std::size_t chosen = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            pick -= best[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        result.centroids.push_back(points[chosen]);
    }

    // Lloyd iterations.
    for (int iter = 0; iter < 100; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < points.size(); ++i) {
            unsigned nearest = 0;
            double nearestDist =
                std::numeric_limits<double>::max();
            for (unsigned c = 0; c < k; ++c) {
                const double d =
                    sqDist(points[i], result.centroids[c]);
                if (d < nearestDist) {
                    nearestDist = d;
                    nearest = c;
                }
            }
            if (result.assignment[i] != nearest) {
                result.assignment[i] = nearest;
                changed = true;
            }
        }
        if (!changed && iter > 0)
            break;

        const std::size_t dims = points.front().size();
        std::vector<std::vector<double>> sums(
            k, std::vector<double>(dims, 0.0));
        std::vector<std::size_t> counts(k, 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const unsigned c = result.assignment[i];
            ++counts[c];
            for (std::size_t d = 0; d < dims; ++d)
                sums[c][d] += points[i][d];
        }
        for (unsigned c = 0; c < k; ++c) {
            if (!counts[c])
                continue; // empty cluster keeps its centroid.
            for (std::size_t d = 0; d < dims; ++d)
                sums[c][d] /= static_cast<double>(counts[c]);
            result.centroids[c] = std::move(sums[c]);
        }
    }

    result.bic = bicScore(points, result);
    return result;
}

Clustering
kmeansSweep(const std::vector<std::vector<double>> &points,
            unsigned maxK, Xoshiro256StarStar &rng)
{
    if (points.empty())
        SMARTS_FATAL("kmeansSweep called with no points");
    maxK = std::max(1u,
                    std::min<unsigned>(maxK, points.size()));

    std::vector<Clustering> runs;
    double bestBic = -std::numeric_limits<double>::max();
    for (unsigned k = 1; k <= maxK; ++k) {
        runs.push_back(kmeans(points, k, rng));
        bestBic = std::max(bestBic, runs.back().bic);
    }

    // SimPoint's rule: the smallest k scoring >= 90% of the best
    // BIC (BIC is negative here, so "within 10% below" means a
    // threshold shifted toward the best score).
    const double worst = runs.front().bic;
    const double threshold = bestBic - 0.1 * std::fabs(bestBic - worst);
    for (const Clustering &c : runs)
        if (c.bic >= threshold)
            return c;
    return runs.back();
}

} // namespace smarts::simpoint
