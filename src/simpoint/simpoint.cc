#include "simpoint/simpoint.hh"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/logging.hh"

namespace smarts::simpoint {

SimPointEstimate
runSimPoint(const std::function<std::unique_ptr<core::SimSession>()>
                &factory,
            const SimPointConfig &config)
{
    if (!config.intervalSize)
        SMARTS_FATAL("SimPoint interval size must be nonzero");

    // Pass 1: functional profiling into projected BBVs.
    std::vector<std::vector<double>> bbvs;
    {
        auto profiler = factory();
        bbvs = profiler->profileBbvs(config.intervalSize,
                                     config.bbvDims);
    }
    SimPointEstimate est;
    if (bbvs.empty()) {
        // Stream shorter than one interval: simulate it whole.
        auto session = factory();
        std::uint64_t cycles = 0, insts = 0;
        while (!session->finished()) {
            const core::Segment seg =
                session->detailedRun(1'000'000);
            cycles += seg.cycles;
            insts += seg.instructions;
            if (!seg.instructions)
                break;
        }
        est.cpi = insts ? static_cast<double>(cycles) /
                              static_cast<double>(insts)
                        : 0.0;
        est.instructionsDetailed = insts;
        est.selection.k = 1;
        est.selection.intervals = {0};
        est.selection.weights = {1.0};
        return est;
    }

    // Pass 2: cluster and pick per-cluster representatives.
    Xoshiro256StarStar rng(config.seed);
    const Clustering clusters =
        kmeansSweep(bbvs, config.maxK, rng);

    std::vector<std::size_t> sizes(clusters.k, 0);
    for (const std::uint32_t c : clusters.assignment)
        ++sizes[c];

    std::vector<std::uint64_t> reps(clusters.k, 0);
    std::vector<double> repDist(
        clusters.k, std::numeric_limits<double>::max());
    for (std::size_t i = 0; i < bbvs.size(); ++i) {
        const std::uint32_t c = clusters.assignment[i];
        double d = 0;
        for (std::size_t j = 0; j < bbvs[i].size(); ++j) {
            const double diff =
                bbvs[i][j] - clusters.centroids[c][j];
            d += diff * diff;
        }
        if (d < repDist[c]) {
            repDist[c] = d;
            reps[c] = i;
        }
    }

    struct Pick
    {
        std::uint64_t interval;
        double weight;
    };
    std::vector<Pick> picks;
    for (unsigned c = 0; c < clusters.k; ++c)
        if (sizes[c])
            picks.push_back(
                {reps[c], static_cast<double>(sizes[c]) /
                              static_cast<double>(bbvs.size())});
    std::sort(picks.begin(), picks.end(),
              [](const Pick &a, const Pick &b) {
                  return a.interval < b.interval;
              });

    // Pass 3: one detailed visit per representative, in stream
    // order, fast-forwarding cold in between (as published:
    // SimPoint does not warm microarchitectural state).
    auto session = factory();
    std::uint64_t pos = 0;
    double weightedCpi = 0.0;
    for (const Pick &pick : picks) {
        const std::uint64_t start =
            pick.interval * config.intervalSize;
        if (start > pos)
            pos += session->fastForward(start - pos,
                                        core::WarmingMode::None);
        const core::Segment seg =
            session->detailedRun(config.intervalSize);
        pos += seg.instructions;
        est.instructionsDetailed += seg.instructions;
        if (seg.instructions)
            weightedCpi +=
                pick.weight * (static_cast<double>(seg.cycles) /
                               static_cast<double>(seg.instructions));
        est.selection.intervals.push_back(pick.interval);
        est.selection.weights.push_back(pick.weight);
    }
    est.selection.k = static_cast<unsigned>(picks.size());
    est.cpi = weightedCpi;
    return est;
}

} // namespace smarts::simpoint
