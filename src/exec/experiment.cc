#include "exec/experiment.hh"

#include <chrono>
#include <memory>

#include "core/multi_session.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace smarts::exec {

ExperimentRunner::ExperimentRunner(unsigned threads) : pool_(threads)
{
}

std::uint64_t
ExperimentRunner::jobSeed(const ExperimentSpec &spec, std::size_t index)
{
    // Everything feeding the seed is a property of the batch, never
    // of the schedule: results cannot depend on the thread count.
    std::uint64_t seed = mix64(static_cast<std::uint64_t>(index) + 1);
    seed = mix64(seed ^ spec.benchmark.seed);
    seed = mix64(seed ^ spec.seedSalt);
    return seed;
}

std::vector<ExperimentResult>
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs)
{
    std::vector<ExperimentResult> results(specs.size());
    parallelForIndexed(pool_, specs.size(), [&](std::size_t i) {
        const ExperimentSpec &spec = specs[i];
        if (spec.configs.empty())
            SMARTS_FATAL("experiment ", i, " has no machine configs");

        ExperimentResult &out = results[i];
        out.index = i;
        out.rngSeed = jobSeed(spec, i);

        core::SamplingConfig sampling = spec.sampling;
        if (spec.randomizeOffset) {
            Xoshiro256StarStar rng(out.rngSeed);
            sampling.offset = rng.below(sampling.interval);
        }

        // smarts-lint: allow(no-ambient-nondeterminism) wall-clock
        // job timing is the runtime REPORT of this engine; it is
        // derived from, never fed into, the estimate.
        const auto start = std::chrono::steady_clock::now();
        core::MultiSession session(spec.benchmark, spec.configs);
        out.estimate =
            core::SystematicSampler(sampling).runMatched(session);
        // smarts-lint: allow(no-ambient-nondeterminism) elapsed
        // seconds ride in ExperimentResult::seconds for speedup
        // tables only; estimates fold from counters alone.
        out.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    });
    return results;
}

} // namespace smarts::exec
