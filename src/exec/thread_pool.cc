#include "exec/thread_pool.hh"

#include "util/logging.hh"

namespace smarts::exec {

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads ? threads : hardwareThreads();
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(signalMutex_);
        stop_ = true;
    }
    workSignal_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    if (!job)
        SMARTS_FATAL("ThreadPool::submit: empty job");
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(signalMutex_);
        ++pending_;
        target = nextQueue_;
        nextQueue_ = (nextQueue_ + 1) % workers_.size();
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(job));
    }
    // The epoch bump comes after the push: a worker that re-scans
    // under signalMutex_ either sees the job or sees the bump, so a
    // submission can never slip between a failed scan and the wait.
    {
        std::lock_guard<std::mutex> lock(signalMutex_);
        ++signalEpoch_;
    }
    workSignal_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(signalMutex_);
    idleSignal_.wait(lock, [this] { return pending_ == 0; });
}

bool
ThreadPool::popOwn(std::size_t self, std::function<void()> &job)
{
    Worker &w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.queue.empty())
        return false;
    job = std::move(w.queue.back());
    w.queue.pop_back();
    return true;
}

bool
ThreadPool::steal(std::size_t self, std::function<void()> &job)
{
    const std::size_t n = workers_.size();
    for (std::size_t i = 1; i < n; ++i) {
        Worker &w = *workers_[(self + i) % n];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (w.queue.empty())
            continue;
        job = std::move(w.queue.front());
        w.queue.pop_front();
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::function<void()> job;
        if (popOwn(self, job) || steal(self, job)) {
            job();
            bool idle;
            {
                std::lock_guard<std::mutex> lock(signalMutex_);
                idle = --pending_ == 0;
            }
            if (idle)
                idleSignal_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(signalMutex_);
        if (stop_)
            return;
        const std::uint64_t seen = signalEpoch_;
        // Re-scan with signalMutex_ held: any job pushed before we
        // took the lock is visible now; any pushed after will bump
        // signalEpoch_ past `seen` and wake the wait below.
        if (popOwn(self, job) || steal(self, job)) {
            lock.unlock();
            job();
            bool idle;
            {
                std::lock_guard<std::mutex> relock(signalMutex_);
                idle = --pending_ == 0;
            }
            if (idle)
                idleSignal_.notify_all();
            continue;
        }
        workSignal_.wait(lock, [this, seen] {
            return stop_ || signalEpoch_ != seen;
        });
        if (stop_)
            return;
    }
}

} // namespace smarts::exec
