#include "workloads/benchmark.hh"

#include <sstream>

#include "util/logging.hh"

namespace smarts::workloads {

std::uint64_t
instructionBudget(Scale scale)
{
    switch (scale) {
      case Scale::Mini: return 2'000'000;
      case Scale::Small: return 12'000'000;
      case Scale::Large: return 120'000'000;
    }
    return 2'000'000;
}

namespace {

BenchmarkSpec
make(const char *name, Kernel kernel, std::uint32_t variant,
     std::uint64_t seed, Scale scale)
{
    BenchmarkSpec spec;
    spec.name = name;
    spec.kernel = kernel;
    spec.variant = variant;
    spec.seed = seed;
    spec.scale = scale;
    return spec;
}

} // namespace

std::vector<BenchmarkSpec>
quickSuite(Scale scale)
{
    return {
        make("sort-1", Kernel::Sort, 1, 0x5157u, scale),
        make("bsearch-1", Kernel::Bsearch, 1, 0xb517u, scale),
        make("fsm-1", Kernel::Fsm, 1, 0xf51au, scale),
        make("phase-1", Kernel::Phase, 1, 0x9a5eu, scale),
        make("stream-1", Kernel::Stream, 1, 0x57e3u, scale),
        make("chase-1", Kernel::Chase, 1, 0xc4a5u, scale),
    };
}

std::vector<BenchmarkSpec>
standardSuite(Scale scale)
{
    std::vector<BenchmarkSpec> suite = quickSuite(scale);
    suite.push_back(make("alu-1", Kernel::Alu, 1, 0xa1d1u, scale));
    suite.push_back(make("mix-1", Kernel::Mix, 1, 0x3175u, scale));
    suite.push_back(make("sort-2", Kernel::Sort, 2, 0x5252u, scale));
    suite.push_back(
        make("bsearch-2", Kernel::Bsearch, 2, 0xb252u, scale));
    suite.push_back(make("fsm-2", Kernel::Fsm, 2, 0xf252u, scale));
    suite.push_back(make("phase-2", Kernel::Phase, 2, 0x9252u, scale));
    return suite;
}

BenchmarkSpec
findBenchmark(const std::string &name, Scale scale)
{
    const auto suite = standardSuite(scale);
    for (const auto &spec : suite)
        if (spec.name == name)
            return spec;
    std::ostringstream known;
    for (const auto &spec : suite)
        known << ' ' << spec.name;
    SMARTS_FATAL("unknown benchmark '", name, "' (known:", known.str(),
                 ")");
}

} // namespace smarts::workloads
