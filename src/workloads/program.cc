#include "workloads/program.hh"

#include <cstdint>

#include "sisa/encoding.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace smarts::workloads {

namespace {

using sisa::Opcode;

constexpr std::uint32_t kLcgMult = 0x41c64e6d;
constexpr int kLcgAdd = 12345;

/** Tiny single-pass assembler with back-patching for forward branches. */
class Asm
{
  public:
    std::vector<std::uint32_t> code;

    std::size_t
    here() const
    {
        return code.size();
    }

    void
    op(Opcode o, unsigned a = 0, unsigned b = 0, unsigned c = 0,
       int imm = 0)
    {
        code.push_back(sisa::encode(o, a, b, c, imm));
    }

    /** Branch with a known (usually backward) target index. */
    void
    branchTo(Opcode o, unsigned a, unsigned b, std::size_t target)
    {
        const std::ptrdiff_t off =
            (static_cast<std::ptrdiff_t>(target) -
             static_cast<std::ptrdiff_t>(here())) *
            4;
        if (off < -32768 || off > 32767)
            SMARTS_FATAL("branch offset ", off, " out of range");
        op(o, a, b, 0, static_cast<int>(off));
    }

    /** Forward branch: emit with a hole, patch() later. */
    std::size_t
    hole(Opcode o, unsigned a = 0, unsigned b = 0)
    {
        const std::size_t at = here();
        op(o, a, b, 0, 0);
        return at;
    }

    void
    patch(std::size_t at, std::size_t target)
    {
        const std::ptrdiff_t off =
            (static_cast<std::ptrdiff_t>(target) -
             static_cast<std::ptrdiff_t>(at)) *
            4;
        if (off < -32768 || off > 32767)
            SMARTS_FATAL("patched branch offset ", off, " out of range");
        code[at] = (code[at] & 0xffff0000u) |
                   (static_cast<std::uint32_t>(off) & 0xffffu);
    }

    /** Unconditional jump (always-taken BEQ r0, r0). */
    void
    jumpTo(std::size_t target)
    {
        branchTo(Opcode::BEQ, 0, 0, target);
    }

    /** Load a 32-bit constant (1 or 2 instructions). */
    void
    li(unsigned reg, std::uint32_t value)
    {
        if (value < 0x8000u) {
            op(Opcode::ADDI, reg, 0, 0, static_cast<int>(value));
            return;
        }
        op(Opcode::LUI, reg, 0, 0,
           static_cast<int>(value >> 16));
        if (value & 0xffffu)
            op(Opcode::ORI, reg, reg, 0,
               static_cast<int>(value & 0xffffu));
    }
};

std::uint32_t
nextPow2(std::uint32_t x)
{
    std::uint32_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

/** Emit: lcg step on rX using multiplier in rA. */
void
emitLcg(Asm &a, unsigned rX, unsigned rA)
{
    a.op(Opcode::MUL, rX, rX, rA);
    a.op(Opcode::ADDI, rX, rX, 0, kLcgAdd);
}

// Register conventions shared by the kernels.
constexpr unsigned Z = 0;   // hardwired zero
constexpr unsigned rX = 1;  // LCG state
constexpr unsigned rA = 2;  // LCG multiplier
constexpr unsigned rN = 3;  // outer iteration counter

void
genAlu(Asm &a, const BenchmarkSpec &spec, std::uint64_t budget)
{
    a.li(rX, static_cast<std::uint32_t>(spec.seed) | 1u);
    a.li(rA, kLcgMult);
    a.li(rN, static_cast<std::uint32_t>(budget / 9));
    a.li(4, 0);
    const std::size_t loop = a.here();
    emitLcg(a, rX, rA);
    a.op(Opcode::XOR, 4, 4, rX);
    a.op(Opcode::SHRI, 5, rX, 0, 13);
    a.op(Opcode::ADD, 4, 4, 5);
    a.op(Opcode::AND, 5, rX, 4);
    a.op(Opcode::OR, 4, 4, 5);
    a.op(Opcode::ADDI, rN, rN, 0, -1);
    a.branchTo(Opcode::BNE, rN, Z, loop);
    a.op(Opcode::HALT);
}

void
genFsm(Asm &a, Program &prog, const BenchmarkSpec &spec,
       std::uint64_t budget, Xoshiro256StarStar &rng)
{
    const std::uint32_t states = spec.variant == 1 ? 64 : 4096;
    prog.dataBytes = nextPow2(states * 4 * 4);
    prog.data.assign(prog.dataBytes / 4, 0);
    for (std::uint32_t s = 0; s < states; ++s)
        for (std::uint32_t i = 0; i < 4; ++i)
            prog.data[s * 4 + i] =
                static_cast<std::uint32_t>(rng.below(states));

    a.li(rX, static_cast<std::uint32_t>(spec.seed) | 1u);
    a.li(rA, kLcgMult);
    a.li(rN, static_cast<std::uint32_t>(budget / 11));
    a.li(4, kDataBase); // table base
    a.li(5, 0);         // state
    const std::size_t loop = a.here();
    emitLcg(a, rX, rA);
    a.op(Opcode::SHRI, 6, rX, 0, 18);
    a.op(Opcode::ANDI, 6, 6, 0, 3);
    a.op(Opcode::SHLI, 7, 5, 0, 2);
    a.op(Opcode::ADD, 7, 7, 6);
    a.op(Opcode::SHLI, 7, 7, 0, 2);
    a.op(Opcode::ADD, 8, 4, 7);
    a.op(Opcode::LD, 5, 8, 0, 0);
    a.op(Opcode::ADDI, rN, rN, 0, -1);
    a.branchTo(Opcode::BNE, rN, Z, loop);
    a.op(Opcode::HALT);
}

void
genStream(Asm &a, Program &prog, const BenchmarkSpec &spec,
          std::uint64_t budget, Xoshiro256StarStar &rng)
{
    const std::uint32_t words = 32768; // 128KB per array, 3 arrays.
    prog.dataBytes = nextPow2(3 * words * 4);
    prog.data.assign(prog.dataBytes / 4, 0);
    for (std::uint32_t i = 0; i < 2 * words; ++i)
        prog.data[i] = static_cast<std::uint32_t>(rng.next()) >> 2;

    const std::uint64_t reps =
        std::max<std::uint64_t>(1, budget / (9ull * words));
    a.li(8, words);
    a.li(rN, static_cast<std::uint32_t>(reps));
    (void)spec;
    const std::size_t outer = a.here();
    a.li(4, kDataBase);
    a.li(5, kDataBase + words * 4);
    a.li(6, kDataBase + 2 * words * 4);
    a.li(7, 0);
    const std::size_t inner = a.here();
    a.op(Opcode::LD, 9, 4, 0, 0);
    a.op(Opcode::LD, 10, 5, 0, 0);
    a.op(Opcode::ADD, 9, 9, 10);
    a.op(Opcode::ST, 9, 6, 0, 0);
    a.op(Opcode::ADDI, 4, 4, 0, 4);
    a.op(Opcode::ADDI, 5, 5, 0, 4);
    a.op(Opcode::ADDI, 6, 6, 0, 4);
    a.op(Opcode::ADDI, 7, 7, 0, 1);
    a.branchTo(Opcode::BLT, 7, 8, inner);
    a.op(Opcode::ADDI, rN, rN, 0, -1);
    a.branchTo(Opcode::BNE, rN, Z, outer);
    a.op(Opcode::HALT);
}

void
genChase(Asm &a, Program &prog, const BenchmarkSpec &spec,
         std::uint64_t budget, Xoshiro256StarStar &rng)
{
    const std::uint32_t words = 65536; // 256KB ring.
    prog.dataBytes = words * 4;
    prog.data.resize(words);
    // Sattolo's algorithm: a uniformly random single-cycle
    // permutation, so the chase visits every word.
    for (std::uint32_t i = 0; i < words; ++i)
        prog.data[i] = i;
    for (std::uint32_t i = words - 1; i > 0; --i) {
        const std::uint32_t j =
            static_cast<std::uint32_t>(rng.below(i));
        std::swap(prog.data[i], prog.data[j]);
    }

    a.li(4, kDataBase);
    a.li(5, 0);
    a.li(rN, static_cast<std::uint32_t>(budget / 5));
    (void)spec;
    const std::size_t loop = a.here();
    a.op(Opcode::SHLI, 6, 5, 0, 2);
    a.op(Opcode::ADD, 6, 4, 6);
    a.op(Opcode::LD, 5, 6, 0, 0);
    a.op(Opcode::ADDI, rN, rN, 0, -1);
    a.branchTo(Opcode::BNE, rN, Z, loop);
    a.op(Opcode::HALT);
}

void
genSort(Asm &a, Program &prog, const BenchmarkSpec &spec,
        std::uint64_t budget)
{
    const std::uint32_t m = spec.variant == 1 ? 48 : 96;
    prog.dataBytes = nextPow2(m * 4);
    prog.data.assign(prog.dataBytes / 4, 0);
    const std::uint64_t perRep =
        8ull * m + 12ull * (m - 1) + 2ull * m * m; // calibrated below
    const std::uint64_t reps =
        std::max<std::uint64_t>(1, budget / perRep);

    a.li(rX, static_cast<std::uint32_t>(spec.seed) | 1u);
    a.li(rA, kLcgMult);
    a.li(rN, static_cast<std::uint32_t>(reps));
    a.li(4, kDataBase);
    a.li(5, m);
    const std::size_t outer = a.here();
    // Refill with fresh pseudo-random positive values.
    a.li(6, 0);
    const std::size_t refill = a.here();
    emitLcg(a, rX, rA);
    a.op(Opcode::SHRI, 9, rX, 0, 2);
    a.op(Opcode::SHLI, 10, 6, 0, 2);
    a.op(Opcode::ADD, 10, 4, 10);
    a.op(Opcode::ST, 9, 10, 0, 0);
    a.op(Opcode::ADDI, 6, 6, 0, 1);
    a.branchTo(Opcode::BLT, 6, 5, refill);
    // Insertion sort with data-dependent inner branches.
    a.li(6, 1);
    const std::size_t sOuter = a.here();
    a.op(Opcode::SHLI, 10, 6, 0, 2);
    a.op(Opcode::ADD, 10, 4, 10);
    a.op(Opcode::LD, 8, 10, 0, 0); // key = a[i]
    a.op(Opcode::ADDI, 7, 6, 0, -1);
    const std::size_t sInner = a.here();
    const std::size_t holeJneg = a.hole(Opcode::BLT, 7, Z);
    a.op(Opcode::SHLI, 10, 7, 0, 2);
    a.op(Opcode::ADD, 10, 4, 10);
    a.op(Opcode::LD, 9, 10, 0, 0); // v = a[j]
    const std::size_t holeOrder = a.hole(Opcode::BGE, 8, 9);
    a.op(Opcode::ST, 9, 10, 0, 4); // a[j+1] = v
    a.op(Opcode::ADDI, 7, 7, 0, -1);
    a.jumpTo(sInner);
    const std::size_t sDone = a.here();
    a.patch(holeJneg, sDone);
    a.patch(holeOrder, sDone);
    a.op(Opcode::SHLI, 10, 7, 0, 2);
    a.op(Opcode::ADD, 10, 4, 10);
    a.op(Opcode::ST, 8, 10, 0, 4); // a[j+1] = key
    a.op(Opcode::ADDI, 6, 6, 0, 1);
    a.branchTo(Opcode::BLT, 6, 5, sOuter);
    a.op(Opcode::ADDI, rN, rN, 0, -1);
    a.branchTo(Opcode::BNE, rN, Z, outer);
    a.op(Opcode::HALT);
}

void
genBsearch(Asm &a, Program &prog, const BenchmarkSpec &spec,
           std::uint64_t budget)
{
    const std::uint32_t m = spec.variant == 1 ? 16384 : 65536;
    prog.dataBytes = m * 4;
    prog.data.resize(m);
    for (std::uint32_t i = 0; i < m; ++i)
        prog.data[i] = i;

    const std::uint32_t levels = [m] {
        std::uint32_t l = 0;
        while ((1u << l) < m)
            ++l;
        return l;
    }();
    const std::uint64_t perSearch = 8ull + 10ull * levels;
    a.li(rX, static_cast<std::uint32_t>(spec.seed) | 1u);
    a.li(rA, kLcgMult);
    a.li(rN, static_cast<std::uint32_t>(budget / perSearch));
    a.li(4, kDataBase);
    a.li(5, m);
    const std::size_t outer = a.here();
    emitLcg(a, rX, rA);
    a.op(Opcode::SHRI, 11, rX, 0, 7);
    a.op(Opcode::ANDI, 11, 11, 0, static_cast<int>(m - 1));
    a.li(6, 0);              // lo
    a.op(Opcode::ADD, 7, 5, Z); // hi = m
    const std::size_t bs = a.here();
    const std::size_t holeExit = a.hole(Opcode::BGE, 6, 7);
    a.op(Opcode::ADD, 8, 6, 7);
    a.op(Opcode::SHRI, 8, 8, 0, 1); // mid
    a.op(Opcode::SHLI, 10, 8, 0, 2);
    a.op(Opcode::ADD, 10, 4, 10);
    a.op(Opcode::LD, 9, 10, 0, 0);
    const std::size_t holeLo = a.hole(Opcode::BLT, 9, 11);
    a.op(Opcode::ADD, 7, 8, Z); // hi = mid
    a.jumpTo(bs);
    a.patch(holeLo, a.here());
    a.op(Opcode::ADDI, 6, 8, 0, 1); // lo = mid + 1
    a.jumpTo(bs);
    a.patch(holeExit, a.here());
    a.op(Opcode::ADDI, rN, rN, 0, -1);
    a.branchTo(Opcode::BNE, rN, Z, outer);
    a.op(Opcode::HALT);
}

void
genMix(Asm &a, Program &prog, const BenchmarkSpec &spec,
       std::uint64_t budget, Xoshiro256StarStar &rng)
{
    const std::uint32_t words = 65536; // 256KB.
    prog.dataBytes = words * 4;
    prog.data.resize(words);
    for (auto &w : prog.data)
        w = static_cast<std::uint32_t>(rng.next()) >> 2;

    a.li(rX, static_cast<std::uint32_t>(spec.seed) | 1u);
    a.li(rA, kLcgMult);
    a.li(rN, static_cast<std::uint32_t>(budget / 13));
    a.li(4, kDataBase);
    a.li(10, 0);
    const std::size_t loop = a.here();
    emitLcg(a, rX, rA);
    a.op(Opcode::SHRI, 6, rX, 0, 5);
    a.op(Opcode::ANDI, 6, 6, 0, static_cast<int>(words - 1));
    a.op(Opcode::SHLI, 7, 6, 0, 2);
    a.op(Opcode::ADD, 7, 4, 7);
    a.op(Opcode::LD, 8, 7, 0, 0);
    a.op(Opcode::ANDI, 9, rX, 0, 7);
    const std::size_t holeSkip = a.hole(Opcode::BNE, 9, Z);
    a.op(Opcode::XOR, 8, 8, rX);
    a.op(Opcode::ST, 8, 7, 0, 0);
    a.patch(holeSkip, a.here());
    a.op(Opcode::ADD, 10, 10, 8);
    a.op(Opcode::ADDI, rN, rN, 0, -1);
    a.branchTo(Opcode::BNE, rN, Z, loop);
    a.op(Opcode::HALT);
}

void
genPhase(Asm &a, Program &prog, const BenchmarkSpec &spec,
         std::uint64_t budget, Xoshiro256StarStar &rng)
{
    // Array A: streamed at line stride (misses); table C: small and
    // hot. Phase lengths are deliberately unequal so the phase
    // period does not alias the systematic sampling interval.
    const std::uint32_t wordsA = 65536; // 256KB.
    const std::uint32_t wordsC = 4096;  // 16KB.
    const std::uint32_t lenA = spec.variant == 1 ? 20000 : 9000;
    const std::uint32_t lenB = spec.variant == 1 ? 26000 : 33000;
    const std::uint32_t lenC = spec.variant == 1 ? 17000 : 23000;
    prog.dataBytes = nextPow2((wordsA + wordsC) * 4);
    prog.data.assign(prog.dataBytes / 4, 0);
    for (std::uint32_t i = 0; i < wordsA + wordsC; ++i)
        prog.data[i] = static_cast<std::uint32_t>(rng.next()) >> 2;

    const std::uint64_t perBlockAvg =
        (8ull * lenA + 5ull * lenB + 12ull * lenC) / 3;
    const std::uint64_t blocks =
        std::max<std::uint64_t>(3, budget / perBlockAvg);

    a.li(rX, static_cast<std::uint32_t>(spec.seed) | 1u);
    a.li(rA, kLcgMult);
    a.li(rN, static_cast<std::uint32_t>(blocks));
    a.li(4, kDataBase);
    a.li(8, 0);  // accumulator
    a.li(10, 0); // phase selector 0/1/2
    a.li(11, lenA);
    a.li(12, lenB);
    a.li(13, lenC);
    a.li(15, 0); // stream index (words)
    a.li(18, wordsA);
    const std::size_t dispatch = a.here();
    const std::size_t holeA = a.hole(Opcode::BEQ, 10, Z);
    a.op(Opcode::ADDI, 6, 10, 0, -1);
    const std::size_t holeB = a.hole(Opcode::BEQ, 6, Z);

    // Phase C: hot-table loads with a coin-flip branch.
    a.op(Opcode::ADD, 5, 13, Z);
    const std::size_t pcLoop = a.here();
    emitLcg(a, rX, rA);
    a.op(Opcode::SHRI, 6, rX, 0, 9);
    a.op(Opcode::ANDI, 6, 6, 0, static_cast<int>(wordsC - 1));
    a.op(Opcode::ADD, 6, 6, 18);
    a.op(Opcode::SHLI, 6, 6, 0, 2);
    a.op(Opcode::ADD, 6, 4, 6);
    a.op(Opcode::LD, 7, 6, 0, 0);
    a.op(Opcode::ANDI, 9, rX, 0, 1);
    const std::size_t holeCSkip = a.hole(Opcode::BNE, 9, Z);
    a.op(Opcode::ADD, 8, 8, 7);
    a.patch(holeCSkip, a.here());
    a.op(Opcode::ADDI, 5, 5, 0, -1);
    a.branchTo(Opcode::BNE, 5, Z, pcLoop);
    const std::size_t holeCNext = a.hole(Opcode::BEQ, Z, Z);

    // Phase A: line-stride streaming over array A.
    a.patch(holeA, a.here());
    a.op(Opcode::ADD, 5, 11, Z);
    const std::size_t paLoop = a.here();
    a.op(Opcode::ADDI, 15, 15, 0, 16);
    a.op(Opcode::ANDI, 15, 15, 0, static_cast<int>(wordsA - 1));
    a.op(Opcode::SHLI, 6, 15, 0, 2);
    a.op(Opcode::ADD, 6, 4, 6);
    a.op(Opcode::LD, 7, 6, 0, 0);
    a.op(Opcode::ADD, 8, 8, 7);
    a.op(Opcode::ADDI, 5, 5, 0, -1);
    a.branchTo(Opcode::BNE, 5, Z, paLoop);
    const std::size_t holeANext = a.hole(Opcode::BEQ, Z, Z);

    // Phase B: pure ALU.
    a.patch(holeB, a.here());
    a.op(Opcode::ADD, 5, 12, Z);
    const std::size_t pbLoop = a.here();
    emitLcg(a, rX, rA);
    a.op(Opcode::XOR, 8, 8, rX);
    a.op(Opcode::ADDI, 5, 5, 0, -1);
    a.branchTo(Opcode::BNE, 5, Z, pbLoop);

    // next: advance phase selector mod 3, next block.
    const std::size_t next = a.here();
    a.patch(holeCNext, next);
    a.patch(holeANext, next);
    a.op(Opcode::ADDI, 10, 10, 0, 1);
    a.op(Opcode::ADDI, 6, 10, 0, -3);
    const std::size_t holeNoWrap = a.hole(Opcode::BNE, 6, Z);
    a.op(Opcode::ADD, 10, Z, Z);
    a.patch(holeNoWrap, a.here());
    a.op(Opcode::ADDI, rN, rN, 0, -1);
    a.branchTo(Opcode::BNE, rN, Z, dispatch);
    a.op(Opcode::HALT);
}

} // namespace

Program
buildProgram(const BenchmarkSpec &spec)
{
    Program prog;
    Asm a;
    Xoshiro256StarStar rng(spec.seed * 0x9e3779b97f4a7c15ull + 0xabcd);
    const std::uint64_t budget = instructionBudget(spec.scale);

    switch (spec.kernel) {
      case Kernel::Alu:
        genAlu(a, spec, budget);
        break;
      case Kernel::Fsm:
        genFsm(a, prog, spec, budget, rng);
        break;
      case Kernel::Stream:
        genStream(a, prog, spec, budget, rng);
        break;
      case Kernel::Chase:
        genChase(a, prog, spec, budget, rng);
        break;
      case Kernel::Sort:
        genSort(a, prog, spec, budget);
        break;
      case Kernel::Bsearch:
        genBsearch(a, prog, spec, budget);
        break;
      case Kernel::Mix:
        genMix(a, prog, spec, budget, rng);
        break;
      case Kernel::Phase:
        genPhase(a, prog, spec, budget, rng);
        break;
    }

    prog.code = std::move(a.code);
    if (prog.dataBytes == 0) {
        prog.dataBytes = 4096;
        prog.data.assign(prog.dataBytes / 4, 0);
    }
    prog.entryPc = kCodeBase;
    return prog;
}

} // namespace smarts::workloads
