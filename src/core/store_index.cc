#include "core/store_index.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include <unistd.h>

#include "util/binary_io.hh"
#include "util/logging.hh"

namespace smarts::core {

namespace fs = std::filesystem;

namespace {

/** Journal header: magic, format version, endianness canary. */
constexpr char kMagic[8] = {'S', 'M', 'R', 'T', 'S', 'I', 'D', 'X'};
constexpr std::uint32_t kEndianMark = 0x01020304;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4;

void
encodeHeader(std::vector<std::uint8_t> &out)
{
    util::BinaryWriter w;
    for (const char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kStoreIndexFormatVersion);
    w.u32(kEndianMark);
    out.insert(out.end(), w.buffer().begin(), w.buffer().end());
}

/**
 * One journal record: the encoded fields followed by the FNV-1a of
 * exactly those bytes, so a reader can tell a complete record from
 * the ragged tail a crash mid-append leaves.
 */
void
encodeRecord(std::vector<std::uint8_t> &out, StoreIndex::Op op,
             const std::string &rel, std::uint64_t bytes,
             std::uint64_t atime)
{
    util::BinaryWriter w;
    w.u8(static_cast<std::uint8_t>(op));
    w.str(rel);
    w.u64(bytes);
    w.u64(atime);
    const std::uint64_t checksum =
        util::fnv1a(w.buffer().data(), w.buffer().size());
    w.u64(checksum);
    out.insert(out.end(), w.buffer().begin(), w.buffer().end());
}

// Raw little-endian field readers over the journal bytes. The
// journal is parsed by explicit position (not BinaryReader) because
// each record's checksum covers a byte RANGE of the file, which
// needs the cursor.
bool
rdU8(const std::vector<std::uint8_t> &d, std::size_t &p,
     std::uint8_t &v)
{
    if (d.size() - p < 1)
        return false;
    v = d[p++];
    return true;
}

bool
rdU32(const std::vector<std::uint8_t> &d, std::size_t &p,
      std::uint32_t &v)
{
    if (d.size() - p < 4)
        return false;
    v = 0;
    for (int shift = 0; shift < 32; shift += 8)
        v |= static_cast<std::uint32_t>(d[p++]) << shift;
    return true;
}

bool
rdU64(const std::vector<std::uint8_t> &d, std::size_t &p,
      std::uint64_t &v)
{
    if (d.size() - p < 8)
        return false;
    v = 0;
    for (int shift = 0; shift < 64; shift += 8)
        v |= static_cast<std::uint64_t>(d[p++]) << shift;
    return true;
}

bool
rdStr(const std::vector<std::uint8_t> &d, std::size_t &p,
      std::string &v)
{
    std::uint32_t n = 0;
    if (!rdU32(d, p, n) || d.size() - p < n)
        return false;
    v.assign(d.begin() + static_cast<std::ptrdiff_t>(p),
             d.begin() + static_cast<std::ptrdiff_t>(p + n));
    p += n;
    return true;
}

/** True for files the index tracks: shard + live-point libraries. */
bool
isStoreEntry(const fs::path &path)
{
    const std::string ext = path.extension().string();
    if (ext != ".smck" && ext != ".smlp")
        return false;
    // In-flight atomic publishes look like "<name>.smck.tmp.<pid>.."
    // — extension() sees ".tmp..." pieces, not .smck, so they fall
    // out above; this guards renamed-away leftovers too.
    return path.filename().string().find(".tmp.") ==
           std::string::npos;
}

} // namespace

std::optional<StoreIndex>
StoreIndex::load(const std::string &path, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return refuse(log::format("cannot open ", path));
    const std::streamoff size = in.tellg();
    if (size < static_cast<std::streamoff>(kHeaderBytes))
        return refuse(log::format(
            path, " is truncated (", size, " bytes, no header)"));
    in.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    // smarts-lint: allow(checksum-before-use) raw whole-file read
    // into the buffer; the kMagic/version/endianness ladder below
    // validates it before any record is decoded.
    in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!in)
        return refuse(log::format("short read from ", path));

    // Validate the header — kMagic, version, endianness — before
    // decoding a single record.
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
        return refuse(log::format(
            path, " has a foreign magic (not a store index)"));
    std::size_t pos = sizeof kMagic;
    std::uint32_t version = 0;
    std::uint32_t endian = 0;
    if (!rdU32(bytes, pos, version) || !rdU32(bytes, pos, endian))
        return refuse(log::format(path, " header truncated"));
    if (version != kStoreIndexFormatVersion)
        return refuse(log::format(
            path, " is format v", version, "; this build reads v",
            kStoreIndexFormatVersion));
    if (endian != kEndianMark)
        return refuse(log::format(
            path, " endianness canary mismatch"));

    StoreIndex index;
    while (pos < bytes.size()) {
        const std::size_t recordStart = pos;
        std::uint8_t op = 0;
        std::string rel;
        std::uint64_t entryBytes = 0;
        std::uint64_t atime = 0;
        if (!rdU8(bytes, pos, op) || !rdStr(bytes, pos, rel) ||
            !rdU64(bytes, pos, entryBytes) ||
            !rdU64(bytes, pos, atime))
            return refuse(log::format(
                path, " record at byte ", recordStart,
                " is truncated (crash mid-append?)"));
        const std::uint64_t expected = util::fnv1a(
            bytes.data() + recordStart, pos - recordStart);
        std::uint64_t stored = 0;
        if (!rdU64(bytes, pos, stored) || stored != expected)
            return refuse(log::format(
                path, " record at byte ", recordStart,
                " failed its checksum (torn or corrupt)"));

        ++index.journalRecords_;
        switch (static_cast<Op>(op)) {
        case Op::Add:
            index.noteAddAt(rel, entryBytes, atime);
            break;
        case Op::Touch: {
            // Touch of a path this journal never Added is fine —
            // another process's interleaved lifecycle — but the
            // clock must still advance past it.
            const auto it = index.entries_.find(rel);
            if (it != index.entries_.end())
                it->second.atime = atime;
            if (atime >= index.clock_)
                index.clock_ = atime + 1;
            break;
        }
        case Op::Remove:
            index.noteRemove(rel);
            break;
        default:
            return refuse(log::format(
                path, " record at byte ", recordStart,
                " has unknown op ", int(op)));
        }
    }
    return index;
}

StoreIndex
StoreIndex::rebuild(const std::string &root)
{
    // Gather every library file with its modification time, sort
    // oldest-first (path as tiebreak so equal-mtime files — common
    // on coarse-granularity filesystems — still order the same way
    // every rebuild), and hand out logical atimes by that ordinal.
    struct Found
    {
        fs::file_time_type mtime;
        std::string rel;
        std::uint64_t bytes;
    };
    std::vector<Found> found;
    std::error_code ec;
    const fs::path rootPath(root);
    for (fs::recursive_directory_iterator
             it(rootPath,
                fs::directory_options::skip_permission_denied, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        const fs::path &p = it->path();
        const std::string name = p.filename().string();
        if (it->is_directory(ec)) {
            // Service directories hold pins and evicted trash, not
            // entries.
            if (name == ".pins" || name == ".trash")
                it.disable_recursion_pending();
            continue;
        }
        if (!isStoreEntry(p))
            continue;
        std::error_code statEc;
        const std::uint64_t bytes = fs::file_size(p, statEc);
        // Rebuild seeds LRU order from mtimes: the only recency
        // signal that survives losing the journal. Logical atimes
        // take over from here on.
        const fs::file_time_type mtime = fs::last_write_time(p, statEc); // smarts-lint: allow(no-ambient-nondeterminism) rebuild re-seeds LRU order from file mtimes; result order is pinned by sort below and never feeds an estimate
        if (statEc)
            continue; // vanished mid-scan (concurrent GC) — skip.
        found.push_back(
            {mtime, fs::relative(p, rootPath, statEc).generic_string(),
             bytes});
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.rel < b.rel;
              });

    StoreIndex index;
    for (const Found &f : found)
        index.noteAdd(f.rel, f.bytes);
    index.journalRecords_ = 0; // nothing replayed; fresh ledger.
    return index;
}

bool
StoreIndex::saveSnapshot(const std::string &path,
                         std::string *error) const
{
    std::vector<std::uint8_t> out;
    encodeHeader(out);
    for (const auto &[rel, entry] : entries_)
        encodeRecord(out, Op::Add, rel, entry.bytes, entry.atime);

    // Same atomic-publish idiom as BinaryWriter::writeFile, minus
    // the trailing whole-file checksum (appends would invalidate
    // it; records carry their own).
    static std::atomic<unsigned> serial{0};
    const fs::path tmp(log::format(
        path, ".tmp.", ::getpid(), ".", serial.fetch_add(1)));
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f) {
            if (error)
                *error = log::format("cannot open ",
                                           tmp.string());
            return false;
        }
        f.write(reinterpret_cast<const char *>(out.data()),
                static_cast<std::streamsize>(out.size()));
        if (!f) {
            if (error)
                *error =
                    log::format("short write to ", tmp.string());
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        if (error)
            *error = log::format("cannot publish ", path, ": ",
                                       ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

bool
StoreIndex::appendRecord(const std::string &path, Op op,
                         const std::string &rel, std::uint64_t bytes,
                         std::uint64_t atime, std::string *error)
{
    std::error_code ec;
    const bool fresh =
        !fs::exists(path, ec) || fs::file_size(path, ec) == 0;

    std::vector<std::uint8_t> out;
    if (fresh)
        encodeHeader(out);
    encodeRecord(out, op, rel, bytes, atime);

    // One write() per record: POSIX O_APPEND keeps concurrent
    // appenders from overwriting each other, and a rare torn
    // interleave is caught by the record checksum at the next
    // load(), which falls back to rebuild().
    std::ofstream f(path, std::ios::binary | std::ios::app);
    if (!f) {
        if (error)
            *error = log::format("cannot open ", path,
                                       " for append");
        return false;
    }
    f.write(reinterpret_cast<const char *>(out.data()),
            static_cast<std::streamsize>(out.size()));
    f.flush();
    if (!f) {
        if (error)
            *error = log::format("short append to ", path);
        return false;
    }
    return true;
}

void
StoreIndex::noteAddAt(const std::string &rel, std::uint64_t bytes,
                      std::uint64_t atime)
{
    StoreIndexEntry &entry = entries_[rel];
    totalBytes_ -= entry.bytes; // replace: retire the old size.
    entry.bytes = bytes;
    entry.atime = atime;
    totalBytes_ += bytes;
    if (atime >= clock_)
        clock_ = atime + 1;
}

std::uint64_t
StoreIndex::noteAdd(const std::string &rel, std::uint64_t bytes)
{
    const std::uint64_t atime = clock_;
    noteAddAt(rel, bytes, atime);
    return atime;
}

std::uint64_t
StoreIndex::noteTouch(const std::string &rel)
{
    const auto it = entries_.find(rel);
    if (it == entries_.end())
        return 0;
    it->second.atime = clock_++;
    return it->second.atime;
}

void
StoreIndex::noteRemove(const std::string &rel)
{
    const auto it = entries_.find(rel);
    if (it == entries_.end())
        return;
    totalBytes_ -= it->second.bytes;
    entries_.erase(it);
}

std::vector<std::pair<std::string, StoreIndexEntry>>
StoreIndex::lruOrder() const
{
    std::vector<std::pair<std::string, StoreIndexEntry>> order(
        entries_.begin(), entries_.end());
    std::sort(order.begin(), order.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.atime != b.second.atime)
                      return a.second.atime < b.second.atime;
                  return a.first < b.first;
              });
    return order;
}

} // namespace smarts::core
