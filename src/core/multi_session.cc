#include "core/multi_session.hh"

#include "util/logging.hh"

namespace smarts::core {

MultiSession::MultiSession(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs)
    : arch_(spec)
{
    if (configs.empty())
        SMARTS_FATAL("MultiSession needs at least one machine config");
    models_.reserve(configs.size());
    for (const auto &config : configs)
        models_.emplace_back(config);
}

std::uint64_t
MultiSession::fastForward(std::uint64_t maxInsts, WarmingMode mode)
{
    const bool warmCaches = warmsCaches(mode);
    const bool warmBpred = warmsBpred(mode);

    std::uint64_t executed = 0;
    StepInfo info;
    while (executed < maxInsts) {
        if (!arch_.step(info))
            break;
        ++executed;
        for (TimingModel &model : models_)
            model.warm(info, warmCaches, warmBpred);
    }
    return executed;
}

std::uint64_t
MultiSession::warmAsDetailed(std::uint64_t maxInsts)
{
    std::uint64_t executed = 0;
    StepInfo info;
    while (executed < maxInsts) {
        if (!arch_.step(info))
            break;
        ++executed;
        for (TimingModel &model : models_)
            model.warmDetailed(info);
    }
    return executed;
}

void
MultiSession::saveState(ArchState &arch,
                        std::vector<TimingState> &timings) const
{
    arch_.saveState(arch);
    timings.resize(models_.size());
    for (std::size_t i = 0; i < models_.size(); ++i)
        models_[i].saveState(timings[i]);
}

MultiSegment
MultiSession::detailedRun(std::uint64_t maxInsts)
{
    std::vector<TimingModel::SegmentMark> marks;
    marks.reserve(models_.size());
    for (const TimingModel &model : models_)
        marks.push_back(model.beginSegment());

    std::uint64_t executed = 0;
    StepInfo info;
    while (executed < maxInsts) {
        if (!arch_.step(info))
            break;
        ++executed;
        for (TimingModel &model : models_)
            model.detailedStep(info);
    }

    MultiSegment seg;
    seg.instructions = executed;
    seg.per.reserve(models_.size());
    for (std::size_t i = 0; i < models_.size(); ++i)
        seg.per.push_back(models_[i].endSegment(marks[i], executed));
    return seg;
}

} // namespace smarts::core
