#include "core/bias.hh"

#include "util/logging.hh"

namespace smarts::core {

BiasResult
measureBias(const std::function<std::unique_ptr<SimSession>()> &factory,
            const SamplingConfig &config, int phases,
            double referenceCpi)
{
    if (phases < 1)
        SMARTS_FATAL("measureBias needs at least one phase");
    if (referenceCpi <= 0.0)
        SMARTS_FATAL("measureBias needs a positive reference CPI");

    BiasResult result;
    result.referenceCpi = referenceCpi;

    double sum = 0.0;
    int counted = 0;
    for (int p = 0; p < phases; ++p) {
        SamplingConfig phased = config;
        phased.offset =
            (static_cast<std::uint64_t>(p) * config.interval) /
            static_cast<std::uint64_t>(phases);
        auto session = factory();
        const SmartsEstimate est =
            SystematicSampler(phased).run(*session);
        if (!est.units())
            continue;
        result.phaseCpi.push_back(est.cpi());
        sum += est.cpi();
        ++counted;
    }
    if (!counted)
        SMARTS_FATAL("measureBias: no phase produced any sampled "
                     "units (stream too short for the unit/interval "
                     "geometry)");
    result.meanEstimatedCpi = sum / counted;
    result.relativeBias =
        (result.meanEstimatedCpi - referenceCpi) / referenceCpi;
    return result;
}

} // namespace smarts::core
