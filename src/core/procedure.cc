#include "core/procedure.hh"

#include <algorithm>

#include "util/logging.hh"

namespace smarts::core {

SmartsProcedure::SmartsProcedure(const ProcedureConfig &config)
    : config_(config)
{
    if (!config.nInit)
        SMARTS_FATAL("procedure nInit must be nonzero");
}

ProcedureResult
SmartsProcedure::estimate(const SessionFactory &factory,
                          std::uint64_t streamLength) const
{
    SamplingConfig sc;
    sc.unitSize = config_.unitSize;
    sc.detailedWarming = config_.detailedWarming;
    sc.warming = config_.warming;
    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, config_.nInit);

    ProcedureResult result;
    {
        auto session = factory();
        result.initial = SystematicSampler(sc).run(*session);
    }

    // Size n_tuned from the measured V-hat (Eq. 3); rerun only when
    // the initial confidence interval misses the target.
    result.recommendedN = stats::requiredSampleSize(
        result.initial.cpiCv(), config_.target);
    const double ci =
        result.initial.cpiConfidenceInterval(config_.target.level);
    if (ci <= config_.target.epsilon)
        return result;

    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, result.recommendedN);
    auto session = factory();
    result.tuned = SystematicSampler(sc).run(*session);
    return result;
}

MatchedProcedureResult
SmartsProcedure::estimateMatched(const MultiSessionFactory &factory,
                                 std::uint64_t streamLength) const
{
    SamplingConfig sc;
    sc.unitSize = config_.unitSize;
    sc.detailedWarming = config_.detailedWarming;
    sc.warming = config_.warming;
    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, config_.nInit);

    MatchedProcedureResult result;
    {
        auto session = factory();
        result.initial = SystematicSampler(sc).runMatched(*session);
    }

    // Size n_tuned from the worst per-config V-hat; rerun only when
    // any config's confidence interval misses the target.
    double worstCv = 0.0;
    double worstCi = 0.0;
    for (const SmartsEstimate &est : result.initial.perConfig) {
        worstCv = std::max(worstCv, est.cpiCv());
        worstCi = std::max(
            worstCi, est.cpiConfidenceInterval(config_.target.level));
    }
    result.recommendedN =
        stats::requiredSampleSize(worstCv, config_.target);
    if (worstCi <= config_.target.epsilon)
        return result;

    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, result.recommendedN);
    auto session = factory();
    result.tuned = SystematicSampler(sc).runMatched(*session);
    return result;
}

} // namespace smarts::core
