#include "core/procedure.hh"

#include <algorithm>

#include "util/logging.hh"

namespace smarts::core {

SmartsProcedure::SmartsProcedure(const ProcedureConfig &config)
    : config_(config)
{
    if (!config.nInit)
        SMARTS_FATAL("procedure nInit must be nonzero");
}

namespace {

/** One sampling pass: serial, or checkpoint-sharded on a pool. */
core::SmartsEstimate
runPass(const SamplingConfig &sc,
        const SmartsProcedure::SessionFactory &factory,
        std::uint64_t streamLength, exec::ThreadPool *pool,
        std::size_t shards)
{
    if (pool)
        return SystematicSampler(sc).runSharded(factory, streamLength,
                                                shards, *pool);
    auto session = factory();
    return SystematicSampler(sc).run(*session);
}

ProcedureResult
twoPass(const ProcedureConfig &config,
        const SmartsProcedure::SessionFactory &factory,
        std::uint64_t streamLength, exec::ThreadPool *pool,
        std::size_t shards)
{
    SamplingConfig sc;
    sc.unitSize = config.unitSize;
    sc.detailedWarming = config.detailedWarming;
    sc.warming = config.warming;
    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config.unitSize, config.nInit);

    ProcedureResult result;
    result.initial =
        runPass(sc, factory, streamLength, pool, shards);

    // Size n_tuned from the measured V-hat (Eq. 3); rerun only when
    // the initial confidence interval misses the target.
    result.recommendedN = stats::requiredSampleSize(
        result.initial.cpiCv(), config.target);
    const double ci =
        result.initial.cpiConfidenceInterval(config.target.level);
    if (ci <= config.target.epsilon)
        return result;

    // The tuned pass must MEET n_tuned — Eq. 3 gives a minimum, so
    // round-to-nearest (which can undershoot by half an interval's
    // worth of units) is wrong here; floor division guarantees at
    // least recommendedN units.
    const std::uint64_t units = streamLength / config.unitSize;
    sc.interval = units > result.recommendedN && result.recommendedN
                      ? units / result.recommendedN
                      : 1;
    result.tuned = runPass(sc, factory, streamLength, pool, shards);
    return result;
}

} // namespace

ProcedureResult
SmartsProcedure::estimate(const SessionFactory &factory,
                          std::uint64_t streamLength) const
{
    return twoPass(config_, factory, streamLength, nullptr, 0);
}

ProcedureResult
SmartsProcedure::estimateSharded(const SessionFactory &factory,
                                 std::uint64_t streamLength,
                                 exec::ThreadPool &pool,
                                 std::size_t shards) const
{
    return twoPass(config_, factory, streamLength, &pool, shards);
}

MatchedProcedureResult
SmartsProcedure::estimateMatched(const MultiSessionFactory &factory,
                                 std::uint64_t streamLength) const
{
    SamplingConfig sc;
    sc.unitSize = config_.unitSize;
    sc.detailedWarming = config_.detailedWarming;
    sc.warming = config_.warming;
    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, config_.nInit);

    MatchedProcedureResult result;
    {
        auto session = factory();
        result.initial = SystematicSampler(sc).runMatched(*session);
    }

    // Size n_tuned from the worst per-config V-hat; rerun only when
    // any config's confidence interval misses the target.
    double worstCv = 0.0;
    double worstCi = 0.0;
    for (const SmartsEstimate &est : result.initial.perConfig) {
        worstCv = std::max(worstCv, est.cpiCv());
        worstCi = std::max(
            worstCi, est.cpiConfidenceInterval(config_.target.level));
    }
    result.recommendedN =
        stats::requiredSampleSize(worstCv, config_.target);
    if (worstCi <= config_.target.epsilon)
        return result;

    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, result.recommendedN);
    auto session = factory();
    result.tuned = SystematicSampler(sc).runMatched(*session);
    return result;
}

} // namespace smarts::core
