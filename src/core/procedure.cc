#include "core/procedure.hh"

#include <algorithm>

#include "core/checkpoint_store.hh"
#include "core/livepoint.hh"
#include "util/logging.hh"

namespace smarts::core {

SmartsProcedure::SmartsProcedure(const ProcedureConfig &config)
    : config_(config)
{
    if (!config.nInit)
        SMARTS_FATAL("procedure nInit must be nonzero");
}

namespace {

/** What a sharded pass runs on: the pool, and (optionally) the
 *  persistent store plus the identity that keys it. */
struct ShardedContext
{
    exec::ThreadPool *pool = nullptr;
    std::size_t shards = 0;
    CheckpointStore *store = nullptr;
    const workloads::BenchmarkSpec *spec = nullptr;
    const uarch::MachineConfig *machine = nullptr;
};

/** One sampling pass: serial, checkpoint-sharded, or store-backed. */
core::SmartsEstimate
runPass(const SamplingConfig &sc,
        const SmartsProcedure::SessionFactory &factory,
        std::uint64_t streamLength, const ShardedContext &ctx)
{
    if (ctx.pool && ctx.store)
        return SystematicSampler(sc).runSharded(
            factory, *ctx.spec, *ctx.machine, streamLength,
            ctx.shards, *ctx.pool, *ctx.store);
    if (ctx.pool)
        return SystematicSampler(sc).runSharded(factory, streamLength,
                                                ctx.shards, *ctx.pool);
    auto session = factory();
    return SystematicSampler(sc).run(*session);
}

ProcedureResult
twoPass(const ProcedureConfig &config,
        const SmartsProcedure::SessionFactory &factory,
        std::uint64_t streamLength, const ShardedContext &ctx)
{
    SamplingConfig sc;
    sc.unitSize = config.unitSize;
    sc.detailedWarming = config.detailedWarming;
    sc.warming = config.warming;
    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config.unitSize, config.nInit);

    ProcedureResult result;
    result.initial = runPass(sc, factory, streamLength, ctx);

    // Size n_tuned from the measured V-hat (Eq. 3); rerun only when
    // the initial confidence interval misses the target.
    result.recommendedN = stats::requiredSampleSize(
        result.initial.cpiCv(), config.target);
    const double ci =
        result.initial.cpiConfidenceInterval(config.target.level);
    if (ci <= config.target.epsilon)
        return result;

    // The tuned pass must MEET n_tuned — Eq. 3 gives a minimum, so
    // round-to-nearest (which can undershoot by half an interval's
    // worth of units) is wrong here; floor division guarantees at
    // least recommendedN units.
    const std::uint64_t units = streamLength / config.unitSize;
    sc.interval = units > result.recommendedN && result.recommendedN
                      ? units / result.recommendedN
                      : 1;
    result.tuned = runPass(sc, factory, streamLength, ctx);
    return result;
}

} // namespace

ProcedureResult
SmartsProcedure::estimate(const SessionFactory &factory,
                          std::uint64_t streamLength) const
{
    return twoPass(config_, factory, streamLength, {});
}

ProcedureResult
SmartsProcedure::estimateSharded(const SessionFactory &factory,
                                 std::uint64_t streamLength,
                                 exec::ThreadPool &pool,
                                 std::size_t shards) const
{
    ShardedContext ctx;
    ctx.pool = &pool;
    ctx.shards = shards;
    return twoPass(config_, factory, streamLength, ctx);
}

ProcedureResult
SmartsProcedure::estimateSharded(const SessionFactory &factory,
                                 const workloads::BenchmarkSpec &spec,
                                 const uarch::MachineConfig &machine,
                                 std::uint64_t streamLength,
                                 exec::ThreadPool &pool,
                                 std::size_t shards,
                                 CheckpointStore &store) const
{
    ShardedContext ctx;
    ctx.pool = &pool;
    ctx.shards = shards;
    ctx.store = &store;
    ctx.spec = &spec;
    ctx.machine = &machine;
    return twoPass(config_, factory, streamLength, ctx);
}

AnytimeResult
SmartsProcedure::estimateAnytime(const SessionFactory &factory,
                                 const workloads::BenchmarkSpec &spec,
                                 const uarch::MachineConfig &machine,
                                 std::uint64_t streamLength,
                                 exec::ThreadPool &pool,
                                 CheckpointStore &store,
                                 std::uint64_t seed) const
{
    // The densest design the two-pass recipe would consider: nInit
    // available units. The anytime run stops when the target is met,
    // so a dense grid costs nothing extra — it is headroom for
    // high-variance streams, not a commitment.
    SamplingConfig sc;
    sc.unitSize = config_.unitSize;
    sc.detailedWarming = config_.detailedWarming;
    sc.warming = config_.warming;
    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, config_.nInit);

    const LibraryKey key = LibraryKey::of(spec, machine, sc);
    AnytimeOptions options;
    options.target = config_.target;
    options.seed = seed;

    // One store lookup decides the path (the store's index makes it
    // a single stat at most — see StoreCounters::statCalls). Hit:
    // measure from the persisted live-points. Miss: the LEAPFROG
    // cold path — capture and measurement overlap at per-unit grain
    // — then persist what was captured so every later run hits.
    // Both paths report the identical AnytimeResult.
    std::string error;
    std::optional<LivePointLibrary> library =
        store.tryLoadLivePoints(key, &error);
    if (library)
        return SystematicSampler(sc).runAnytime(factory, *library,
                                                pool, options);
    if (!error.empty())
        SMARTS_WARN("checkpoint store: recapturing live-points (",
                    error, ")");

    auto session = factory();
    LivePointLibrary captured;
    const AnytimeResult result =
        SystematicSampler(sc).runAnytimeLeapfrog(
            *session, factory, pool, options, &captured);
    if (!store.saveLivePoints(captured, key, &error))
        SMARTS_WARN("checkpoint store: could not persist ",
                    store.livePointPathFor(key), " (", error, ")");
    return result;
}

MatchedProcedureResult
SmartsProcedure::estimateMatched(const MultiSessionFactory &factory,
                                 std::uint64_t streamLength) const
{
    SamplingConfig sc;
    sc.unitSize = config_.unitSize;
    sc.detailedWarming = config_.detailedWarming;
    sc.warming = config_.warming;
    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, config_.nInit);

    MatchedProcedureResult result;
    {
        auto session = factory();
        result.initial = SystematicSampler(sc).runMatched(*session);
    }

    // Size n_tuned from the worst per-config V-hat; rerun only when
    // any config's confidence interval misses the target.
    double worstCv = 0.0;
    double worstCi = 0.0;
    for (const SmartsEstimate &est : result.initial.perConfig) {
        worstCv = std::max(worstCv, est.cpiCv());
        worstCi = std::max(
            worstCi, est.cpiConfidenceInterval(config_.target.level));
    }
    result.recommendedN =
        stats::requiredSampleSize(worstCv, config_.target);
    if (worstCi <= config_.target.epsilon)
        return result;

    sc.interval = SamplingConfig::chooseInterval(
        streamLength, config_.unitSize, result.recommendedN);
    auto session = factory();
    result.tuned = SystematicSampler(sc).runMatched(*session);
    return result;
}

} // namespace smarts::core
