#include "core/checkpoint.hh"

#include <algorithm>

#include "util/logging.hh"

namespace smarts::core {

std::vector<ShardSpec>
CheckpointLibrary::planShards(const SamplingConfig &config,
                              std::uint64_t streamLength,
                              std::size_t shards)
{
    const std::uint64_t u = config.unitSize;
    const std::uint64_t k = config.interval;
    const std::uint64_t offset = config.offset;
    if (!u || !k)
        SMARTS_FATAL("planShards needs nonzero unit size and interval");

    // Measured units whose start lies inside the stream (the last
    // may be truncated; the serial loop still iterates it).
    std::uint64_t unitCount = 0;
    if (streamLength && offset <= (streamLength - 1) / u)
        unitCount = ((streamLength - 1) / u - offset) / k + 1;

    const std::uint64_t want = shards ? shards : 1;
    const std::uint64_t count =
        std::max<std::uint64_t>(
            1, std::min<std::uint64_t>(want, unitCount ? unitCount
                                                       : 1));

    std::vector<ShardSpec> plan(count);
    for (std::uint64_t s = 0; s < count; ++s) {
        const std::uint64_t mBegin = unitCount * s / count;
        const std::uint64_t mEnd = unitCount * (s + 1) / count;
        plan[s].firstUnitIndex = offset + mBegin * k;
        plan[s].unitCount = mEnd - mBegin;
        // The serial loop reaches unit mBegin's iteration exactly at
        // the previous measured unit's end (shard boundaries are
        // interior, so that unit is complete).
        plan[s].resumePos =
            s == 0 ? 0 : (offset + (mBegin - 1) * k) * u + u;
        plan[s].runsTail = s + 1 == count;
    }
    return plan;
}

void
CheckpointLibrary::capture(SimSession &session,
                           const SamplingConfig &config,
                           const std::vector<ShardSpec> &plan,
                           const CheckpointSink &sink)
{
    if (plan.size() <= 1)
        return;
    const std::uint64_t u = config.unitSize;
    const std::uint64_t w = config.detailedWarming;
    const std::uint64_t k = config.interval;
    if (!u || !k)
        SMARTS_FATAL("capture needs nonzero unit size and interval");

    std::uint64_t pos = session.instCount();
    std::uint64_t unitIdx = config.nextGridIndex(config.offset, pos);
    std::size_t next = 1;

    // Mirror the serial sampling schedule with state-equivalent
    // warming: fastForward over the inter-unit gaps (identical to
    // the serial run), warmAsDetailed over the detailed-warming and
    // measured windows (identical state transitions, no timing).
    // At each shard boundary — an iteration start — the session
    // state is bit-identical to the serial run's, so snapshot it.
    while (next < plan.size()) {
        if (unitIdx >= plan[next].firstUnitIndex) {
            ArchCheckpoint cp;
            session.saveState(cp.arch, cp.timing);
            cp.position = session.instCount();
            cp.unitIndex = plan[next].firstUnitIndex;
            sink(next, std::move(cp));
            ++next;
            continue;
        }
        // Stream shorter than planned (mis-stated length): the
        // remaining checkpoints are unreachable.
        if (session.finished() || unitIdx > ~0ull / u)
            break;

        const std::uint64_t unitStart = unitIdx * u;
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;
        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos,
                                       config.warming);
            if (session.finished())
                continue;
        }
        if (unitStart > pos)
            pos += session.warmAsDetailed(unitStart - pos);
        pos += session.warmAsDetailed(u);
        unitIdx += k;
    }
}

CheckpointLibrary
CheckpointLibrary::build(SimSession &session,
                         const SamplingConfig &config,
                         const std::vector<ShardSpec> &plan)
{
    CheckpointLibrary library;
    library.config_ = config;
    library.plan_ = plan;
    library.checkpoints_.resize(plan.size());
    capture(session, config, plan,
            [&library](std::size_t s, ArchCheckpoint &&cp) {
                library.checkpoints_[s] = std::move(cp);
            });
    // The stream ending before every boundary means the plan's
    // streamLength was overstated; fail here with a clear message
    // rather than mid-pool when a shard restores an empty snapshot.
    for (std::size_t s = 1; s < plan.size(); ++s)
        if (library.checkpoints_[s].arch.data.empty())
            SMARTS_FATAL("stream ended before the checkpoint for "
                         "shard ", s, " (position ",
                         plan[s].resumePos,
                         ") — was streamLength overstated?");
    return library;
}

} // namespace smarts::core
