#include "core/checkpoint.hh"

#include <algorithm>
#include <cstdio>

#include "uarch/config.hh"
#include "util/logging.hh"

namespace smarts::core {

namespace {

const char *
warmingName(WarmingMode mode)
{
    switch (mode) {
      case WarmingMode::None: return "none";
      case WarmingMode::CachesOnly: return "cache";
      case WarmingMode::BpredOnly: return "bpred";
      case WarmingMode::Functional: return "func";
    }
    return "?";
}

/**
 * The stream ending before every boundary means the plan's
 * streamLength was overstated; fail with a clear message rather
 * than mid-pool when a shard restores an empty snapshot.
 */
void
requireComplete(const CheckpointLibrary &library,
                const std::vector<ShardSpec> &plan)
{
    for (std::size_t s = 1; s < plan.size(); ++s)
        if (library.at(s).arch.data.empty())
            SMARTS_FATAL("stream ended before the checkpoint for "
                         "shard ", s, " (position ",
                         plan[s].resumePos,
                         ") — was streamLength overstated?");
}

const char *
scaleName(workloads::Scale scale)
{
    switch (scale) {
      case workloads::Scale::Mini: return "mini";
      case workloads::Scale::Small: return "small";
      case workloads::Scale::Large: return "large";
    }
    return "?";
}

} // namespace

LibraryKey
LibraryKey::of(const workloads::BenchmarkSpec &spec,
               const uarch::MachineConfig &config,
               const SamplingConfig &sampling)
{
    LibraryKey key;
    key.benchmark = spec;
    key.geometryHash = uarch::warmGeometryHash(config);
    key.sampling = sampling;
    return key;
}

void
LibraryKey::write(util::BinaryWriter &out) const
{
    out.str(benchmark.name);
    out.u32(static_cast<std::uint32_t>(benchmark.kernel));
    out.u32(benchmark.variant);
    out.u64(benchmark.seed);
    out.u32(static_cast<std::uint32_t>(benchmark.scale));
    out.u64(geometryHash);
    out.u64(sampling.unitSize);
    out.u64(sampling.detailedWarming);
    out.u64(sampling.interval);
    out.u64(sampling.offset);
    out.u32(static_cast<std::uint32_t>(sampling.warming));
}

LibraryKey
LibraryKey::read(util::BinaryReader &in)
{
    LibraryKey key;
    key.benchmark.name = in.str();
    key.benchmark.kernel =
        static_cast<workloads::Kernel>(in.u32());
    key.benchmark.variant = in.u32();
    key.benchmark.seed = in.u64();
    key.benchmark.scale = static_cast<workloads::Scale>(in.u32());
    key.geometryHash = in.u64();
    key.sampling.unitSize = in.u64();
    key.sampling.detailedWarming = in.u64();
    key.sampling.interval = in.u64();
    key.sampling.offset = in.u64();
    key.sampling.warming = static_cast<WarmingMode>(in.u32());
    return key;
}

std::string
LibraryKey::dirName() const
{
    return log::format(benchmark.name, "-",
                       scaleName(benchmark.scale));
}

namespace {

std::string
keyFileStem(const LibraryKey &key)
{
    char hash[17];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(key.geometryHash));
    return log::format("U", key.sampling.unitSize, "_W",
                       key.sampling.detailedWarming, "_k",
                       key.sampling.interval, "_j",
                       key.sampling.offset, "_",
                       warmingName(key.sampling.warming), "_g", hash);
}

} // namespace

std::string
LibraryKey::fileName() const
{
    return keyFileStem(*this) + ".smck";
}

std::string
LibraryKey::livePointFileName() const
{
    return keyFileStem(*this) + ".smlp";
}

std::string
LibraryKey::mismatchAgainst(const LibraryKey &other) const
{
    if (benchmark.name != other.benchmark.name ||
        benchmark.kernel != other.benchmark.kernel ||
        benchmark.variant != other.benchmark.variant ||
        benchmark.seed != other.benchmark.seed ||
        benchmark.scale != other.benchmark.scale)
        return log::format("benchmark mismatch (file: ",
                           other.benchmark.name, "-",
                           scaleName(other.benchmark.scale),
                           ", expected: ", benchmark.name, "-",
                           scaleName(benchmark.scale), ")");
    if (sampling.unitSize != other.sampling.unitSize ||
        sampling.detailedWarming != other.sampling.detailedWarming ||
        sampling.interval != other.sampling.interval ||
        sampling.offset != other.sampling.offset ||
        sampling.warming != other.sampling.warming)
        return log::format(
            "sampling-design mismatch (file: U",
            other.sampling.unitSize, "/W",
            other.sampling.detailedWarming, "/k",
            other.sampling.interval, "/j", other.sampling.offset,
            ", expected: U", sampling.unitSize, "/W",
            sampling.detailedWarming, "/k", sampling.interval, "/j",
            sampling.offset, ")");
    if (geometryHash != other.geometryHash) {
        char fileHash[17], wantHash[17];
        std::snprintf(fileHash, sizeof fileHash, "%016llx",
                      static_cast<unsigned long long>(
                          other.geometryHash));
        std::snprintf(wantHash, sizeof wantHash, "%016llx",
                      static_cast<unsigned long long>(geometryHash));
        return log::format(
            "config-geometry hash mismatch (file: ", fileHash,
            ", expected: ", wantHash,
            " — the machine's caches/TLBs/predictor differ from "
            "the capture machine's)");
    }
    return {};
}

std::vector<ShardSpec>
CheckpointLibrary::planShards(const SamplingConfig &config,
                              std::uint64_t streamLength,
                              std::size_t shards)
{
    const std::uint64_t u = config.unitSize;
    const std::uint64_t k = config.interval;
    const std::uint64_t offset = config.offset;
    if (!u || !k)
        SMARTS_FATAL("planShards needs nonzero unit size and interval");

    // Measured units whose start lies inside the stream (the last
    // may be truncated; the serial loop still iterates it).
    std::uint64_t unitCount = 0;
    if (streamLength && offset <= (streamLength - 1) / u)
        unitCount = ((streamLength - 1) / u - offset) / k + 1;

    const std::uint64_t want = shards ? shards : 1;
    const std::uint64_t count =
        std::max<std::uint64_t>(
            1, std::min<std::uint64_t>(want, unitCount ? unitCount
                                                       : 1));

    std::vector<ShardSpec> plan(count);
    for (std::uint64_t s = 0; s < count; ++s) {
        const std::uint64_t mBegin = unitCount * s / count;
        const std::uint64_t mEnd = unitCount * (s + 1) / count;
        plan[s].firstUnitIndex = offset + mBegin * k;
        plan[s].unitCount = mEnd - mBegin;
        // The serial loop reaches unit mBegin's iteration exactly at
        // the previous measured unit's end (shard boundaries are
        // interior, so that unit is complete).
        plan[s].resumePos =
            s == 0 ? 0 : (offset + (mBegin - 1) * k) * u + u;
        plan[s].runsTail = s + 1 == count;
    }
    return plan;
}

std::string
CheckpointLibrary::validatePlan(const SamplingConfig &config,
                                const std::vector<ShardSpec> &plan)
{
    if (plan.empty())
        return "the plan has no shards";
    if (!config.unitSize || !config.interval)
        return "the sampling design has a zero unit size or interval";
    std::uint64_t expectIdx = config.offset;
    for (std::size_t s = 0; s < plan.size(); ++s) {
        const ShardSpec &shard = plan[s];
        const bool contiguous =
            shard.firstUnitIndex == expectIdx &&
            shard.firstUnitIndex <= ~0ull / config.unitSize &&
            shard.runsTail == (s + 1 == plan.size()) &&
            (s == 0 ||
             (shard.unitCount >= 1 &&
              shard.resumePos ==
                  (shard.firstUnitIndex - config.interval) *
                          config.unitSize +
                      config.unitSize)) &&
            (s > 0 || shard.resumePos == 0);
        if (!contiguous)
            return log::format("shard ", s,
                               " breaks the contiguous plan "
                               "geometry");
        // Overflow-checked advance: a hostile plan (the checksum
        // only proves the writer was careful, not honest) could
        // pick unitCount * interval ≡ 0 mod 2^64 so the next shard
        // "contiguously" overlaps this one — wrapping here would
        // accept exactly the overlapping plan this function exists
        // to refuse.
        if (shard.unitCount > ~0ull / config.interval)
            return log::format("shard ", s,
                               " has an overflowing unit count");
        const std::uint64_t span = shard.unitCount * config.interval;
        if (expectIdx > ~0ull - span)
            return log::format("shard ", s,
                               " has an overflowing unit count");
        expectIdx += span;
    }
    return {};
}

void
CheckpointLibrary::capture(SimSession &session,
                           const SamplingConfig &config,
                           const std::vector<ShardSpec> &plan,
                           const CheckpointSink &sink)
{
    detail::captureSchedule(session, config, plan, [&](std::size_t s) {
        ArchCheckpoint cp;
        session.saveState(cp.arch, cp.timing);
        cp.position = session.instCount();
        cp.unitIndex = plan[s].firstUnitIndex;
        sink(s, std::move(cp));
    });
}

CheckpointLibrary
CheckpointLibrary::prepare(const SamplingConfig &config,
                           const std::vector<ShardSpec> &plan)
{
    CheckpointLibrary library;
    library.config_ = config;
    library.plan_ = plan;
    library.checkpoints_.resize(plan.size());
    return library;
}

CheckpointLibrary
CheckpointLibrary::build(SimSession &session,
                         const SamplingConfig &config,
                         const std::vector<ShardSpec> &plan)
{
    CheckpointLibrary library = prepare(config, plan);
    capture(session, config, plan,
            [&library](std::size_t s, ArchCheckpoint &&cp) {
                library.checkpoints_[s] = std::move(cp);
            });
    requireComplete(library, plan);
    return library;
}

std::vector<CheckpointLibrary>
CheckpointLibrary::buildMulti(MultiSession &session,
                              const SamplingConfig &config,
                              const std::vector<ShardSpec> &plan)
{
    std::vector<CheckpointLibrary> libraries(
        session.configCount(), prepare(config, plan));

    ArchState arch;
    std::vector<TimingState> timings;
    detail::captureSchedule(session, config, plan, [&](std::size_t s) {
        // One architectural snapshot, one timing snapshot per
        // config: library c gets exactly the checkpoint a
        // single-config capture of config c would have taken here.
        session.saveState(arch, timings);
        for (std::size_t c = 0; c < libraries.size(); ++c) {
            ArchCheckpoint cp;
            cp.arch = arch;
            cp.timing = std::move(timings[c]);
            cp.position = session.instCount();
            cp.unitIndex = plan[s].firstUnitIndex;
            libraries[c].checkpoints_[s] = std::move(cp);
        }
    });
    for (const CheckpointLibrary &library : libraries)
        requireComplete(library, plan);
    return libraries;
}

void
CheckpointLibrary::serialize(const LibraryKey &key,
                             util::BinaryWriter &out) const
{
    for (const char c : kCheckpointMagic)
        out.u8(static_cast<std::uint8_t>(c));
    out.u32(kCheckpointFormatVersion);
    out.u32(kCheckpointEndianMark);
    out.u8(kCheckpointFlavorSolo);
    key.write(out);

    out.u64(plan_.size());
    for (const ShardSpec &shard : plan_) {
        out.u64(shard.firstUnitIndex);
        out.u64(shard.unitCount);
        out.u64(shard.resumePos);
        out.u8(shard.runsTail ? 1 : 0);
    }
    out.u64(checkpoints_.size());
    for (std::size_t s = 0; s < checkpoints_.size(); ++s) {
        // Slot 0 (and every tail shard of a one-shard plan) resumes
        // at stream start and carries no state.
        const bool present = s > 0;
        out.u8(present ? 1 : 0);
        if (present)
            checkpoints_[s].write(out);
    }
}

bool
CheckpointLibrary::save(const LibraryKey &key, const std::string &path,
                        std::string *error, bool createDirs) const
{
    util::BinaryWriter out;
    serialize(key, out);
    return out.writeFile(path, error, createDirs);
}

std::optional<CheckpointLibrary>
CheckpointLibrary::load(const std::string &path,
                        const LibraryKey &expect, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));

    for (const char c : kCheckpointMagic)
        if (in.u8() != static_cast<std::uint8_t>(c))
            return refuse(log::format(
                path, " is not a smarts checkpoint library"));
    // v1 files (no flavor byte, always solo state) still load: the
    // v1→v2 migration path. Anything newer is refused, not guessed.
    const std::uint32_t version = in.u32();
    if (version != 1 && version != kCheckpointFormatVersion)
        return refuse(log::format(
            path, " is format version ", version,
            "; this build reads versions 1 and ",
            kCheckpointFormatVersion));
    if (in.u32() != kCheckpointEndianMark)
        return refuse(log::format(path,
                                  " has a bad endianness marker"));
    if (version >= 2) {
        const std::uint8_t flavor = in.u8();
        if (flavor != kCheckpointFlavorSolo)
            return refuse(log::format(
                path, " holds flavor-", flavor,
                " (co-run mix) state; load it through "
                "mp::MixLibrary, not the solo library loader"));
    }

    const LibraryKey stored = LibraryKey::read(in);
    const std::string mismatch = expect.mismatchAgainst(stored);
    if (!mismatch.empty())
        return refuse(log::format(path, ": ", mismatch));

    CheckpointLibrary library;
    library.config_ = stored.sampling;
    const std::uint64_t shardCount = in.u64();
    // An absurd count means a corrupt length field the checksum
    // somehow missed; bound it by what the payload could hold.
    if (shardCount > in.remaining())
        return refuse(log::format(path, " is corrupt (shard count ",
                                  shardCount, ")"));
    library.plan_.resize(shardCount);
    for (ShardSpec &shard : library.plan_) {
        shard.firstUnitIndex = in.u64();
        shard.unitCount = in.u64();
        shard.resumePos = in.u64();
        shard.runsTail = in.u8() != 0;
    }
    // The plan must be one planShards could have produced — the
    // checksum only proves the writer was careful, not honest, and
    // executing a malformed plan (overlapping shards, misplaced
    // tail) would MIS-MEASURE instead of refusing.
    {
        const std::string planError =
            validatePlan(stored.sampling, library.plan_);
        if (!planError.empty())
            return refuse(log::format(path, " is corrupt (",
                                      planError, ")"));
    }
    const std::uint64_t cpCount = in.u64();
    if (cpCount != shardCount)
        return refuse(log::format(
            path, " is corrupt (", cpCount, " checkpoints for ",
            shardCount, " shards)"));
    library.checkpoints_.resize(shardCount);
    for (std::size_t s = 0; s < shardCount; ++s) {
        const bool present = in.u8() != 0;
        if (present == (s == 0))
            return refuse(log::format(
                path, " is corrupt (checkpoint ", s,
                present ? " unexpectedly present" : " missing"));
        if (present)
            library.checkpoints_[s].read(in);
    }
    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(
            path, " is truncated or has trailing garbage"));
    for (std::size_t s = 1; s < shardCount; ++s)
        if (library.checkpoints_[s].position !=
                library.plan_[s].resumePos ||
            library.checkpoints_[s].unitIndex !=
                library.plan_[s].firstUnitIndex)
            return refuse(log::format(
                path, " is corrupt (checkpoint ", s,
                " disagrees with its shard plan)"));
    return library;
}

} // namespace smarts::core
