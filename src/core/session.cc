#include "core/session.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace smarts::core {

using sisa::DecodedInst;
using sisa::Opcode;

SimSession::SimSession(const workloads::BenchmarkSpec &spec,
                       const uarch::MachineConfig &config)
    : config_(config),
      program_(workloads::buildProgram(spec)),
      dataMask_(program_.dataBytes - 1),
      pc_(program_.entryPc),
      hierarchy_(config.mem),
      bpred_(config.bpred)
{
    if (!program_.dataBytes ||
        (program_.dataBytes & (program_.dataBytes - 1)))
        SMARTS_FATAL("data footprint must be a power of two");
    decoded_.reserve(program_.code.size());
    for (const std::uint32_t word : program_.code)
        decoded_.push_back(sisa::decode(word));
    fetchLineShift_ = 0;
    while ((1u << fetchLineShift_) < config_.mem.l1i.lineBytes)
        ++fetchLineShift_;
}

std::uint32_t
SimSession::loadWord(std::uint32_t addr) const
{
    return program_.data[((addr - workloads::kDataBase) & dataMask_) >>
                         2];
}

void
SimSession::storeWord(std::uint32_t addr, std::uint32_t value)
{
    program_
        .data[((addr - workloads::kDataBase) & dataMask_) >> 2] =
        value;
}

bool
SimSession::step(StepInfo &info)
{
    if (finished_)
        return false;
    const std::uint32_t idx = (pc_ - workloads::kCodeBase) >> 2;
    if (idx >= decoded_.size()) {
        finished_ = true;
        return false;
    }
    const DecodedInst di = decoded_[idx];
    info.di = di;
    info.pc = pc_;
    info.taken = false;
    std::uint32_t next = pc_ + 4;

    auto setReg = [this](unsigned r, std::uint32_t v) {
        if (r)
            regs_[r] = v;
    };
    const std::uint32_t vb = regs_[di.b];
    const std::uint32_t uimm =
        static_cast<std::uint32_t>(di.imm) & 0xffffu;

    switch (di.op) {
      case Opcode::ADD:
        setReg(di.a, vb + regs_[di.c]);
        break;
      case Opcode::SUB:
        setReg(di.a, vb - regs_[di.c]);
        break;
      case Opcode::MUL:
        setReg(di.a, vb * regs_[di.c]);
        break;
      case Opcode::AND:
        setReg(di.a, vb & regs_[di.c]);
        break;
      case Opcode::OR:
        setReg(di.a, vb | regs_[di.c]);
        break;
      case Opcode::XOR:
        setReg(di.a, vb ^ regs_[di.c]);
        break;
      case Opcode::SLT:
        setReg(di.a, static_cast<std::int32_t>(vb) <
                             static_cast<std::int32_t>(regs_[di.c])
                         ? 1
                         : 0);
        break;
      case Opcode::ADDI:
        setReg(di.a, vb + static_cast<std::uint32_t>(di.imm));
        break;
      case Opcode::ANDI:
        setReg(di.a, vb & uimm);
        break;
      case Opcode::ORI:
        setReg(di.a, vb | uimm);
        break;
      case Opcode::SHLI:
        setReg(di.a, vb << (di.imm & 31));
        break;
      case Opcode::SHRI:
        setReg(di.a, vb >> (di.imm & 31));
        break;
      case Opcode::LUI:
        setReg(di.a, uimm << 16);
        break;
      case Opcode::LD:
        info.memAddr = vb + static_cast<std::uint32_t>(di.imm);
        setReg(di.a, loadWord(info.memAddr));
        break;
      case Opcode::ST:
        info.memAddr = vb + static_cast<std::uint32_t>(di.imm);
        storeWord(info.memAddr, regs_[di.a]);
        break;
      case Opcode::BEQ:
        info.taken = regs_[di.a] == vb;
        break;
      case Opcode::BNE:
        info.taken = regs_[di.a] != vb;
        break;
      case Opcode::BLT:
        info.taken = static_cast<std::int32_t>(regs_[di.a]) <
                     static_cast<std::int32_t>(vb);
        break;
      case Opcode::BGE:
        info.taken = static_cast<std::int32_t>(regs_[di.a]) >=
                     static_cast<std::int32_t>(vb);
        break;
      case Opcode::JAL:
        info.taken = true;
        setReg(di.a, pc_ + 4);
        next = di.branchTarget(pc_);
        break;
      case Opcode::JR:
        info.taken = true;
        next = regs_[di.a];
        break;
      case Opcode::HALT:
        finished_ = true;
        return false;
      case Opcode::NOP:
      default:
        break;
    }
    if (di.isCondBranch() && info.taken)
        next = di.branchTarget(pc_);

    info.nextPc = next;
    pc_ = next;
    ++instCount_;
    return true;
}

std::uint64_t
SimSession::fastForward(std::uint64_t maxInsts, WarmingMode mode)
{
    const bool warmCaches =
        mode == WarmingMode::CachesOnly || mode == WarmingMode::Functional;
    const bool warmBpred =
        mode == WarmingMode::BpredOnly || mode == WarmingMode::Functional;

    std::uint64_t executed = 0;
    StepInfo info;
    while (executed < maxInsts) {
        if (!step(info))
            break;
        ++executed;
        if (warmCaches) {
            const std::uint32_t line = info.pc >> fetchLineShift_;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                hierarchy_.warmFetch(info.pc);
            }
            if (info.di.isLoad())
                hierarchy_.warmLoad(info.memAddr);
            else if (info.di.isStore())
                hierarchy_.warmStore(info.memAddr);
        }
        if (info.di.isLoad())
            ++activity_.loads;
        else if (info.di.isStore())
            ++activity_.stores;
        else if (info.di.isBranch()) {
            ++activity_.branches;
            if (warmBpred) {
                // Mirror the detailed core's RAS traffic: predict()
                // pops on returns there, so warming must pop too or
                // the stack depth drifts across warming gaps.
                if (info.di.op == sisa::Opcode::JR &&
                    info.di.a == 31)
                    bpred_.popReturn();
                bpred_.update(info.pc, info.di, info.taken,
                              info.nextPc);
            }
        }
    }
    return executed;
}

Segment
SimSession::detailedRun(std::uint64_t maxInsts)
{
    const auto &energy = config_.energy;
    const double invWidth = 1.0 / config_.width;
    const std::uint32_t l1iLat = config_.mem.l1i.latency;
    const std::uint32_t l1dLat = config_.mem.l1d.latency;
    const std::uint32_t lineBytes = config_.mem.l1i.lineBytes;

    const std::uint64_t cyclesBefore =
        static_cast<std::uint64_t>(cycles_);
    const double cyclesStart = cycles_;
    const double energyBefore = energyNj_;

    auto chargeMem = [&](const mem::MemResult &r) {
        energyNj_ += energy.l1Access;
        if (r.level != mem::ServedBy::L1)
            energyNj_ += energy.l2Access;
        if (r.level == mem::ServedBy::Memory)
            energyNj_ += energy.memAccess;
    };

    std::uint64_t executed = 0;
    StepInfo info;
    while (executed < maxInsts) {
        if (!step(info))
            break;
        ++executed;
        cycles_ += invWidth;
        energyNj_ += energy.perInst;

        // Front end: one I-cache access per fetched line.
        const std::uint32_t line = info.pc >> fetchLineShift_;
        if (line != lastFetchLine_) {
            lastFetchLine_ = line;
            const mem::MemResult f = hierarchy_.fetch(info.pc);
            chargeMem(f);
            if (f.latency > l1iLat)
                cycles_ += f.latency - l1iLat;
        }

        if (info.di.isLoad()) {
            ++activity_.loads;
            const mem::MemResult r = hierarchy_.load(info.memAddr);
            chargeMem(r);
            if (r.latency > l1dLat)
                cycles_ += (r.latency - l1dLat) *
                           config_.loadStallFactor;
        } else if (info.di.isStore()) {
            ++activity_.stores;
            const mem::MemResult r = hierarchy_.store(info.memAddr);
            chargeMem(r);
            if (r.latency > l1dLat)
                cycles_ += (r.latency - l1dLat) *
                           config_.storeStallFactor;
        } else if (info.di.isBranch()) {
            ++activity_.branches;
            ++activity_.bpredLookups;
            const bpred::Prediction p =
                bpred_.predict(info.pc, info.di);
            energyNj_ += energy.bpredAccess;
            const bool mispredict =
                p.taken != info.taken ||
                (info.taken && p.target != info.nextPc);
            if (mispredict) {
                ++activity_.bpredMispredicts;
                cycles_ += config_.pipelineDepth;
                if (config_.modelWrongPath) {
                    // The front end ran down the predicted (wrong)
                    // path: pollute the I-side and refetch after
                    // the redirect.
                    const std::uint32_t wrong =
                        p.taken ? p.target : info.pc + 4;
                    for (std::uint32_t i = 0;
                         i < config_.wrongPathFetches; ++i)
                        hierarchy_.warmFetch(wrong + i * lineBytes);
                    lastFetchLine_ = ~0u;
                }
            }
            bpred_.update(info.pc, info.di, info.taken, info.nextPc);
        }
    }

    energyNj_ += energy.perCycle * (cycles_ - cyclesStart);

    Segment seg;
    seg.instructions = executed;
    seg.cycles =
        static_cast<std::uint64_t>(cycles_) - cyclesBefore;
    seg.energyNj = energyNj_ - energyBefore;
    return seg;
}

std::vector<std::vector<double>>
SimSession::profileBbvs(std::uint64_t intervalSize, std::size_t dims)
{
    if (!intervalSize || !dims)
        SMARTS_FATAL("profileBbvs needs nonzero interval and dims");

    auto bucket = [dims](std::uint32_t blockPc) {
        return static_cast<std::size_t>(mix64(blockPc) % dims);
    };

    std::vector<std::vector<double>> intervals;
    std::vector<double> current(dims, 0.0);
    std::uint64_t inInterval = 0;
    std::uint32_t blockStart = pc_;
    double blockLen = 0;

    StepInfo info;
    while (step(info)) {
        ++blockLen;
        ++inInterval;
        if (info.di.isBranch()) {
            current[bucket(blockStart)] += blockLen;
            blockStart = info.nextPc;
            blockLen = 0;
        }
        if (inInterval == intervalSize) {
            current[bucket(blockStart)] += blockLen;
            blockLen = 0;
            blockStart = pc_;
            for (double &x : current)
                x /= static_cast<double>(intervalSize);
            intervals.push_back(current);
            std::fill(current.begin(), current.end(), 0.0);
            inInterval = 0;
        }
    }
    return intervals;
}

} // namespace smarts::core
