#include "core/session.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace smarts::core {

SimSession::SimSession(const workloads::BenchmarkSpec &spec,
                       const uarch::MachineConfig &config)
    : arch_(spec), model_(config)
{
}

std::uint64_t
SimSession::fastForward(std::uint64_t maxInsts, WarmingMode mode)
{
    const bool warmCaches = warmsCaches(mode);
    const bool warmBpred = warmsBpred(mode);

    std::uint64_t executed = 0;
    StepInfo info;
    while (executed < maxInsts) {
        if (!arch_.step(info))
            break;
        ++executed;
        model_.warm(info, warmCaches, warmBpred);
    }
    return executed;
}

std::uint64_t
SimSession::warmAsDetailed(std::uint64_t maxInsts)
{
    std::uint64_t executed = 0;
    StepInfo info;
    while (executed < maxInsts) {
        if (!arch_.step(info))
            break;
        ++executed;
        model_.warmDetailed(info);
    }
    return executed;
}

Segment
SimSession::detailedRun(std::uint64_t maxInsts)
{
    const TimingModel::SegmentMark mark = model_.beginSegment();
    std::uint64_t executed = 0;
    StepInfo info;
    while (executed < maxInsts) {
        if (!arch_.step(info))
            break;
        ++executed;
        model_.detailedStep(info);
    }
    return model_.endSegment(mark, executed);
}

std::vector<std::vector<double>>
SimSession::profileBbvs(std::uint64_t intervalSize, std::size_t dims)
{
    if (!intervalSize || !dims)
        SMARTS_FATAL("profileBbvs needs nonzero interval and dims");

    auto bucket = [dims](std::uint32_t blockPc) {
        return static_cast<std::size_t>(mix64(blockPc) % dims);
    };

    std::vector<std::vector<double>> intervals;
    std::vector<double> current(dims, 0.0);
    std::uint64_t inInterval = 0;
    std::uint32_t blockStart = arch_.pc();
    double blockLen = 0;

    StepInfo info;
    while (arch_.step(info)) {
        ++blockLen;
        ++inInterval;
        if (info.di.isBranch()) {
            current[bucket(blockStart)] += blockLen;
            blockStart = info.nextPc;
            blockLen = 0;
        }
        if (inInterval == intervalSize) {
            current[bucket(blockStart)] += blockLen;
            blockLen = 0;
            blockStart = arch_.pc();
            for (double &x : current)
                x /= static_cast<double>(intervalSize);
            intervals.push_back(current);
            std::fill(current.begin(), current.end(), 0.0);
            inInterval = 0;
        }
    }
    return intervals;
}

} // namespace smarts::core
