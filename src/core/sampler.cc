#include "core/sampler.hh"

#include "util/logging.hh"

namespace smarts::core {

SystematicSampler::SystematicSampler(const SamplingConfig &config)
    : config_(config)
{
    if (!config.unitSize)
        SMARTS_FATAL("sampling unit size must be nonzero");
    if (!config.interval)
        SMARTS_FATAL("sampling interval must be nonzero");
}

SmartsEstimate
SystematicSampler::run(SimSession &session) const
{
    const std::uint64_t u = config_.unitSize;
    const std::uint64_t w = config_.detailedWarming;
    const std::uint64_t k = config_.interval;

    SmartsEstimate est;
    std::uint64_t pos = session.instCount();
    std::uint64_t unitIdx = config_.offset;

    while (!session.finished()) {
        const std::uint64_t unitStart = unitIdx * u;
        if (unitStart < pos) {
            // Offset landed behind the current position (resumed
            // sessions); skip to the next unit on the grid.
            unitIdx += k;
            continue;
        }
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;

        // Fast-forward the inter-unit gap in the warming mode.
        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos,
                                       config_.warming);
            if (session.finished())
                break;
        }

        // Detailed warming W: timing on, measurement discarded.
        if (unitStart > pos) {
            const Segment warm = session.detailedRun(unitStart - pos);
            est.instructionsWarmed += warm.instructions;
            pos += warm.instructions;
            if (session.finished())
                break;
        }

        // The measured unit.
        const Segment seg = session.detailedRun(u);
        est.instructionsMeasured += seg.instructions;
        pos += seg.instructions;
        if (seg.instructions == u) {
            est.cpiStats.add(static_cast<double>(seg.cycles) /
                             static_cast<double>(u));
            est.epiStats.add(seg.energyNj /
                             static_cast<double>(seg.instructions));
        }
        unitIdx += k;
    }

    // Run out the tail so streamLength is the true benchmark length.
    while (!session.finished())
        session.fastForward(~0ull >> 1, config_.warming);
    est.streamLength = session.instCount();
    return est;
}

MatchedEstimate
SystematicSampler::runMatched(MultiSession &session) const
{
    const std::uint64_t u = config_.unitSize;
    const std::uint64_t w = config_.detailedWarming;
    const std::uint64_t k = config_.interval;
    const std::size_t n = session.configCount();

    MatchedEstimate est;
    est.perConfig.resize(n);
    est.cpiDelta.resize(n);

    std::uint64_t pos = session.instCount();
    std::uint64_t unitIdx = config_.offset;

    while (!session.finished()) {
        const std::uint64_t unitStart = unitIdx * u;
        if (unitStart < pos) {
            // Offset landed behind the current position (resumed
            // sessions); skip to the next unit on the grid.
            unitIdx += k;
            continue;
        }
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;

        // Fast-forward the inter-unit gap in the warming mode: one
        // interpretation pass warms every config's state.
        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos,
                                       config_.warming);
            if (session.finished())
                break;
        }

        // Detailed warming W: timing on, measurement discarded.
        if (unitStart > pos) {
            const MultiSegment warm =
                session.detailedRun(unitStart - pos);
            for (std::size_t c = 0; c < n; ++c)
                est.perConfig[c].instructionsWarmed +=
                    warm.instructions;
            pos += warm.instructions;
            if (session.finished())
                break;
        }

        // The measured unit: every config observes the same window.
        const MultiSegment seg = session.detailedRun(u);
        pos += seg.instructions;
        for (std::size_t c = 0; c < n; ++c)
            est.perConfig[c].instructionsMeasured += seg.instructions;
        if (seg.instructions == u) {
            const double cpi0 = static_cast<double>(seg.per[0].cycles) /
                                static_cast<double>(u);
            for (std::size_t c = 0; c < n; ++c) {
                const double cpi =
                    static_cast<double>(seg.per[c].cycles) /
                    static_cast<double>(u);
                est.perConfig[c].cpiStats.add(cpi);
                est.perConfig[c].epiStats.add(
                    seg.per[c].energyNj /
                    static_cast<double>(seg.instructions));
                est.cpiDelta[c].add(cpi - cpi0);
            }
        }
        unitIdx += k;
    }

    // Run out the tail so streamLength is the true benchmark length.
    while (!session.finished())
        session.fastForward(~0ull >> 1, config_.warming);
    for (std::size_t c = 0; c < n; ++c)
        est.perConfig[c].streamLength = session.instCount();
    return est;
}

} // namespace smarts::core
