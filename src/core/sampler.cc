#include "core/sampler.hh"

#include <utility>

#include "core/checkpoint.hh"
#include "core/checkpoint_store.hh"
#include "exec/thread_pool.hh"
#include "util/logging.hh"

namespace smarts::core {

namespace {

/**
 * The serial sampling loop over one slice of the unit grid — shared
 * verbatim by run() (a single all-units slice), runSharded() (one
 * slice per shard resumed from its checkpoint) and, through the
 * public SystematicSampler::runSlice, the distributed runner — so
 * no execution path can drift from the serial semantics.
 */
SliceResult
runSliceRange(SimSession &session, const SamplingConfig &config,
              std::uint64_t startIdx, std::uint64_t maxUnits,
              bool runTail, const ProgressTick &tick = {})
{
    const std::uint64_t u = config.unitSize;
    const std::uint64_t w = config.detailedWarming;
    const std::uint64_t k = config.interval;

    SliceResult r;
    bool aborted = false;
    std::uint64_t pos = session.instCount();

    // O(1) jump to the first grid index whose unit starts at or
    // after the session's position (resumed sessions).
    std::uint64_t unitIdx = config.nextGridIndex(startIdx, pos);
    std::uint64_t done = 0;

    while (!session.finished() && done < maxUnits) {
        // Grid index past any representable stream position: done
        // (and the unitIdx * u product stays overflow-free).
        if (unitIdx > ~0ull / u)
            break;
        const std::uint64_t unitStart = unitIdx * u;
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;

        // Fast-forward the inter-unit gap in the warming mode.
        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos,
                                       config.warming);
            if (session.finished())
                break;
        }

        // Detailed warming W: timing on, measurement discarded.
        if (unitStart > pos) {
            const Segment warm = session.detailedRun(unitStart - pos);
            r.warmed += warm.instructions;
            pos += warm.instructions;
            if (session.finished())
                break;
        }

        // The measured unit.
        const Segment seg = session.detailedRun(u);
        pos += seg.instructions;
        if (seg.instructions == u) {
            r.measured += u;
            r.obs.push_back(
                {static_cast<double>(seg.cycles) /
                     static_cast<double>(u),
                 seg.energyNj /
                     static_cast<double>(seg.instructions)});
        } else {
            // Truncated final unit: detailed-simulation cost that
            // produced no observation — tracked apart from the
            // measured instructions behind the statistics.
            r.dropped += seg.instructions;
        }
        ++done;
        unitIdx += k;

        // Liveness hook between units; false abandons the slice
        // (partial result, not publishable — skip the tail too).
        if (tick && !tick()) {
            aborted = true;
            break;
        }
    }

    // Run out the tail so streamLength is the true benchmark length.
    if (runTail && !aborted)
        while (!session.finished())
            session.fastForward(~0ull >> 1, config.warming);
    r.endPos = session.instCount();
    return r;
}

} // namespace

SliceResult
SystematicSampler::runSlice(SimSession &session,
                            const ShardSpec &shard,
                            const ProgressTick &tick) const
{
    return runSliceRange(session, config_, shard.firstUnitIndex,
                         shard.runsTail ? ~0ull : shard.unitCount,
                         shard.runsTail, tick);
}

void
SystematicSampler::foldSlice(SmartsEstimate &est,
                             const SliceResult &slice)
{
    for (const UnitObservation &o : slice.obs) {
        est.cpiStats.add(o.cpi);
        est.epiStats.add(o.epi);
    }
    est.instructionsMeasured += slice.measured;
    est.instructionsWarmed += slice.warmed;
    est.instructionsDropped += slice.dropped;
    if (slice.endPos > est.streamLength)
        est.streamLength = slice.endPos;
}

SystematicSampler::SystematicSampler(const SamplingConfig &config)
    : config_(config)
{
    if (!config.unitSize)
        SMARTS_FATAL("sampling unit size must be nonzero");
    if (!config.interval)
        SMARTS_FATAL("sampling interval must be nonzero");
}

SmartsEstimate
SystematicSampler::run(SimSession &session) const
{
    SmartsEstimate est;
    foldSlice(est, runSliceRange(session, config_, config_.offset,
                                 ~0ull, /*runTail=*/true));
    return est;
}

MatchedEstimate
SystematicSampler::runMatched(MultiSession &session) const
{
    const std::uint64_t u = config_.unitSize;
    const std::uint64_t w = config_.detailedWarming;
    const std::uint64_t k = config_.interval;
    const std::size_t n = session.configCount();

    MatchedEstimate est;
    est.perConfig.resize(n);
    est.cpiDelta.resize(n);

    std::uint64_t pos = session.instCount();

    // O(1) jump to the grid (resumed sessions), as in runSlice.
    std::uint64_t unitIdx =
        config_.nextGridIndex(config_.offset, pos);

    while (!session.finished()) {
        if (unitIdx > ~0ull / u)
            break;
        const std::uint64_t unitStart = unitIdx * u;
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;

        // Fast-forward the inter-unit gap in the warming mode: one
        // interpretation pass warms every config's state.
        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos,
                                       config_.warming);
            if (session.finished())
                break;
        }

        // Detailed warming W: timing on, measurement discarded.
        if (unitStart > pos) {
            const MultiSegment warm =
                session.detailedRun(unitStart - pos);
            for (std::size_t c = 0; c < n; ++c)
                est.perConfig[c].instructionsWarmed +=
                    warm.instructions;
            pos += warm.instructions;
            if (session.finished())
                break;
        }

        // The measured unit: every config observes the same window.
        const MultiSegment seg = session.detailedRun(u);
        pos += seg.instructions;
        if (seg.instructions == u) {
            for (std::size_t c = 0; c < n; ++c)
                est.perConfig[c].instructionsMeasured +=
                    seg.instructions;
            const double cpi0 = static_cast<double>(seg.per[0].cycles) /
                                static_cast<double>(u);
            for (std::size_t c = 0; c < n; ++c) {
                const double cpi =
                    static_cast<double>(seg.per[c].cycles) /
                    static_cast<double>(u);
                est.perConfig[c].cpiStats.add(cpi);
                est.perConfig[c].epiStats.add(
                    seg.per[c].energyNj /
                    static_cast<double>(seg.instructions));
                est.cpiDelta[c].add(cpi - cpi0);
            }
        } else {
            // Truncated final unit: mirror runSlice's accounting.
            for (std::size_t c = 0; c < n; ++c)
                est.perConfig[c].instructionsDropped +=
                    seg.instructions;
        }
        unitIdx += k;
    }

    // Run out the tail so streamLength is the true benchmark length.
    while (!session.finished())
        session.fastForward(~0ull >> 1, config_.warming);
    for (std::size_t c = 0; c < n; ++c)
        est.perConfig[c].streamLength = session.instCount();
    return est;
}

SmartsEstimate
SystematicSampler::runSharded(const SessionFactory &factory,
                              std::uint64_t streamLength,
                              std::size_t shards,
                              exec::ThreadPool &pool) const
{
    return runShardedCold(factory, streamLength, shards, pool,
                          nullptr);
}

SmartsEstimate
SystematicSampler::runShardedCold(const SessionFactory &factory,
                                  std::uint64_t streamLength,
                                  std::size_t shards,
                                  exec::ThreadPool &pool,
                                  CheckpointLibrary *collect) const
{
    if (!factory)
        SMARTS_FATAL("runSharded needs a session factory");
    const std::vector<ShardSpec> plan =
        CheckpointLibrary::planShards(config_, streamLength, shards);
    if (collect)
        *collect = CheckpointLibrary::prepare(config_, plan);

    std::vector<SliceResult> results(plan.size());
    const SamplingConfig config = config_;

    // Each shard job writes only its own result slot; pool.wait()
    // publishes every slot to this thread, so the batch is
    // bit-identical at any thread count.
    auto submitShard = [&results, &pool, &factory, &plan,
                        config](std::size_t s, ArchCheckpoint &&cp) {
        pool.submit([&results, &factory, &plan, config, s,
                     cp = std::move(cp)] {
            std::unique_ptr<SimSession> session = factory();
            if (s)
                session->restoreState(cp.arch, cp.timing);
            const ShardSpec &shard = plan[s];
            results[s] = runSliceRange(
                *session, config, shard.firstUnitIndex,
                shard.runsTail ? ~0ull : shard.unitCount,
                shard.runsTail);
        });
    };

    // Shard 0 resumes at stream start: dispatch it before the
    // capture pass so it overlaps checkpoint production.
    submitShard(0, ArchCheckpoint{});

    std::uint64_t capturePos = 0;
    if (plan.size() > 1) {
        std::unique_ptr<SimSession> captureSession = factory();
        CheckpointLibrary::capture(
            *captureSession, config_, plan,
            [&submitShard, collect](std::size_t s,
                                    ArchCheckpoint &&cp) {
                if (collect)
                    collect->record(s, cp);
                submitShard(s, std::move(cp));
            });
        capturePos = captureSession->instCount();
    }
    pool.wait();

    SmartsEstimate est;
    for (const SliceResult &slice : results)
        foldSlice(est, slice);
    // Normally the tail shard ran the stream out; if the plan
    // overstated the stream (caller passed a wrong length), the
    // capture pass's own progress still bounds what was simulated.
    if (capturePos > est.streamLength)
        est.streamLength = capturePos;
    return est;
}

SmartsEstimate
SystematicSampler::runSharded(const SessionFactory &factory,
                              const workloads::BenchmarkSpec &spec,
                              const uarch::MachineConfig &machine,
                              std::uint64_t streamLength,
                              std::size_t shards,
                              exec::ThreadPool &pool,
                              CheckpointStore &store) const
{
    const LibraryKey key = LibraryKey::of(spec, machine, config_);
    std::string error;
    if (std::optional<CheckpointLibrary> library =
            store.tryLoad(key, &error))
        return runSharded(factory, *library, pool);
    // A file that exists but refuses to load is a recapture, never a
    // mis-warm; say why (tryLoad names the key component — benchmark,
    // sampling design, geometry hash — or the failing record).
    if (!error.empty())
        SMARTS_WARN("checkpoint store: recapturing (", error, ")");

    CheckpointLibrary library;
    const SmartsEstimate est = runShardedCold(
        factory, streamLength, shards, pool, &library);
    if (!store.save(key, library, &error))
        SMARTS_WARN("checkpoint store: could not persist ",
                    store.pathFor(key), " (", error, ")");
    return est;
}

SmartsEstimate
SystematicSampler::runSharded(const SessionFactory &factory,
                              const CheckpointLibrary &library,
                              exec::ThreadPool &pool) const
{
    if (!factory)
        SMARTS_FATAL("runSharded needs a session factory");
    const SamplingConfig &built = library.samplingConfig();
    if (built.unitSize != config_.unitSize ||
        built.detailedWarming != config_.detailedWarming ||
        built.interval != config_.interval ||
        built.offset != config_.offset ||
        built.warming != config_.warming)
        SMARTS_FATAL("checkpoint library was built for a different "
                     "sampling design");
    const std::vector<ShardSpec> &plan = library.plan();
    if (plan.empty())
        SMARTS_FATAL("checkpoint library has no shards");

    std::vector<SliceResult> results(plan.size());
    const SamplingConfig config = config_;
    for (std::size_t s = 0; s < plan.size(); ++s) {
        pool.submit([&results, &factory, &plan, &library, config, s] {
            std::unique_ptr<SimSession> session = factory();
            if (s)
                session->restoreState(library.at(s).arch,
                                      library.at(s).timing);
            const ShardSpec &shard = plan[s];
            results[s] = runSliceRange(
                *session, config, shard.firstUnitIndex,
                shard.runsTail ? ~0ull : shard.unitCount,
                shard.runsTail);
        });
    }
    pool.wait();

    SmartsEstimate est;
    for (const SliceResult &slice : results)
        foldSlice(est, slice);
    return est;
}

} // namespace smarts::core
