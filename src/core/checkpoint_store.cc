#include "core/checkpoint_store.hh"

#include <atomic>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "util/logging.hh"

namespace smarts::core {

namespace fs = std::filesystem;

namespace {

/** Service subdirectories below the store root. */
constexpr const char *kPinsDir = ".pins";
constexpr const char *kTrashDir = ".trash";

/** Per-process uniquifier for internal pin owners + trash names. */
std::string
uniqueTag()
{
    static std::atomic<unsigned> serial{0};
    return log::format(::getpid(), ".",
                             serial.fetch_add(1));
}

/** Entry rel-path flattened to one marker-safe filename piece. */
std::string
stemOf(const std::string &rel)
{
    std::string stem = rel;
    for (char &c : stem)
        if (c == '/')
            c = '~';
    return stem;
}

} // namespace

void
StoreLease::release()
{
    if (markerPath_.empty())
        return;
    std::error_code ec;
    fs::remove(markerPath_, ec);
    markerPath_.clear();
    entryPath_.clear();
}

CheckpointStore::CheckpointStore(std::string root)
    : CheckpointStore(std::move(root), StoreOptions{})
{
}

CheckpointStore::CheckpointStore(std::string root,
                                 StoreOptions options)
    : root_(std::move(root)), options_(options)
{
    if (root_.empty())
        SMARTS_FATAL("checkpoint store needs a root directory");
}

std::string
CheckpointStore::pathFor(const LibraryKey &key) const
{
    return (fs::path(root_) / key.dirName() / key.fileName())
        .string();
}

std::string
CheckpointStore::livePointPathFor(const LibraryKey &key) const
{
    return (fs::path(root_) / key.dirName() /
            key.livePointFileName())
        .string();
}

std::string
CheckpointStore::relFor(const LibraryKey &key, bool livePoints) const
{
    return key.dirName() + "/" +
           (livePoints ? key.livePointFileName() : key.fileName());
}

std::string
CheckpointStore::indexPath() const
{
    return (fs::path(root_) / "store-index").string();
}

StoreIndex &
CheckpointStore::indexLocked() const
{
    if (index_)
        return *index_;

    std::error_code ec;
    fs::create_directories(root_, ec);

    // Sweep trash a crashed GC left behind: those files were
    // renamed off their entry paths, so nothing can load them.
    const fs::path trash = fs::path(root_) / kTrashDir;
    if (fs::exists(trash, ec))
        for (const fs::directory_entry &e :
             fs::directory_iterator(trash, ec))
            fs::remove(e.path(), ec);

    std::string error;
    if (std::optional<StoreIndex> loaded =
            StoreIndex::load(indexPath(), &error)) {
        index_ = std::move(*loaded);
        if (index_->wantsCompaction())
            index_->saveSnapshot(indexPath());
        return *index_;
    }

    const bool hadJournal = fs::exists(indexPath(), ec);
    if (hadJournal)
        SMARTS_WARN("checkpoint store: ", error,
                    "; rebuilding the index by directory scan");
    index_ = StoreIndex::rebuild(root_);
    if (hadJournal || index_->entryCount() > 0) {
        rebuilds_.fetch_add(1, std::memory_order_relaxed);
        std::string snapError;
        if (!index_->saveSnapshot(indexPath(), &snapError))
            SMARTS_WARN("checkpoint store: cannot snapshot rebuilt "
                        "index: ",
                        snapError);
    }
    return *index_;
}

bool
CheckpointStore::entryExists(const std::string &rel) const
{
    std::lock_guard<std::mutex> lock(mu_);
    StoreIndex &index = indexLocked();
    if (index.contains(rel))
        return true;
    // Index miss: ONE disk probe — another process may have
    // published since our journal view. Finding it installs the
    // entry so the next check is free; this is the only place a
    // lookup stats the world.
    statCalls_.fetch_add(1, std::memory_order_relaxed);
    std::error_code ec;
    const std::uint64_t bytes =
        fs::file_size(fs::path(root_) / rel, ec);
    if (ec)
        return false;
    index.noteAdd(rel, bytes);
    return true;
}

void
CheckpointStore::ensureDirFor(const std::string &path) const
{
    const fs::path parent = fs::path(path).parent_path();
    if (parent.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!ensuredDirs_.insert(parent.string()).second)
        return;
    std::error_code ec;
    fs::create_directories(parent, ec);
    dirEnsures_.fetch_add(1, std::memory_order_relaxed);
}

void
CheckpointStore::notePublish(const std::string &rel,
                             const std::string &path) const
{
    std::error_code ec;
    const std::uint64_t bytes = fs::file_size(path, ec);
    std::lock_guard<std::mutex> lock(mu_);
    StoreIndex &index = indexLocked();
    const std::uint64_t atime = index.noteAdd(rel, bytes);
    std::string error;
    if (!StoreIndex::appendRecord(indexPath(), StoreIndex::Op::Add,
                                  rel, bytes, atime, &error))
        SMARTS_WARN("checkpoint store: journal append failed: ",
                    error);
    saves_.fetch_add(1, std::memory_order_relaxed);
    if (options_.budgetBytes)
        gcLocked(nullptr);
    if (index.wantsCompaction())
        index.saveSnapshot(indexPath());
}

void
CheckpointStore::noteAccess(const std::string &rel) const
{
    std::lock_guard<std::mutex> lock(mu_);
    StoreIndex &index = indexLocked();
    const std::uint64_t atime = index.noteTouch(rel);
    if (atime == 0)
        return;
    touches_.fetch_add(1, std::memory_order_relaxed);
    StoreIndex::appendRecord(indexPath(), StoreIndex::Op::Touch,
                             rel, 0, atime);
}

void
CheckpointStore::noteVanished(const std::string &rel) const
{
    std::lock_guard<std::mutex> lock(mu_);
    StoreIndex &index = indexLocked();
    if (!index.contains(rel))
        return;
    index.noteRemove(rel);
    StoreIndex::appendRecord(indexPath(), StoreIndex::Op::Remove,
                             rel, 0, 0);
}

std::string
CheckpointStore::markerFor(const std::string &rel,
                           const std::string &owner) const
{
    return (fs::path(root_) / kPinsDir /
            (stemOf(rel) + "." + owner + ".pin"))
        .string();
}

bool
CheckpointStore::isPinned(const std::string &rel) const
{
    const std::string prefix = stemOf(rel) + ".";
    std::error_code ec;
    for (const fs::directory_entry &e : fs::directory_iterator(
             fs::path(root_) / kPinsDir, ec)) {
        const std::string name = e.path().filename().string();
        if (name.size() > prefix.size() + 4 &&
            name.compare(0, prefix.size(), prefix) == 0 &&
            name.compare(name.size() - 4, 4, ".pin") == 0)
            return true;
    }
    return false;
}

std::optional<StoreLease>
CheckpointStore::pin(const LibraryKey &key, bool livePoints,
                     const std::string &owner) const
{
    const std::string rel = relFor(key, livePoints);
    const std::string path =
        livePoints ? livePointPathFor(key) : pathFor(key);
    const std::string marker = markerFor(rel, owner);
    ensureDirFor(marker);

    // The distrib claim idiom: write a private temp, then
    // create_hard_link — an atomic create-exclusive, so exactly one
    // pin per (entry, owner) wins.
    const std::string tmp = marker + ".tmp." + uniqueTag();
    {
        std::ofstream out(tmp, std::ios::trunc);
        out << owner << "\n";
        if (!out)
            return std::nullopt;
    }
    std::error_code ec;
    fs::create_hard_link(tmp, marker, ec);
    std::error_code rmEc;
    fs::remove(tmp, rmEc);
    if (ec)
        return std::nullopt; // already held by this owner.

    // Marker first, THEN verify the entry file: GC checks markers
    // after its rename, so one of us is guaranteed to see the
    // other. An entry that is gone (or mid-eviction) refuses the
    // lease rather than protecting nothing.
    if (!fs::exists(path, ec) || ec) {
        fs::remove(marker, rmEc);
        return std::nullopt;
    }
    return StoreLease(marker, path);
}

std::uint64_t
CheckpointStore::touch(const LibraryKey &key, bool livePoints) const
{
    const std::string rel = relFor(key, livePoints);
    if (!entryExists(rel))
        return 0;
    std::lock_guard<std::mutex> lock(mu_);
    StoreIndex &index = indexLocked();
    const std::uint64_t atime = index.noteTouch(rel);
    if (atime != 0) {
        touches_.fetch_add(1, std::memory_order_relaxed);
        StoreIndex::appendRecord(indexPath(), StoreIndex::Op::Touch,
                                 rel, 0, atime);
    }
    return atime;
}

std::size_t
CheckpointStore::gc(std::string *error) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return gcLocked(error);
}

std::size_t
CheckpointStore::gcLocked(std::string *error) const
{
    StoreIndex &index = indexLocked();
    if (options_.budgetBytes == 0 ||
        index.totalBytes() <= options_.budgetBytes)
        return 0;
    gcRuns_.fetch_add(1, std::memory_order_relaxed);

    std::error_code ec;
    const fs::path trashDir = fs::path(root_) / kTrashDir;
    fs::create_directories(trashDir, ec);

    std::size_t evicted = 0;
    for (const auto &[rel, entry] : index.lruOrder()) {
        if (index.totalBytes() <= options_.budgetBytes)
            break;
        if (isPinned(rel)) {
            pinSkips_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        const fs::path src = fs::path(root_) / rel;
        const fs::path trash =
            trashDir / (stemOf(rel) + "." + uniqueTag());
        fs::rename(src, trash, ec);
        if (ec) {
            // Already gone (another process evicted, or the file
            // never landed): drop the stale index entry.
            index.noteRemove(rel);
            StoreIndex::appendRecord(indexPath(),
                                     StoreIndex::Op::Remove, rel, 0,
                                     0);
            continue;
        }
        if (isPinned(rel)) {
            // A pin landed between our check and the rename. The
            // pinner's verify may have already seen the entry
            // missing (it refuses the lease then), but if it holds
            // a lease the entry MUST survive: put it back.
            std::error_code backEc;
            fs::rename(trash, src, backEc);
            if (backEc && error)
                *error = log::format(
                    "cannot restore pinned ", rel, ": ",
                    backEc.message());
            pinSkips_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        fs::remove(trash, ec);
        ++evicted;
        evictions_.fetch_add(1, std::memory_order_relaxed);
        bytesEvicted_.fetch_add(entry.bytes,
                                std::memory_order_relaxed);
        index.noteRemove(rel);
        StoreIndex::appendRecord(indexPath(),
                                 StoreIndex::Op::Remove, rel, 0, 0);
    }
    return evicted;
}

std::uint64_t
CheckpointStore::totalBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return indexLocked().totalBytes();
}

StoreCounters
CheckpointStore::counters() const
{
    StoreCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.refusals = refusals_.load(std::memory_order_relaxed);
    c.saves = saves_.load(std::memory_order_relaxed);
    c.touches = touches_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.bytesEvicted = bytesEvicted_.load(std::memory_order_relaxed);
    c.statCalls = statCalls_.load(std::memory_order_relaxed);
    c.dirEnsures = dirEnsures_.load(std::memory_order_relaxed);
    c.pinSkips = pinSkips_.load(std::memory_order_relaxed);
    c.rebuilds = rebuilds_.load(std::memory_order_relaxed);
    c.gcRuns = gcRuns_.load(std::memory_order_relaxed);
    return c;
}

bool
CheckpointStore::contains(const LibraryKey &key) const
{
    return entryExists(relFor(key, /*livePoints=*/false));
}

std::optional<CheckpointLibrary>
CheckpointStore::tryLoad(const LibraryKey &key,
                         std::string *error) const
{
    if (error)
        error->clear();
    const std::string rel = relFor(key, /*livePoints=*/false);
    const std::string path = pathFor(key);
    if (!entryExists(rel)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt; // plain miss, no diagnostic.
    }

    // Pin while reading so concurrent GC leaves the bytes alone; a
    // refused lease means the entry vanished under us — that is a
    // clean miss, not a refusal.
    std::optional<StoreLease> lease =
        pin(key, /*livePoints=*/false, "ld" + uniqueTag());
    if (!lease) {
        noteVanished(rel);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    std::optional<CheckpointLibrary> library =
        CheckpointLibrary::load(path, key, error);
    if (library) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        noteAccess(rel);
        return library;
    }
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        // Evicted between the pin race and the open: clean miss.
        if (error)
            error->clear();
        noteVanished(rel);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    refusals_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

bool
CheckpointStore::save(const LibraryKey &key,
                      const CheckpointLibrary &library,
                      std::string *error) const
{
    if (!library.complete()) {
        if (error)
            *error = "library is incomplete (capture ended before "
                     "every shard boundary)";
        return false;
    }
    const std::string path = pathFor(key);
    ensureDirFor(path);
    if (!library.save(key, path, error, /*createDirs=*/false))
        return false;
    notePublish(relFor(key, /*livePoints=*/false), path);
    return true;
}

bool
CheckpointStore::loadEntry(
    const LibraryKey &key,
    const std::function<bool(const std::string &path,
                             std::string *error)> &loader,
    std::string *error) const
{
    if (error)
        error->clear();
    const std::string rel = relFor(key, /*livePoints=*/false);
    const std::string path = pathFor(key);
    if (!entryExists(rel)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false; // plain miss, no diagnostic.
    }

    // Pin while reading so concurrent GC leaves the bytes alone; a
    // refused lease means the entry vanished under us — that is a
    // clean miss, not a refusal.
    std::optional<StoreLease> lease =
        pin(key, /*livePoints=*/false, "ld" + uniqueTag());
    if (!lease) {
        noteVanished(rel);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    if (loader(path, error)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        noteAccess(rel);
        return true;
    }
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        // Evicted between the pin race and the open: clean miss.
        if (error)
            error->clear();
        noteVanished(rel);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    refusals_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

bool
CheckpointStore::publishEntry(
    const LibraryKey &key,
    const std::function<bool(const std::string &path,
                             std::string *error)> &writer,
    std::string *error) const
{
    const std::string path = pathFor(key);
    ensureDirFor(path);
    if (!writer(path, error))
        return false;
    notePublish(relFor(key, /*livePoints=*/false), path);
    return true;
}

std::optional<LivePointLibrary>
CheckpointStore::tryLoadLivePoints(const LibraryKey &key,
                                   std::string *error) const
{
    if (error)
        error->clear();
    const std::string rel = relFor(key, /*livePoints=*/true);
    const std::string path = livePointPathFor(key);
    if (!entryExists(rel)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt; // plain miss, no diagnostic.
    }

    std::optional<StoreLease> lease =
        pin(key, /*livePoints=*/true, "ld" + uniqueTag());
    if (!lease) {
        noteVanished(rel);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    std::optional<LivePointLibrary> library =
        LivePointLibrary::load(path, key, error);
    if (library) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        noteAccess(rel);
        return library;
    }
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        if (error)
            error->clear();
        noteVanished(rel);
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    refusals_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
}

bool
CheckpointStore::saveLivePoints(const LivePointLibrary &library,
                                const LibraryKey &key,
                                std::string *error) const
{
    const std::string path = livePointPathFor(key);
    ensureDirFor(path);
    if (!library.save(key, path, error, /*createDirs=*/false))
        return false;
    notePublish(relFor(key, /*livePoints=*/true), path);
    return true;
}

std::size_t
CheckpointStore::ensure(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs,
    const SamplingConfig &sampling, std::uint64_t streamLength,
    std::size_t shards) const
{
    return ensureImpl(spec, configs, sampling,
                      CheckpointLibrary::planShards(
                          sampling, streamLength, shards),
                      /*requirePlanMatch=*/false);
}

std::size_t
CheckpointStore::ensure(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs,
    const SamplingConfig &sampling,
    const std::vector<ShardSpec> &plan) const
{
    return ensureImpl(spec, configs, sampling, plan,
                      /*requirePlanMatch=*/true);
}

std::size_t
CheckpointStore::ensureImpl(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs,
    const SamplingConfig &sampling,
    const std::vector<ShardSpec> &plan, bool requirePlanMatch) const
{
    // Collect the configs whose key is missing, deduplicating
    // geometry-equal configs (their warm state is identical, so one
    // captured library serves them all). "Present" means a library
    // that actually LOADS — a file that exists but refuses (stale
    // version, corruption) is a miss to recapture, or ensure()
    // would report configs as stored that nothing can resume — and,
    // when the caller pinned a plan, one captured under that exact
    // shard split.
    std::vector<const uarch::MachineConfig *> missing;
    std::vector<LibraryKey> missingKeys;
    for (const uarch::MachineConfig &config : configs) {
        const LibraryKey key = LibraryKey::of(spec, config, sampling);
        std::string error;
        if (std::optional<CheckpointLibrary> library =
                tryLoad(key, &error)) {
            if (!requirePlanMatch || library->plan() == plan)
                continue;
            SMARTS_WARN("checkpoint store: ", pathFor(key),
                        " holds a different shard plan; recapturing "
                        "with the required one");
        } else if (!error.empty()) {
            SMARTS_WARN("checkpoint store: recapturing (", error,
                        ")");
        }
        bool duplicate = false;
        for (const LibraryKey &seen : missingKeys)
            duplicate |= seen.geometryHash == key.geometryHash;
        if (duplicate)
            continue;
        missing.push_back(&config);
        missingKeys.push_back(key);
    }
    if (missing.empty())
        return 0;

    std::vector<uarch::MachineConfig> captureConfigs;
    captureConfigs.reserve(missing.size());
    for (const uarch::MachineConfig *config : missing)
        captureConfigs.push_back(*config);

    MultiSession session(spec, captureConfigs);
    const std::vector<CheckpointLibrary> libraries =
        CheckpointLibrary::buildMulti(session, sampling, plan);

    for (std::size_t i = 0; i < libraries.size(); ++i) {
        std::string error;
        if (!save(missingKeys[i], libraries[i], &error))
            SMARTS_FATAL("checkpoint store: cannot save ",
                         pathFor(missingKeys[i]), ": ", error);
    }
    return libraries.size();
}

std::size_t
CheckpointStore::ensureLivePoints(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs,
    const SamplingConfig &sampling) const
{
    // Same miss/dedup policy as ensureImpl: "present" means a
    // library that actually LOADS, and geometry-equal configs share
    // one capture.
    std::vector<const uarch::MachineConfig *> missing;
    std::vector<LibraryKey> missingKeys;
    for (const uarch::MachineConfig &config : configs) {
        const LibraryKey key = LibraryKey::of(spec, config, sampling);
        std::string error;
        if (tryLoadLivePoints(key, &error))
            continue;
        if (!error.empty())
            SMARTS_WARN("checkpoint store: recapturing live-points "
                        "(", error, ")");
        bool duplicate = false;
        for (const LibraryKey &seen : missingKeys)
            duplicate |= seen.geometryHash == key.geometryHash;
        if (duplicate)
            continue;
        missing.push_back(&config);
        missingKeys.push_back(key);
    }
    if (missing.empty())
        return 0;

    std::vector<uarch::MachineConfig> captureConfigs;
    captureConfigs.reserve(missing.size());
    for (const uarch::MachineConfig *config : missing)
        captureConfigs.push_back(*config);

    MultiSession session(spec, captureConfigs);
    const std::vector<LivePointLibrary> libraries =
        LivePointLibrary::buildMulti(session, sampling);

    for (std::size_t i = 0; i < libraries.size(); ++i) {
        std::string error;
        if (!saveLivePoints(libraries[i], missingKeys[i], &error))
            SMARTS_FATAL("checkpoint store: cannot save ",
                         livePointPathFor(missingKeys[i]), ": ",
                         error);
    }
    return libraries.size();
}

} // namespace smarts::core
