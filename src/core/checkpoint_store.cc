#include "core/checkpoint_store.hh"

#include <filesystem>

#include "util/logging.hh"

namespace smarts::core {

namespace fs = std::filesystem;

CheckpointStore::CheckpointStore(std::string root)
    : root_(std::move(root))
{
    if (root_.empty())
        SMARTS_FATAL("checkpoint store needs a root directory");
}

std::string
CheckpointStore::pathFor(const LibraryKey &key) const
{
    return (fs::path(root_) / key.dirName() / key.fileName())
        .string();
}

bool
CheckpointStore::contains(const LibraryKey &key) const
{
    std::error_code ec;
    return fs::exists(pathFor(key), ec);
}

std::optional<CheckpointLibrary>
CheckpointStore::tryLoad(const LibraryKey &key,
                         std::string *error) const
{
    if (error)
        error->clear();
    const std::string path = pathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return std::nullopt; // plain miss, no diagnostic.
    return CheckpointLibrary::load(path, key, error);
}

bool
CheckpointStore::save(const LibraryKey &key,
                      const CheckpointLibrary &library,
                      std::string *error) const
{
    if (!library.complete()) {
        if (error)
            *error = "library is incomplete (capture ended before "
                     "every shard boundary)";
        return false;
    }
    return library.save(key, pathFor(key), error);
}

std::size_t
CheckpointStore::ensure(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs,
    const SamplingConfig &sampling, std::uint64_t streamLength,
    std::size_t shards) const
{
    return ensureImpl(spec, configs, sampling,
                      CheckpointLibrary::planShards(
                          sampling, streamLength, shards),
                      /*requirePlanMatch=*/false);
}

std::size_t
CheckpointStore::ensure(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs,
    const SamplingConfig &sampling,
    const std::vector<ShardSpec> &plan) const
{
    return ensureImpl(spec, configs, sampling, plan,
                      /*requirePlanMatch=*/true);
}

std::size_t
CheckpointStore::ensureImpl(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs,
    const SamplingConfig &sampling,
    const std::vector<ShardSpec> &plan, bool requirePlanMatch) const
{
    // Collect the configs whose key is missing, deduplicating
    // geometry-equal configs (their warm state is identical, so one
    // captured library serves them all). "Present" means a library
    // that actually LOADS — a file that exists but refuses (stale
    // version, corruption) is a miss to recapture, or ensure()
    // would report configs as stored that nothing can resume — and,
    // when the caller pinned a plan, one captured under that exact
    // shard split.
    std::vector<const uarch::MachineConfig *> missing;
    std::vector<LibraryKey> missingKeys;
    for (const uarch::MachineConfig &config : configs) {
        const LibraryKey key = LibraryKey::of(spec, config, sampling);
        std::string error;
        if (std::optional<CheckpointLibrary> library =
                tryLoad(key, &error)) {
            if (!requirePlanMatch || library->plan() == plan)
                continue;
            SMARTS_WARN("checkpoint store: ", pathFor(key),
                        " holds a different shard plan; recapturing "
                        "with the required one");
        } else if (!error.empty()) {
            SMARTS_WARN("checkpoint store: recapturing (", error,
                        ")");
        }
        bool duplicate = false;
        for (const LibraryKey &seen : missingKeys)
            duplicate |= seen.geometryHash == key.geometryHash;
        if (duplicate)
            continue;
        missing.push_back(&config);
        missingKeys.push_back(key);
    }
    if (missing.empty())
        return 0;

    std::vector<uarch::MachineConfig> captureConfigs;
    captureConfigs.reserve(missing.size());
    for (const uarch::MachineConfig *config : missing)
        captureConfigs.push_back(*config);

    MultiSession session(spec, captureConfigs);
    const std::vector<CheckpointLibrary> libraries =
        CheckpointLibrary::buildMulti(session, sampling, plan);

    for (std::size_t i = 0; i < libraries.size(); ++i) {
        std::string error;
        if (!save(missingKeys[i], libraries[i], &error))
            SMARTS_FATAL("checkpoint store: cannot save ",
                         pathFor(missingKeys[i]), ": ", error);
    }
    return libraries.size();
}

std::string
CheckpointStore::livePointPathFor(const LibraryKey &key) const
{
    return (fs::path(root_) / key.dirName() /
            key.livePointFileName())
        .string();
}

std::optional<LivePointLibrary>
CheckpointStore::tryLoadLivePoints(const LibraryKey &key,
                                   std::string *error) const
{
    if (error)
        error->clear();
    const std::string path = livePointPathFor(key);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return std::nullopt; // plain miss, no diagnostic.
    return LivePointLibrary::load(path, key, error);
}

bool
CheckpointStore::saveLivePoints(const LivePointLibrary &library,
                                const LibraryKey &key,
                                std::string *error) const
{
    return library.save(key, livePointPathFor(key), error);
}

std::size_t
CheckpointStore::ensureLivePoints(
    const workloads::BenchmarkSpec &spec,
    const std::vector<uarch::MachineConfig> &configs,
    const SamplingConfig &sampling) const
{
    // Same miss/dedup policy as ensureImpl: "present" means a
    // library that actually LOADS, and geometry-equal configs share
    // one capture.
    std::vector<const uarch::MachineConfig *> missing;
    std::vector<LibraryKey> missingKeys;
    for (const uarch::MachineConfig &config : configs) {
        const LibraryKey key = LibraryKey::of(spec, config, sampling);
        std::string error;
        if (tryLoadLivePoints(key, &error))
            continue;
        if (!error.empty())
            SMARTS_WARN("checkpoint store: recapturing live-points "
                        "(", error, ")");
        bool duplicate = false;
        for (const LibraryKey &seen : missingKeys)
            duplicate |= seen.geometryHash == key.geometryHash;
        if (duplicate)
            continue;
        missing.push_back(&config);
        missingKeys.push_back(key);
    }
    if (missing.empty())
        return 0;

    std::vector<uarch::MachineConfig> captureConfigs;
    captureConfigs.reserve(missing.size());
    for (const uarch::MachineConfig *config : missing)
        captureConfigs.push_back(*config);

    MultiSession session(spec, captureConfigs);
    const std::vector<LivePointLibrary> libraries =
        LivePointLibrary::buildMulti(session, sampling);

    for (std::size_t i = 0; i < libraries.size(); ++i) {
        std::string error;
        if (!saveLivePoints(libraries[i], missingKeys[i], &error))
            SMARTS_FATAL("checkpoint store: cannot save ",
                         livePointPathFor(missingKeys[i]), ": ",
                         error);
    }
    return libraries.size();
}

} // namespace smarts::core
