#include "core/reference.hh"

#include "core/session.hh"
#include "stats/online_stats.hh"
#include "util/logging.hh"

namespace smarts::core {

double
cvAtUnitSize(const ReferenceResult &ref, std::uint64_t unitSize)
{
    if (!unitSize || ref.chunkCycles.empty())
        return 0.0;
    const std::uint64_t group =
        std::max<std::uint64_t>(1, unitSize / ref.chunkSize);

    stats::OnlineStats perUnit;
    const std::uint64_t complete = ref.chunkCycles.size() / group;
    for (std::uint64_t g = 0; g < complete; ++g) {
        double cycles = 0;
        for (std::uint64_t i = 0; i < group; ++i)
            cycles += ref.chunkCycles[g * group + i];
        perUnit.add(cycles /
                    static_cast<double>(group * ref.chunkSize));
    }
    return perUnit.count() >= 2 ? perUnit.cv() : 0.0;
}

ReferenceRunner::ReferenceRunner(workloads::Scale scale,
                                 const uarch::MachineConfig &config)
    : scale_(scale), config_(config)
{
}

const ReferenceResult &
ReferenceRunner::get(const workloads::BenchmarkSpec &spec)
{
    const auto found = cache_.find(spec.name);
    if (found != cache_.end())
        return found->second;

    workloads::BenchmarkSpec scaled = spec;
    scaled.scale = scale_;

    SimSession session(scaled, config_);
    ReferenceResult ref;
    ref.chunkSize = 10;

    double lastCycles = 0.0;
    while (!session.finished()) {
        const Segment seg = session.detailedRun(ref.chunkSize);
        if (!seg.instructions)
            break;
        if (seg.instructions == ref.chunkSize) {
            const double now = session.cycleCount();
            ref.chunkCycles.push_back(
                static_cast<float>(now - lastCycles));
            lastCycles = now;
        }
    }

    ref.instructions = session.instCount();
    ref.cycles = static_cast<std::uint64_t>(session.cycleCount());
    if (!ref.instructions)
        SMARTS_FATAL("reference run of '", spec.name,
                     "' executed no instructions");
    ref.cpi = session.cycleCount() /
              static_cast<double>(ref.instructions);
    ref.epi = session.energyCount() /
              static_cast<double>(ref.instructions);

    return cache_.emplace(spec.name, std::move(ref)).first->second;
}

} // namespace smarts::core
