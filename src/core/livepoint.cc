#include "core/livepoint.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <numeric>
#include <utility>

#include "exec/thread_pool.hh"
#include "util/delta_codec.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace smarts::core {

namespace {

/** File magic: 8 bytes, version-independent, distinct from .smck. */
constexpr char kMagic[8] = {'S', 'M', 'R', 'T',
                            'L', 'V', 'P', 'T'};

/** Same probe as the v1 format (docs/checkpoint-format.md). */
constexpr std::uint32_t kEndianMark = 0x01020304u;

/**
 * The serial sampling schedule with state-equivalent warming, as in
 * the shard capture pass (core/checkpoint.cc), but snapping at EVERY
 * measured unit's iteration start — after the inter-unit gap is
 * fast-forwarded, before detailed warming — which is exactly where
 * the serial loop's state equals the capture pass's. After the last
 * unit the stream is run out so the caller learns the true dynamic
 * length. Works for SimSession and MultiSession: both expose the
 * same stepping surface.
 */
template <typename Session, typename Snap>
std::uint64_t
liveCaptureSchedule(Session &session, const SamplingConfig &config,
                    Snap &&snap)
{
    const std::uint64_t u = config.unitSize;
    const std::uint64_t w = config.detailedWarming;
    const std::uint64_t k = config.interval;
    if (!u || !k)
        SMARTS_FATAL("live-point capture needs nonzero unit size "
                     "and interval");

    std::uint64_t pos = session.instCount();
    std::uint64_t unitIdx = config.nextGridIndex(config.offset, pos);

    while (!session.finished()) {
        if (unitIdx > ~0ull / u)
            break;
        const std::uint64_t unitStart = unitIdx * u;
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;

        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos,
                                       config.warming);
            if (session.finished())
                break;
        }
        // The serial loop iterates this unit (possibly truncated):
        // snapshot its resume state.
        snap(unitIdx);

        if (unitStart > pos)
            pos += session.warmAsDetailed(unitStart - pos);
        pos += session.warmAsDetailed(u);
        unitIdx += k;
    }

    // Run out the tail so streamLength is the true benchmark length.
    while (!session.finished())
        session.fastForward(~0ull >> 1, config.warming);
    return session.instCount();
}

/** One unit's raw measurement, before deterministic folding. */
struct UnitSample
{
    UnitObservation obs{};
    bool hasObs = false;
    std::uint64_t measured = 0;
    std::uint64_t warmed = 0;
    std::uint64_t dropped = 0;
};

/**
 * Replay one live-point: restore, detailed-warm up to the unit
 * start, measure U — the serial loop's per-iteration body
 * (core/sampler.cc runSliceRange) starting from the snapshot, with
 * the identical accounting, truncation cases included.
 */
void
measureLivePoint(SimSession &session, const SamplingConfig &config,
                 const LivePoint &point, UnitSample &out)
{
    session.restoreState(point.arch, point.timing);
    const std::uint64_t u = config.unitSize;
    const std::uint64_t unitStart = point.unitIndex * u;
    std::uint64_t pos = point.position;

    out = UnitSample{};
    if (unitStart > pos) {
        const Segment warm = session.detailedRun(unitStart - pos);
        out.warmed = warm.instructions;
        pos += warm.instructions;
    }
    // When warming hit the end of the stream this runs on a finished
    // session and yields a zero segment — the serial loop broke
    // before measuring, and 0 dropped instructions matches it.
    const Segment seg = session.detailedRun(u);
    if (seg.instructions == u) {
        out.hasObs = true;
        out.obs = {static_cast<double>(seg.cycles) /
                       static_cast<double>(u),
                   seg.energyNj /
                       static_cast<double>(seg.instructions)};
        out.measured = u;
    } else {
        out.dropped = seg.instructions;
    }
}

/** Raw serialized state of one live-point (the delta chain's unit). */
std::vector<std::uint8_t>
rawStateOf(const LivePoint &point)
{
    util::BinaryWriter raw;
    point.arch.write(raw);
    point.timing.write(raw);
    return raw.buffer();
}

// The anytime stop rule, factored so the warm path (runAnytime,
// which evaluates it WHILE measuring) and the leapfrog cold path
// (which REPLAYS it over the complete sample set) share the exact
// arithmetic — bit-identical decisions are what make the two paths
// report the same AnytimeResult.

/** Seeded Fisher-Yates measurement order: pure function of (seed, n). */
std::vector<std::uint32_t>
shuffledOrder(std::size_t n, std::uint64_t seed)
{
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    Xoshiro256StarStar rng(seed);
    for (std::size_t i = n; i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);
    return order;
}

/** The batch-boundary confidence test of the anytime estimator. */
bool
anytimeTargetMet(const stats::OnlineStats &shuffled,
                 const AnytimeOptions &options)
{
    return options.target.epsilon > 0.0 &&
           shuffled.count() >= options.minUnits &&
           stats::confidenceHalfWidth(shuffled.cv(), shuffled.count(),
                                      options.target.level) <=
               options.target.epsilon;
}

/**
 * Deterministic fold: replay the taken units' observations in
 * STREAM order through the accumulators — replay, never
 * OnlineStats::merge (Chan's merge rounds differently), so a
 * completed run equals the serial run() byte for byte.
 */
template <typename Samples>
AnytimeResult
foldAnytime(const Samples &samples,
            const std::vector<std::uint32_t> &order,
            std::size_t processed, std::uint64_t streamLength)
{
    const std::size_t n = order.size();
    std::vector<bool> taken(n, false);
    for (std::size_t i = 0; i < processed; ++i)
        taken[order[i]] = true;

    AnytimeResult result;
    SmartsEstimate &est = result.estimate;
    for (std::size_t i = 0; i < n; ++i) {
        if (!taken[i])
            continue;
        const UnitSample &sample = samples[i];
        if (sample.hasObs) {
            est.cpiStats.add(sample.obs.cpi);
            est.epiStats.add(sample.obs.epi);
        }
        est.instructionsMeasured += sample.measured;
        est.instructionsWarmed += sample.warmed;
        est.instructionsDropped += sample.dropped;
    }
    est.streamLength = streamLength;
    result.unitsAvailable = n;
    result.unitsMeasured = processed;
    result.earlyStopped = processed < n;
    return result;
}

} // namespace

LivePointLibrary
LivePointLibrary::build(SimSession &session,
                        const SamplingConfig &config)
{
    return build(session, config, PointSink{});
}

LivePointLibrary
LivePointLibrary::build(SimSession &session,
                        const SamplingConfig &config,
                        const PointSink &sink)
{
    LivePointLibrary library;
    library.config_ = config;
    library.streamLength_ = liveCaptureSchedule(
        session, config, [&](std::uint64_t unitIdx) {
            LivePoint point;
            session.saveState(point.arch, point.timing);
            point.position = session.instCount();
            point.unitIndex = unitIdx;
            library.points_.push_back(std::move(point));
            if (sink)
                sink(library.points_.size() - 1,
                     library.points_.back());
        });
    return library;
}

std::vector<LivePointLibrary>
LivePointLibrary::buildMulti(MultiSession &session,
                             const SamplingConfig &config)
{
    std::vector<LivePointLibrary> libraries(session.configCount());
    for (LivePointLibrary &library : libraries)
        library.config_ = config;

    ArchState arch;
    std::vector<TimingState> timings;
    const std::uint64_t length = liveCaptureSchedule(
        session, config, [&](std::uint64_t unitIdx) {
            // One architectural snapshot, one timing snapshot per
            // config: library c gets exactly the live-point a
            // single-config capture of config c would have taken.
            session.saveState(arch, timings);
            for (std::size_t c = 0; c < libraries.size(); ++c) {
                LivePoint point;
                point.arch = arch;
                point.timing = std::move(timings[c]);
                point.position = session.instCount();
                point.unitIndex = unitIdx;
                libraries[c].points_.push_back(std::move(point));
            }
        });
    for (LivePointLibrary &library : libraries)
        library.streamLength_ = length;
    return libraries;
}

void
LivePointLibrary::serialize(const LibraryKey &key,
                            util::BinaryWriter &out) const
{
    for (const char c : kMagic)
        out.u8(static_cast<std::uint8_t>(c));
    out.u32(kLivePointFormatVersion);
    out.u32(kEndianMark);
    out.u8(kCheckpointFlavorSolo);
    key.write(out);

    out.u64(streamLength_);
    out.u64(points_.size());
    std::vector<std::uint8_t> prev;
    for (const LivePoint &point : points_) {
        const std::vector<std::uint8_t> raw = rawStateOf(point);
        out.u64(point.unitIndex);
        out.u64(point.position);
        // Checksum of the DECODED state: corruption anywhere in the
        // delta chain is pinned to the record where it breaks.
        out.u64(util::fnv1a(raw.data(), raw.size()));
        out.vecU8(util::deltaEncode(prev, raw));
        prev = raw;
    }
}

bool
LivePointLibrary::save(const LibraryKey &key, const std::string &path,
                       std::string *error, bool createDirs) const
{
    util::BinaryWriter out;
    serialize(key, out);
    return out.writeFile(path, error, createDirs);
}

std::optional<LivePointLibrary>
LivePointLibrary::load(const std::string &path,
                       const LibraryKey &expect, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));

    for (const char c : kMagic)
        if (in.u8() != static_cast<std::uint8_t>(c))
            return refuse(log::format(
                path, " is not a smarts live-point library"));
    // v2 files (no flavor byte, always solo state) still load: the
    // same migration policy as checkpoint v1→v2.
    const std::uint32_t version = in.u32();
    if (version != 2 && version != kLivePointFormatVersion)
        return refuse(log::format(
            path, " is format version ", version,
            "; this build reads versions 2 and ",
            kLivePointFormatVersion));
    if (in.u32() != kEndianMark)
        return refuse(log::format(path,
                                  " has a bad endianness marker"));
    if (version >= 3) {
        const std::uint8_t flavor = in.u8();
        if (flavor != kCheckpointFlavorSolo)
            return refuse(log::format(
                path, " holds flavor-", flavor,
                " (co-run mix) live-points, which no reader "
                "implements yet (the flavor is reserved)"));
    }

    const LibraryKey stored = LibraryKey::read(in);
    const std::string mismatch = expect.mismatchAgainst(stored);
    if (!mismatch.empty())
        return refuse(log::format(path, ": ", mismatch));
    if (!stored.sampling.unitSize || !stored.sampling.interval)
        return refuse(log::format(
            path, " is corrupt (zero unit size or interval)"));

    LivePointLibrary library;
    library.config_ = stored.sampling;
    library.streamLength_ = in.u64();
    const std::uint64_t count = in.u64();
    // An absurd count means a corrupt length field the checksum
    // somehow missed; bound it by what the payload could hold.
    if (in.failed() || count > in.remaining())
        return refuse(log::format(
            path, " is corrupt (live-point count ", count, ")"));

    library.points_.resize(count);
    std::vector<std::uint8_t> prev;
    for (std::uint64_t i = 0; i < count; ++i) {
        LivePoint &point = library.points_[i];
        point.unitIndex = in.u64();
        point.position = in.u64();
        const std::uint64_t checksum = in.u64();
        const std::vector<std::uint8_t> delta = in.vecU8();
        if (in.failed())
            return refuse(log::format(
                path, " is truncated or has trailing garbage"));

        std::string deltaError;
        const auto raw = util::deltaDecode(prev, delta, &deltaError);
        if (!raw)
            return refuse(log::format(path, " is corrupt (live-point ",
                                      i, ": ", deltaError, ")"));
        if (util::fnv1a(raw->data(), raw->size()) != checksum)
            return refuse(log::format(
                path, " is corrupt (live-point ", i,
                " fails its state checksum)"));

        util::BinaryReader state(*raw);
        point.arch.read(state);
        point.timing.read(state);
        if (state.failed() || state.remaining() != 0)
            return refuse(log::format(
                path, " is corrupt (live-point ", i,
                " has a malformed state)"));

        // The grid is implied by the key: record i resumes unit
        // offset + i*k, at or before the unit's start, positions
        // nondecreasing. A well-checksummed file with records off
        // the grid would MIS-MEASURE instead of failing loudly.
        const std::uint64_t wantIdx =
            stored.sampling.offset + i * stored.sampling.interval;
        const bool onGrid =
            point.unitIndex == wantIdx &&
            point.unitIndex <= ~0ull / stored.sampling.unitSize &&
            point.position <=
                point.unitIndex * stored.sampling.unitSize &&
            (i == 0 ||
             point.position >= library.points_[i - 1].position) &&
            point.position <= library.streamLength_;
        if (!onGrid)
            return refuse(log::format(
                path, " is corrupt (live-point ", i,
                " is off the sampling grid)"));
        prev = *raw;
    }
    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(
            path, " is truncated or has trailing garbage"));
    return library;
}

AnytimeResult
SystematicSampler::runAnytime(const SessionFactory &factory,
                              const LivePointLibrary &library,
                              exec::ThreadPool &pool,
                              const AnytimeOptions &options) const
{
    if (!factory)
        SMARTS_FATAL("runAnytime needs a session factory");
    const SamplingConfig &built = library.samplingConfig();
    if (built.unitSize != config_.unitSize ||
        built.detailedWarming != config_.detailedWarming ||
        built.interval != config_.interval ||
        built.offset != config_.offset ||
        built.warming != config_.warming)
        SMARTS_FATAL("live-point library was built for a different "
                     "sampling design");

    const std::size_t n = library.unitCount();

    // Seeded Fisher-Yates: the measurement order is a pure function
    // of (seed, n), so a rerun — on any machine, at any thread
    // count — measures the identical unit sequence.
    const std::vector<std::uint32_t> order =
        shuffledOrder(n, options.seed);

    const SamplingConfig config = config_;
    const std::uint64_t batch = options.batch ? options.batch : 1;
    const std::uint64_t chunk = options.chunk ? options.chunk : 1;

    std::vector<UnitSample> samples(n);
    stats::OnlineStats shuffled; // CPI in shuffle order: stop rule only.
    std::size_t processed = 0;
    bool stopped = false;

    while (processed < n && !stopped) {
        const std::size_t end =
            std::min<std::size_t>(n, processed + batch);
        // Each chunk job owns one session and writes only its own
        // units' slots; pool.wait() publishes them all, so the batch
        // is bit-identical at any thread count.
        for (std::size_t c = processed; c < end; c += chunk) {
            const std::size_t cEnd =
                std::min<std::size_t>(end, c + chunk);
            pool.submit([&samples, &order, &library, &factory, config,
                         c, cEnd] {
                std::unique_ptr<SimSession> session = factory();
                for (std::size_t i = c; i < cEnd; ++i)
                    measureLivePoint(*session, config,
                                     library.at(order[i]),
                                     samples[order[i]]);
            });
        }
        pool.wait();

        // The stop rule sees observations in SHUFFLE order — the
        // randomized order is what makes the prefix an unbiased
        // sample of the unit population at every cut point.
        for (std::size_t i = processed; i < end; ++i) {
            const UnitSample &sample = samples[order[i]];
            if (sample.hasObs)
                shuffled.add(sample.obs.cpi);
        }
        processed = end;

        if (anytimeTargetMet(shuffled, options))
            stopped = true;
    }

    return foldAnytime(samples, order, processed,
                       library.streamLength());
}

AnytimeResult
SystematicSampler::runAnytimeLeapfrog(SimSession &captureSession,
                                      const SessionFactory &factory,
                                      exec::ThreadPool &pool,
                                      const AnytimeOptions &options,
                                      LivePointLibrary *collect) const
{
    if (!factory)
        SMARTS_FATAL("runAnytimeLeapfrog needs a session factory");

    const SamplingConfig config = config_;
    const std::uint64_t chunk = options.chunk ? options.chunk : 1;

    // Sample slots live in a deque: push_back never moves existing
    // elements, so the capture thread keeps appending while pool
    // jobs write through the stable slot pointers they were handed.
    // Jobs never touch the container itself.
    std::deque<UnitSample> samples;
    std::vector<LivePoint> pendingPoints;
    std::vector<UnitSample *> pendingSlots;

    auto flush = [&] {
        if (pendingPoints.empty())
            return;
        auto points = std::make_shared<std::vector<LivePoint>>(
            std::move(pendingPoints));
        auto slots = std::make_shared<std::vector<UnitSample *>>(
            std::move(pendingSlots));
        pendingPoints.clear();
        pendingSlots.clear();
        pool.submit([points, slots, &factory, config] {
            std::unique_ptr<SimSession> session = factory();
            for (std::size_t i = 0; i < points->size(); ++i)
                measureLivePoint(*session, config, (*points)[i],
                                 *(*slots)[i]);
        });
    };

    // Capture on this thread; every chunk of fresh live-points is
    // handed to the pool the moment it exists, so measurement of
    // unit m overlaps functional warming toward unit m+chunk — the
    // leapfrog. The sink copies each point: capture moves on and
    // the library's own storage may relocate under further appends.
    LivePointLibrary library = LivePointLibrary::build(
        captureSession, config_,
        [&](std::size_t, const LivePoint &point) {
            samples.emplace_back();
            pendingPoints.push_back(point);
            pendingSlots.push_back(&samples.back());
            if (pendingPoints.size() >= chunk)
                flush();
        });
    flush();
    pool.wait();

    // Stop-rule replay over the complete sample set: the identical
    // shuffle, batch boundaries and streaming-CI arithmetic the
    // warm path applies while measuring — the per-unit values are
    // the same, so every accept/stop decision lands on the same
    // batch and the reported AnytimeResult matches a warm
    // runAnytime bit for bit.
    const std::size_t n = samples.size();
    const std::vector<std::uint32_t> order =
        shuffledOrder(n, options.seed);
    const std::uint64_t batch = options.batch ? options.batch : 1;
    stats::OnlineStats shuffled;
    std::size_t processed = 0;
    bool stopped = false;
    while (processed < n && !stopped) {
        const std::size_t end =
            std::min<std::size_t>(n, processed + batch);
        for (std::size_t i = processed; i < end; ++i) {
            const UnitSample &sample = samples[order[i]];
            if (sample.hasObs)
                shuffled.add(sample.obs.cpi);
        }
        processed = end;
        if (anytimeTargetMet(shuffled, options))
            stopped = true;
    }

    AnytimeResult result =
        foldAnytime(samples, order, processed, library.streamLength());
    if (collect)
        *collect = std::move(library);
    return result;
}

SliceResult
SystematicSampler::measureUnits(SimSession &session,
                                const LivePointLibrary &library,
                                std::uint64_t firstUnit,
                                std::uint64_t unitCount,
                                const ProgressTick &tick) const
{
    const SamplingConfig &built = library.samplingConfig();
    if (built.unitSize != config_.unitSize ||
        built.detailedWarming != config_.detailedWarming ||
        built.interval != config_.interval ||
        built.offset != config_.offset ||
        built.warming != config_.warming)
        SMARTS_FATAL("live-point library was built for a different "
                     "sampling design");
    if (firstUnit + unitCount > library.unitCount())
        SMARTS_FATAL("unit range [", firstUnit, ", +", unitCount,
                     ") exceeds the library's ",
                     library.unitCount(), " live-points");

    // Slots in ascending order ARE stream order, so the accumulated
    // slice folds exactly like a shard slice: stream-order replay,
    // bit-identical to the serial loop over the same units.
    SliceResult r;
    for (std::uint64_t i = firstUnit; i < firstUnit + unitCount;
         ++i) {
        UnitSample sample;
        measureLivePoint(session, config_, library.at(i), sample);
        if (sample.hasObs)
            r.obs.push_back(sample.obs);
        r.measured += sample.measured;
        r.warmed += sample.warmed;
        r.dropped += sample.dropped;
        if (tick && !tick())
            break; // abandoned: partial, not publishable.
    }
    r.endPos = library.streamLength();
    return r;
}

} // namespace smarts::core
