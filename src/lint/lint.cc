/**
 * @file
 * Implementation of the smarts_lint contract checks (lint/lint.hh).
 *
 * The analysis is deliberately lexical: sources are loaded, comments
 * and string/char literals are blanked out (so tokens inside them
 * never match), and each check pattern-matches the repo's own
 * serializer/load/fold idioms. That keeps the linter dependency-free
 * and fast enough to run as an ordinary ctest, at the cost of being
 * a contract checker for THIS codebase rather than a general C++
 * front end. Each check documents the idiom it assumes.
 */

#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace smarts::lint {

namespace fs = std::filesystem;

namespace {

constexpr const char *kChecks[] = {
    "no-unordered-iteration",
    "no-ambient-nondeterminism",
    "serializer-completeness",
    "checksum-before-use",
    "float-fold-discipline",
};

/** Meta "check" for malformed suppressions and I/O failures. */
constexpr const char *kMetaCheck = "suppression";

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Find @p word in @p text at or after @p from with identifier
 * boundaries on both sides (so "time" never matches inside
 * "last_write_time"). Returns std::string::npos when absent.
 */
std::size_t
findWord(const std::string &text, const std::string &word,
         std::size_t from = 0)
{
    for (std::size_t pos = text.find(word, from);
         pos != std::string::npos; pos = text.find(word, pos + 1)) {
        const bool leftOk = pos == 0 || !isIdentChar(text[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool rightOk =
            end >= text.size() || !isIdentChar(text[end]);
        if (leftOk && rightOk)
            return pos;
    }
    return std::string::npos;
}

std::size_t
skipSpaces(const std::string &text, std::size_t pos)
{
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    return pos;
}

/**
 * Given @p pos at an opening delimiter, return the offset just past
 * its balanced closer, or npos if the text ends first. Works for
 * (), {}, [] and — counting only the delimiter pair — <>.
 */
std::size_t
skipBalanced(const std::string &text, std::size_t pos, char open,
             char close)
{
    int depth = 0;
    for (; pos < text.size(); ++pos) {
        if (text[pos] == open)
            ++depth;
        else if (text[pos] == close && --depth == 0)
            return pos + 1;
    }
    return std::string::npos;
}

/** Last identifier token in @p text, or "" when there is none. */
std::string
lastIdentifier(const std::string &text)
{
    std::string last, current;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (isIdentStart(text[i])) {
            current.clear();
            while (i < text.size() && isIdentChar(text[i]))
                current += text[i++];
            last = current;
        }
    }
    return last;
}

/** Identifier ending at @p end (exclusive), skipping )/] groups. */
std::string
identifierBefore(const std::string &text, std::size_t end)
{
    std::size_t i = end;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(text[i - 1])))
        --i;
    // Skip one trailing index/call group: "buf[set] +=" resolves to
    // buf, "f().x +=" is out of scope for this lexical pass.
    if (i > 0 && (text[i - 1] == ']' || text[i - 1] == ')')) {
        const char close = text[i - 1];
        const char open = close == ']' ? '[' : '(';
        int depth = 0;
        while (i > 0) {
            --i;
            if (text[i] == close)
                ++depth;
            else if (text[i] == open && --depth == 0)
                break;
        }
        while (i > 0 &&
               std::isspace(static_cast<unsigned char>(text[i - 1])))
            --i;
    }
    std::size_t stop = i;
    while (i > 0 && isIdentChar(text[i - 1]))
        --i;
    return text.substr(i, stop - i);
}

/** Blank the contents of every <...> group (templates) in place. */
std::string
blankAngles(std::string text)
{
    int depth = 0;
    for (char &c : text) {
        if (c == '<') {
            ++depth;
            c = ' ';
        } else if (c == '>') {
            if (depth > 0)
                depth = 0 < --depth ? depth : 0;
            c = ' ';
        } else if (depth > 0) {
            c = ' ';
        }
    }
    return text;
}

struct Suppression
{
    std::set<std::string> checks;
    bool used = false;
};

struct SourceFile
{
    std::string path; ///< normalized to forward slashes.
    std::string code; ///< comments + literals blanked, same layout.
    std::string mask; ///< 'c' where a comment was, else ' '.
    std::vector<std::size_t> lineStart; ///< offset of line i+1.
    std::map<int, Suppression> allowAt; ///< covered line -> checks.
    bool mergePath = false; ///< file opted into float-fold scope.
    std::vector<Diagnostic> metaDiags;

    int
    lineOf(std::size_t offset) const
    {
        const auto it = std::upper_bound(lineStart.begin(),
                                         lineStart.end(), offset);
        return static_cast<int>(it - lineStart.begin());
    }

    std::string
    lineText(int line, const std::string &text) const
    {
        if (line < 1 || line > static_cast<int>(lineStart.size()))
            return {};
        const std::size_t begin = lineStart[line - 1];
        const std::size_t end =
            line < static_cast<int>(lineStart.size())
                ? lineStart[line]
                : text.size();
        return text.substr(begin, end - begin);
    }
};

/**
 * Replace comments and string/char literal contents with spaces so
 * later pattern matching only ever sees code. Newlines survive, so
 * offsets and line numbers are shared between raw and code views.
 * @p mask records which bytes were comment text ('c'): suppression
 * directives are only honored inside comments, so a string literal
 * that happens to contain "smarts-lint:" (this linter's own source,
 * say) never becomes a directive.
 */
std::string
blankCommentsAndLiterals(const std::string &raw, std::string &mask)
{
    std::string out = raw;
    mask.assign(raw.size(), ' ');
    enum class State { Code, Line, Block, Str, Chr } state = State::Code;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::Line;
                out[i] = ' ';
                mask[i] = 'c';
            } else if (c == '/' && next == '*') {
                state = State::Block;
                out[i] = ' ';
                mask[i] = 'c';
            } else if (c == '"') {
                state = State::Str;
            } else if (c == '\'') {
                state = State::Chr;
            }
            break;
          case State::Line:
            mask[i] = 'c';
            if (c == '\n')
                state = State::Code;
            else
                out[i] = ' ';
            break;
          case State::Block:
            mask[i] = 'c';
            if (c == '*' && next == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                mask[i + 1] = 'c';
                ++i;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Str:
          case State::Chr:
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if ((state == State::Str && c == '"') ||
                       (state == State::Chr && c == '\'')) {
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

/**
 * Parse the suppression directives out of @p raw. A directive on a
 * line that also holds code covers that line; a directive on a
 * comment-only line covers the next line that holds code. The
 * justification is whatever trails the closing paren — and it is
 * mandatory: contracts may be excepted, but never silently.
 */
void
parseSuppressions(SourceFile &file, const std::string &raw)
{
    const std::string tag = "smarts-lint:";
    std::size_t pos = 0;
    while ((pos = raw.find(tag, pos)) != std::string::npos) {
        // Only comments hold directives; the tag inside a string
        // literal (or code) is just bytes.
        if (pos >= file.mask.size() || file.mask[pos] != 'c') {
            pos += tag.size();
            continue;
        }
        const int tagLine = file.lineOf(pos);
        std::size_t cursor = skipSpaces(raw, pos + tag.size());
        if (raw.compare(cursor, 10, "merge-path") == 0) {
            file.mergePath = true;
            pos = cursor;
            continue;
        }
        if (raw.compare(cursor, 6, "allow(") != 0) {
            // Not a directive — prose that happens to mention the
            // tag (documentation, this very comment).
            pos = cursor;
            continue;
        }
        const std::size_t open = cursor + 5;
        const std::size_t close = raw.find(')', open);
        if (close == std::string::npos) {
            file.metaDiags.push_back({kMetaCheck, file.path, tagLine,
                                      "unterminated allow(...)"});
            break;
        }

        // Comma-separated check list inside the parens. A <check>
        // placeholder marks documentation ABOUT the syntax, not a
        // directive — skip the whole occurrence silently.
        const std::string inside =
            raw.substr(open + 1, close - open - 1);
        if (inside.find('<') != std::string::npos) {
            pos = close;
            continue;
        }
        std::set<std::string> checks;
        std::stringstream list(inside);
        std::string item;
        while (std::getline(list, item, ',')) {
            const std::size_t b = item.find_first_not_of(" \t");
            const std::size_t e = item.find_last_not_of(" \t");
            if (b == std::string::npos)
                continue;
            item = item.substr(b, e - b + 1);
            if (!knownCheck(item) || item == kMetaCheck)
                file.metaDiags.push_back(
                    {kMetaCheck, file.path, tagLine,
                     "allow() names unknown check '" + item + "'"});
            else
                checks.insert(item);
        }

        // The justification: text after ')' to end of line.
        std::size_t eol = raw.find('\n', close);
        if (eol == std::string::npos)
            eol = raw.size();
        std::string reason = raw.substr(close + 1, eol - close - 1);
        while (!reason.empty() &&
               (reason.back() == ' ' || reason.back() == '\t' ||
                reason.back() == '/' || reason.back() == '*'))
            reason.pop_back();
        const std::size_t b = reason.find_first_not_of(" \t-:");
        if (b == std::string::npos) {
            file.metaDiags.push_back(
                {kMetaCheck, file.path, tagLine,
                 "suppression without a justification (state WHY "
                 "this site may break the contract)"});
        }

        // Covered line: this one if it holds code, else the next
        // line that does.
        int covered = tagLine;
        const int lines = static_cast<int>(file.lineStart.size());
        auto holdsCode = [&](int line) {
            const std::string text = file.lineText(line, file.code);
            return text.find_first_not_of(" \t\n\r") !=
                   std::string::npos;
        };
        if (!holdsCode(tagLine)) {
            covered = 0;
            for (int line = tagLine + 1; line <= lines; ++line) {
                if (holdsCode(line)) {
                    covered = line;
                    break;
                }
            }
        }
        if (covered) {
            Suppression &s = file.allowAt[covered];
            s.checks.insert(checks.begin(), checks.end());
        }
        pos = close;
    }
}

bool
pathContains(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

/**
 * The directories whose iteration order feeds estimates or
 * serialized bytes (no-unordered-iteration scope).
 */
bool
inDeterministicScope(const std::string &path)
{
    return pathContains(path, "/core/") ||
           pathContains(path, "/stats/") ||
           pathContains(path, "/mem/") ||
           pathContains(path, "/bpred/") ||
           pathContains(path, "/distrib/");
}

/** Files whose loads decode persisted bytes (checksum-before-use). */
bool
inLoadScope(const std::string &path)
{
    return pathContains(path, "checkpoint") ||
           pathContains(path, "livepoint") ||
           pathContains(path, "persist") ||
           pathContains(path, "store_index") ||
           pathContains(path, "/distrib/");
}

/** Files on a parallel merge/fold path (float-fold-discipline). */
bool
inMergeScope(const SourceFile &file)
{
    return file.mergePath ||
           pathContains(file.path, "core/sampler") ||
           pathContains(file.path, "core/multi_session") ||
           pathContains(file.path, "core/procedure") ||
           pathContains(file.path, "core/livepoint") ||
           pathContains(file.path, "/stats/") ||
           pathContains(file.path, "/distrib/");
}

/** A struct field and where it is declared. */
struct Field
{
    std::string name;
    int line = 0;
};

/** A struct that owns a write(BinaryWriter&) serializer. */
struct SerializedStruct
{
    std::string name;
    int line = 0;
    std::size_t fileIndex = 0;
    std::vector<Field> fields;
    bool hasWrite = false;
    bool hasRead = false;
    std::string writeBody; ///< empty when defined out of class.
    std::string readBody;
    std::size_t writeBodyOffset = 0; ///< offset of body in file code.
    std::size_t readBodyOffset = 0;
    int readLine = 0; ///< anchor for order-mismatch diagnostics.
};

/** An out-of-class Name::write / Name::read definition. */
struct ExternalBody
{
    std::string body;
    std::size_t fileIndex = 0;
    std::size_t offset = 0;
};

class Linter
{
  public:
    explicit Linter(const Options &options) : options_(options) {}

    Report
    run(const std::vector<std::string> &paths)
    {
        for (const std::string &path : paths)
            loadFile(path);
        for (SourceFile &file : files_)
            for (Diagnostic &d : file.metaDiags)
                if (checkEnabled(kMetaCheck))
                    report_.diagnostics.push_back(std::move(d));

        if (checkEnabled("serializer-completeness"))
            for (std::size_t i = 0; i < files_.size(); ++i)
                indexExternalBodies(i);

        for (std::size_t i = 0; i < files_.size(); ++i) {
            SourceFile &file = files_[i];
            if (checkEnabled("no-unordered-iteration") &&
                inDeterministicScope(file.path))
                checkUnorderedIteration(file);
            if (checkEnabled("no-ambient-nondeterminism"))
                checkAmbientNondeterminism(file);
            if (checkEnabled("serializer-completeness"))
                checkSerializers(i);
            if (checkEnabled("checksum-before-use") &&
                inLoadScope(file.path))
                checkChecksumBeforeUse(file);
            if (checkEnabled("float-fold-discipline") &&
                inMergeScope(file))
                checkFloatFold(file);
        }

        std::sort(report_.diagnostics.begin(),
                  report_.diagnostics.end(),
                  [](const Diagnostic &a, const Diagnostic &b) {
                      if (a.file != b.file)
                          return a.file < b.file;
                      if (a.line != b.line)
                          return a.line < b.line;
                      return a.check < b.check;
                  });
        report_.filesScanned = static_cast<int>(files_.size());
        return std::move(report_);
    }

  private:
    bool
    checkEnabled(const std::string &name) const
    {
        for (const std::string &off : options_.disabled)
            if (off == name)
                return false;
        if (options_.enabled.empty())
            return true;
        if (name == kMetaCheck)
            return true; // meta diagnostics ride with any selection.
        for (const std::string &on : options_.enabled)
            if (on == name)
                return true;
        return false;
    }

    void
    loadFile(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        std::string normalized = path;
        std::replace(normalized.begin(), normalized.end(), '\\', '/');
        if (!in) {
            report_.diagnostics.push_back(
                {kMetaCheck, normalized, 0, "cannot open file"});
            return;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string raw = buffer.str();

        SourceFile file;
        file.path = normalized;
        file.lineStart.push_back(0);
        for (std::size_t i = 0; i < raw.size(); ++i)
            if (raw[i] == '\n')
                file.lineStart.push_back(i + 1);
        file.code = blankCommentsAndLiterals(raw, file.mask);
        parseSuppressions(file, raw);
        files_.push_back(std::move(file));
    }

    /** Emit unless an allow(<check>) covers the line. */
    void
    emit(SourceFile &file, const char *check, int line,
         std::string message)
    {
        const auto it = file.allowAt.find(line);
        if (it != file.allowAt.end() && it->second.checks.count(check)) {
            it->second.used = true;
            ++report_.suppressionsHonored;
            return;
        }
        report_.diagnostics.push_back(
            {check, file.path, line, std::move(message)});
    }

    // ------------------------------------------------------------
    // Check 1: no-unordered-iteration.
    //
    // Idiom assumed: unordered containers are declared inline
    // (std::unordered_map<...> name / std::unordered_set<...> name)
    // in the file that iterates them. Both range-for over such a
    // name and explicit .begin()/.end() iterator walks are flagged:
    // hash-table iteration order is implementation-defined, so any
    // estimate or serialized byte derived from it breaks the
    // bit-identical-merge contract.
    // ------------------------------------------------------------
    void
    checkUnorderedIteration(SourceFile &file)
    {
        const std::string &code = file.code;
        std::set<std::string> names;
        for (const char *kind : {"unordered_map", "unordered_set"}) {
            for (std::size_t pos = findWord(code, kind);
                 pos != std::string::npos;
                 pos = findWord(code, kind, pos + 1)) {
                std::size_t i = skipSpaces(code, pos + std::string(kind).size());
                if (i < code.size() && code[i] == '<') {
                    i = skipBalanced(code, i, '<', '>');
                    if (i == std::string::npos)
                        break;
                }
                i = skipSpaces(code, i);
                while (i < code.size() &&
                       (code[i] == '&' || code[i] == '*'))
                    i = skipSpaces(code, i + 1);
                std::string name;
                while (i < code.size() && isIdentChar(code[i]))
                    name += code[i++];
                if (!name.empty())
                    names.insert(name);
            }
        }
        if (names.empty())
            return;

        // Range-for whose range expression mentions a known name.
        for (std::size_t pos = findWord(code, "for");
             pos != std::string::npos;
             pos = findWord(code, "for", pos + 1)) {
            const std::size_t open = skipSpaces(code, pos + 3);
            if (open >= code.size() || code[open] != '(')
                continue;
            const std::size_t end =
                skipBalanced(code, open, '(', ')');
            if (end == std::string::npos)
                continue;
            const std::string header =
                code.substr(open + 1, end - open - 2);
            const std::size_t colon = header.find(':');
            if (colon == std::string::npos ||
                (colon + 1 < header.size() && header[colon + 1] == ':'))
                continue;
            const std::string range = header.substr(colon + 1);
            for (const std::string &name : names) {
                if (findWord(range, name) == std::string::npos)
                    continue;
                emit(file, "no-unordered-iteration", file.lineOf(pos),
                     "range-for over unordered container '" + name +
                         "': hash iteration order is "
                         "implementation-defined and would poison "
                         "estimates/serialized output; iterate a "
                         "sorted copy or an ordered container");
                break;
            }
        }

        // Explicit iterator walks over a known name.
        for (const std::string &name : names) {
            for (std::size_t pos = findWord(code, name);
                 pos != std::string::npos;
                 pos = findWord(code, name, pos + 1)) {
                std::size_t i =
                    skipSpaces(code, pos + name.size());
                if (i >= code.size() || code[i] != '.')
                    continue;
                i = skipSpaces(code, i + 1);
                for (const char *it :
                     {"begin", "end", "cbegin", "cend"}) {
                    const std::string call(it);
                    if (code.compare(i, call.size(), call) == 0 &&
                        i + call.size() < code.size() &&
                        code[i + call.size()] == '(') {
                        emit(file, "no-unordered-iteration",
                             file.lineOf(pos),
                             "iterator walk over unordered "
                             "container '" + name +
                                 "': hash iteration order is "
                                 "implementation-defined on a "
                                 "determinism-critical path");
                        break;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------
    // Check 2: no-ambient-nondeterminism.
    //
    // Wall clocks, PRNG seeds from the environment, and environment
    // variables inject host state into what must be a pure function
    // of (benchmark, config, seed). Every hit needs a suppression
    // saying why it cannot reach an estimate or serialized byte.
    // ------------------------------------------------------------
    void
    checkAmbientNondeterminism(SourceFile &file)
    {
        const std::string &code = file.code;
        std::map<int, std::string> hits; // line -> joined labels.
        auto record = [&](std::size_t offset, const char *label) {
            std::string &labels = hits[file.lineOf(offset)];
            if (labels.find(label) != std::string::npos)
                return;
            if (!labels.empty())
                labels += ", ";
            labels += label;
        };

        for (std::size_t pos = code.find("std::chrono");
             pos != std::string::npos;
             pos = code.find("std::chrono", pos + 1))
            record(pos, "std::chrono");
        for (std::size_t pos = code.find("::now");
             pos != std::string::npos;
             pos = code.find("::now", pos + 1)) {
            const std::size_t call = skipSpaces(code, pos + 5);
            if (call < code.size() && code[call] == '(')
                record(pos, "clock read");
        }
        for (std::size_t pos = code.find("last_write_time");
             pos != std::string::npos;
             pos = code.find("last_write_time", pos + 1))
            record(pos, "file mtime");
        for (std::size_t pos = code.find("random_device");
             pos != std::string::npos;
             pos = code.find("random_device", pos + 1))
            record(pos, "std::random_device");
        for (const char *fn : {"rand", "srand", "time", "clock"}) {
            for (std::size_t pos = findWord(code, fn);
                 pos != std::string::npos;
                 pos = findWord(code, fn, pos + 1)) {
                const std::size_t call =
                    skipSpaces(code, pos + std::string(fn).size());
                if (call < code.size() && code[call] == '(')
                    record(pos, (std::string(fn) + "()").c_str());
            }
        }
        for (std::size_t pos = findWord(code, "getenv");
             pos != std::string::npos;
             pos = findWord(code, "getenv", pos + 1))
            record(pos, "getenv");

        // A multi-line chrono expression hits on every line it
        // spans; coalesce runs of adjacent lines into one
        // diagnostic (and one suppression site) at the first line.
        int groupLine = 0, prevLine = 0;
        std::string groupLabels;
        auto flush = [&]() {
            if (groupLine)
                emit(file, "no-ambient-nondeterminism", groupLine,
                     "ambient nondeterminism (" + groupLabels +
                         ") on a simulation path; results must be "
                         "a pure function of (benchmark, config, "
                         "seed) — if this site cannot reach an "
                         "estimate or a serialized byte, annotate "
                         "it with an allow() suppression saying "
                         "why");
        };
        for (const auto &[line, labels] : hits) {
            if (groupLine && line == prevLine + 1) {
                if (groupLabels.find(labels) == std::string::npos)
                    groupLabels += ", " + labels;
            } else {
                flush();
                groupLine = line;
                groupLabels = labels;
            }
            prevLine = line;
        }
        flush();
    }

    // ------------------------------------------------------------
    // Check 3: serializer-completeness.
    //
    // Idiom assumed: a checkpointable state struct declares its
    // fields and a write(util::BinaryWriter&) / read(BinaryReader&)
    // pair (in-class, or defined out of class as Name::write /
    // Name::read anywhere in the scanned file set; a static
    // read(BinaryReader&) factory also counts). Every field must
    // appear in both bodies, and fields must be touched in the same
    // order in write and read — the "forgot to serialize the new
    // field" bug class that makes format migrations dangerous.
    // ------------------------------------------------------------
    void
    indexExternalBodies(std::size_t fileIndex)
    {
        const std::string &code = files_[fileIndex].code;
        for (const char *method : {"write", "read"}) {
            for (std::size_t pos = findWord(code, method);
                 pos != std::string::npos;
                 pos = findWord(code, method, pos + 1)) {
                // Require a Qualifier:: immediately before.
                if (pos < 2 || code[pos - 1] != ':' ||
                    code[pos - 2] != ':')
                    continue;
                std::size_t q = pos - 2;
                while (q > 0 && isIdentChar(code[q - 1]))
                    --q;
                const std::string owner =
                    code.substr(q, pos - 2 - q);
                if (owner.empty())
                    continue;
                std::size_t i = skipSpaces(
                    code, pos + std::string(method).size());
                if (i >= code.size() || code[i] != '(')
                    continue;
                i = skipBalanced(code, i, '(', ')');
                if (i == std::string::npos)
                    continue;
                // Skip const/noexcept/etc. up to '{' (definition)
                // or bail at ';'/',' (a call or declaration).
                while (i < code.size()) {
                    i = skipSpaces(code, i);
                    if (i < code.size() && isIdentStart(code[i])) {
                        while (i < code.size() && isIdentChar(code[i]))
                            ++i;
                        continue;
                    }
                    break;
                }
                if (i >= code.size() || code[i] != '{')
                    continue;
                const std::size_t close =
                    skipBalanced(code, i, '{', '}');
                if (close == std::string::npos)
                    continue;
                ExternalBody body;
                body.body = code.substr(i, close - i);
                body.fileIndex = fileIndex;
                body.offset = i;
                external_[owner + "::" + method] = std::move(body);
            }
        }
    }

    void
    checkSerializers(std::size_t fileIndex)
    {
        SourceFile &file = files_[fileIndex];
        const std::string &code = file.code;
        for (const char *kind : {"struct", "class"}) {
            for (std::size_t pos = findWord(code, kind);
                 pos != std::string::npos;
                 pos = findWord(code, kind, pos + 1)) {
                // "enum struct/class" is a different beast.
                std::string before =
                    identifierBefore(code, pos);
                if (before == "enum")
                    continue;
                std::size_t i = skipSpaces(
                    code, pos + std::string(kind).size());
                std::string name;
                while (i < code.size() && isIdentChar(code[i]))
                    name += code[i++];
                if (name.empty())
                    continue;
                // Find the body '{', allowing a base-clause; bail
                // at ';' (forward declaration) or '(' (a cast or
                // function-style use).
                std::size_t open = std::string::npos;
                for (std::size_t j = i; j < code.size(); ++j) {
                    if (code[j] == '{') {
                        open = j;
                        break;
                    }
                    if (code[j] == ';' || code[j] == '(' ||
                        code[j] == ')' || code[j] == '=')
                        break;
                }
                if (open == std::string::npos)
                    continue;
                const std::size_t close =
                    skipBalanced(code, open, '{', '}');
                if (close == std::string::npos)
                    continue;
                analyzeStruct(fileIndex, name, file.lineOf(pos),
                              open + 1, close - 1);
                pos = open; // resume scan inside handled below.
            }
        }
    }

    void
    analyzeStruct(std::size_t fileIndex, const std::string &name,
                  int declLine, std::size_t bodyBegin,
                  std::size_t bodyEnd)
    {
        SourceFile &file = files_[fileIndex];
        const std::string &code = file.code;
        SerializedStruct info;
        info.name = name;
        info.line = declLine;
        info.fileIndex = fileIndex;

        std::size_t stmtStart = bodyBegin;
        std::size_t i = bodyBegin;
        int parens = 0;
        while (i < bodyEnd) {
            const char c = code[i];
            if (c == '(') {
                ++parens;
            } else if (c == ')') {
                --parens;
            } else if (c == '{' && parens == 0) {
                std::string stmt =
                    code.substr(stmtStart, i - stmtStart);
                const std::size_t end =
                    skipBalanced(code, i, '{', '}');
                if (end == std::string::npos || end > bodyEnd + 1)
                    return; // malformed; refuse to guess.
                if (stmt.find('(') != std::string::npos) {
                    recordMethod(info, file, stmt, stmtStart,
                                 code.substr(i, end - i), i);
                    i = end;
                    stmtStart = i;
                    continue;
                }
                // Brace initializer inside a declaration
                // (std::array<...> regs{};): skip it, keep
                // accumulating until the ';'.
                i = end;
                continue;
            } else if (c == ';' && parens == 0) {
                std::string stmt =
                    code.substr(stmtStart, i - stmtStart);
                recordDeclaration(info, file, stmt, stmtStart);
                stmtStart = i + 1;
            }
            ++i;
        }

        if (!info.hasWrite)
            return;
        verifyStruct(info, file);
    }

    /** Handle an in-class method definition (body available). */
    void
    recordMethod(SerializedStruct &info, SourceFile &file,
                 const std::string &header, std::size_t headerOffset,
                 std::string body, std::size_t bodyOffset)
    {
        const std::size_t paren = header.find('(');
        if (paren == std::string::npos)
            return;
        const std::string name = identifierBefore(header, paren);
        const std::size_t close =
            skipBalanced(header, paren, '(', ')');
        const std::string params =
            close == std::string::npos
                ? header.substr(paren)
                : header.substr(paren, close - paren);
        if (name == "write" &&
            params.find("BinaryWriter") != std::string::npos) {
            info.hasWrite = true;
            info.writeBody = std::move(body);
            info.writeBodyOffset = bodyOffset;
        } else if (name == "read" &&
                   params.find("BinaryReader") != std::string::npos) {
            info.hasRead = true;
            info.readBody = std::move(body);
            info.readBodyOffset = bodyOffset;
            info.readLine = file.lineOf(headerOffset);
        }
    }

    /** Handle a ';'-terminated statement: field or method decl. */
    void
    recordDeclaration(SerializedStruct &info, SourceFile &file,
                      std::string stmt, std::size_t stmtOffset)
    {
        // Strip access labels that ride along in the statement.
        for (const char *label : {"public:", "private:", "protected:"}) {
            const std::size_t at = stmt.find(label);
            if (at != std::string::npos)
                stmt.erase(0, at + std::string(label).size());
        }
        const std::size_t paren = stmt.find('(');
        if (paren != std::string::npos) {
            // Method declaration (body elsewhere): note write/read.
            const std::string name = identifierBefore(stmt, paren);
            if (name == "write" &&
                stmt.find("BinaryWriter") != std::string::npos)
                info.hasWrite = true;
            else if (name == "read" &&
                     stmt.find("BinaryReader") != std::string::npos)
                info.hasRead = true;
            return;
        }
        std::string cleaned = blankAngles(stmt);
        const std::size_t eq = cleaned.find('=');
        if (eq != std::string::npos)
            cleaned.erase(eq);
        // First word rules out non-field statements.
        std::size_t w = skipSpaces(cleaned, 0);
        std::string first;
        while (w < cleaned.size() && isIdentChar(cleaned[w]))
            first += cleaned[w++];
        static const std::set<std::string> kNotFields = {
            "using", "typedef", "friend", "static", "enum",
            "struct", "class", "template", "", "constexpr",
        };
        if (kNotFields.count(first))
            return;
        // A declaration needs a type AND a declarator: require at
        // least two identifier tokens ("mem::HierarchyState mem" has
        // three; a stray label remnant has one).
        int tokens = 0;
        for (std::size_t t = 0; t < cleaned.size(); ++t) {
            if (!isIdentStart(cleaned[t]))
                continue;
            ++tokens;
            while (t < cleaned.size() && isIdentChar(cleaned[t]))
                ++t;
        }
        const std::string name = lastIdentifier(cleaned);
        if (name.empty() || tokens < 2)
            return;
        // Anchor the field at the first code character of its
        // statement so a suppression above the declaration works.
        info.fields.push_back(
            {name,
             file.lineOf(firstCodeOffset(code(info), stmtOffset))});
    }

    const std::string &
    code(const SerializedStruct &info) const
    {
        return files_[info.fileIndex].code;
    }

    static std::size_t
    firstCodeOffset(const std::string &code, std::size_t from)
    {
        const std::size_t at =
            code.find_first_not_of(" \t\n\r", from);
        return at == std::string::npos ? from : at;
    }

    void
    verifyStruct(SerializedStruct &info, SourceFile &file)
    {
        // Resolve out-of-class bodies (LibraryKey::write lives in
        // checkpoint.cc while the struct lives in checkpoint.hh).
        if (info.writeBody.empty()) {
            const auto it = external_.find(info.name + "::write");
            if (it == external_.end())
                return; // definition outside the scanned set.
            info.writeBody = it->second.body;
        }
        if (!info.hasRead) {
            emit(file, "serializer-completeness", info.line,
                 "struct " + info.name +
                     " has write(BinaryWriter&) but no "
                     "read(BinaryReader&): checkpoints it writes "
                     "can never be loaded back");
            return;
        }
        if (info.readBody.empty()) {
            const auto it = external_.find(info.name + "::read");
            if (it == external_.end())
                return;
            info.readBody = it->second.body;
            info.readLine = info.line;
        }
        if (info.readLine == 0)
            info.readLine = info.line;

        struct Placed
        {
            const Field *field;
            std::size_t writeAt;
            std::size_t readAt;
        };
        std::vector<Placed> placed;
        for (const Field &field : info.fields) {
            // A field-level allow() exempts intentionally
            // unserialized members (caches, derived values).
            const auto at = file.allowAt.find(field.line);
            if (at != file.allowAt.end() &&
                at->second.checks.count("serializer-completeness")) {
                at->second.used = true;
                ++report_.suppressionsHonored;
                continue;
            }
            const std::size_t w =
                findWord(info.writeBody, field.name);
            const std::size_t r =
                findWord(info.readBody, field.name);
            if (w == std::string::npos)
                emit(file, "serializer-completeness", field.line,
                     "field '" + field.name + "' of " + info.name +
                         " is never written in " + info.name +
                         "::write — a checkpoint round-trip "
                         "silently drops it");
            if (r == std::string::npos)
                emit(file, "serializer-completeness", field.line,
                     "field '" + field.name + "' of " + info.name +
                         " is never read in " + info.name +
                         "::read — restored state keeps a stale "
                         "value");
            if (w != std::string::npos && r != std::string::npos)
                placed.push_back({&field, w, r});
        }

        std::vector<Placed> byWrite = placed, byRead = placed;
        std::sort(byWrite.begin(), byWrite.end(),
                  [](const Placed &a, const Placed &b) {
                      return a.writeAt < b.writeAt;
                  });
        std::sort(byRead.begin(), byRead.end(),
                  [](const Placed &a, const Placed &b) {
                      return a.readAt < b.readAt;
                  });
        for (std::size_t i = 0; i < byWrite.size(); ++i) {
            if (byWrite[i].field->name == byRead[i].field->name)
                continue;
            auto order = [](const std::vector<Placed> &seq) {
                std::string out;
                for (const Placed &p : seq) {
                    if (!out.empty())
                        out += ", ";
                    out += p.field->name;
                }
                return out;
            };
            emit(file, "serializer-completeness", info.readLine,
                 info.name + "::write and " + info.name +
                     "::read touch fields in different orders "
                     "(write: " + order(byWrite) + "; read: " +
                     order(byRead) +
                     ") — the byte stream will be decoded "
                     "misaligned");
            break;
        }
    }

    // ------------------------------------------------------------
    // Check 4: checksum-before-use.
    //
    // Idiom assumed: load paths go through BinaryReader::fromFile
    // (whole-file FNV checksum), then magic/version validation,
    // before any payload field is decoded. A load-like function
    // (load*/tryLoad*) must reach a validation token — fromFile,
    // readMagic, kMagic, fnv1a, a checksum compare — or delegate to
    // another load function BEFORE its first payload decode
    // (in.u32()/.str()/.read()/decodeDelta).
    // ------------------------------------------------------------
    void
    checkChecksumBeforeUse(SourceFile &file)
    {
        const std::string &code = file.code;
        std::size_t searchFrom = 0;
        while (searchFrom < code.size()) {
            // Next load-like identifier.
            std::size_t best = std::string::npos;
            for (const char *stem : {"load", "tryLoad", "Load"}) {
                for (std::size_t pos = code.find(stem, searchFrom);
                     pos != std::string::npos;
                     pos = code.find(stem, pos + 1)) {
                    // Identifier must START here ("payload" must
                    // not match at its inner "load").
                    if (pos > 0 && isIdentChar(code[pos - 1]))
                        continue;
                    if (pos < best)
                        best = pos;
                    break;
                }
            }
            if (best == std::string::npos)
                return;
            searchFrom = best + 1;

            // Full identifier, then require a definition: name(
            // ... ) [tokens] { — calls end in ';', ',' or ')'.
            std::size_t i = best;
            while (i < code.size() && isIdentChar(code[i]))
                ++i;
            std::size_t open = skipSpaces(code, i);
            if (open >= code.size() || code[open] != '(')
                continue;
            std::size_t after = skipBalanced(code, open, '(', ')');
            if (after == std::string::npos)
                continue;
            while (after < code.size()) {
                after = skipSpaces(code, after);
                if (after < code.size() && isIdentStart(code[after])) {
                    while (after < code.size() &&
                           isIdentChar(code[after]))
                        ++after;
                    continue;
                }
                break;
            }
            if (after >= code.size() || code[after] != '{')
                continue;
            const std::size_t close =
                skipBalanced(code, after, '{', '}');
            if (close == std::string::npos)
                continue;
            const std::string body =
                code.substr(after, close - after);
            analyzeLoadBody(file, code.substr(best, i - best),
                            best, after, body);
            searchFrom = close;
        }
    }

    void
    analyzeLoadBody(SourceFile &file, const std::string &name,
                    std::size_t nameOffset, std::size_t bodyOffset,
                    const std::string &body)
    {
        auto firstOf = [&](const std::vector<std::string> &tokens) {
            std::size_t first = std::string::npos;
            for (const std::string &token : tokens) {
                const std::size_t at = body.find(token);
                if (at != std::string::npos && at < first)
                    first = at;
            }
            return first;
        };
        std::size_t validate = firstOf(
            {"fromFile", "readMagic", "kMagic", "fnv1a", "checksum",
             "Checksum", "verifyMagic"});
        // Delegating to another load-like function inherits its
        // validation (CheckpointStore::tryLoad forwards to
        // CheckpointLibrary::load, which does the real ladder).
        for (const char *stem : {"load", "tryLoad", "Load"}) {
            for (std::size_t pos = body.find(stem, 1);
                 pos != std::string::npos;
                 pos = body.find(stem, pos + 1)) {
                if (isIdentChar(body[pos - 1]))
                    continue;
                std::size_t j = pos;
                while (j < body.size() && isIdentChar(body[j]))
                    ++j;
                j = skipSpaces(body, j);
                if (j < body.size() && body[j] == '(' &&
                    pos < validate)
                    validate = pos;
            }
        }
        const std::size_t decode = firstOf(
            {".u8(", ".u16(", ".u32(", ".u64(", ".f64(", ".str(",
             ".vecU8(", ".vecU32(", ".vecU64(", ".read(",
             "decodeDelta"});
        if (decode == std::string::npos)
            return; // nothing decoded, nothing to protect.
        if (validate == std::string::npos) {
            emit(file, "checksum-before-use",
                 file.lineOf(nameOffset),
                 "load path '" + name +
                     "' decodes persisted bytes without any "
                     "checksum/magic validation — a truncated or "
                     "corrupt file would be trusted");
            return;
        }
        if (decode < validate)
            emit(file, "checksum-before-use",
                 file.lineOf(bodyOffset + decode),
                 "load path '" + name +
                     "' decodes payload before its first "
                     "checksum/magic validation — validate the "
                     "buffer, then parse it");
    }

    // ------------------------------------------------------------
    // Check 5: float-fold-discipline.
    //
    // Floating-point addition is not associative, so a bare
    // double accumulation on a parallel merge path would make the
    // estimate depend on shard/thread/claim order. Folds must go
    // through stats::OnlineStats (merged in deterministic stream
    // order), SystematicSampler::foldSlice, or the 48.16 fixed-
    // point accumulators (names ending in Fx).
    // ------------------------------------------------------------
    void
    checkFloatFold(SourceFile &file)
    {
        const std::string &code = file.code;
        std::set<std::string> doubles;
        for (std::size_t pos = findWord(code, "double");
             pos != std::string::npos;
             pos = findWord(code, "double", pos + 1)) {
            std::size_t i = skipSpaces(code, pos + 6);
            while (i < code.size() &&
                   (code[i] == '&' || code[i] == '*'))
                i = skipSpaces(code, i + 1);
            std::string name;
            while (i < code.size() && isIdentChar(code[i]))
                name += code[i++];
            if (!name.empty() && name != "const")
                doubles.insert(name);
        }

        for (std::size_t pos = code.find("+=");
             pos != std::string::npos;
             pos = code.find("+=", pos + 2)) {
            const std::string target = identifierBefore(code, pos);
            if (target.empty() || !doubles.count(target))
                continue;
            if (target.size() > 2 &&
                target.compare(target.size() - 2, 2, "Fx") == 0)
                continue; // 48.16 fixed-point accumulator.
            emit(file, "float-fold-discipline", file.lineOf(pos),
                 "bare double accumulation '" + target +
                     " +=' on a parallel merge path — float "
                     "addition is not associative, so the result "
                     "depends on fold order; route it through "
                     "stats::OnlineStats / foldSlice or 48.16 "
                     "fixed point");
        }
        for (std::size_t pos = code.find("std::accumulate");
             pos != std::string::npos;
             pos = code.find("std::accumulate", pos + 1))
            emit(file, "float-fold-discipline", file.lineOf(pos),
                 "std::accumulate on a parallel merge path — use "
                 "stats::OnlineStats / foldSlice (or fixed point) "
                 "so the fold is offset-invariant");
    }

    Options options_;
    Report report_;
    std::vector<SourceFile> files_;
    std::map<std::string, ExternalBody> external_;
};

} // namespace

const std::vector<std::string> &
checkNames()
{
    static const std::vector<std::string> names(std::begin(kChecks),
                                                std::end(kChecks));
    return names;
}

bool
knownCheck(const std::string &name)
{
    if (name == kMetaCheck)
        return true;
    const auto &names = checkNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

bool
collectTreeSources(const std::string &root,
                   std::vector<std::string> &paths, std::string *error)
{
    bool any = false;
    for (const char *dir : {"include", "src"}) {
        const fs::path base = fs::path(root) / dir;
        std::error_code ec;
        if (!fs::is_directory(base, ec))
            continue;
        any = true;
        for (fs::recursive_directory_iterator it(base, ec), end;
             it != end && !ec; it.increment(ec)) {
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext == ".hh" || ext == ".cc" || ext == ".hpp" ||
                ext == ".cpp" || ext == ".h")
                paths.push_back(it->path().string());
        }
    }
    if (!any) {
        if (error)
            *error = "no include/ or src/ directory under " + root;
        return false;
    }
    std::sort(paths.begin(), paths.end());
    return true;
}

Report
lintFiles(const std::vector<std::string> &paths,
          const Options &options)
{
    return Linter(options).run(paths);
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream out;
    out << d.file << ":" << d.line << ": [" << d.check << "] "
        << d.message;
    return out.str();
}

} // namespace smarts::lint
