#include "mp/mix_library.hh"

#include "util/logging.hh"

namespace smarts::mp {

namespace {

/**
 * The stream ending before every boundary means the plan's
 * streamLength was overstated; fail with a clear message rather
 * than mid-pool when a shard restores an empty snapshot.
 */
void
requireComplete(const MixLibrary &library,
                const std::vector<core::ShardSpec> &plan)
{
    for (std::size_t s = 1; s < plan.size(); ++s)
        if (library.at(s).state.archs.empty())
            SMARTS_FATAL("mix stream ended before the checkpoint "
                         "for shard ", s, " (round ",
                         plan[s].resumePos,
                         ") — was streamLength overstated?");
}

} // namespace

void
MixLibrary::capture(MixSession &session,
                    const core::SamplingConfig &config,
                    const std::vector<core::ShardSpec> &plan,
                    const CheckpointSink &sink)
{
    core::detail::captureSchedule(
        session, config, plan, [&](std::size_t s) {
            MixCheckpoint cp;
            session.saveState(cp.state);
            cp.position = session.roundCount();
            cp.unitIndex = plan[s].firstUnitIndex;
            sink(s, std::move(cp));
        });
}

MixLibrary
MixLibrary::prepare(const core::SamplingConfig &config,
                    const std::vector<core::ShardSpec> &plan)
{
    MixLibrary library;
    library.config_ = config;
    library.plan_ = plan;
    library.checkpoints_.resize(plan.size());
    return library;
}

MixLibrary
MixLibrary::build(MixSession &session,
                  const core::SamplingConfig &config,
                  const std::vector<core::ShardSpec> &plan)
{
    MixLibrary library = prepare(config, plan);
    capture(session, config, plan,
            [&library](std::size_t s, MixCheckpoint &&cp) {
                library.checkpoints_[s] = std::move(cp);
            });
    requireComplete(library, plan);
    return library;
}

void
MixLibrary::serialize(const WorkloadMix &mix,
                      const core::LibraryKey &key,
                      util::BinaryWriter &out) const
{
    for (const char c : core::kCheckpointMagic)
        out.u8(static_cast<std::uint8_t>(c));
    out.u32(core::kCheckpointFormatVersion);
    out.u32(core::kCheckpointEndianMark);
    out.u8(core::kCheckpointFlavorMix);

    // The mix identity block: the co-run state depends on EVERY
    // program's stream and on the partition policy, so both are part
    // of what a loader must match before resuming.
    out.u8(static_cast<std::uint8_t>(mix.policy));
    out.u32(static_cast<std::uint32_t>(mix.programs.size()));
    for (const workloads::BenchmarkSpec &spec : mix.programs) {
        out.str(spec.name);
        out.u32(static_cast<std::uint32_t>(spec.kernel));
        out.u32(spec.variant);
        out.u64(spec.seed);
        out.u32(static_cast<std::uint32_t>(spec.scale));
    }
    key.write(out);

    out.u64(plan_.size());
    for (const core::ShardSpec &shard : plan_) {
        out.u64(shard.firstUnitIndex);
        out.u64(shard.unitCount);
        out.u64(shard.resumePos);
        out.u8(shard.runsTail ? 1 : 0);
    }
    out.u64(checkpoints_.size());
    for (std::size_t s = 0; s < checkpoints_.size(); ++s) {
        // Slot 0 resumes at round 0 and carries no state.
        const bool present = s > 0;
        out.u8(present ? 1 : 0);
        if (present)
            checkpoints_[s].write(out);
    }
}

bool
MixLibrary::save(const WorkloadMix &mix, const core::LibraryKey &key,
                 const std::string &path, std::string *error,
                 bool createDirs) const
{
    util::BinaryWriter out;
    serialize(mix, key, out);
    return out.writeFile(path, error, createDirs);
}

std::optional<MixLibrary>
MixLibrary::load(const std::string &path,
                 const WorkloadMix &expectMix,
                 const core::LibraryKey &expect, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));

    for (const char c : core::kCheckpointMagic)
        if (in.u8() != static_cast<std::uint8_t>(c))
            return refuse(log::format(
                path, " is not a smarts checkpoint library"));
    // Flavored payloads only exist from v2 on; a v1 file is always
    // solo state, so refuse it here by construction.
    const std::uint32_t version = in.u32();
    if (version != core::kCheckpointFormatVersion)
        return refuse(log::format(
            path, " is format version ", version,
            "; mix libraries exist only in version ",
            core::kCheckpointFormatVersion));
    if (in.u32() != core::kCheckpointEndianMark)
        return refuse(log::format(path,
                                  " has a bad endianness marker"));
    const std::uint8_t flavor = in.u8();
    if (flavor != core::kCheckpointFlavorMix)
        return refuse(log::format(
            path, " holds flavor-", flavor,
            " (solo) state; load it through "
            "core::CheckpointLibrary, not the mix loader"));

    const auto policy = static_cast<mem::PartitionPolicy>(in.u8());
    const std::uint32_t programCount = in.u32();
    if (in.failed() || programCount > in.remaining())
        return refuse(log::format(
            path, " is corrupt (program count ", programCount, ")"));
    if (policy != expectMix.policy ||
        programCount != expectMix.programs.size())
        return refuse(log::format(
            path, ": mix mismatch (file: ", programCount,
            " programs, policy ",
            mem::partitionPolicyName(policy), "; expected: ",
            expectMix.programs.size(), " programs, policy ",
            mem::partitionPolicyName(expectMix.policy), ")"));
    for (std::uint32_t p = 0; p < programCount; ++p) {
        workloads::BenchmarkSpec spec;
        spec.name = in.str();
        spec.kernel = static_cast<workloads::Kernel>(in.u32());
        spec.variant = in.u32();
        spec.seed = in.u64();
        spec.scale = static_cast<workloads::Scale>(in.u32());
        const workloads::BenchmarkSpec &want = expectMix.programs[p];
        if (spec.name != want.name || spec.kernel != want.kernel ||
            spec.variant != want.variant || spec.seed != want.seed ||
            spec.scale != want.scale)
            return refuse(log::format(
                path, ": mix mismatch (program ", p, " is ",
                spec.name, ", expected ", want.name, ")"));
    }

    const core::LibraryKey stored = core::LibraryKey::read(in);
    const std::string mismatch = expect.mismatchAgainst(stored);
    if (!mismatch.empty())
        return refuse(log::format(path, ": ", mismatch));

    MixLibrary library;
    library.config_ = stored.sampling;
    const std::uint64_t shardCount = in.u64();
    // An absurd count means a corrupt length field the checksum
    // somehow missed; bound it by what the payload could hold.
    if (shardCount > in.remaining())
        return refuse(log::format(path, " is corrupt (shard count ",
                                  shardCount, ")"));
    library.plan_.resize(shardCount);
    for (core::ShardSpec &shard : library.plan_) {
        shard.firstUnitIndex = in.u64();
        shard.unitCount = in.u64();
        shard.resumePos = in.u64();
        shard.runsTail = in.u8() != 0;
    }
    // Same honesty bar as the solo loader: the plan must be one
    // planShards could have produced, or executing it would
    // MIS-MEASURE instead of refusing.
    {
        const std::string planError =
            core::CheckpointLibrary::validatePlan(stored.sampling,
                                                  library.plan_);
        if (!planError.empty())
            return refuse(log::format(path, " is corrupt (",
                                      planError, ")"));
    }
    const std::uint64_t cpCount = in.u64();
    if (cpCount != shardCount)
        return refuse(log::format(
            path, " is corrupt (", cpCount, " checkpoints for ",
            shardCount, " shards)"));
    library.checkpoints_.resize(shardCount);
    for (std::size_t s = 0; s < shardCount; ++s) {
        const bool present = in.u8() != 0;
        if (present == (s == 0))
            return refuse(log::format(
                path, " is corrupt (checkpoint ", s,
                present ? " unexpectedly present" : " missing"));
        if (present)
            library.checkpoints_[s].read(in);
    }
    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(
            path, " is truncated or has trailing garbage"));
    for (std::size_t s = 1; s < shardCount; ++s) {
        const MixCheckpoint &cp = library.checkpoints_[s];
        if (cp.position != library.plan_[s].resumePos ||
            cp.unitIndex != library.plan_[s].firstUnitIndex)
            return refuse(log::format(
                path, " is corrupt (checkpoint ", s,
                " disagrees with its shard plan)"));
        if (cp.state.archs.size() != programCount ||
            cp.state.lanes.size() != programCount)
            return refuse(log::format(
                path, " is corrupt (checkpoint ", s, " carries ",
                cp.state.archs.size(), " programs for a ",
                programCount, "-program mix)"));
    }
    return library;
}

} // namespace smarts::mp
