#include "mp/mix_session.hh"

#include <cmath>

#include "util/logging.hh"

namespace smarts::mp {

MixSession::MixSession(const WorkloadMix &mix,
                       const uarch::MachineConfig &config)
    : config_(config),
      shared_(config.mem,
              static_cast<std::uint32_t>(mix.programs.size()),
              mix.policy)
{
    if (mix.programs.empty())
        SMARTS_FATAL("a workload mix needs at least one program");
    cores_.reserve(mix.programs.size());
    lanes_.reserve(mix.programs.size());
    for (const workloads::BenchmarkSpec &spec : mix.programs) {
        cores_.emplace_back(spec);
        lanes_.emplace_back(config.bpred);
    }

    fetchLineShift_ = 0;
    while ((1u << fetchLineShift_) < config_.mem.l1i.lineBytes)
        ++fetchLineShift_;

    // The exact per-event increments TimingModel precomputes: the
    // solo world's accounting must replay a solo TimingModel bit
    // for bit (tests/test_shared_mem.cc pins the one-program case).
    invWidthFx_ = toFixed(1.0 / config.width);
    loadStallFx_ = toFixed(config.loadStallFactor);
    storeStallFx_ = toFixed(config.storeStallFactor);
    mispredictFx_ = static_cast<std::uint64_t>(config.pipelineDepth)
                    << core::TimingModel::kFixedShift;
    ePerInstFx_ = toFixed(config.energy.perInst);
    ePerCycleFx_ = toFixed(config.energy.perCycle);
    eL1Fx_ = toFixed(config.energy.l1Access);
    eL2Fx_ = toFixed(config.energy.l2Access);
    eMemFx_ = toFixed(config.energy.memAccess);
    eBpredFx_ = toFixed(config.energy.bpredAccess);
}

/** Mirrors TimingModel::warm per lane (shared/shadow fed together). */
void
MixSession::warmStep(std::uint32_t p, const core::StepInfo &info,
                     bool warmCaches, bool warmBpred)
{
    Lane &lane = lanes_[p];
    if (warmCaches) {
        const std::uint32_t line = info.pc >> fetchLineShift_;
        if (line != lane.lastFetchLine) {
            lane.lastFetchLine = line;
            shared_.warmFetch(p, info.pc);
        }
        if (info.di.isLoad())
            shared_.warmLoad(p, info.memAddr);
        else if (info.di.isStore())
            shared_.warmStore(p, info.memAddr);
    }
    if (info.di.isLoad())
        ++lane.activity.loads;
    else if (info.di.isStore())
        ++lane.activity.stores;
    else if (info.di.isBranch()) {
        ++lane.activity.branches;
        if (warmBpred) {
            // Mirror the detailed lane's RAS traffic (see
            // TimingModel::warm).
            if (info.di.op == sisa::Opcode::JR && info.di.a == 31)
                lane.bpred.popReturn();
            lane.bpred.update(info.pc, info.di, info.taken,
                              info.nextPc);
        }
    }
}

/** Mirrors TimingModel::warmDetailed per lane. */
void
MixSession::warmDetailedStep(std::uint32_t p,
                             const core::StepInfo &info)
{
    Lane &lane = lanes_[p];
    const std::uint32_t line = info.pc >> fetchLineShift_;
    if (line != lane.lastFetchLine) {
        lane.lastFetchLine = line;
        shared_.warmFetch(p, info.pc);
    }

    if (info.di.isLoad()) {
        ++lane.activity.loads;
        shared_.warmLoad(p, info.memAddr);
    } else if (info.di.isStore()) {
        ++lane.activity.stores;
        shared_.warmStore(p, info.memAddr);
    } else if (info.di.isBranch()) {
        ++lane.activity.branches;
        ++lane.activity.bpredLookups;
        const bpred::Prediction pr =
            lane.bpred.predict(info.pc, info.di);
        const bool mispredict =
            pr.taken != info.taken ||
            (info.taken && pr.target != info.nextPc);
        if (mispredict) {
            ++lane.activity.bpredMispredicts;
            if (config_.modelWrongPath) {
                const std::uint32_t wrong =
                    pr.taken ? pr.target : info.pc + 4;
                for (std::uint32_t i = 0;
                     i < config_.wrongPathFetches; ++i)
                    shared_.warmFetch(
                        p, wrong + i * config_.mem.l1i.lineBytes);
                lane.lastFetchLine = ~0u;
            }
        }
        lane.bpred.update(info.pc, info.di, info.taken, info.nextPc);
    }
}

/**
 * Mirrors TimingModel::detailedStep per lane, charging every cycle
 * and energy term TWICE — once per world, each from its own
 * MemResult. One predict/update, one L1/TLB access: those are
 * private, so both worlds share them physically and arithmetically.
 */
void
MixSession::detailedStep(std::uint32_t p, const core::StepInfo &info)
{
    Lane &lane = lanes_[p];
    lane.coCyclesFx += invWidthFx_;
    lane.coEnergyFx += ePerInstFx_;
    lane.soloCyclesFx += invWidthFx_;
    lane.soloEnergyFx += ePerInstFx_;

    auto chargeMemEnergy = [this](std::uint64_t &energyFx,
                                  const mem::MemResult &r) {
        energyFx += eL1Fx_;
        if (r.level != mem::ServedBy::L1)
            energyFx += eL2Fx_;
        if (r.level == mem::ServedBy::Memory)
            energyFx += eMemFx_;
    };

    // Front end: one I-cache access per fetched line.
    const std::uint32_t line = info.pc >> fetchLineShift_;
    if (line != lane.lastFetchLine) {
        lane.lastFetchLine = line;
        const mem::SharedMemResult f = shared_.fetch(p, info.pc);
        chargeMemEnergy(lane.coEnergyFx, f.co);
        chargeMemEnergy(lane.soloEnergyFx, f.solo);
        if (f.co.latency > config_.mem.l1i.latency)
            lane.coCyclesFx +=
                static_cast<std::uint64_t>(f.co.latency -
                                           config_.mem.l1i.latency)
                << core::TimingModel::kFixedShift;
        if (f.solo.latency > config_.mem.l1i.latency)
            lane.soloCyclesFx +=
                static_cast<std::uint64_t>(f.solo.latency -
                                           config_.mem.l1i.latency)
                << core::TimingModel::kFixedShift;
    }

    if (info.di.isLoad()) {
        ++lane.activity.loads;
        const mem::SharedMemResult r = shared_.load(p, info.memAddr);
        chargeMemEnergy(lane.coEnergyFx, r.co);
        chargeMemEnergy(lane.soloEnergyFx, r.solo);
        if (r.co.latency > config_.mem.l1d.latency)
            lane.coCyclesFx +=
                (r.co.latency - config_.mem.l1d.latency) *
                loadStallFx_;
        if (r.solo.latency > config_.mem.l1d.latency)
            lane.soloCyclesFx +=
                (r.solo.latency - config_.mem.l1d.latency) *
                loadStallFx_;
    } else if (info.di.isStore()) {
        ++lane.activity.stores;
        const mem::SharedMemResult r = shared_.store(p, info.memAddr);
        chargeMemEnergy(lane.coEnergyFx, r.co);
        chargeMemEnergy(lane.soloEnergyFx, r.solo);
        if (r.co.latency > config_.mem.l1d.latency)
            lane.coCyclesFx +=
                (r.co.latency - config_.mem.l1d.latency) *
                storeStallFx_;
        if (r.solo.latency > config_.mem.l1d.latency)
            lane.soloCyclesFx +=
                (r.solo.latency - config_.mem.l1d.latency) *
                storeStallFx_;
    } else if (info.di.isBranch()) {
        ++lane.activity.branches;
        ++lane.activity.bpredLookups;
        const bpred::Prediction pr =
            lane.bpred.predict(info.pc, info.di);
        lane.coEnergyFx += eBpredFx_;
        lane.soloEnergyFx += eBpredFx_;
        const bool mispredict =
            pr.taken != info.taken ||
            (info.taken && pr.target != info.nextPc);
        if (mispredict) {
            ++lane.activity.bpredMispredicts;
            lane.coCyclesFx += mispredictFx_;
            lane.soloCyclesFx += mispredictFx_;
            if (config_.modelWrongPath) {
                // Wrong-path pollution: one warmFetch pass fills
                // both worlds (shared AND shadow L2).
                const std::uint32_t wrong =
                    pr.taken ? pr.target : info.pc + 4;
                for (std::uint32_t i = 0;
                     i < config_.wrongPathFetches; ++i)
                    shared_.warmFetch(
                        p, wrong + i * config_.mem.l1i.lineBytes);
                lane.lastFetchLine = ~0u;
            }
        }
        lane.bpred.update(info.pc, info.di, info.taken, info.nextPc);
    }
}

std::uint64_t
MixSession::fastForward(std::uint64_t maxRounds,
                        core::WarmingMode mode)
{
    const bool caches = core::warmsCaches(mode);
    const bool bpred = core::warmsBpred(mode);
    std::uint64_t executed = 0;
    while (!finished_ && executed < maxRounds) {
        if (!round([this, caches, bpred](std::uint32_t p,
                                         const core::StepInfo &info) {
                warmStep(p, info, caches, bpred);
            }))
            break;
        ++executed;
    }
    return executed;
}

std::uint64_t
MixSession::warmAsDetailed(std::uint64_t maxRounds)
{
    std::uint64_t executed = 0;
    while (!finished_ && executed < maxRounds) {
        if (!round([this](std::uint32_t p,
                          const core::StepInfo &info) {
                warmDetailedStep(p, info);
            }))
            break;
        ++executed;
    }
    return executed;
}

MixSegment
MixSession::detailedRun(std::uint64_t maxRounds)
{
    struct Mark
    {
        std::uint64_t coCyclesFx, coEnergyFx;
        std::uint64_t soloCyclesFx, soloEnergyFx;
        std::uint64_t sharedAccesses, sharedMisses;
        std::uint64_t shadowAccesses, shadowMisses;
    };
    std::vector<Mark> marks(lanes_.size());
    for (std::uint32_t p = 0; p < lanes_.size(); ++p) {
        const Lane &lane = lanes_[p];
        marks[p] = {lane.coCyclesFx,
                    lane.coEnergyFx,
                    lane.soloCyclesFx,
                    lane.soloEnergyFx,
                    shared_.sharedL2().accesses(p),
                    shared_.sharedL2().misses(p),
                    shared_.shadowL2(p).accesses(),
                    shared_.shadowL2(p).misses()};
    }

    std::uint64_t executed = 0;
    while (!finished_ && executed < maxRounds) {
        if (!round([this](std::uint32_t p,
                          const core::StepInfo &info) {
                detailedStep(p, info);
            }))
            break;
        ++executed;
    }

    MixSegment seg;
    seg.rounds = executed;
    seg.per.resize(lanes_.size());
    for (std::uint32_t p = 0; p < lanes_.size(); ++p) {
        Lane &lane = lanes_[p];
        const Mark &mark = marks[p];
        MixLaneSegment &ls = seg.per[p];
        // Per-world endSegment, TimingModel::endSegment's exact
        // arithmetic: charge per-cycle energy for the segment, then
        // extract the deltas.
        const std::uint64_t coDeltaFx =
            lane.coCyclesFx - mark.coCyclesFx;
        lane.coEnergyFx += mulFixed(ePerCycleFx_, coDeltaFx);
        const std::uint64_t soloDeltaFx =
            lane.soloCyclesFx - mark.soloCyclesFx;
        lane.soloEnergyFx += mulFixed(ePerCycleFx_, soloDeltaFx);
        ls.instructions = executed;
        ls.coCycles = coDeltaFx >> core::TimingModel::kFixedShift;
        ls.coEnergyNj =
            static_cast<double>(lane.coEnergyFx - mark.coEnergyFx) /
            core::TimingModel::kFixedOne;
        ls.soloCycles = soloDeltaFx >> core::TimingModel::kFixedShift;
        ls.soloEnergyNj =
            static_cast<double>(lane.soloEnergyFx -
                                mark.soloEnergyFx) /
            core::TimingModel::kFixedOne;
        ls.sharedAccesses =
            shared_.sharedL2().accesses(p) - mark.sharedAccesses;
        ls.sharedMisses =
            shared_.sharedL2().misses(p) - mark.sharedMisses;
        ls.shadowAccesses =
            shared_.shadowL2(p).accesses() - mark.shadowAccesses;
        ls.shadowMisses =
            shared_.shadowL2(p).misses() - mark.shadowMisses;
    }
    return seg;
}

void
MixSession::saveState(MixState &state) const
{
    state.archs.resize(cores_.size());
    for (std::size_t p = 0; p < cores_.size(); ++p)
        cores_[p].saveState(state.archs[p]);
    shared_.saveState(state.sharedMem);
    state.lanes.resize(lanes_.size());
    for (std::size_t p = 0; p < lanes_.size(); ++p) {
        const Lane &lane = lanes_[p];
        MixLaneState &ls = state.lanes[p];
        lane.bpred.saveState(ls.bpred);
        ls.coCyclesFx = lane.coCyclesFx;
        ls.coEnergyFx = lane.coEnergyFx;
        ls.soloCyclesFx = lane.soloCyclesFx;
        ls.soloEnergyFx = lane.soloEnergyFx;
        ls.lastFetchLine = lane.lastFetchLine;
        ls.activity = lane.activity;
    }
    state.rounds = rounds_;
}

void
MixSession::restoreState(const MixState &state)
{
    if (state.archs.size() != cores_.size() ||
        state.lanes.size() != lanes_.size())
        SMARTS_FATAL("mix checkpoint has ", state.archs.size(),
                     " programs, expected ", cores_.size());
    for (std::size_t p = 0; p < cores_.size(); ++p)
        cores_[p].restoreState(state.archs[p]);
    shared_.restoreState(state.sharedMem);
    for (std::size_t p = 0; p < lanes_.size(); ++p) {
        Lane &lane = lanes_[p];
        const MixLaneState &ls = state.lanes[p];
        lane.bpred.restoreState(ls.bpred);
        lane.coCyclesFx = ls.coCyclesFx;
        lane.coEnergyFx = ls.coEnergyFx;
        lane.soloCyclesFx = ls.soloCyclesFx;
        lane.soloEnergyFx = ls.soloEnergyFx;
        lane.lastFetchLine = ls.lastFetchLine;
        lane.activity = ls.activity;
    }
    rounds_ = state.rounds;
    // finished is derived: the session ended iff some program's
    // architectural stream ended.
    finished_ = false;
    for (const core::ArchState &arch : state.archs)
        if (arch.finished)
            finished_ = true;
}

} // namespace smarts::mp
