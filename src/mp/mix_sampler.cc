#include "mp/mix_sampler.hh"

#include <memory>
#include <utility>

#include "core/checkpoint_store.hh"
#include "exec/thread_pool.hh"
#include "util/logging.hh"

namespace smarts::mp {

namespace {

/**
 * The serial mix sampling loop over one slice of the unit grid —
 * core::runSliceRange with rounds for positions and per-lane
 * dual-world observations. Shared by run() and every sharded mode so
 * no path can drift from the serial semantics.
 */
MixSliceResult
runMixSliceRange(MixSession &session,
                 const core::SamplingConfig &config,
                 std::uint64_t startIdx, std::uint64_t maxUnits,
                 bool runTail)
{
    const std::uint64_t u = config.unitSize;
    const std::uint64_t w = config.detailedWarming;
    const std::uint64_t k = config.interval;
    const std::size_t n = session.programCount();

    MixSliceResult r;
    std::uint64_t pos = session.roundCount();

    // O(1) jump to the first grid index whose unit starts at or
    // after the session's position (resumed sessions).
    std::uint64_t unitIdx = config.nextGridIndex(startIdx, pos);
    std::uint64_t done = 0;

    while (!session.finished() && done < maxUnits) {
        if (unitIdx > ~0ull / u)
            break;
        const std::uint64_t unitStart = unitIdx * u;
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;

        // Fast-forward the inter-unit gap in the warming mode.
        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos,
                                       config.warming);
            if (session.finished())
                break;
        }

        // Detailed warming W: timing on, measurement discarded.
        if (unitStart > pos) {
            const MixSegment warm =
                session.detailedRun(unitStart - pos);
            r.warmed += warm.rounds;
            pos += warm.rounds;
            if (session.finished())
                break;
        }

        // The measured unit: every program observes the same
        // U-round (= U-instruction) window, in both worlds.
        const MixSegment seg = session.detailedRun(u);
        pos += seg.rounds;
        if (seg.rounds == u) {
            r.measured += u;
            MixUnitObservation o;
            o.per.resize(n);
            for (std::size_t p = 0; p < n; ++p) {
                const MixLaneSegment &ls = seg.per[p];
                MixLaneObservation &lo = o.per[p];
                lo.coCpi = static_cast<double>(ls.coCycles) /
                           static_cast<double>(u);
                lo.coEpi =
                    ls.coEnergyNj / static_cast<double>(u);
                lo.soloCpi = static_cast<double>(ls.soloCycles) /
                             static_cast<double>(u);
                lo.soloEpi =
                    ls.soloEnergyNj / static_cast<double>(u);
                lo.sharedAccesses = ls.sharedAccesses;
                lo.sharedMisses = ls.sharedMisses;
                lo.shadowAccesses = ls.shadowAccesses;
                lo.shadowMisses = ls.shadowMisses;
            }
            r.obs.push_back(std::move(o));
        } else {
            // Truncated final unit: detailed-simulation cost that
            // produced no observation.
            r.dropped += seg.rounds;
        }
        ++done;
        unitIdx += k;
    }

    // Run out the tail so endPos is the true mix stream length.
    if (runTail)
        while (!session.finished())
            session.fastForward(~0ull >> 1, config.warming);
    r.endPos = session.roundCount();
    return r;
}

} // namespace

MixSampler::MixSampler(const WorkloadMix &mix,
                       const uarch::MachineConfig &machine,
                       const core::SamplingConfig &sampling)
    : mix_(mix), machine_(machine), sampling_(sampling)
{
    if (mix_.programs.empty())
        SMARTS_FATAL("a workload mix needs at least one program");
    if (!sampling_.unitSize)
        SMARTS_FATAL("sampling unit size must be nonzero");
    if (!sampling_.interval)
        SMARTS_FATAL("sampling interval must be nonzero");
}

MixSession
MixSampler::makeSession() const
{
    return MixSession(mix_, machine_);
}

std::uint64_t
MixSampler::measureStreamLength() const
{
    MixSession session = makeSession();
    while (!session.finished())
        session.fastForward(~0ull >> 1, core::WarmingMode::None);
    return session.roundCount();
}

MixEstimate
MixSampler::emptyEstimate() const
{
    MixEstimate est;
    est.perProgram.resize(mix_.programs.size());
    return est;
}

void
MixSampler::foldSlice(MixEstimate &est, const MixSliceResult &slice)
{
    for (const MixUnitObservation &o : slice.obs)
        for (std::size_t p = 0; p < o.per.size(); ++p) {
            const MixLaneObservation &lo = o.per[p];
            MixProgramEstimate &pe = est.perProgram[p];
            pe.coRun.cpiStats.add(lo.coCpi);
            pe.coRun.epiStats.add(lo.coEpi);
            pe.solo.cpiStats.add(lo.soloCpi);
            pe.solo.epiStats.add(lo.soloEpi);
            pe.cpiDelta.add(lo.coCpi - lo.soloCpi);
            pe.sharedAccesses += lo.sharedAccesses;
            pe.sharedMisses += lo.sharedMisses;
            pe.shadowAccesses += lo.shadowAccesses;
            pe.shadowMisses += lo.shadowMisses;
        }
    for (MixProgramEstimate &pe : est.perProgram) {
        pe.coRun.instructionsMeasured += slice.measured;
        pe.coRun.instructionsWarmed += slice.warmed;
        pe.coRun.instructionsDropped += slice.dropped;
        pe.solo.instructionsMeasured += slice.measured;
        pe.solo.instructionsWarmed += slice.warmed;
        pe.solo.instructionsDropped += slice.dropped;
        if (slice.endPos > pe.coRun.streamLength)
            pe.coRun.streamLength = slice.endPos;
        if (slice.endPos > pe.solo.streamLength)
            pe.solo.streamLength = slice.endPos;
    }
}

MixSliceResult
MixSampler::runSlice(MixSession &session,
                     const core::ShardSpec &shard) const
{
    return runMixSliceRange(session, sampling_,
                            shard.firstUnitIndex,
                            shard.runsTail ? ~0ull : shard.unitCount,
                            shard.runsTail);
}

MixEstimate
MixSampler::run() const
{
    MixSession session = makeSession();
    MixEstimate est = emptyEstimate();
    foldSlice(est,
              runMixSliceRange(session, sampling_, sampling_.offset,
                               ~0ull, /*runTail=*/true));
    return est;
}

MixEstimate
MixSampler::runSharded(std::uint64_t streamLength,
                       std::size_t shards,
                       exec::ThreadPool &pool) const
{
    return runShardedCold(streamLength, shards, pool, nullptr);
}

MixEstimate
MixSampler::runShardedCold(std::uint64_t streamLength,
                           std::size_t shards,
                           exec::ThreadPool &pool,
                           MixLibrary *collect) const
{
    const std::vector<core::ShardSpec> plan =
        core::CheckpointLibrary::planShards(sampling_, streamLength,
                                            shards);
    if (collect)
        *collect = MixLibrary::prepare(sampling_, plan);

    std::vector<MixSliceResult> results(plan.size());

    // Each shard job writes only its own result slot; pool.wait()
    // publishes every slot to this thread, so the batch is
    // bit-identical at any thread count.
    auto submitShard = [&results, &pool, &plan,
                        this](std::size_t s, MixCheckpoint &&cp) {
        pool.submit([&results, &plan, this, s,
                     cp = std::move(cp)] {
            MixSession session = makeSession();
            if (s)
                session.restoreState(cp.state);
            results[s] = runSlice(session, plan[s]);
        });
    };

    // Shard 0 resumes at round 0: dispatch it before the capture
    // pass so it overlaps checkpoint production.
    submitShard(0, MixCheckpoint{});

    std::uint64_t capturePos = 0;
    if (plan.size() > 1) {
        MixSession captureSession = makeSession();
        MixLibrary::capture(
            captureSession, sampling_, plan,
            [&submitShard, collect](std::size_t s,
                                    MixCheckpoint &&cp) {
                if (collect)
                    collect->record(s, cp);
                submitShard(s, std::move(cp));
            });
        capturePos = captureSession.roundCount();
    }
    pool.wait();

    MixEstimate est = emptyEstimate();
    for (const MixSliceResult &slice : results)
        foldSlice(est, slice);
    // Normally the tail shard ran the stream out; if the plan
    // overstated the stream, the capture pass's own progress still
    // bounds what was simulated.
    for (MixProgramEstimate &pe : est.perProgram) {
        if (capturePos > pe.coRun.streamLength)
            pe.coRun.streamLength = capturePos;
        if (capturePos > pe.solo.streamLength)
            pe.solo.streamLength = capturePos;
    }
    return est;
}

MixEstimate
MixSampler::runSharded(const MixLibrary &library,
                       exec::ThreadPool &pool) const
{
    const core::SamplingConfig &built = library.samplingConfig();
    if (built.unitSize != sampling_.unitSize ||
        built.detailedWarming != sampling_.detailedWarming ||
        built.interval != sampling_.interval ||
        built.offset != sampling_.offset ||
        built.warming != sampling_.warming)
        SMARTS_FATAL("mix library was built for a different "
                     "sampling design");
    const std::vector<core::ShardSpec> &plan = library.plan();
    if (plan.empty())
        SMARTS_FATAL("mix library has no shards");

    std::vector<MixSliceResult> results(plan.size());
    for (std::size_t s = 0; s < plan.size(); ++s) {
        pool.submit([&results, &plan, &library, this, s] {
            MixSession session = makeSession();
            if (s)
                session.restoreState(library.at(s).state);
            results[s] = runSlice(session, plan[s]);
        });
    }
    pool.wait();

    MixEstimate est = emptyEstimate();
    for (const MixSliceResult &slice : results)
        foldSlice(est, slice);
    return est;
}

MixEstimate
MixSampler::runSharded(std::uint64_t streamLength,
                       std::size_t shards, exec::ThreadPool &pool,
                       core::CheckpointStore &store) const
{
    const core::LibraryKey key = mixKey(mix_, machine_, sampling_);
    std::optional<MixLibrary> library;
    std::string error;
    store.loadEntry(
        key,
        [&library, this](const std::string &path,
                         std::string *loadError) {
            library = MixLibrary::load(path, mix_,
                                       mixKey(mix_, machine_,
                                              samplingConfig()),
                                       loadError);
            return library.has_value();
        },
        &error);
    if (library)
        return runSharded(*library, pool);
    // A file that exists but refuses to load is a recapture, never a
    // mis-warm; say why.
    if (!error.empty())
        SMARTS_WARN("checkpoint store: recapturing mix (", error,
                    ")");

    MixLibrary captured;
    const MixEstimate est =
        runShardedCold(streamLength, shards, pool, &captured);
    if (!store.publishEntry(
            key,
            [this, &captured, &key](const std::string &path,
                                    std::string *saveError) {
                return captured.save(mix_, key, path, saveError,
                                     /*createDirs=*/false);
            },
            &error))
        SMARTS_WARN("checkpoint store: could not persist ",
                    store.pathFor(key), " (", error, ")");
    return est;
}

MixEstimate
runMix(const WorkloadMix &mix, const uarch::MachineConfig &machine,
       const core::SamplingConfig &sampling, std::size_t threads)
{
    MixSampler sampler(mix, machine, sampling);
    if (threads <= 1)
        return sampler.run();
    const std::uint64_t streamLength =
        sampler.measureStreamLength();
    exec::ThreadPool pool(static_cast<unsigned>(threads));
    return sampler.runSharded(streamLength, threads, pool);
}

MixEstimate
estimateMix(const WorkloadMix &mix,
            const uarch::MachineConfig &machine,
            const core::SamplingConfig &sampling,
            std::size_t threads, core::CheckpointStore &store)
{
    MixSampler sampler(mix, machine, sampling);
    const std::uint64_t streamLength =
        sampler.measureStreamLength();
    exec::ThreadPool pool(
        static_cast<unsigned>(threads ? threads : 1));
    return sampler.runSharded(streamLength, threads ? threads : 1,
                              pool, store);
}

} // namespace smarts::mp
