#include "util/binary_io.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <unistd.h>

#include "util/logging.hh"

namespace smarts::util {

namespace fs = std::filesystem;

bool
BinaryWriter::writeFile(const std::string &path, std::string *error,
                        bool createDirs) const
{
    const std::uint64_t checksum =
        fnv1a(buffer_.data(), buffer_.size());

    std::error_code ec;
    const fs::path target(path);
    if (createDirs && target.has_parent_path()) {
        fs::create_directories(target.parent_path(), ec);
        if (ec) {
            if (error)
                *error = log::format("cannot create directory ",
                                     target.parent_path().string(),
                                     ": ", ec.message());
            return false;
        }
    }

    // Write-then-rename so a crash mid-write never leaves a
    // half-written file behind a valid library path. The temp name
    // carries the pid and a per-process counter so two processes
    // (or threads) racing to save the same key each write their own
    // file; last rename wins with a complete library either way.
    static std::atomic<unsigned> serial{0};
    const fs::path tmp(log::format(path, ".tmp.", ::getpid(), ".",
                                   serial.fetch_add(1)));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            if (error)
                *error = log::format("cannot open ", tmp.string(),
                                     " for writing");
            return false;
        }
        out.write(reinterpret_cast<const char *>(buffer_.data()),
                  static_cast<std::streamsize>(buffer_.size()));
        std::uint8_t trailer[8];
        for (int i = 0; i < 8; ++i)
            trailer[i] =
                static_cast<std::uint8_t>(checksum >> (8 * i));
        out.write(reinterpret_cast<const char *>(trailer),
                  sizeof trailer);
        if (!out) {
            if (error)
                *error = log::format("short write to ", tmp.string());
            out.close();
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, target, ec);
    if (ec) {
        if (error)
            *error = log::format("cannot publish ", path, ": ",
                                 ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

BinaryReader
BinaryReader::fromFile(const std::string &path, std::string *error)
{
    auto failed = [error](std::string why) {
        if (error)
            *error = std::move(why);
        BinaryReader reader({});
        reader.failed_ = true;
        return reader;
    };

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return failed(log::format("cannot open ", path));
    const std::streamoff size = in.tellg();
    if (size < 8)
        return failed(log::format(path, " is truncated (", size,
                                  " bytes, no room for a checksum)"));
    in.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!in)
        return failed(log::format("short read from ", path));

    const std::size_t payload = bytes.size() - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(bytes[payload + i])
                  << (8 * i);
    if (fnv1a(bytes.data(), payload) != stored)
        return failed(log::format(
            path, " failed its checksum (truncated or corrupt)"));

    bytes.resize(payload);
    return BinaryReader(std::move(bytes));
}

} // namespace smarts::util
