#include "util/delta_codec.hh"

#include <algorithm>

#include "util/binary_io.hh"
#include "util/logging.hh"

namespace smarts::util {

namespace {

/**
 * A zero run shorter than one op header (8 bytes) costs more to
 * encode as a run than to carry inside the surrounding literal, so
 * the encoder only breaks a literal for runs at least this long.
 */
constexpr std::size_t kMinZeroRun = 8;

inline std::uint8_t
residueAt(const std::vector<std::uint8_t> &base,
          const std::vector<std::uint8_t> &data, std::size_t i)
{
    const std::uint8_t b = i < base.size() ? base[i] : 0;
    return static_cast<std::uint8_t>(data[i] ^ b);
}

/** Length of the all-zero residue run starting at @p i. */
std::size_t
zeroRunAt(const std::vector<std::uint8_t> &base,
          const std::vector<std::uint8_t> &data, std::size_t i)
{
    std::size_t n = 0;
    while (i + n < data.size() && residueAt(base, data, i + n) == 0)
        ++n;
    return n;
}

} // namespace

std::vector<std::uint8_t>
deltaEncode(const std::vector<std::uint8_t> &base,
            const std::vector<std::uint8_t> &data)
{
    constexpr std::size_t kMaxRun = 0xffffffffu;
    BinaryWriter out;
    out.u64(data.size());

    std::size_t pos = 0;
    while (pos < data.size()) {
        const std::size_t zeros =
            std::min(zeroRunAt(base, data, pos), kMaxRun);
        std::size_t scan = pos + zeros;

        // Extend the literal until the next worthwhile zero run (or
        // the end of the payload, or the u32 length cap).
        std::size_t literal = 0;
        while (scan + literal < data.size() && literal < kMaxRun) {
            const std::size_t run =
                zeroRunAt(base, data, scan + literal);
            if (run >= kMinZeroRun)
                break;
            literal += run ? run : 1;
        }
        literal = std::min({literal, data.size() - scan, kMaxRun});

        out.u32(static_cast<std::uint32_t>(zeros));
        out.u32(static_cast<std::uint32_t>(literal));
        for (std::size_t i = 0; i < literal; ++i)
            out.u8(residueAt(base, data, scan + i));
        pos = scan + literal;
    }
    return out.buffer();
}

std::optional<std::vector<std::uint8_t>>
deltaDecode(const std::vector<std::uint8_t> &base,
            const std::vector<std::uint8_t> &delta,
            std::string *error)
{
    auto refuse =
        [error](std::string why) -> std::optional<
                                     std::vector<std::uint8_t>> {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    BinaryReader in(delta);
    const std::uint64_t rawSize = in.u64();
    if (in.failed())
        return refuse("delta stream is truncated");
    // A corrupt size field could demand more memory than the stream
    // could ever justify: every encoded byte covers at most one
    // payload byte plus what zero runs (8-byte ops covering up to
    // 2^32 bytes each) can add.
    if (rawSize > delta.size() +
                      (delta.size() / kMinZeroRun + 1) * 0xffffffffull)
        return refuse(log::format("delta declares an absurd payload "
                                  "size (", rawSize, " bytes)"));

    // Structural pre-walk, allocation-free: a corrupt stream must be
    // refused BEFORE the payload buffer is sized from it, or a flipped
    // size field turns into an out-of-memory crash instead of a
    // diagnostic. Only a stream whose ops cover exactly rawSize with
    // every literal byte present reaches the materializing pass.
    {
        std::size_t at = sizeof(std::uint64_t);
        auto readU32 = [&delta, &at] {
            std::uint32_t v = 0;
            for (int shift = 0; shift < 32; shift += 8)
                v |= static_cast<std::uint32_t>(delta[at++]) << shift;
            return v;
        };
        std::uint64_t covered = 0;
        while (covered < rawSize) {
            if (delta.size() - at < 2 * sizeof(std::uint32_t))
                return refuse("delta stream is truncated");
            const std::uint32_t zeros = readU32();
            const std::uint32_t literal = readU32();
            if (!zeros && !literal)
                return refuse("delta contains a zero-progress op");
            if (zeros + std::uint64_t(literal) > rawSize - covered)
                return refuse("delta ops overrun the declared size");
            if (delta.size() - at < literal)
                return refuse("delta stream is truncated");
            at += literal;
            covered += zeros + std::uint64_t(literal);
        }
        if (at != delta.size())
            return refuse("delta stream has trailing garbage");
    }

    std::vector<std::uint8_t> out;
    try {
        out.reserve(static_cast<std::size_t>(rawSize));
    } catch (const std::bad_alloc &) {
        return refuse(log::format("delta payload does not fit in "
                                  "memory (", rawSize, " bytes)"));
    }
    while (out.size() < rawSize) {
        const std::uint32_t zeros = in.u32();
        const std::uint32_t literal = in.u32();
        if (in.failed())
            return refuse("delta stream is truncated");
        if (!zeros && !literal)
            return refuse("delta contains a zero-progress op");
        if (zeros + std::uint64_t(literal) > rawSize - out.size())
            return refuse("delta ops overrun the declared size");
        for (std::uint32_t i = 0; i < zeros; ++i) {
            const std::size_t at = out.size();
            out.push_back(at < base.size() ? base[at] : 0);
        }
        for (std::uint32_t i = 0; i < literal; ++i) {
            const std::size_t at = out.size();
            const std::uint8_t b = at < base.size() ? base[at] : 0;
            out.push_back(static_cast<std::uint8_t>(in.u8() ^ b));
        }
        if (in.failed())
            return refuse("delta stream is truncated");
    }
    if (in.remaining() != 0)
        return refuse("delta stream has trailing garbage");
    return out;
}

} // namespace smarts::util
