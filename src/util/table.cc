#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace smarts {

void
TextTable::cellText(std::string text)
{
    if (rows_.empty())
        rows_.emplace_back();
    rows_.back().push_back(std::move(text));
}

TextTable &
TextTable::add(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    cellText(buf);
    return *this;
}

TextTable &
TextTable::addPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", precision,
                  fraction * 100.0);
    cellText(buf);
    return *this;
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << cell << std::string(widths[c] - cell.size(), ' ');
            if (c + 1 < widths.size())
                os << "  ";
        }
        os << '\n';
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths)
        total += w;
    os << std::string(total + 2 * (widths.empty() ? 0 : widths.size() - 1),
                      '-')
       << '\n';
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (const char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
TextTable::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        SMARTS_FATAL("cannot open CSV output '", path, "'");
    for (std::size_t c = 0; c < headers_.size(); ++c)
        out << (c ? "," : "") << csvEscape(headers_[c]);
    out << '\n';
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out << (c ? "," : "") << csvEscape(row[c]);
        out << '\n';
    }
    if (!out)
        SMARTS_FATAL("error writing CSV output '", path, "'");
}

} // namespace smarts
