#include "distrib/leader.hh"

#include <chrono>
#include <filesystem>
#include <thread>

#include "core/multi_session.hh"
#include "util/logging.hh"

namespace smarts::distrib {

namespace fs = std::filesystem;

JobManifest
planStudy(const workloads::BenchmarkSpec &spec,
          const std::vector<uarch::MachineConfig> &configs,
          const core::SamplingConfig &sampling,
          std::uint64_t streamLength, std::size_t shards)
{
    if (configs.empty())
        SMARTS_FATAL("a study needs at least one machine config");
    JobManifest m;
    m.benchmark = spec;
    m.sampling = sampling;
    m.streamLength = streamLength;
    m.configs = configs;
    for (const uarch::MachineConfig &config : configs)
        m.geometryHashes.push_back(uarch::warmGeometryHash(config));
    m.plan = core::CheckpointLibrary::planShards(sampling,
                                                 streamLength, shards);

    // Deterministic study id: digest the manifest with the id slot
    // zeroed. Same study -> same id (prior results stay valid);
    // any field change -> new id (old results refuse at merge).
    util::BinaryWriter digest;
    m.serialize(digest);
    m.studyId =
        util::fnv1a(digest.buffer().data(), digest.buffer().size());
    return m;
}

std::size_t
ensureStudyStore(const core::CheckpointStore &store,
                 const JobManifest &manifest)
{
    // Plan-exact on purpose: every runner of this study resumes
    // from the manifest's own shard boundaries, so a library
    // captured under any other split is a miss here even though
    // the in-process store-backed paths could use it.
    return store.ensure(manifest.benchmark, manifest.configs,
                        manifest.sampling, manifest.plan);
}

bool
publishStudy(const std::string &dir, const JobManifest &manifest,
             std::string *error)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        if (error)
            *error = log::format("cannot create ", dir, ": ",
                                 ec.message());
        return false;
    }
    // Republishing the IDENTICAL study (same deterministic studyId)
    // keeps the queue: completed results are bit-identical by
    // contract, so a restarted leader reuses them without
    // re-execution. Any other prior content — a different study, or
    // an unreadable manifest — is reset: its claims would shadow
    // live work and its results would refuse at merge anyway.
    const std::optional<JobManifest> prior =
        JobManifest::load(manifestPath(dir));
    if (!prior || prior->studyId != manifest.studyId) {
        fs::remove_all(fs::path(dir) / "claims", ec);
        fs::remove_all(fs::path(dir) / "results", ec);
    }
    return manifest.save(manifestPath(dir), error);
}

bool
studyComplete(const std::string &dir, const JobManifest &manifest)
{
    std::error_code ec;
    for (std::uint32_t c = 0; c < manifest.configs.size(); ++c)
        for (std::uint32_t s = 0; s < manifest.plan.size(); ++s)
            if (!fs::exists(resultPath(dir, c, s), ec))
                return false;
    return true;
}

std::optional<std::vector<core::SmartsEstimate>>
mergeStudy(const std::string &dir, const JobManifest &manifest,
           std::string *error)
{
    std::vector<core::SmartsEstimate> estimates(
        manifest.configs.size());
    for (std::uint32_t c = 0; c < manifest.configs.size(); ++c) {
        core::SmartsEstimate est;
        for (std::uint32_t s = 0; s < manifest.plan.size(); ++s) {
            std::string why;
            const std::optional<ShardResult> result =
                ShardResult::load(resultPath(dir, c, s), manifest,
                                  c, s, &why);
            if (!result) {
                // Refusal, not tolerance: a study with a missing or
                // suspect shard yields NO estimate.
                if (error)
                    *error = std::move(why);
                return std::nullopt;
            }
            core::SystematicSampler::foldSlice(est, result->slice);
        }
        estimates[c] = est;
    }
    return estimates;
}

std::optional<std::vector<core::SmartsEstimate>>
collectStudy(const std::string &dir, const JobManifest &manifest,
             double timeoutSeconds, Runner *helper,
             std::string *error, double pollMillis)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(timeoutSeconds);
    PollBackoff backoff(pollMillis);
    for (;;) {
        while (!studyComplete(dir, manifest)) {
            // A helping leader executes whatever nobody has
            // claimed — progress is guaranteed even with zero
            // external runners.
            if (helper && helper->drain(manifest)) {
                backoff.reset();
                continue;
            }
            if (std::chrono::steady_clock::now() >= deadline) {
                if (error)
                    *error = log::format(
                        "study incomplete after ", timeoutSeconds,
                        "s (", manifest.jobCount(),
                        " jobs; check the runners and the claims/ "
                        "directory under ",
                        dir, ")");
                return std::nullopt;
            }
            // Idle poll: back off exponentially so a long wait for
            // remote runners does not hammer the shared directory.
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    backoff.nextMs()));
        }

        std::string why;
        if (auto merged = mergeStudy(dir, manifest, &why))
            return merged;

        // The study is "complete" but refuses to merge: at least
        // one result file is poisoned (corrupt in transit, or a
        // straggler from a previous study won a publish race).
        // A refusing result would otherwise wedge the study
        // forever — claims treat an existing result as done, so
        // nobody re-executes the job. Quarantine every refusing
        // file (delete result + claim) and go back to waiting:
        // the helper or any live runner redoes the job. A
        // systematic refusal (e.g. incompatible builds) cannot
        // loop unbounded — the deadline above still applies.
        std::size_t quarantined = 0;
        for (std::uint32_t c = 0; c < manifest.configs.size(); ++c)
            for (std::uint32_t s = 0; s < manifest.plan.size();
                 ++s) {
                const std::string path = resultPath(dir, c, s);
                std::error_code ec;
                if (!fs::exists(path, ec))
                    continue;
                std::string jobWhy;
                if (ShardResult::load(path, manifest, c, s, &jobWhy)
                        .has_value())
                    continue;
                SMARTS_WARN("collect: quarantining refused result "
                            "for job (", c, ", ", s, "): ", jobWhy);
                fs::remove(path, ec);
                fs::remove(claimPath(dir, c, s), ec);
                ++quarantined;
            }
        if (quarantined)
            backoff.reset();
        if (!quarantined ||
            std::chrono::steady_clock::now() >= deadline) {
            if (error)
                *error = std::move(why);
            return std::nullopt;
        }
    }
}

} // namespace smarts::distrib
