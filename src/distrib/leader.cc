#include "distrib/leader.hh"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "core/livepoint.hh"
#include "core/multi_session.hh"
#include "util/logging.hh"

namespace smarts::distrib {

namespace fs = std::filesystem;

namespace {

/** Publish an (empty) range marker file, creating ranges/. */
bool
writeMarker(const std::string &path)
{
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    return static_cast<bool>(out);
}

/**
 * Choose a tiling of [0, totalUnits) from the published result
 * ranges: at each cursor take the LARGEST range starting there
 * (split history makes ranges laminar — nested or disjoint — so
 * greedy-largest either tiles or nothing does). Nullopt = a gap, the
 * study is incomplete.
 */
std::optional<std::vector<UnitRange>>
tileResults(const std::vector<UnitRange> &avail,
            std::uint64_t totalUnits)
{
    std::vector<UnitRange> tiling;
    std::uint64_t cursor = 0;
    std::size_t i = 0;
    while (cursor < totalUnits) {
        while (i < avail.size() && avail[i].firstUnit < cursor)
            ++i;
        if (i == avail.size() || avail[i].firstUnit != cursor)
            return std::nullopt;
        tiling.push_back(avail[i]);
        cursor += avail[i].unitCount;
        ++i;
    }
    return tiling;
}

/** The distinct runner ids currently holding claims in @p dir. */
std::set<std::string>
claimantIds(const std::string &dir)
{
    std::set<std::string> ids;
    std::error_code ec;
    fs::directory_iterator it(fs::path(dir) / "claims", ec);
    if (ec)
        return ids;
    for (const fs::directory_entry &entry : it) {
        if (entry.path().extension() != ".claim")
            continue;
        std::ifstream in(entry.path());
        std::string id;
        if (in >> id)
            ids.insert(id);
    }
    return ids;
}

} // namespace

JobManifest
planStudy(const workloads::BenchmarkSpec &spec,
          const std::vector<uarch::MachineConfig> &configs,
          const core::SamplingConfig &sampling,
          std::uint64_t streamLength, std::size_t shards)
{
    if (configs.empty())
        SMARTS_FATAL("a study needs at least one machine config");
    JobManifest m;
    m.benchmark = spec;
    m.sampling = sampling;
    m.streamLength = streamLength;
    m.configs = configs;
    for (const uarch::MachineConfig &config : configs)
        m.geometryHashes.push_back(uarch::warmGeometryHash(config));
    m.plan = core::CheckpointLibrary::planShards(sampling,
                                                 streamLength, shards);
    // The build-fingerprint handshake: serialize() covers this
    // field, so the study id below inherits it — a diverged build's
    // results refuse at merge even if its manifest load were somehow
    // bypassed.
    m.fingerprint = buildFingerprint();

    // Deterministic study id: digest the manifest with the id slot
    // zeroed. Same study -> same id (prior results stay valid);
    // any field change -> new id (old results refuse at merge).
    util::BinaryWriter digest;
    m.serialize(digest);
    m.studyId =
        util::fnv1a(digest.buffer().data(), digest.buffer().size());
    return m;
}

LivePointPlan
ensureStudyLivePoints(const core::CheckpointStore &store,
                      const workloads::BenchmarkSpec &spec,
                      const std::vector<uarch::MachineConfig> &configs,
                      const core::SamplingConfig &sampling)
{
    if (configs.empty())
        SMARTS_FATAL("a study needs at least one machine config");
    store.ensureLivePoints(spec, configs, sampling);
    std::string why;
    const std::optional<core::LivePointLibrary> library =
        store.tryLoadLivePoints(
            core::LibraryKey::of(spec, configs[0], sampling), &why);
    if (!library)
        SMARTS_FATAL("live-point capture failed for ", spec.name,
                     ": ", why);
    return {library->unitCount(), library->streamLength()};
}

JobManifest
planUnitStudy(const workloads::BenchmarkSpec &spec,
              const std::vector<uarch::MachineConfig> &configs,
              const core::SamplingConfig &sampling,
              std::uint64_t streamLength, std::uint64_t totalUnits,
              std::size_t jobs)
{
    if (configs.empty())
        SMARTS_FATAL("a study needs at least one machine config");
    if (totalUnits == 0)
        SMARTS_FATAL("a unit-range study needs at least one "
                     "live-point (is the stream shorter than one "
                     "sampling unit?)");
    JobManifest m;
    m.benchmark = spec;
    m.sampling = sampling;
    m.streamLength = streamLength;
    m.configs = configs;
    for (const uarch::MachineConfig &config : configs)
        m.geometryHashes.push_back(uarch::warmGeometryHash(config));
    m.mode = JobMode::UnitRange;
    m.totalUnits = totalUnits;

    // Even initial partition; remainder spread over the first
    // ranges. The live partition under <queue>/ranges/ takes over
    // from here.
    const std::uint64_t count =
        std::min<std::uint64_t>(jobs ? jobs : 1, totalUnits);
    std::uint64_t cursor = 0;
    for (std::uint64_t j = 0; j < count; ++j) {
        const std::uint64_t size =
            totalUnits / count + (j < totalUnits % count ? 1 : 0);
        m.ranges.push_back(UnitRange{cursor, size});
        cursor += size;
    }
    m.fingerprint = buildFingerprint();

    util::BinaryWriter digest;
    m.serialize(digest);
    m.studyId =
        util::fnv1a(digest.buffer().data(), digest.buffer().size());
    return m;
}

std::size_t
ensureStudyStore(const core::CheckpointStore &store,
                 const JobManifest &manifest)
{
    if (manifest.mode == JobMode::UnitRange) {
        const std::size_t captured = store.ensureLivePoints(
            manifest.benchmark, manifest.configs,
            manifest.sampling);
        std::string why;
        const std::optional<core::LivePointLibrary> library =
            store.tryLoadLivePoints(manifest.keyFor(0), &why);
        if (!library)
            SMARTS_FATAL("live-point capture failed for ",
                         manifest.benchmark.name, ": ", why);
        if (library->unitCount() != manifest.totalUnits ||
            library->streamLength() != manifest.streamLength)
            SMARTS_FATAL(
                "store's live-point library has ",
                library->unitCount(), " units over a stream of ",
                library->streamLength(), ", but the manifest says ",
                manifest.totalUnits, " over ",
                manifest.streamLength,
                " — was it planned against a different store?");
        return captured;
    }
    // Plan-exact on purpose: every runner of this study resumes
    // from the manifest's own shard boundaries, so a library
    // captured under any other split is a miss here even though
    // the in-process store-backed paths could use it.
    return store.ensure(manifest.benchmark, manifest.configs,
                        manifest.sampling, manifest.plan);
}

bool
publishStudy(const std::string &dir, const JobManifest &manifest,
             std::string *error)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        if (error)
            *error = log::format("cannot create ", dir, ": ",
                                 ec.message());
        return false;
    }
    // Republishing the IDENTICAL study (same deterministic studyId)
    // keeps the queue: completed results are bit-identical by
    // contract, so a restarted leader reuses them without
    // re-execution (and an evolved ranges/ partition keeps its
    // splits). Any other prior content — a different study, or an
    // unreadable manifest — is reset: its claims would shadow live
    // work and its results would refuse at merge anyway. A reset
    // that FAILS refuses to publish: stale claims left behind would
    // shadow live work until the deadline, silently.
    const std::optional<JobManifest> prior =
        JobManifest::load(manifestPath(dir));
    const bool fresh = !prior || prior->studyId != manifest.studyId;
    if (fresh) {
        for (const char *sub : {"claims", "results", "ranges"}) {
            std::error_code rmEc;
            fs::remove_all(fs::path(dir) / sub, rmEc);
            if (rmEc) {
                if (error)
                    *error = log::format(
                        "cannot reset stale ", sub, "/ under ", dir,
                        ": ", rmEc.message(),
                        " — refusing to publish over a dirty queue");
                return false;
            }
        }
    }
    // Seed the live range partition (fresh queue), or repair a
    // republished queue whose ranges/ vanished (without markers no
    // remaining job is claimable).
    if (manifest.mode == JobMode::UnitRange &&
        (fresh || !fs::exists(fs::path(dir) / "ranges", ec)))
        for (const UnitRange &r : manifest.ranges)
            if (!writeMarker(rangeMarkerPath(dir, r))) {
                if (error)
                    *error = log::format("cannot publish range "
                                         "marker ",
                                         rangeMarkerPath(dir, r));
                return false;
            }
    return manifest.save(manifestPath(dir), error);
}

bool
studyComplete(const std::string &dir, const JobManifest &manifest)
{
    if (manifest.mode == JobMode::UnitRange) {
        // Complete = for every config, SOME set of published ranges
        // tiles [0, totalUnits) — any granularity the split history
        // produced.
        for (std::uint32_t c = 0; c < manifest.configs.size(); ++c)
            if (!tileResults(listResultRanges(dir, c),
                             manifest.totalUnits))
                return false;
        return true;
    }
    std::error_code ec;
    for (std::uint32_t c = 0; c < manifest.configs.size(); ++c)
        for (std::uint32_t s = 0; s < manifest.plan.size(); ++s)
            if (!fs::exists(resultPath(dir, c, s), ec))
                return false;
    return true;
}

std::size_t
splitRemainingRanges(const std::string &dir,
                     const JobManifest &manifest,
                     std::uint64_t minUnits)
{
    if (manifest.mode != JobMode::UnitRange)
        return 0;
    if (minUnits == 0)
        minUnits = 1;
    std::size_t splits = 0;
    std::error_code ec;
    for (const UnitRange &r : listRanges(dir)) {
        if (r.unitCount < 2 * minUnits)
            continue;
        // Only ranges nobody is working on and nothing covers:
        // splitting under a claim would duplicate in-flight work.
        bool busy = false;
        for (std::uint32_t c = 0;
             c < manifest.configs.size() && !busy; ++c)
            busy = fs::exists(claimPathRange(dir, c, r), ec) ||
                   fs::exists(resultPathRange(dir, c, r), ec);
        if (busy)
            continue;
        const UnitRange a{r.firstUnit, r.unitCount / 2};
        const UnitRange b{r.firstUnit + a.unitCount,
                          r.unitCount - a.unitCount};
        // Children first, parent removed last: a runner that claims
        // the parent concurrently still publishes a result the
        // tiling merge accepts.
        if (!writeMarker(rangeMarkerPath(dir, a)) ||
            !writeMarker(rangeMarkerPath(dir, b)))
            continue;
        fs::remove(rangeMarkerPath(dir, r), ec);
        ++splits;
    }
    return splits;
}

std::optional<std::vector<core::SmartsEstimate>>
mergeStudy(const std::string &dir, const JobManifest &manifest,
           std::string *error)
{
    std::vector<core::SmartsEstimate> estimates(
        manifest.configs.size());
    if (manifest.mode == JobMode::UnitRange) {
        for (std::uint32_t c = 0; c < manifest.configs.size();
             ++c) {
            const std::vector<UnitRange> avail =
                listResultRanges(dir, c);
            // EVERY published file must validate — a poisoned file
            // never rides along silently just because a healthy
            // overlap could cover its units.
            std::vector<ShardResult> loaded;
            loaded.reserve(avail.size());
            for (const UnitRange &r : avail) {
                std::string why;
                std::optional<ShardResult> result =
                    ShardResult::loadRange(
                        resultPathRange(dir, c, r), manifest, c, r,
                        &why);
                if (!result) {
                    if (error)
                        *error = std::move(why);
                    return std::nullopt;
                }
                loaded.push_back(std::move(*result));
            }
            const std::optional<std::vector<UnitRange>> tiling =
                tileResults(avail, manifest.totalUnits);
            if (!tiling) {
                if (error)
                    *error = log::format(
                        "study incomplete: config ", c,
                        "'s results do not cover all ",
                        manifest.totalUnits, " units");
                return std::nullopt;
            }
            // Fold the chosen tiles in slot (= stream) order: the
            // same replay discipline as shard merge, bit-identical
            // to serial run().
            core::SmartsEstimate est;
            for (const UnitRange &tile : *tiling)
                for (std::size_t i = 0; i < avail.size(); ++i)
                    if (avail[i] == tile) {
                        core::SystematicSampler::foldSlice(
                            est, loaded[i].slice);
                        break;
                    }
            estimates[c] = est;
        }
        return estimates;
    }
    for (std::uint32_t c = 0; c < manifest.configs.size(); ++c) {
        core::SmartsEstimate est;
        for (std::uint32_t s = 0; s < manifest.plan.size(); ++s) {
            std::string why;
            const std::optional<ShardResult> result =
                ShardResult::load(resultPath(dir, c, s), manifest,
                                  c, s, &why);
            if (!result) {
                // Refusal, not tolerance: a study with a missing or
                // suspect shard yields NO estimate.
                if (error)
                    *error = std::move(why);
                return std::nullopt;
            }
            core::SystematicSampler::foldSlice(est, result->slice);
        }
        estimates[c] = est;
    }
    return estimates;
}

std::optional<std::vector<core::SmartsEstimate>>
collectStudy(const std::string &dir, const JobManifest &manifest,
             double timeoutSeconds, Runner *helper,
             std::string *error, double pollMillis)
{
    const auto deadline =
        // smarts-lint: allow(no-ambient-nondeterminism) the collect
        // deadline bounds polling; merged estimates stay a pure
        // function of the manifest regardless of when results land.
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(timeoutSeconds);
    PollBackoff backoff(pollMillis);

    // Elasticity: in unit-range mode, watch the claims/ directory
    // for runner ids never seen before — a NEW runner joined
    // mid-study — and split the still-unclaimed ranges so the
    // newcomer gets fair-grained work instead of idling behind big
    // claims.
    std::set<std::string> knownRunners;
    bool baselined = false;
    auto watchRunners = [&] {
        if (manifest.mode != JobMode::UnitRange)
            return;
        const std::set<std::string> ids = claimantIds(dir);
        if (!baselined) {
            knownRunners = ids;
            baselined = true;
            return;
        }
        bool joined = false;
        for (const std::string &id : ids)
            joined |= knownRunners.insert(id).second;
        if (!joined)
            return;
        const std::size_t splits =
            splitRemainingRanges(dir, manifest);
        if (splits) {
            SMARTS_LOG("collect: runner joined mid-study; split ",
                       splits, " remaining range(s)");
            backoff.reset();
        }
    };

    for (;;) {
        while (!studyComplete(dir, manifest)) {
            watchRunners();
            // A helping leader executes whatever nobody has
            // claimed — progress is guaranteed even with zero
            // external runners.
            if (helper && helper->drain(manifest)) {
                backoff.reset();
                continue;
            }
            // smarts-lint: allow(no-ambient-nondeterminism) a
            // collect timeout refuses the study (no partial
            // merge), so wall time never shapes results.
            if (std::chrono::steady_clock::now() >= deadline) {
                if (error)
                    *error = log::format(
                        "study incomplete after ", timeoutSeconds,
                        "s (", manifest.jobCount(),
                        " jobs; check the runners and the claims/ "
                        "directory under ",
                        dir, ")");
                return std::nullopt;
            }
            // Idle poll: back off exponentially so a long wait for
            // remote runners does not hammer the shared directory.
            std::this_thread::sleep_for(
                // smarts-lint: allow(no-ambient-nondeterminism) a
                // pacing sleep; collection order cannot change the
                // stream-order refold.
                std::chrono::duration<double, std::milli>(
                    backoff.nextMs()));
        }

        std::string why;
        if (auto merged = mergeStudy(dir, manifest, &why))
            return merged;

        // The study is "complete" but refuses to merge: at least
        // one result file is poisoned (corrupt in transit, or a
        // straggler from a previous study won a publish race).
        // A refusing result would otherwise wedge the study
        // forever — claims treat an existing result as done, so
        // nobody re-executes the job. Quarantine every refusing
        // file (delete result + claim) and go back to waiting:
        // the helper or any live runner redoes the job. A
        // systematic refusal (e.g. incompatible builds) cannot
        // loop unbounded — the deadline above still applies.
        std::size_t quarantined = 0;
        if (manifest.mode == JobMode::UnitRange) {
            for (std::uint32_t c = 0; c < manifest.configs.size();
                 ++c)
                for (const UnitRange &r :
                     listResultRanges(dir, c)) {
                    const std::string path =
                        resultPathRange(dir, c, r);
                    std::string jobWhy;
                    if (ShardResult::loadRange(path, manifest, c, r,
                                               &jobWhy)
                            .has_value())
                        continue;
                    SMARTS_WARN(
                        "collect: quarantining refused result for "
                        "job (config ", c, ", units [", r.firstUnit,
                        ", +", r.unitCount, ")): ", jobWhy);
                    std::error_code ec;
                    fs::remove(path, ec);
                    fs::remove(claimPathRange(dir, c, r), ec);
                    ++quarantined;
                }
        } else {
            for (std::uint32_t c = 0; c < manifest.configs.size();
                 ++c)
                for (std::uint32_t s = 0; s < manifest.plan.size();
                     ++s) {
                    const std::string path = resultPath(dir, c, s);
                    std::error_code ec;
                    if (!fs::exists(path, ec))
                        continue;
                    std::string jobWhy;
                    if (ShardResult::load(path, manifest, c, s,
                                          &jobWhy)
                            .has_value())
                        continue;
                    SMARTS_WARN(
                        "collect: quarantining refused result "
                        "for job (", c, ", ", s, "): ", jobWhy);
                    fs::remove(path, ec);
                    fs::remove(claimPath(dir, c, s), ec);
                    ++quarantined;
                }
        }
        if (quarantined)
            backoff.reset();
        if (!quarantined ||
            // smarts-lint: allow(no-ambient-nondeterminism) give-up
            // deadline on a quarantined result: expiry refuses the
            // whole study, never merges a partial one.
            std::chrono::steady_clock::now() >= deadline) {
            if (error)
                *error = std::move(why);
            return std::nullopt;
        }
    }
}

} // namespace smarts::distrib
