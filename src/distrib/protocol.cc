#include "distrib/protocol.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "util/logging.hh"

namespace smarts::distrib {

namespace fs = std::filesystem;

namespace {

/** File magics: 8 bytes each, version-independent. */
constexpr char kManifestMagic[8] = {'S', 'M', 'R', 'T',
                                    'J', 'O', 'B', 'M'};
constexpr char kResultMagic[8] = {'S', 'M', 'R', 'T',
                                  'R', 'S', 'L', 'T'};

/** Endianness probe, same convention as the .smck format. */
constexpr std::uint32_t kEndianMark = 0x01020304u;

std::string
jobName(std::uint32_t config, std::uint32_t shard)
{
    return log::format("c", config, "_s", shard);
}

void
writeMagic(util::BinaryWriter &out, const char (&magic)[8])
{
    for (const char c : magic)
        out.u8(static_cast<std::uint8_t>(c));
}

bool
readMagic(util::BinaryReader &in, const char (&magic)[8])
{
    bool ok = true;
    for (const char c : magic)
        ok &= in.u8() == static_cast<std::uint8_t>(c);
    return ok;
}

/**
 * MachineConfig serialization: every field, doubles as raw IEEE-754
 * bit patterns, in the normative order of
 * docs/distributed-runners.md § Machine config. The manifest
 * carries FULL configs (not names) so a runner reconstructs the
 * exact machine the leader meant — including timing-only fields the
 * geometry hash deliberately ignores.
 */
void
writeMachine(util::BinaryWriter &out, const uarch::MachineConfig &c)
{
    out.str(c.name);
    out.u32(c.width);
    out.u32(c.robSize);
    out.u32(c.pipelineDepth);
    out.u8(c.modelWrongPath ? 1 : 0);
    out.u32(c.wrongPathFetches);
    out.f64(c.loadStallFactor);
    out.f64(c.storeStallFactor);
    for (const mem::CacheConfig *cc :
         {&c.mem.l1i, &c.mem.l1d, &c.mem.l2}) {
        out.u32(cc->sizeBytes);
        out.u32(cc->assoc);
        out.u32(cc->lineBytes);
        out.u32(cc->latency);
    }
    for (const mem::TlbConfig *tc : {&c.mem.itlb, &c.mem.dtlb}) {
        out.u32(tc->entries);
        out.u32(tc->pageBytes);
        out.u32(tc->missLatency);
    }
    out.u32(c.mem.memLatency);
    out.u32(c.bpred.historyBits);
    out.u32(c.bpred.btbEntries);
    out.u32(c.bpred.rasEntries);
    out.f64(c.energy.perInst);
    out.f64(c.energy.perCycle);
    out.f64(c.energy.l1Access);
    out.f64(c.energy.l2Access);
    out.f64(c.energy.memAccess);
    out.f64(c.energy.bpredAccess);
}

uarch::MachineConfig
readMachine(util::BinaryReader &in)
{
    uarch::MachineConfig c;
    c.name = in.str();
    c.width = in.u32();
    c.robSize = in.u32();
    c.pipelineDepth = in.u32();
    c.modelWrongPath = in.u8() != 0;
    c.wrongPathFetches = in.u32();
    c.loadStallFactor = in.f64();
    c.storeStallFactor = in.f64();
    for (mem::CacheConfig *cc : {&c.mem.l1i, &c.mem.l1d, &c.mem.l2}) {
        cc->sizeBytes = in.u32();
        cc->assoc = in.u32();
        cc->lineBytes = in.u32();
        cc->latency = in.u32();
    }
    for (mem::TlbConfig *tc : {&c.mem.itlb, &c.mem.dtlb}) {
        tc->entries = in.u32();
        tc->pageBytes = in.u32();
        tc->missLatency = in.u32();
    }
    c.mem.memLatency = in.u32();
    c.bpred.historyBits = in.u32();
    c.bpred.btbEntries = in.u32();
    c.bpred.rasEntries = in.u32();
    c.energy.perInst = in.f64();
    c.energy.perCycle = in.f64();
    c.energy.l1Access = in.f64();
    c.energy.l2Access = in.f64();
    c.energy.memAccess = in.f64();
    c.energy.bpredAccess = in.f64();
    return c;
}

void
writeShard(util::BinaryWriter &out, const core::ShardSpec &shard)
{
    out.u64(shard.firstUnitIndex);
    out.u64(shard.unitCount);
    out.u64(shard.resumePos);
    out.u8(shard.runsTail ? 1 : 0);
}

core::ShardSpec
readShard(util::BinaryReader &in)
{
    core::ShardSpec shard;
    shard.firstUnitIndex = in.u64();
    shard.unitCount = in.u64();
    shard.resumePos = in.u64();
    shard.runsTail = in.u8() != 0;
    return shard;
}

/** A process-unique temp name next to @p path (atomic-publish
 *  discipline, docs/distributed-runners.md § Atomicity). */
std::string
tempName(const std::string &path, const std::string &tag)
{
    static std::atomic<unsigned> serial{0};
    return log::format(path, ".tmp.", tag, ".", ::getpid(), ".",
                       serial.fetch_add(1));
}

} // namespace

std::string
manifestPath(const std::string &dir)
{
    return (fs::path(dir) / "manifest.smjm").string();
}

std::string
claimPath(const std::string &dir, std::uint32_t config,
          std::uint32_t shard)
{
    return (fs::path(dir) / "claims" /
            (jobName(config, shard) + ".claim"))
        .string();
}

std::string
resultPath(const std::string &dir, std::uint32_t config,
           std::uint32_t shard)
{
    return (fs::path(dir) / "results" /
            (jobName(config, shard) + ".smrr"))
        .string();
}

void
JobManifest::serialize(util::BinaryWriter &out) const
{
    writeMagic(out, kManifestMagic);
    out.u32(kDistribFormatVersion);
    out.u32(kEndianMark);
    out.u64(studyId);
    out.u64(streamLength);
    // Benchmark + sampling via the LibraryKey encoding the .smck
    // format already fixed; the hash slot is zero here because
    // geometry is per config (the list below).
    core::LibraryKey base;
    base.benchmark = benchmark;
    base.sampling = sampling;
    base.geometryHash = 0;
    base.write(out);
    out.u32(static_cast<std::uint32_t>(configs.size()));
    for (std::size_t c = 0; c < configs.size(); ++c) {
        writeMachine(out, configs[c]);
        out.u64(geometryHashes[c]);
    }
    out.u64(plan.size());
    for (const core::ShardSpec &shard : plan)
        writeShard(out, shard);
}

bool
JobManifest::save(const std::string &path, std::string *error) const
{
    util::BinaryWriter out;
    serialize(out);
    return out.writeFile(path, error);
}

std::optional<JobManifest>
JobManifest::load(const std::string &path, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));

    if (!readMagic(in, kManifestMagic))
        return refuse(
            log::format(path, " is not a smarts job manifest"));
    const std::uint32_t version = in.u32();
    if (version != kDistribFormatVersion)
        return refuse(log::format(
            path, " is protocol version ", version,
            "; this build speaks version ", kDistribFormatVersion));
    if (in.u32() != kEndianMark)
        return refuse(log::format(path,
                                  " has a bad endianness marker"));

    JobManifest m;
    m.studyId = in.u64();
    m.streamLength = in.u64();
    const core::LibraryKey base = core::LibraryKey::read(in);
    m.benchmark = base.benchmark;
    m.sampling = base.sampling;

    const std::uint32_t configCount = in.u32();
    if (configCount == 0 || configCount > in.remaining())
        return refuse(log::format(path, " is corrupt (config count ",
                                  configCount, ")"));
    m.configs.reserve(configCount);
    m.geometryHashes.reserve(configCount);
    for (std::uint32_t c = 0; c < configCount; ++c) {
        m.configs.push_back(readMachine(in));
        m.geometryHashes.push_back(in.u64());
    }

    const std::uint64_t shardCount = in.u64();
    if (shardCount > in.remaining())
        return refuse(log::format(path, " is corrupt (shard count ",
                                  shardCount, ")"));
    m.plan.reserve(shardCount);
    for (std::uint64_t s = 0; s < shardCount; ++s)
        m.plan.push_back(readShard(in));

    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(
            path, " is truncated or has trailing garbage"));

    const std::string planError =
        core::CheckpointLibrary::validatePlan(m.sampling, m.plan);
    if (!planError.empty())
        return refuse(
            log::format(path, " is corrupt (", planError, ")"));

    // The stated geometry hashes must be reproducible by THIS
    // build: a disagreement means the leader hashes warm state
    // differently (diverged sources), and resuming its store's
    // libraries would mis-warm.
    for (std::uint32_t c = 0; c < configCount; ++c)
        if (uarch::warmGeometryHash(m.configs[c]) !=
            m.geometryHashes[c])
            return refuse(log::format(
                path, ": config ", c, " (", m.configs[c].name,
                ") carries a geometry hash this build does not "
                "reproduce — leader/runner builds are incompatible"));

    return m;
}

void
ShardResult::serialize(util::BinaryWriter &out) const
{
    writeMagic(out, kResultMagic);
    out.u32(kDistribFormatVersion);
    out.u32(kEndianMark);
    out.u64(studyId);
    out.u32(configIndex);
    out.u32(shardIndex);
    key.write(out);
    writeShard(out, shard);
    out.u64(slice.measured);
    out.u64(slice.warmed);
    out.u64(slice.dropped);
    out.u64(slice.endPos);
    out.u64(slice.obs.size());
    for (const core::UnitObservation &o : slice.obs) {
        out.f64(o.cpi);
        out.f64(o.epi);
    }
}

bool
ShardResult::save(const std::string &path, std::string *error) const
{
    util::BinaryWriter out;
    serialize(out);
    return out.writeFile(path, error);
}

std::optional<ShardResult>
ShardResult::load(const std::string &path,
                  const JobManifest &manifest, std::uint32_t config,
                  std::uint32_t shard, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));

    if (!readMagic(in, kResultMagic))
        return refuse(
            log::format(path, " is not a smarts shard result"));
    const std::uint32_t version = in.u32();
    if (version != kDistribFormatVersion)
        return refuse(log::format(
            path, " is protocol version ", version,
            "; this build speaks version ", kDistribFormatVersion));
    if (in.u32() != kEndianMark)
        return refuse(log::format(path,
                                  " has a bad endianness marker"));

    ShardResult r;
    r.studyId = in.u64();
    r.configIndex = in.u32();
    r.shardIndex = in.u32();
    r.key = core::LibraryKey::read(in);
    r.shard = readShard(in);
    r.slice.measured = in.u64();
    r.slice.warmed = in.u64();
    r.slice.dropped = in.u64();
    r.slice.endPos = in.u64();
    const std::uint64_t obsCount = in.u64();
    if (in.failed() || obsCount > in.remaining() / 16)
        return refuse(log::format(
            path, " is corrupt (observation count ", obsCount, ")"));
    r.slice.obs.resize(obsCount);
    for (core::UnitObservation &o : r.slice.obs) {
        o.cpi = in.f64();
        o.epi = in.f64();
    }
    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(
            path, " is truncated or has trailing garbage"));

    // Semantic refusals: everything must match the manifest's view
    // of job (config, shard). Merging a result from another study,
    // another job, or another key would corrupt the estimate
    // silently — exactly what this protocol exists to prevent.
    if (r.studyId != manifest.studyId)
        return refuse(log::format(
            path, " belongs to study ", r.studyId,
            ", not this manifest's study ", manifest.studyId));
    if (r.configIndex != config || r.shardIndex != shard)
        return refuse(log::format(
            path, " is the result of job (config ", r.configIndex,
            ", shard ", r.shardIndex, "), not (config ", config,
            ", shard ", shard, ")"));
    const std::string keyMismatch =
        manifest.keyFor(config).mismatchAgainst(r.key);
    if (!keyMismatch.empty())
        return refuse(log::format(path, ": ", keyMismatch));
    if (r.shard != manifest.plan[shard])
        return refuse(log::format(
            path, ": shard-spec echo disagrees with the manifest "
                  "plan for shard ",
            shard));
    if (r.slice.measured !=
        r.slice.obs.size() * manifest.sampling.unitSize)
        return refuse(log::format(
            path, " is inconsistent (", r.slice.obs.size(),
            " observations for ", r.slice.measured,
            " measured instructions at U=",
            manifest.sampling.unitSize, ")"));
    return r;
}

bool
claimJob(const std::string &dir, std::uint32_t config,
         std::uint32_t shard, const std::string &runnerId,
         double staleSeconds)
{
    std::error_code ec;
    // Already done: nothing to claim.
    if (fs::exists(resultPath(dir, config, shard), ec))
        return false;

    const std::string claim = claimPath(dir, config, shard);
    const fs::path claimFile(claim);
    fs::create_directories(claimFile.parent_path(), ec);

    // Stage the marker under a process-unique temp name.
    const std::string tmp = tempName(claim, runnerId);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << runnerId << " pid=" << ::getpid() << "\n";
    }

    if (!fs::exists(claimFile, ec)) {
        // Fresh claim: hard-link is atomic and FAILS if the claim
        // appeared meanwhile — of N racing runners exactly one
        // wins.
        fs::create_hard_link(tmp, claimFile, ec);
        std::error_code ignore;
        fs::remove(tmp, ignore);
        return !ec;
    }

    // Existing claim: steal only when stale recovery is enabled and
    // the claim has sat result-less past the threshold. Rename
    // atomically REPLACES the marker; two racing stealers both
    // "win" and duplicate the execution — benign, because results
    // are deterministic and byte-identical.
    if (staleSeconds >= 0.0) {
        const auto mtime = fs::last_write_time(claimFile, ec);
        if (!ec) {
            const double age =
                std::chrono::duration<double>(
                    fs::file_time_type::clock::now() - mtime)
                    .count();
            if (age >= staleSeconds) {
                fs::rename(tmp, claimFile, ec);
                if (!ec)
                    return true;
            }
        }
    }
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return false;
}

bool
publishResult(const std::string &dir, const ShardResult &result,
              std::string *error)
{
    return result.save(
        resultPath(dir, result.configIndex, result.shardIndex),
        error);
}

} // namespace smarts::distrib
