#include "distrib/protocol.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "core/session.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace smarts::distrib {

namespace fs = std::filesystem;

namespace {

/** File magics: 8 bytes each, version-independent. */
constexpr char kManifestMagic[8] = {'S', 'M', 'R', 'T',
                                    'J', 'O', 'B', 'M'};
constexpr char kResultMagic[8] = {'S', 'M', 'R', 'T',
                                  'R', 'S', 'L', 'T'};

/** Endianness probe, same convention as the .smck format. */
constexpr std::uint32_t kEndianMark = 0x01020304u;

std::string
jobName(std::uint32_t config, std::uint32_t shard)
{
    return log::format("c", config, "_s", shard);
}

std::string
hex64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
writeMagic(util::BinaryWriter &out, const char (&magic)[8])
{
    for (const char c : magic)
        out.u8(static_cast<std::uint8_t>(c));
}

bool
readMagic(util::BinaryReader &in, const char (&magic)[8])
{
    bool ok = true;
    for (const char c : magic)
        ok &= in.u8() == static_cast<std::uint8_t>(c);
    return ok;
}

/**
 * MachineConfig serialization: every field, doubles as raw IEEE-754
 * bit patterns, in the normative order of
 * docs/distributed-runners.md § Machine config. The manifest
 * carries FULL configs (not names) so a runner reconstructs the
 * exact machine the leader meant — including timing-only fields the
 * geometry hash deliberately ignores.
 */
void
writeMachine(util::BinaryWriter &out, const uarch::MachineConfig &c)
{
    out.str(c.name);
    out.u32(c.width);
    out.u32(c.robSize);
    out.u32(c.pipelineDepth);
    out.u8(c.modelWrongPath ? 1 : 0);
    out.u32(c.wrongPathFetches);
    out.f64(c.loadStallFactor);
    out.f64(c.storeStallFactor);
    for (const mem::CacheConfig *cc :
         {&c.mem.l1i, &c.mem.l1d, &c.mem.l2}) {
        out.u32(cc->sizeBytes);
        out.u32(cc->assoc);
        out.u32(cc->lineBytes);
        out.u32(cc->latency);
    }
    for (const mem::TlbConfig *tc : {&c.mem.itlb, &c.mem.dtlb}) {
        out.u32(tc->entries);
        out.u32(tc->pageBytes);
        out.u32(tc->missLatency);
    }
    out.u32(c.mem.memLatency);
    out.u32(c.bpred.historyBits);
    out.u32(c.bpred.btbEntries);
    out.u32(c.bpred.rasEntries);
    out.f64(c.energy.perInst);
    out.f64(c.energy.perCycle);
    out.f64(c.energy.l1Access);
    out.f64(c.energy.l2Access);
    out.f64(c.energy.memAccess);
    out.f64(c.energy.bpredAccess);
}

uarch::MachineConfig
readMachine(util::BinaryReader &in)
{
    uarch::MachineConfig c;
    c.name = in.str();
    c.width = in.u32();
    c.robSize = in.u32();
    c.pipelineDepth = in.u32();
    c.modelWrongPath = in.u8() != 0;
    c.wrongPathFetches = in.u32();
    c.loadStallFactor = in.f64();
    c.storeStallFactor = in.f64();
    for (mem::CacheConfig *cc : {&c.mem.l1i, &c.mem.l1d, &c.mem.l2}) {
        cc->sizeBytes = in.u32();
        cc->assoc = in.u32();
        cc->lineBytes = in.u32();
        cc->latency = in.u32();
    }
    for (mem::TlbConfig *tc : {&c.mem.itlb, &c.mem.dtlb}) {
        tc->entries = in.u32();
        tc->pageBytes = in.u32();
        tc->missLatency = in.u32();
    }
    c.mem.memLatency = in.u32();
    c.bpred.historyBits = in.u32();
    c.bpred.btbEntries = in.u32();
    c.bpred.rasEntries = in.u32();
    c.energy.perInst = in.f64();
    c.energy.perCycle = in.f64();
    c.energy.l1Access = in.f64();
    c.energy.l2Access = in.f64();
    c.energy.memAccess = in.f64();
    c.energy.bpredAccess = in.f64();
    return c;
}

void
writeShard(util::BinaryWriter &out, const core::ShardSpec &shard)
{
    out.u64(shard.firstUnitIndex);
    out.u64(shard.unitCount);
    out.u64(shard.resumePos);
    out.u8(shard.runsTail ? 1 : 0);
}

core::ShardSpec
readShard(util::BinaryReader &in)
{
    core::ShardSpec shard;
    shard.firstUnitIndex = in.u64();
    shard.unitCount = in.u64();
    shard.resumePos = in.u64();
    shard.runsTail = in.u8() != 0;
    return shard;
}

/** A process-unique temp name next to @p path (atomic-publish
 *  discipline, docs/distributed-runners.md § Atomicity). */
std::string
tempName(const std::string &path, const std::string &tag)
{
    static std::atomic<unsigned> serial{0};
    return log::format(path, ".tmp.", tag, ".", ::getpid(), ".",
                       serial.fetch_add(1));
}

/**
 * The shared claim core: result-exists short-circuit, exclusive
 * hard-link creation for a fresh claim, atomic rename-steal of a
 * stale one. Both job flavors (shard and unit-range) differ only in
 * the two paths.
 */
bool
claimAt(const std::string &claim, const std::string &result,
        const std::string &runnerId, double staleSeconds)
{
    std::error_code ec;
    // Already done: nothing to claim.
    if (fs::exists(result, ec))
        return false;

    const fs::path claimFile(claim);
    fs::create_directories(claimFile.parent_path(), ec);

    // Stage the marker under a process-unique temp name.
    const std::string tmp = tempName(claim, runnerId);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out << runnerId << " pid=" << ::getpid() << "\n";
    }

    if (!fs::exists(claimFile, ec)) {
        // Fresh claim: hard-link is atomic and FAILS if the claim
        // appeared meanwhile — of N racing runners exactly one
        // wins.
        fs::create_hard_link(tmp, claimFile, ec);
        std::error_code ignore;
        fs::remove(tmp, ignore);
        return !ec;
    }

    // Existing claim: steal only when stale recovery is enabled and
    // the claim has sat result-less past the threshold. A live
    // holder heartbeats the marker (touchClaim) between units, so
    // only genuinely dead claims age this far. Rename atomically
    // REPLACES the marker; two racing stealers both "win" and
    // duplicate the execution — benign, because results are
    // deterministic and byte-identical.
    if (staleSeconds >= 0.0) {
        // smarts-lint: allow(no-ambient-nondeterminism) claim age
        // from marker mtime gates STEALING only; a wrong steal
        // duplicates deterministic work, it cannot skew it.
        const auto mtime = fs::last_write_time(claimFile, ec);
        if (!ec) {
            const double age =
                // smarts-lint: allow(no-ambient-nondeterminism) a
                // staleness window; wall clock decides who
                // executes, never what the execution computes.
                std::chrono::duration<double>(
                    fs::file_time_type::clock::now() - mtime)
                    .count();
            if (age >= staleSeconds) {
                fs::rename(tmp, claimFile, ec);
                if (!ec)
                    return true;
            }
        }
    }
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return false;
}

/**
 * Rank jobs by the weighted-shuffle key u^(1/w) (Efraimidis-
 * Spirakis), descending: every runner gets a different permutation
 * (per-runner RNG seed) whose EXPECTED order is weight-biased, so
 * heavy jobs surface early without all runners probing the same job
 * first.
 */
template <typename Job>
std::vector<Job>
weightedOrder(const std::vector<std::pair<Job, double>> &jobs,
              std::uint64_t studyId, const std::string &runnerId)
{
    Xoshiro256StarStar rng(mix64(
        util::fnv1a(
            reinterpret_cast<const std::uint8_t *>(runnerId.data()),
            runnerId.size()) ^
        studyId));
    std::vector<std::pair<double, std::size_t>> keyed;
    keyed.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const double w = std::max(jobs[i].second, 1.0);
        keyed.emplace_back(std::pow(rng.uniform(), 1.0 / w), i);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    std::vector<Job> order;
    order.reserve(jobs.size());
    for (const auto &[key, i] : keyed)
        order.push_back(jobs[i].first);
    return order;
}

void
writeRange(util::BinaryWriter &out, const UnitRange &r)
{
    out.u64(r.firstUnit);
    out.u64(r.unitCount);
}

UnitRange
readRange(util::BinaryReader &in)
{
    UnitRange r;
    r.firstUnit = in.u64();
    r.unitCount = in.u64();
    return r;
}

} // namespace

void
writeMachineConfig(util::BinaryWriter &out,
                   const uarch::MachineConfig &config)
{
    writeMachine(out, config);
}

uarch::MachineConfig
readMachineConfig(util::BinaryReader &in)
{
    return readMachine(in);
}

std::uint64_t
buildFingerprint()
{
    // Golden micro-run, once per process: short fixed workloads
    // driven through the FULL detailed timing and energy model under
    // both stock machines. Any change to cache/TLB/branch modeling,
    // issue-width accounting, stall factors, or the energy model
    // perturbs cycles or energy bit patterns and lands here; the
    // functional-warming prefix ties in the warming semantics the
    // geometry hash only names.
    static const std::uint64_t fp = [] {
        util::BinaryWriter probe;
        probe.u32(kDistribFormatVersion);
        for (const uarch::MachineConfig &machine :
             {uarch::MachineConfig::eightWay(),
              uarch::MachineConfig::sixteenWay()}) {
            for (const char *name : {"sort-1", "fsm-1"}) {
                core::SimSession session(
                    workloads::findBenchmark(
                        name, workloads::Scale::Mini),
                    machine);
                session.fastForward(20000,
                                    core::WarmingMode::Functional);
                const core::Segment seg =
                    session.detailedRun(30000);
                probe.u64(seg.instructions);
                probe.u64(seg.cycles);
                probe.f64(seg.energyNj);
            }
        }
        return util::fnv1a(probe.buffer().data(), probe.size());
    }();
    return fp;
}

std::string
manifestPath(const std::string &dir)
{
    return (fs::path(dir) / "manifest.smjm").string();
}

std::string
claimPath(const std::string &dir, std::uint32_t config,
          std::uint32_t shard)
{
    return (fs::path(dir) / "claims" /
            (jobName(config, shard) + ".claim"))
        .string();
}

std::string
resultPath(const std::string &dir, std::uint32_t config,
           std::uint32_t shard)
{
    return (fs::path(dir) / "results" /
            (jobName(config, shard) + ".smrr"))
        .string();
}

std::string
rangeName(const UnitRange &range)
{
    return log::format("u", range.firstUnit, "_n", range.unitCount);
}

std::string
rangeMarkerPath(const std::string &dir, const UnitRange &range)
{
    return (fs::path(dir) / "ranges" / (rangeName(range) + ".range"))
        .string();
}

std::string
claimPathRange(const std::string &dir, std::uint32_t config,
               const UnitRange &range)
{
    return (fs::path(dir) / "claims" /
            (log::format("c", config, "_") + rangeName(range) +
             ".claim"))
        .string();
}

std::string
resultPathRange(const std::string &dir, std::uint32_t config,
                const UnitRange &range)
{
    return (fs::path(dir) / "results" /
            (log::format("c", config, "_") + rangeName(range) +
             ".smrr"))
        .string();
}

std::vector<UnitRange>
listRanges(const std::string &dir)
{
    std::vector<UnitRange> ranges;
    std::error_code ec;
    fs::directory_iterator it(fs::path(dir) / "ranges", ec);
    if (ec)
        return ranges;
    for (const fs::directory_entry &entry :
         it) {
        if (entry.path().extension() != ".range")
            continue;
        unsigned long long first = 0, count = 0;
        if (std::sscanf(entry.path().stem().string().c_str(),
                        "u%llu_n%llu", &first, &count) == 2 &&
            count > 0)
            ranges.push_back(UnitRange{first, count});
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const UnitRange &a, const UnitRange &b) {
                  return a.firstUnit != b.firstUnit
                             ? a.firstUnit < b.firstUnit
                             : a.unitCount > b.unitCount;
              });
    return ranges;
}

std::vector<UnitRange>
listResultRanges(const std::string &dir, std::uint32_t config)
{
    std::vector<UnitRange> ranges;
    std::error_code ec;
    fs::directory_iterator it(fs::path(dir) / "results", ec);
    if (ec)
        return ranges;
    for (const fs::directory_entry &entry : it) {
        if (entry.path().extension() != ".smrr")
            continue;
        unsigned c = 0;
        unsigned long long first = 0, count = 0;
        if (std::sscanf(entry.path().stem().string().c_str(),
                        "c%u_u%llu_n%llu", &c, &first,
                        &count) == 3 &&
            c == config && count > 0)
            ranges.push_back(UnitRange{first, count});
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const UnitRange &a, const UnitRange &b) {
                  return a.firstUnit != b.firstUnit
                             ? a.firstUnit < b.firstUnit
                             : a.unitCount > b.unitCount;
              });
    return ranges;
}

void
JobManifest::serialize(util::BinaryWriter &out) const
{
    writeMagic(out, kManifestMagic);
    out.u32(kDistribFormatVersion);
    out.u32(kEndianMark);
    out.u64(studyId);
    out.u64(fingerprint);
    out.u64(streamLength);
    // Benchmark + sampling via the LibraryKey encoding the .smck
    // format already fixed; the hash slot is zero here because
    // geometry is per config (the list below).
    core::LibraryKey base;
    base.benchmark = benchmark;
    base.sampling = sampling;
    base.geometryHash = 0;
    base.write(out);
    out.u32(static_cast<std::uint32_t>(configs.size()));
    for (std::size_t c = 0; c < configs.size(); ++c) {
        writeMachine(out, configs[c]);
        out.u64(geometryHashes[c]);
    }
    out.u8(static_cast<std::uint8_t>(mode));
    out.u64(plan.size());
    for (const core::ShardSpec &shard : plan)
        writeShard(out, shard);
    out.u64(totalUnits);
    out.u64(ranges.size());
    for (const UnitRange &r : ranges)
        writeRange(out, r);
}

bool
JobManifest::save(const std::string &path, std::string *error) const
{
    util::BinaryWriter out;
    serialize(out);
    return out.writeFile(path, error);
}

std::optional<JobManifest>
JobManifest::load(const std::string &path, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));

    if (!readMagic(in, kManifestMagic))
        return refuse(
            log::format(path, " is not a smarts job manifest"));
    const std::uint32_t version = in.u32();
    if (version != kDistribFormatVersion)
        return refuse(log::format(
            path, " is protocol version ", version,
            "; this build speaks version ", kDistribFormatVersion));
    if (in.u32() != kEndianMark)
        return refuse(log::format(path,
                                  " has a bad endianness marker"));

    JobManifest m;
    m.studyId = in.u64();
    m.fingerprint = in.u64();
    m.streamLength = in.u64();
    const core::LibraryKey base = core::LibraryKey::read(in);
    m.benchmark = base.benchmark;
    m.sampling = base.sampling;

    const std::uint32_t configCount = in.u32();
    if (configCount == 0 || configCount > in.remaining())
        return refuse(log::format(path, " is corrupt (config count ",
                                  configCount, ")"));
    m.configs.reserve(configCount);
    m.geometryHashes.reserve(configCount);
    for (std::uint32_t c = 0; c < configCount; ++c) {
        m.configs.push_back(readMachine(in));
        m.geometryHashes.push_back(in.u64());
    }

    const std::uint8_t modeByte = in.u8();
    if (modeByte > static_cast<std::uint8_t>(JobMode::UnitRange))
        return refuse(log::format(path, " names unknown job mode ",
                                  static_cast<unsigned>(modeByte)));
    m.mode = static_cast<JobMode>(modeByte);

    const std::uint64_t shardCount = in.u64();
    if (shardCount > in.remaining())
        return refuse(log::format(path, " is corrupt (shard count ",
                                  shardCount, ")"));
    m.plan.reserve(shardCount);
    for (std::uint64_t s = 0; s < shardCount; ++s)
        m.plan.push_back(readShard(in));

    m.totalUnits = in.u64();
    const std::uint64_t rangeCount = in.u64();
    if (rangeCount > in.remaining())
        return refuse(log::format(path, " is corrupt (range count ",
                                  rangeCount, ")"));
    m.ranges.reserve(rangeCount);
    for (std::uint64_t r = 0; r < rangeCount; ++r)
        m.ranges.push_back(readRange(in));

    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(
            path, " is truncated or has trailing garbage"));

    // The build-fingerprint handshake: a manifest published by a
    // build whose timing model (or protocol) diverged from this one
    // must refuse HERE, not merge silently and rely on
    // --serial-check.
    if (m.fingerprint != buildFingerprint())
        return refuse(log::format(
            path, " was published by a build with fingerprint ",
            hex64(m.fingerprint), "; this build's fingerprint is ",
            hex64(buildFingerprint()),
            " — leader/runner timing models or protocol versions "
            "diverged"));

    if (m.mode == JobMode::Shard) {
        if (m.totalUnits != 0 || !m.ranges.empty())
            return refuse(log::format(
                path,
                " is corrupt (shard-mode manifest carries unit "
                "ranges)"));
        const std::string planError =
            core::CheckpointLibrary::validatePlan(m.sampling,
                                                  m.plan);
        if (!planError.empty())
            return refuse(
                log::format(path, " is corrupt (", planError, ")"));
    } else {
        if (!m.plan.empty())
            return refuse(log::format(
                path,
                " is corrupt (unit-range manifest carries a shard "
                "plan)"));
        if (m.totalUnits == 0)
            return refuse(log::format(
                path, " is corrupt (unit-range study of 0 units)"));
        // The initial ranges must tile [0, totalUnits) exactly: a
        // gap loses units silently, an overlap double-counts them.
        std::uint64_t cursor = 0;
        for (const UnitRange &r : m.ranges) {
            if (r.firstUnit != cursor || r.unitCount == 0)
                return refuse(log::format(
                    path,
                    " is corrupt (ranges do not tile the study: "
                    "expected a range at unit ",
                    cursor, ", found [", r.firstUnit, ", +",
                    r.unitCount, "))"));
            cursor += r.unitCount;
        }
        if (cursor != m.totalUnits)
            return refuse(log::format(
                path, " is corrupt (ranges cover ", cursor, " of ",
                m.totalUnits, " units)"));
    }

    // The stated geometry hashes must be reproducible by THIS
    // build: a disagreement means the leader hashes warm state
    // differently (diverged sources), and resuming its store's
    // libraries would mis-warm.
    for (std::uint32_t c = 0; c < configCount; ++c)
        if (uarch::warmGeometryHash(m.configs[c]) !=
            m.geometryHashes[c])
            return refuse(log::format(
                path, ": config ", c, " (", m.configs[c].name,
                ") carries a geometry hash this build does not "
                "reproduce — leader/runner builds are incompatible"));

    return m;
}

void
ShardResult::serialize(util::BinaryWriter &out) const
{
    writeMagic(out, kResultMagic);
    out.u32(kDistribFormatVersion);
    out.u32(kEndianMark);
    out.u64(studyId);
    out.u8(static_cast<std::uint8_t>(mode));
    out.u32(configIndex);
    out.u32(shardIndex);
    writeRange(out, range);
    key.write(out);
    writeShard(out, shard);
    out.u64(slice.measured);
    out.u64(slice.warmed);
    out.u64(slice.dropped);
    out.u64(slice.endPos);
    out.u64(slice.obs.size());
    for (const core::UnitObservation &o : slice.obs) {
        out.f64(o.cpi);
        out.f64(o.epi);
    }
}

bool
ShardResult::save(const std::string &path, std::string *error) const
{
    util::BinaryWriter out;
    serialize(out);
    return out.writeFile(path, error);
}

namespace {

/** Parse a result file's bytes into @p r: structural refusals only
 *  (semantic checks are the callers'). */
bool
parseResult(const std::string &path, ShardResult &r,
            std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return false;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));

    if (!readMagic(in, kResultMagic))
        return refuse(
            log::format(path, " is not a smarts shard result"));
    const std::uint32_t version = in.u32();
    if (version != kDistribFormatVersion)
        return refuse(log::format(
            path, " is protocol version ", version,
            "; this build speaks version ", kDistribFormatVersion));
    if (in.u32() != kEndianMark)
        return refuse(log::format(path,
                                  " has a bad endianness marker"));

    r.studyId = in.u64();
    const std::uint8_t modeByte = in.u8();
    if (modeByte > static_cast<std::uint8_t>(JobMode::UnitRange))
        return refuse(log::format(path, " names unknown job mode ",
                                  static_cast<unsigned>(modeByte)));
    r.mode = static_cast<JobMode>(modeByte);
    r.configIndex = in.u32();
    r.shardIndex = in.u32();
    r.range = readRange(in);
    r.key = core::LibraryKey::read(in);
    r.shard = readShard(in);
    r.slice.measured = in.u64();
    r.slice.warmed = in.u64();
    r.slice.dropped = in.u64();
    r.slice.endPos = in.u64();
    const std::uint64_t obsCount = in.u64();
    if (in.failed() || obsCount > in.remaining() / 16)
        return refuse(log::format(
            path, " is corrupt (observation count ", obsCount, ")"));
    r.slice.obs.resize(obsCount);
    for (core::UnitObservation &o : r.slice.obs) {
        o.cpi = in.f64();
        o.epi = in.f64();
    }
    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(
            path, " is truncated or has trailing garbage"));
    return true;
}

} // namespace

std::optional<ShardResult>
ShardResult::load(const std::string &path,
                  const JobManifest &manifest, std::uint32_t config,
                  std::uint32_t shard, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    ShardResult r;
    if (!parseResult(path, r, error))
        return std::nullopt;

    // Semantic refusals: everything must match the manifest's view
    // of job (config, shard). Merging a result from another study,
    // another job, or another key would corrupt the estimate
    // silently — exactly what this protocol exists to prevent.
    if (r.studyId != manifest.studyId)
        return refuse(log::format(
            path, " belongs to study ", r.studyId,
            ", not this manifest's study ", manifest.studyId));
    if (r.mode != JobMode::Shard)
        return refuse(log::format(
            path, " is a unit-range result, not a shard result"));
    if (r.configIndex != config || r.shardIndex != shard)
        return refuse(log::format(
            path, " is the result of job (config ", r.configIndex,
            ", shard ", r.shardIndex, "), not (config ", config,
            ", shard ", shard, ")"));
    const std::string keyMismatch =
        manifest.keyFor(config).mismatchAgainst(r.key);
    if (!keyMismatch.empty())
        return refuse(log::format(path, ": ", keyMismatch));
    if (r.shard != manifest.plan[shard])
        return refuse(log::format(
            path, ": shard-spec echo disagrees with the manifest "
                  "plan for shard ",
            shard));
    if (r.slice.measured !=
        r.slice.obs.size() * manifest.sampling.unitSize)
        return refuse(log::format(
            path, " is inconsistent (", r.slice.obs.size(),
            " observations for ", r.slice.measured,
            " measured instructions at U=",
            manifest.sampling.unitSize, ")"));
    return r;
}

std::optional<ShardResult>
ShardResult::loadRange(const std::string &path,
                       const JobManifest &manifest,
                       std::uint32_t config, const UnitRange &range,
                       std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    ShardResult r;
    if (!parseResult(path, r, error))
        return std::nullopt;

    if (r.studyId != manifest.studyId)
        return refuse(log::format(
            path, " belongs to study ", r.studyId,
            ", not this manifest's study ", manifest.studyId));
    if (r.mode != JobMode::UnitRange)
        return refuse(log::format(
            path, " is a shard result, not a unit-range result"));
    if (r.configIndex != config || r.range != range)
        return refuse(log::format(
            path, " is the result of job (config ", r.configIndex,
            ", units [", r.range.firstUnit, ", +", r.range.unitCount,
            ")), not (config ", config, ", units [", range.firstUnit,
            ", +", range.unitCount, "))"));
    if (range.unitCount == 0 ||
        range.firstUnit + range.unitCount > manifest.totalUnits)
        return refuse(log::format(
            path, " covers units [", range.firstUnit, ", +",
            range.unitCount, ") outside this study's ",
            manifest.totalUnits, " units"));
    const std::string keyMismatch =
        manifest.keyFor(config).mismatchAgainst(r.key);
    if (!keyMismatch.empty())
        return refuse(log::format(path, ": ", keyMismatch));
    if (r.slice.obs.size() > range.unitCount)
        return refuse(log::format(
            path, " is inconsistent (", r.slice.obs.size(),
            " observations for a ", range.unitCount, "-unit range)"));
    if (r.slice.measured !=
        r.slice.obs.size() * manifest.sampling.unitSize)
        return refuse(log::format(
            path, " is inconsistent (", r.slice.obs.size(),
            " observations for ", r.slice.measured,
            " measured instructions at U=",
            manifest.sampling.unitSize, ")"));
    if (r.slice.endPos != manifest.streamLength)
        return refuse(log::format(
            path, " covers a stream of ", r.slice.endPos,
            " instructions, not this study's ",
            manifest.streamLength));
    return r;
}

bool
claimJob(const std::string &dir, std::uint32_t config,
         std::uint32_t shard, const std::string &runnerId,
         double staleSeconds)
{
    return claimAt(claimPath(dir, config, shard),
                   resultPath(dir, config, shard), runnerId,
                   staleSeconds);
}

bool
claimRange(const std::string &dir, std::uint32_t config,
           const UnitRange &range, const std::string &runnerId,
           double staleSeconds)
{
    return claimAt(claimPathRange(dir, config, range),
                   resultPathRange(dir, config, range), runnerId,
                   staleSeconds);
}

bool
touchClaim(const std::string &claimFile)
{
    std::error_code ec;
    // smarts-lint: allow(no-ambient-nondeterminism) heartbeat =
    // claim-marker mtime refresh; liveness metadata only, results
    // are byte-identical whoever holds the claim.
    fs::last_write_time(claimFile, fs::file_time_type::clock::now(),
                        ec);
    return !ec;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
claimOrder(const JobManifest &manifest, const std::string &runnerId)
{
    using Job = std::pair<std::uint32_t, std::uint32_t>;
    std::vector<std::pair<Job, double>> jobs;
    jobs.reserve(manifest.jobCount());
    // Weight = a shard's measured-unit count, plus a run-out bonus
    // for the tail shard: its fast-forward to end of stream spans up
    // to one inter-unit gap (interval × U instructions) and would
    // otherwise serialize the study's finish when claimed last.
    const double tailBonus = manifest.sampling.interval / 10.0;
    for (std::uint32_t c = 0; c < manifest.configs.size(); ++c)
        for (std::uint32_t s = 0; s < manifest.plan.size(); ++s) {
            const core::ShardSpec &shard = manifest.plan[s];
            jobs.emplace_back(
                Job{c, s},
                static_cast<double>(shard.unitCount) +
                    (shard.runsTail ? tailBonus : 0.0));
        }
    return weightedOrder(jobs, manifest.studyId, runnerId);
}

std::vector<std::pair<std::uint32_t, UnitRange>>
claimOrder(const JobManifest &manifest,
           const std::vector<UnitRange> &ranges,
           const std::string &runnerId)
{
    using Job = std::pair<std::uint32_t, UnitRange>;
    std::vector<std::pair<Job, double>> jobs;
    jobs.reserve(manifest.configs.size() * ranges.size());
    for (std::uint32_t c = 0; c < manifest.configs.size(); ++c)
        for (const UnitRange &r : ranges)
            jobs.emplace_back(Job{c, r},
                              static_cast<double>(r.unitCount));
    return weightedOrder(jobs, manifest.studyId, runnerId);
}

bool
publishResult(const std::string &dir, const ShardResult &result,
              std::string *error)
{
    const std::string path =
        result.mode == JobMode::UnitRange
            ? resultPathRange(dir, result.configIndex, result.range)
            : resultPath(dir, result.configIndex,
                         result.shardIndex);
    return result.save(path, error);
}

} // namespace smarts::distrib
