#include "distrib/runner.hh"

#include <chrono>
#include <filesystem>
#include <thread>

#include "core/session.hh"
#include "util/logging.hh"

namespace smarts::distrib {

namespace fs = std::filesystem;

Runner::Runner(std::string queueDir, std::string storeRoot,
               RunnerOptions options)
    : dir_(std::move(queueDir)), store_(std::move(storeRoot)),
      options_(std::move(options))
{
}

std::optional<JobManifest>
Runner::awaitManifest(double waitSeconds, std::string *error,
                      double pollMillis) const
{
    const std::string path = manifestPath(dir_);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(waitSeconds);
    PollBackoff backoff(pollMillis);
    for (;;) {
        std::error_code ec;
        if (fs::exists(path, ec))
            return JobManifest::load(path, error);
        if (std::chrono::steady_clock::now() >= deadline) {
            if (error)
                *error = log::format("no manifest appeared at ",
                                     path, " within ", waitSeconds,
                                     "s");
            return std::nullopt;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                backoff.nextMs()));
    }
}

std::size_t
Runner::drain(const JobManifest &manifest)
{
    std::size_t executed = 0;
    for (std::uint32_t c = 0; c < manifest.configs.size(); ++c) {
        for (std::uint32_t s = 0; s < manifest.plan.size(); ++s) {
            if (!claimJob(dir_, c, s, options_.id,
                          options_.staleClaimSeconds))
                continue;
            const ShardResult result = execute(manifest, c, s);
            std::string error;
            if (!publishResult(dir_, result, &error))
                SMARTS_FATAL("runner ", options_.id,
                             ": cannot publish result for job (", c,
                             ", ", s, "): ", error);
            ++executed;
        }
    }
    return executed;
}

ShardResult
Runner::execute(const JobManifest &manifest, std::uint32_t config,
                std::uint32_t shard)
{
    const uarch::MachineConfig &machine = manifest.configs[config];
    core::SimSession session(manifest.benchmark, machine);
    if (shard > 0) {
        // Interior shards resume from the store's warm state;
        // shard 0 starts at stream start and needs no library at
        // all (a store-less runner can still contribute it).
        const core::CheckpointLibrary &library =
            libraryFor(manifest, config);
        session.restoreState(library.at(shard).arch,
                             library.at(shard).timing);
    }

    ShardResult result;
    result.studyId = manifest.studyId;
    result.configIndex = config;
    result.shardIndex = shard;
    result.key = manifest.keyFor(config);
    result.shard = manifest.plan[shard];
    result.slice = core::SystematicSampler(manifest.sampling)
                       .runSlice(session, manifest.plan[shard]);
    return result;
}

const core::CheckpointLibrary &
Runner::libraryFor(const JobManifest &manifest, std::uint32_t c)
{
    if (cachedStudyId_ != manifest.studyId) {
        libraries_.clear();
        cachedStudyId_ = manifest.studyId;
    }
    const auto cached = libraries_.find(c);
    if (cached != libraries_.end())
        return cached->second;

    const core::LibraryKey key = manifest.keyFor(c);
    std::string error;
    bool planMismatch = false;
    if (std::optional<core::CheckpointLibrary> loaded =
            store_.tryLoad(key, &error)) {
        if (loaded->plan() == manifest.plan)
            return libraries_
                .emplace(c, std::move(*loaded))
                .first->second;
        planMismatch = true;
        SMARTS_WARN("runner ", options_.id, ": stored library ",
                    store_.pathFor(key),
                    " was captured under a different shard plan; "
                    "recapturing with the manifest's");
    } else if (!error.empty()) {
        SMARTS_WARN("runner ", options_.id, ": recapturing (", error,
                    ")");
    }

    // Fallback: capture with the manifest's plan, and persist the
    // repair — a missing or REFUSED (corrupt, stale-version) file
    // would otherwise force this recapture on every later study.
    // The one file left alone is a healthy plan-mismatched library:
    // it may be exactly what another study wants.
    core::SimSession session(manifest.benchmark,
                             manifest.configs[c]);
    core::CheckpointLibrary built = core::CheckpointLibrary::build(
        session, manifest.sampling, manifest.plan);
    if (!planMismatch && !store_.save(key, built, &error))
        SMARTS_WARN("runner ", options_.id, ": could not persist ",
                    store_.pathFor(key), " (", error, ")");
    return libraries_.emplace(c, std::move(built)).first->second;
}

} // namespace smarts::distrib
