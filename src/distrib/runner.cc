#include "distrib/runner.hh"

#include <chrono>
#include <filesystem>
#include <thread>

#include "core/session.hh"
#include "util/logging.hh"

namespace smarts::distrib {

namespace fs = std::filesystem;

Runner::Runner(std::string queueDir, std::string storeRoot,
               RunnerOptions options)
    : dir_(std::move(queueDir)), store_(std::move(storeRoot)),
      options_(std::move(options))
{
}

std::optional<JobManifest>
Runner::awaitManifest(double waitSeconds, std::string *error,
                      double pollMillis) const
{
    const std::string path = manifestPath(dir_);
    const auto deadline =
        // smarts-lint: allow(no-ambient-nondeterminism) the manifest
        // wait deadline bounds how long the runner polls; expiry
        // refuses rather than degrading any result.
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(waitSeconds);
    PollBackoff backoff(pollMillis);
    std::string lastRefusal;
    for (;;) {
        std::error_code ec;
        if (fs::exists(path, ec)) {
            std::string why;
            if (std::optional<JobManifest> manifest =
                    JobManifest::load(path, &why))
                return manifest;
            // An unloadable manifest is not the end of the wait: it
            // may be a leftover from an incompatible build the
            // leader is ABOUT to replace (publishStudy resets such
            // queues). Keep polling; surface the latest refusal if
            // nothing loadable appears by the deadline.
            lastRefusal = std::move(why);
        }
        // smarts-lint: allow(no-ambient-nondeterminism) manifest
        // wait deadline: a timeout REFUSES (no partial results),
        // so wall time only decides between answer and error.
        if (std::chrono::steady_clock::now() >= deadline) {
            if (error)
                *error =
                    lastRefusal.empty()
                        ? log::format("no manifest appeared at ",
                                      path, " within ", waitSeconds,
                                      "s")
                        : log::format(
                              "no loadable manifest at ", path,
                              " within ", waitSeconds,
                              "s (last refusal: ", lastRefusal, ")");
            return std::nullopt;
        }
        std::this_thread::sleep_for(
            // smarts-lint: allow(no-ambient-nondeterminism) poll
            // backoff sleep paces queue-directory scans; it cannot
            // reach an estimate or a serialized byte.
            std::chrono::duration<double, std::milli>(
                backoff.nextMs()));
    }
}

bool
Runner::tick()
{
    if (!heartbeatPath_.empty()) {
        // smarts-lint: allow(no-ambient-nondeterminism) heartbeat
        // throttle: decides WHEN to refresh a claim marker's
        // mtime, never what any job computes.
        const auto now = std::chrono::steady_clock::now();
        if (options_.heartbeatSeconds <= 0.0 ||
            // smarts-lint: allow(no-ambient-nondeterminism) an
            // elapsed-since-last-beat compare, pacing only.
            std::chrono::duration<double>(now - lastBeat_).count() >=
                options_.heartbeatSeconds) {
            touchClaim(heartbeatPath_);
            lastBeat_ = now;
        }
    }
    return !cancelledNow();
}

std::size_t
Runner::drain(const JobManifest &manifest)
{
    return manifest.mode == JobMode::UnitRange
               ? drainRanges(manifest)
               : drainShards(manifest);
}

std::size_t
Runner::drainShards(const JobManifest &manifest)
{
    std::size_t executed = 0;
    for (const auto &[c, s] : claimOrder(manifest, options_.id)) {
        if (cancelledNow())
            break;
        if (!claimJob(dir_, c, s, options_.id,
                      options_.staleClaimSeconds))
            continue;
        heartbeatPath_ = claimPath(dir_, c, s);
        // smarts-lint: allow(no-ambient-nondeterminism) heartbeat
        // epoch for claim-liveness only; duplicated or stolen jobs
        // re-execute deterministically to identical bytes.
        lastBeat_ = std::chrono::steady_clock::now();
        if (options_.onExecute)
            options_.onExecute(log::format("c", c, "_s", s));
        const ShardResult result = execute(manifest, c, s);
        heartbeatPath_.clear();
        if (cancelledNow())
            break; // partial slice: abandon, claim left to age.
        std::string error;
        if (!publishResult(dir_, result, &error))
            SMARTS_FATAL("runner ", options_.id,
                         ": cannot publish result for job (", c,
                         ", ", s, "): ", error);
        ++executed;
    }
    return executed;
}

std::size_t
Runner::drainRanges(const JobManifest &manifest)
{
    std::size_t executed = 0;
    // Sweep until a full pass claims nothing: the leader may SPLIT
    // ranges mid-drain (a runner joined), so the live partition is
    // re-scanned between sweeps.
    for (;;) {
        if (cancelledNow())
            break;
        const std::vector<UnitRange> ranges = listRanges(dir_);
        if (ranges.empty())
            break;
        std::size_t claimed = 0;
        for (const auto &[c, r] :
             claimOrder(manifest, ranges, options_.id)) {
            if (cancelledNow())
                return executed;
            if (!claimRange(dir_, c, r, options_.id,
                            options_.staleClaimSeconds))
                continue;
            ++claimed;
            heartbeatPath_ = claimPathRange(dir_, c, r);
            // smarts-lint: allow(no-ambient-nondeterminism) the
            // heartbeat epoch is claim-liveness only; which units
            // run where never changes their byte-exact results.
            lastBeat_ = std::chrono::steady_clock::now();
            if (options_.onExecute)
                options_.onExecute(log::format("c", c, "_") +
                                   rangeName(r));
            const std::optional<ShardResult> result =
                executeRange(manifest, c, r);
            heartbeatPath_.clear();
            if (!result)
                return executed; // cancelled mid-job: abandon.
            std::string error;
            if (!publishResult(dir_, *result, &error))
                SMARTS_FATAL("runner ", options_.id,
                             ": cannot publish result for job "
                             "(config ", c, ", units [",
                             r.firstUnit, ", +", r.unitCount,
                             ")): ", error);
            ++executed;
        }
        if (!claimed)
            break;
    }
    return executed;
}

ShardResult
Runner::execute(const JobManifest &manifest, std::uint32_t config,
                std::uint32_t shard)
{
    const uarch::MachineConfig &machine = manifest.configs[config];
    core::SimSession session(manifest.benchmark, machine);
    if (shard > 0) {
        // Interior shards resume from the store's warm state;
        // shard 0 starts at stream start and needs no library at
        // all (a store-less runner can still contribute it).
        const core::CheckpointLibrary &library =
            libraryFor(manifest, config);
        session.restoreState(library.at(shard).arch,
                             library.at(shard).timing);
    }

    ShardResult result;
    result.studyId = manifest.studyId;
    result.configIndex = config;
    result.shardIndex = shard;
    result.key = manifest.keyFor(config);
    result.shard = manifest.plan[shard];
    result.slice =
        core::SystematicSampler(manifest.sampling)
            .runSlice(session, manifest.plan[shard],
                      [this] { return tick(); });
    return result;
}

std::optional<ShardResult>
Runner::executeRange(const JobManifest &manifest,
                     std::uint32_t config, const UnitRange &range)
{
    const core::LivePointLibrary &library =
        livePointsFor(manifest, config);
    core::SimSession session(manifest.benchmark,
                             manifest.configs[config]);

    ShardResult result;
    result.studyId = manifest.studyId;
    result.mode = JobMode::UnitRange;
    result.configIndex = config;
    result.range = range;
    result.key = manifest.keyFor(config);
    result.slice = core::SystematicSampler(manifest.sampling)
                       .measureUnits(session, library,
                                     range.firstUnit,
                                     range.unitCount,
                                     [this] { return tick(); });
    if (cancelledNow())
        return std::nullopt;
    return result;
}

const core::CheckpointLibrary &
Runner::libraryFor(const JobManifest &manifest, std::uint32_t c)
{
    if (cachedStudyId_ != manifest.studyId) {
        libraries_.clear();
        livePointLibraries_.clear();
        cachedStudyId_ = manifest.studyId;
    }
    const auto cached = libraries_.find(c);
    if (cached != libraries_.end())
        return cached->second;

    const core::LibraryKey key = manifest.keyFor(c);
    std::string error;
    bool planMismatch = false;
    if (std::optional<core::CheckpointLibrary> loaded =
            store_.tryLoad(key, &error)) {
        if (loaded->plan() == manifest.plan)
            return libraries_
                .emplace(c, std::move(*loaded))
                .first->second;
        planMismatch = true;
        SMARTS_WARN("runner ", options_.id, ": stored library ",
                    store_.pathFor(key),
                    " was captured under a different shard plan; "
                    "recapturing with the manifest's");
    } else if (!error.empty()) {
        SMARTS_WARN("runner ", options_.id, ": recapturing (", error,
                    ")");
    }

    // Fallback: capture with the manifest's plan, and persist the
    // repair — a missing or REFUSED (corrupt, stale-version) file
    // would otherwise force this recapture on every later study.
    // The one file left alone is a healthy plan-mismatched library:
    // it may be exactly what another study wants.
    core::SimSession session(manifest.benchmark,
                             manifest.configs[c]);
    core::CheckpointLibrary built = core::CheckpointLibrary::build(
        session, manifest.sampling, manifest.plan);
    if (!planMismatch && !store_.save(key, built, &error))
        SMARTS_WARN("runner ", options_.id, ": could not persist ",
                    store_.pathFor(key), " (", error, ")");
    return libraries_.emplace(c, std::move(built)).first->second;
}

const core::LivePointLibrary &
Runner::livePointsFor(const JobManifest &manifest, std::uint32_t c)
{
    if (cachedStudyId_ != manifest.studyId) {
        libraries_.clear();
        livePointLibraries_.clear();
        cachedStudyId_ = manifest.studyId;
    }
    const auto cached = livePointLibraries_.find(c);
    if (cached != livePointLibraries_.end())
        return cached->second;

    const core::LibraryKey key = manifest.keyFor(c);
    std::string error;
    bool mismatch = false;
    if (std::optional<core::LivePointLibrary> loaded =
            store_.tryLoadLivePoints(key, &error)) {
        if (loaded->unitCount() == manifest.totalUnits &&
            loaded->streamLength() == manifest.streamLength)
            return livePointLibraries_
                .emplace(c, std::move(*loaded))
                .first->second;
        mismatch = true;
        SMARTS_WARN("runner ", options_.id,
                    ": stored live-point library ",
                    store_.livePointPathFor(key), " has ",
                    loaded->unitCount(), " units over ",
                    loaded->streamLength(),
                    " instructions, but the manifest says ",
                    manifest.totalUnits, " over ",
                    manifest.streamLength, "; recapturing");
    } else if (!error.empty()) {
        SMARTS_WARN("runner ", options_.id, ": recapturing (",
                    error, ")");
    }

    // Fallback: capture live-points locally; persist the repair for
    // a missing or refused file (a healthy-but-mismatched one is
    // left alone — it may be what another study wants).
    core::SimSession session(manifest.benchmark,
                             manifest.configs[c]);
    core::LivePointLibrary built = core::LivePointLibrary::build(
        session, manifest.sampling);
    if (built.unitCount() != manifest.totalUnits ||
        built.streamLength() != manifest.streamLength)
        SMARTS_FATAL("runner ", options_.id,
                     ": locally captured live-points (",
                     built.unitCount(), " units over ",
                     built.streamLength(),
                     " instructions) disagree with the manifest (",
                     manifest.totalUnits, " over ",
                     manifest.streamLength,
                     ") — benchmark sources diverged?");
    if (!mismatch && !store_.saveLivePoints(built, key, &error))
        SMARTS_WARN("runner ", options_.id, ": could not persist ",
                    store_.livePointPathFor(key), " (", error, ")");
    return livePointLibraries_.emplace(c, std::move(built))
        .first->second;
}

} // namespace smarts::distrib
