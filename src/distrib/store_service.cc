#include "distrib/store_service.hh"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include <unistd.h>

#include "distrib/protocol.hh"
#include "util/logging.hh"

namespace smarts::distrib {

namespace fs = std::filesystem;

namespace {

/** File magics, same 8-byte convention as the job queue. */
constexpr char kRequestMagic[8] = {'S', 'M', 'R', 'T',
                                   'S', 'R', 'E', 'Q'};
constexpr char kReplyMagic[8] = {'S', 'M', 'R', 'T',
                                 'S', 'R', 'E', 'P'};

/** Endianness probe, same convention as the .smck format. */
constexpr std::uint32_t kEndianMark = 0x01020304u;

void
writeMagic(util::BinaryWriter &out, const char (&magic)[8])
{
    for (const char c : magic)
        out.u8(static_cast<std::uint8_t>(c));
}

bool
readMagic(util::BinaryReader &in, const char (&magic)[8])
{
    bool ok = true;
    for (const char c : magic)
        ok &= in.u8() == static_cast<std::uint8_t>(c);
    return ok;
}

/** Shared header check for both file kinds. */
bool
checkHeader(util::BinaryReader &in, const char (&magic)[8],
            const std::string &path, const char *what,
            std::string *error)
{
    if (!readMagic(in, magic)) {
        if (error)
            *error = log::format(path, " is not a smarts ", what);
        return false;
    }
    const std::uint32_t version = in.u32();
    if (version != kStoreServiceFormatVersion) {
        if (error)
            *error = log::format(
                path, " is store-service version ", version,
                "; this build speaks version ",
                kStoreServiceFormatVersion);
        return false;
    }
    if (in.u32() != kEndianMark) {
        if (error)
            *error =
                log::format(path, " has a bad endianness marker");
        return false;
    }
    return true;
}

} // namespace

std::string
daemonMarkerPath(const std::string &svc)
{
    return (fs::path(svc) / "stored.pid").string();
}

std::string
requestPath(const std::string &svc, const std::string &reqId)
{
    return (fs::path(svc) / "requests" / (reqId + ".req")).string();
}

std::string
replyPath(const std::string &svc, const std::string &reqId)
{
    return (fs::path(svc) / "replies" / (reqId + ".rep")).string();
}

bool
daemonPresent(const std::string &svc)
{
    std::error_code ec;
    return fs::exists(daemonMarkerPath(svc), ec);
}

core::LibraryKey
StoreRequest::key() const
{
    return core::LibraryKey::of(benchmark, machine, sampling);
}

bool
StoreRequest::save(const std::string &path, std::string *error) const
{
    util::BinaryWriter out;
    writeMagic(out, kRequestMagic);
    out.u32(kStoreServiceFormatVersion);
    out.u32(kEndianMark);
    out.str(reqId);
    out.u8(static_cast<std::uint8_t>(kind));
    // Benchmark + sampling + geometry via the LibraryKey encoding
    // (docs/checkpoint-format.md § Key), then the FULL machine so a
    // miss is capturable from this file alone.
    key().write(out);
    writeMachineConfig(out, machine);
    return out.writeFile(path, error);
}

std::optional<StoreRequest>
StoreRequest::load(const std::string &path, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));
    if (!checkHeader(in, kRequestMagic, path,
                     "store-service request", error))
        return std::nullopt;

    StoreRequest r;
    r.reqId = in.str();
    const std::uint8_t kindByte = in.u8();
    if (kindByte >
        static_cast<std::uint8_t>(StoreRequestKind::EnsureLivePoints))
        return refuse(log::format(path, " names unknown request "
                                        "kind ",
                                  static_cast<unsigned>(kindByte)));
    r.kind = static_cast<StoreRequestKind>(kindByte);
    const core::LibraryKey claimed = core::LibraryKey::read(in);
    r.benchmark = claimed.benchmark;
    r.sampling = claimed.sampling;
    r.machine = readMachineConfig(in);
    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(path, " is truncated or has "
                                        "trailing bytes"));
    if (r.reqId.empty())
        return refuse(log::format(path, " has an empty request id"));

    // The geometry-hash claim must be reproducible from the embedded
    // config by THIS build — a client built from incompatible
    // sources fails loudly here, never captures mis-keyed state.
    const std::uint64_t have = uarch::warmGeometryHash(r.machine);
    if (claimed.geometryHash != have)
        return refuse(log::format(
            path, " claims geometry hash the daemon's build does "
                  "not reproduce (claimed ",
            claimed.geometryHash, ", computed ", have, ")"));
    return r;
}

bool
StoreReply::save(const std::string &file,
                 std::string *error) const
{
    util::BinaryWriter out;
    writeMagic(out, kReplyMagic);
    out.u32(kStoreServiceFormatVersion);
    out.u32(kEndianMark);
    out.str(reqId);
    out.u8(static_cast<std::uint8_t>(status));
    out.str(path);
    out.str(this->error);
    out.u64(hits);
    out.u64(misses);
    out.u64(captures);
    out.u64(evictions);
    return out.writeFile(file, error);
}

std::optional<StoreReply>
StoreReply::load(const std::string &path, std::string *error)
{
    auto refuse = [error](std::string why) {
        if (error)
            *error = std::move(why);
        return std::nullopt;
    };

    std::string ioError;
    util::BinaryReader in =
        util::BinaryReader::fromFile(path, &ioError);
    if (in.failed())
        return refuse(std::move(ioError));
    if (!checkHeader(in, kReplyMagic, path, "store-service reply",
                     error))
        return std::nullopt;

    StoreReply r;
    r.reqId = in.str();
    const std::uint8_t statusByte = in.u8();
    if (statusByte >
        static_cast<std::uint8_t>(StoreReplyStatus::Refused))
        return refuse(log::format(path, " names unknown reply "
                                        "status ",
                                  static_cast<unsigned>(statusByte)));
    r.status = static_cast<StoreReplyStatus>(statusByte);
    r.path = in.str();
    r.error = in.str();
    r.hits = in.u64();
    r.misses = in.u64();
    r.captures = in.u64();
    r.evictions = in.u64();
    if (in.failed() || in.remaining() != 0)
        return refuse(log::format(path, " is truncated or has "
                                        "trailing bytes"));
    return r;
}

StoreServiceClient::StoreServiceClient(std::string svc,
                                       std::string id)
    : svc_(std::move(svc)), id_(std::move(id))
{
    if (id_.empty())
        id_ = log::format("client-", ::getpid());
}

StoreServiceOutcome
StoreServiceClient::ensureLivePoints(
    core::CheckpointStore &fallback,
    const workloads::BenchmarkSpec &benchmark,
    const uarch::MachineConfig &machine,
    const core::SamplingConfig &sampling,
    double timeoutSeconds) const
{
    StoreServiceOutcome outcome;
    const core::LibraryKey key =
        core::LibraryKey::of(benchmark, machine, sampling);

    // The degrade path: the caller's own direct store, same
    // miss-capture-reload sequence the daemon would have run.
    auto direct = [&](const char *why) {
        if (why)
            SMARTS_WARN("store service at ", svc_, ": ", why,
                        "; serving from the local store");
        outcome.degraded = why != nullptr;
        std::string error;
        outcome.library = fallback.tryLoadLivePoints(key, &error);
        if (!outcome.library) {
            outcome.captured =
                fallback.ensureLivePoints(benchmark, {machine},
                                          sampling) > 0;
            outcome.library = fallback.tryLoadLivePoints(key, &error);
        }
        if (!outcome.library)
            outcome.error = error.empty()
                                ? "local live-point capture failed"
                                : error;
        return outcome;
    };

    if (!daemonPresent(svc_))
        return direct(nullptr); // no daemon = the normal local path.

    static std::atomic<unsigned> serial{0};
    StoreRequest request;
    request.reqId =
        log::format(id_, "-", serial.fetch_add(1));
    request.benchmark = benchmark;
    request.sampling = sampling;
    request.machine = machine;

    std::string error;
    if (!request.save(requestPath(svc_, request.reqId), &error))
        return direct(error.c_str());

    // Wait for the reply: the protocol's standard exponential poll
    // backoff, bounded by the caller's deadline, aborted early if
    // the daemon's presence marker vanishes (death mid-lookup).
    const std::string reply = replyPath(svc_, request.reqId);
    const auto deadline =
        // smarts-lint: allow(no-ambient-nondeterminism) the reply
        // deadline bounds POLLING, never an estimate: the library
        // that comes back is validated bit-for-bit regardless of
        // when (or whether) the daemon answers.
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(
            timeoutSeconds > 0.0 ? timeoutSeconds : 0.0);
    PollBackoff backoff;
    std::error_code ec;
    for (;;) {
        if (fs::exists(reply, ec))
            break;
        if (!daemonPresent(svc_)) {
            fs::remove(requestPath(svc_, request.reqId), ec);
            return direct("daemon died mid-lookup");
        }
        // smarts-lint: allow(no-ambient-nondeterminism) give-up
        // check for a reply that never comes; see deadline above.
        if (std::chrono::steady_clock::now() >= deadline) {
            fs::remove(requestPath(svc_, request.reqId), ec);
            return direct("timed out waiting for a reply");
        }
        std::this_thread::sleep_for(
            // smarts-lint: allow(no-ambient-nondeterminism) poll
            // pacing only.
            std::chrono::duration<double, std::milli>(
                backoff.nextMs()));
    }

    auto parsed = StoreReply::load(reply, &error);
    fs::remove(reply, ec); // consumed either way.
    if (!parsed)
        return direct(error.c_str());
    outcome.reply = *parsed;
    if (parsed->status == StoreReplyStatus::Refused)
        return direct(parsed->error.empty()
                          ? "daemon refused the request"
                          : parsed->error.c_str());

    outcome.library =
        core::LivePointLibrary::load(parsed->path, key, &error);
    if (!outcome.library)
        return direct(error.c_str());
    outcome.captured =
        parsed->status == StoreReplyStatus::Captured;
    return outcome;
}

} // namespace smarts::distrib
