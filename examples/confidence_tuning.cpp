/**
 * @file
 * Walk-through of the two-step SMARTS procedure (paper Section 5.1):
 * how the initial sample's measured coefficient of variation V̂ sizes
 * the tuned second run, and what different confidence targets cost in
 * detailed-simulated instructions.
 *
 * Usage: confidence_tuning [benchmark]   (default: bsearch-2)
 */

#include <cstdio>
#include <memory>
#include <string>

#include "core/procedure.hh"
#include "core/session.hh"
#include "stats/confidence.hh"
#include "uarch/config.hh"
#include "util/table.hh"
#include "workloads/benchmark.hh"

int
main(int argc, char **argv)
{
    using namespace smarts;

    const std::string name = argc > 1 ? argv[1] : "bsearch-2";
    const auto spec =
        workloads::findBenchmark(name, workloads::Scale::Small);
    const auto config = uarch::MachineConfig::eightWay();

    std::uint64_t length;
    {
        core::SimSession probe(spec, config);
        length = probe.fastForward(~0ull >> 1, core::WarmingMode::None);
    }
    std::printf("benchmark %s: %.1f M instructions, N = %llu units of "
                "1000\n\n",
                spec.name.c_str(), static_cast<double>(length) / 1e6,
                static_cast<unsigned long long>(length / 1000));

    struct Target
    {
        const char *label;
        stats::ConfidenceSpec spec;
    };
    const Target targets[] = {
        {"95% / +/-3%", stats::ConfidenceSpec::ninetyFive3pct()},
        {"99.7% / +/-3%",
         stats::ConfidenceSpec::virtuallyCertain3pct()},
        {"99.7% / +/-1%",
         stats::ConfidenceSpec::virtuallyCertain1pct()},
    };

    TextTable table({"target", "n_init", "CI after init", "met?",
                     "n_tuned", "final CPI", "final CI",
                     "insts detailed"});

    for (const Target &t : targets) {
        core::ProcedureConfig pc;
        pc.unitSize = 1000;
        pc.detailedWarming = 2000;
        pc.warming = core::WarmingMode::Functional;
        pc.target = t.spec;
        // A deliberately small first sample so the two-step logic has
        // to engage for the tight targets.
        pc.nInit = 300;

        const core::SmartsProcedure proc(pc);
        const auto result = proc.estimate(
            [&] {
                return std::make_unique<core::SimSession>(spec, config);
            },
            length);

        const auto &fin = result.final();
        table.row()
            .add(t.label)
            .add(result.initial.units())
            .addPercent(
                result.initial.cpiConfidenceInterval(t.spec.level), 2)
            .add(result.metOnFirstTry() ? "yes" : "no")
            .add(result.metOnFirstTry()
                     ? std::string("-")
                     : std::to_string(result.recommendedN))
            .add(fin.cpi(), 4)
            .addPercent(fin.cpiConfidenceInterval(t.spec.level), 2)
            .add(fin.instructionsMeasured + fin.instructionsWarmed +
                 fin.instructionsDropped);
        std::printf(".");
        std::fflush(stdout);
    }

    std::printf("\n\nTwo-step SMARTS procedure on %s "
                "(initial sample: 300 units)\n\n%s\n",
                spec.name.c_str(), table.toString().c_str());
    std::printf("Tighter targets size n_tuned = ((z*V)/eps)^2 from the "
                "measured V of the initial run;\nhalving eps costs 4x "
                "the measured units (paper Section 2).\n");
    return 0;
}
