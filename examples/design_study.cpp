/**
 * @file
 * Design study: the workflow the paper motivates — comparing two
 * microarchitectures (the 8-way baseline vs the aggressive 16-way)
 * across a benchmark suite *without* full-stream simulation. SMARTS
 * gives every per-benchmark CPI a confidence interval, so the
 * speedup conclusion carries quantified error.
 *
 * Usage: design_study [mini|small]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/sampler.hh"
#include "core/session.hh"
#include "uarch/config.hh"
#include "util/table.hh"
#include "workloads/benchmark.hh"

int
main(int argc, char **argv)
{
    using namespace smarts;

    const auto scale =
        (argc > 1 && std::string(argv[1]) == "small")
            ? workloads::Scale::Small
            : workloads::Scale::Mini;

    const auto cfg8 = uarch::MachineConfig::eightWay();
    const auto cfg16 = uarch::MachineConfig::sixteenWay();

    auto estimate = [&](const workloads::BenchmarkSpec &spec,
                        const uarch::MachineConfig &cfg) {
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = cfg.name == "8-way" ? 2000 : 4000;
        sc.interval = 10; // ~10% of units sampled at this scale
        sc.warming = core::WarmingMode::Functional;
        core::SimSession session(spec, cfg);
        return core::SystematicSampler(sc).run(session);
    };

    TextTable table({"benchmark", "CPI 8-way", "+/-", "CPI 16-way",
                     "+/-", "speedup"});
    double geomean = 1.0;
    int count = 0;

    for (const auto &spec : workloads::quickSuite(scale)) {
        const auto est8 = estimate(spec, cfg8);
        const auto est16 = estimate(spec, cfg16);
        const double speedup = est8.cpi() / est16.cpi();
        geomean *= speedup;
        ++count;
        table.row()
            .add(spec.name)
            .add(est8.cpi(), 3)
            .addPercent(est8.cpiConfidenceInterval(0.997), 1)
            .add(est16.cpi(), 3)
            .addPercent(est16.cpiConfidenceInterval(0.997), 1)
            .add(speedup, 2);
        std::printf(".");
        std::fflush(stdout);
    }
    geomean = std::pow(geomean, 1.0 / count);

    std::printf("\n\n8-way vs 16-way via SMARTS sampling "
                "(99.7%% confidence intervals)\n\n%s\n",
                table.toString().c_str());
    std::printf("geometric-mean speedup of the 16-way design: %.2fx\n",
                geomean);
    return 0;
}
