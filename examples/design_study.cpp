/**
 * @file
 * Design study: the workflow the paper motivates — comparing two
 * microarchitectures (the 8-way baseline vs the aggressive 16-way)
 * across a benchmark suite *without* full-stream simulation.
 *
 * This runs on the smarts::exec experiment engine: each benchmark is
 * one matched multi-config job, so a single functional-warming
 * stream feeds both machines' timing models and every sampled unit
 * is measured on both (a matched pair). The speedup conclusion
 * carries a matched-pair confidence interval — tighter than
 * combining two independent per-config intervals, because the
 * shared per-unit variance cancels in the difference — and the
 * batch is sharded across hardware threads with bit-identical
 * results at any thread count.
 *
 * Usage: design_study [mini|small]
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "exec/experiment.hh"
#include "uarch/config.hh"
#include "util/table.hh"
#include "workloads/benchmark.hh"

int
main(int argc, char **argv)
{
    using namespace smarts;

    const auto scale =
        (argc > 1 && std::string(argv[1]) == "small")
            ? workloads::Scale::Small
            : workloads::Scale::Mini;

    const auto cfg8 = uarch::MachineConfig::eightWay();
    const auto cfg16 = uarch::MachineConfig::sixteenWay();
    const auto suite = workloads::quickSuite(scale);

    std::vector<exec::ExperimentSpec> specs(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        specs[i].benchmark = suite[i];
        specs[i].configs = {cfg8, cfg16};
        specs[i].sampling.unitSize = 1000;
        specs[i].sampling.detailedWarming = 4000; // max of 2000/4000.
        specs[i].sampling.interval = 30; // matched pairs need ~3x
                                         // fewer units than two
                                         // independent runs at k=10.
        specs[i].sampling.warming = core::WarmingMode::Functional;
    }

    exec::ExperimentRunner runner; // one worker per hardware thread.
    const auto results = runner.run(specs);

    TextTable table({"benchmark", "CPI 8-way", "+/-", "CPI 16-way",
                     "+/-", "speedup", "+/- (matched)"});
    double geomean = 1.0;
    int count = 0;

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const core::MatchedEstimate &est = results[i].estimate;
        const auto &e8 = est.perConfig[0];
        const auto &e16 = est.perConfig[1];
        const double speedup = est.speedup(1);
        geomean *= speedup;
        ++count;
        table.row()
            .add(suite[i].name)
            .add(e8.cpi(), 3)
            .addPercent(e8.cpiConfidenceInterval(0.997), 1)
            .add(e16.cpi(), 3)
            .addPercent(e16.cpiConfidenceInterval(0.997), 1)
            .add(speedup, 2)
            .addPercent(est.deltaCiRelative(1, 0.997), 1);
    }
    geomean = std::pow(geomean, 1.0 / count);

    std::printf("8-way vs 16-way via matched-pair SMARTS sampling "
                "(99.7%% confidence intervals)\n"
                "engine: %u thread(s), one functional-warming stream "
                "per benchmark feeding both configs\n\n%s\n",
                runner.threadCount(), table.toString().c_str());
    std::printf("geometric-mean speedup of the 16-way design: %.2fx\n",
                geomean);
    return 0;
}
