/**
 * @file
 * Quickstart: estimate the CPI and EPI of one benchmark with SMARTS.
 *
 * Demonstrates the minimal flow:
 *   1. pick a benchmark and machine configuration,
 *   2. find the benchmark length with one fast functional run,
 *   3. run the SMARTS procedure (U=1000, W=2000, functional warming,
 *      n_init=10,000-equivalent for the benchmark size) with each
 *      pass sharded across threads via checkpointed functional
 *      warming (estimates are bit-identical to the serial path),
 *      consulting a persistent checkpoint store so a RERUN of this
 *      example pays no capture (functional-warming) cost at all,
 *   4. read the estimate and its 99.7% confidence interval.
 *
 * Usage: quickstart [benchmark] [8|16] [store-dir]
 *        (default: sort-2 on 8-way, store in ./quickstart_ckpt_store)
 */

#include <cstdio>
#include <memory>
#include <string>

#include "core/checkpoint_store.hh"
#include "core/procedure.hh"
#include "core/session.hh"
#include "exec/thread_pool.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

int
main(int argc, char **argv)
{
    using namespace smarts;

    const std::string bench_name = argc > 1 ? argv[1] : "sort-2";
    const bool sixteen = argc > 2 && std::string(argv[2]) == "16";
    const std::string store_dir =
        argc > 3 ? argv[3] : "quickstart_ckpt_store";

    const auto config = sixteen ? uarch::MachineConfig::sixteenWay()
                                : uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark(bench_name, workloads::Scale::Small);

    std::printf("SMARTS quickstart: %s on the %s machine\n\n",
                spec.name.c_str(), config.name.c_str());

    // Step 1: one functional pass gives the benchmark length (the
    // population size N = length / U).
    std::uint64_t length;
    {
        core::SimSession probe(spec, config);
        length = probe.fastForward(~0ull >> 1, core::WarmingMode::None);
    }
    std::printf("benchmark length: %.1f M instructions\n",
                static_cast<double>(length) / 1e6);

    // Step 2: the SMARTS procedure. On a full SPEC-scale run n_init
    // would be 10,000 units; scale it to this benchmark so the
    // detailed fraction stays comparable.
    core::ProcedureConfig pc;
    pc.unitSize = 1000;
    pc.detailedWarming = sixteen ? 4000 : 2000;
    pc.warming = core::WarmingMode::Functional;
    pc.target = stats::ConfidenceSpec::virtuallyCertain3pct();
    pc.nInit = std::min<std::uint64_t>(10'000, length / 1000 / 5);

    // Step 3: each sampling pass runs checkpoint-sharded — the unit
    // grid splits into shards that resume from captured warm state
    // on the pool — and store-backed: each pass checks the
    // persistent store before capturing and persists what it
    // captures, so rerunning this example skips capture entirely.
    // Either way the estimate is bit-identical to the serial
    // proc.estimate() path.
    exec::ThreadPool pool; // one worker per hardware thread.
    const std::size_t shards = 2 * pool.threadCount() + 2;
    core::CheckpointStore store(store_dir);
    std::printf("sharding each pass %zu ways across %u thread(s); "
                "checkpoint store: %s\n",
                shards, pool.threadCount(), store.root().c_str());

    const core::SmartsProcedure proc(pc);
    const core::ProcedureResult result = proc.estimateSharded(
        [&] { return std::make_unique<core::SimSession>(spec, config); },
        spec, config, length, pool, shards, store);

    const core::SmartsEstimate &est = result.final();
    std::printf("\nmeasured %llu sampling units of U=%llu "
                "(+W=%llu detailed warming each)\n",
                static_cast<unsigned long long>(est.units()),
                static_cast<unsigned long long>(pc.unitSize),
                static_cast<unsigned long long>(pc.detailedWarming));
    std::printf("detailed fraction of the stream: %.2f%%\n",
                est.detailedFraction() * 100.0);
    if (!result.metOnFirstTry()) {
        std::printf("(first run missed the target; rerun with "
                    "n_tuned = %llu)\n",
                    static_cast<unsigned long long>(
                        result.recommendedN));
    }

    std::printf("\nCPI estimate : %.4f +/- %.2f%% (99.7%% confidence, "
                "V_CPI = %.3f)\n",
                est.cpi(), est.cpiConfidenceInterval(0.997) * 100.0,
                est.cpiCv());
    std::printf("EPI estimate : %.3f nJ/inst +/- %.2f%%\n", est.epi(),
                est.epiConfidenceInterval(0.997) * 100.0);
    std::printf("\n(To this add the empirically bounded ~2%% "
                "microarchitectural warming bias; paper Section 5. "
                "Rerun: the store makes repeat passes capture-free.)\n");
    return 0;
}
