/**
 * @file
 * Methodology duel (paper Section 5.3): SimPoint's cluster-and-pick
 * approach vs SMARTS systematic sampling on a phase-heavy benchmark,
 * both judged against the full-stream detailed reference.
 *
 * Usage: simpoint_vs_smarts [benchmark]   (default: phase-1)
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "core/reference.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "simpoint/simpoint.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

int
main(int argc, char **argv)
{
    using namespace smarts;

    const std::string name = argc > 1 ? argv[1] : "phase-1";
    const auto scale = workloads::Scale::Mini;
    const auto spec = workloads::findBenchmark(name, scale);
    const auto config = uarch::MachineConfig::eightWay();

    std::printf("full-stream reference for %s (one-off cost)...\n",
                spec.name.c_str());
    core::ReferenceRunner runner(scale, config);
    const core::ReferenceResult ref = runner.get(spec);
    std::printf("reference CPI = %.4f over %.1f M instructions\n\n",
                ref.cpi, static_cast<double>(ref.instructions) / 1e6);

    auto factory = [&] {
        return std::make_unique<core::SimSession>(spec, config);
    };

    // --- SimPoint ---------------------------------------------------
    simpoint::SimPointConfig sp;
    sp.intervalSize = 100'000; // scaled from the published 10M-100M
    sp.maxK = 10;
    const auto sp_est = simpoint::runSimPoint(factory, sp);
    const double sp_err = (sp_est.cpi - ref.cpi) / ref.cpi;
    std::printf("SimPoint : k=%u intervals of %llu -> CPI %.4f "
                "(error %+.2f%%, no confidence bound)\n",
                sp_est.selection.k,
                static_cast<unsigned long long>(sp.intervalSize),
                sp_est.cpi, sp_err * 100.0);

    // --- SMARTS -----------------------------------------------------
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = core::SamplingConfig::chooseInterval(
        ref.instructions, sc.unitSize,
        std::max<std::uint64_t>(
            sp_est.instructionsDetailed / sc.unitSize, 100));
    sc.warming = core::WarmingMode::Functional;
    auto session = factory();
    const auto sm_est = core::SystematicSampler(sc).run(*session);
    const double sm_err = (sm_est.cpi() - ref.cpi) / ref.cpi;
    std::printf("SMARTS   : %llu units of %llu -> CPI %.4f "
                "(error %+.2f%%, 99.7%% CI +/-%.2f%%)\n\n",
                static_cast<unsigned long long>(sm_est.units()),
                static_cast<unsigned long long>(sc.unitSize),
                sm_est.cpi(), sm_err * 100.0,
                sm_est.cpiConfidenceInterval(0.997) * 100.0);

    std::printf("Both methods detail-simulated a similar instruction "
                "budget\n(SimPoint %.2f M vs SMARTS %.2f M), but only "
                "SMARTS reports a\nconfidence interval, and many small "
                "units track phase behaviour\nthat a few large "
                "representatives can miss (paper Figure 8).\n",
                static_cast<double>(sp_est.instructionsDetailed) / 1e6,
                static_cast<double>(sm_est.instructionsMeasured +
                                    sm_est.instructionsWarmed +
                                    sm_est.instructionsDropped) /
                    1e6);
    return 0;
}
