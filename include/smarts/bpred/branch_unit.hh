/**
 * @file
 * BranchUnit: gshare direction predictor + direct-mapped BTB +
 * return-address stack. Like the caches, it is long-history state
 * shared between the detailed core (predict + update with timing
 * consequences) and functional warming (update only).
 */

#ifndef SMARTS_BPRED_BRANCH_UNIT_HH
#define SMARTS_BPRED_BRANCH_UNIT_HH

#include <cstdint>
#include <vector>

#include "sisa/encoding.hh"
#include "util/binary_io.hh"
#include "util/logging.hh"

namespace smarts::bpred {

struct BpredConfig
{
    std::uint32_t historyBits = 12; ///< gshare table = 2^historyBits.
    std::uint32_t btbEntries = 512;
    std::uint32_t rasEntries = 8;
};

struct Prediction
{
    bool taken = false;
    std::uint32_t target = 0;
};

/**
 * Serialized predictor contents for checkpointing: gshare counters,
 * BTB, RAS, and the global history register.
 */
struct BranchUnitState
{
    std::vector<std::uint8_t> counters;
    std::vector<std::uint32_t> btbTags;
    std::vector<std::uint32_t> btbTargets;
    std::vector<std::uint32_t> ras;
    std::uint32_t history = 0;
    std::uint32_t rasTop = 0;
    std::uint64_t lookups = 0;

    std::size_t
    byteSize() const
    {
        return counters.size() +
               (btbTags.size() + btbTargets.size() + ras.size()) *
                   sizeof(std::uint32_t) +
               2 * sizeof(std::uint32_t) + sizeof(std::uint64_t);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        out.vecU8(counters);
        out.vecU32(btbTags);
        out.vecU32(btbTargets);
        out.vecU32(ras);
        out.u32(history);
        out.u32(rasTop);
        out.u64(lookups);
    }

    void
    read(util::BinaryReader &in)
    {
        counters = in.vecU8();
        btbTags = in.vecU32();
        btbTargets = in.vecU32();
        ras = in.vecU32();
        history = in.u32();
        rasTop = in.u32();
        lookups = in.u64();
    }
};

class BranchUnit
{
  public:
    explicit BranchUnit(const BpredConfig &config) : config_(config)
    {
        counters_.assign(std::size_t(1) << config.historyBits, 1);
        btbTags_.assign(config.btbEntries, 0);
        btbTargets_.assign(config.btbEntries, 0);
        ras_.assign(config.rasEntries, 0);
    }

    /**
     * Predict direction and target for the branch at @p pc. Pops the
     * RAS for returns (JR through the r31 link convention); callers
     * never roll back, so speculative RAS repair is unnecessary.
     */
    Prediction
    predict(std::uint32_t pc, const sisa::DecodedInst &di)
    {
        ++lookups_;
        Prediction p;
        if (di.isCondBranch()) {
            p.taken = counters_[tableIndex(pc)] >= 2;
            p.target = p.taken ? di.branchTarget(pc) : pc + 4;
        } else if (di.op == sisa::Opcode::JAL) {
            p.taken = true;
            p.target = di.branchTarget(pc);
        } else if (di.op == sisa::Opcode::JR) {
            p.taken = true;
            if (di.a == 31 && rasTop_ > 0) {
                p.target = ras_[--rasTop_ % ras_.size()];
            } else {
                const std::uint32_t slot = btbIndex(pc);
                p.target =
                    btbTags_[slot] == pc ? btbTargets_[slot] : pc + 4;
            }
        }
        return p;
    }

    /**
     * Train on the resolved outcome. Used by the detailed core after
     * every executed branch and by functional warming in program
     * order (WarmingMode::BpredOnly / Functional).
     */
    void
    update(std::uint32_t pc, const sisa::DecodedInst &di, bool taken,
           std::uint32_t target)
    {
        if (di.isCondBranch()) {
            std::uint8_t &ctr = counters_[tableIndex(pc)];
            if (taken && ctr < 3)
                ++ctr;
            else if (!taken && ctr > 0)
                --ctr;
            history_ = (history_ << 1) | (taken ? 1u : 0u);
        } else if (di.op == sisa::Opcode::JAL && di.a != 0) {
            ras_[rasTop_++ % ras_.size()] = pc + 4;
        } else if (di.op == sisa::Opcode::JR) {
            const std::uint32_t slot = btbIndex(pc);
            btbTags_[slot] = pc;
            btbTargets_[slot] = target;
        }
    }

    /**
     * Pop the return-address stack without a prediction. Functional
     * warming uses this for returns so the RAS depth tracks what
     * the detailed core's predict() would have done.
     */
    void
    popReturn()
    {
        if (rasTop_ > 0)
            --rasTop_;
    }

    void
    reset()
    {
        std::fill(counters_.begin(), counters_.end(), 1);
        std::fill(btbTags_.begin(), btbTags_.end(), 0);
        std::fill(btbTargets_.begin(), btbTargets_.end(), 0);
        history_ = 0;
        rasTop_ = 0;
        lookups_ = 0;
    }

    void
    saveState(BranchUnitState &state) const
    {
        state.counters = counters_;
        state.btbTags = btbTags_;
        state.btbTargets = btbTargets_;
        state.ras = ras_;
        state.history = history_;
        state.rasTop = rasTop_;
        state.lookups = lookups_;
    }

    void
    restoreState(const BranchUnitState &state)
    {
        if (state.counters.size() != counters_.size() ||
            state.btbTags.size() != btbTags_.size() ||
            state.ras.size() != ras_.size())
            SMARTS_FATAL("branch-unit checkpoint geometry mismatch");
        counters_ = state.counters;
        btbTags_ = state.btbTags;
        btbTargets_ = state.btbTargets;
        ras_ = state.ras;
        history_ = state.history;
        rasTop_ = state.rasTop;
        lookups_ = state.lookups;
    }

    std::uint64_t lookups() const { return lookups_; }
    const BpredConfig &config() const { return config_; }

  private:
    std::uint32_t
    tableIndex(std::uint32_t pc) const
    {
        const std::uint32_t mask =
            (1u << config_.historyBits) - 1u;
        return ((pc >> 2) ^ history_) & mask;
    }

    std::uint32_t
    btbIndex(std::uint32_t pc) const
    {
        return (pc >> 2) % config_.btbEntries;
    }

    BpredConfig config_;
    std::vector<std::uint8_t> counters_;
    std::vector<std::uint32_t> btbTags_;
    std::vector<std::uint32_t> btbTargets_;
    std::vector<std::uint32_t> ras_;
    std::uint32_t history_ = 0;
    std::uint32_t rasTop_ = 0;
    std::uint64_t lookups_ = 0;
};

} // namespace smarts::bpred

#endif // SMARTS_BPRED_BRANCH_UNIT_HH
