/**
 * @file
 * Confidence-interval math from the paper's Section 2 (Eq. 1-3).
 *
 * For n sampled units with coefficient of variation V, the
 * (1 - alpha) confidence interval around the sample mean is
 * +/- z * V / sqrt(n) of the mean (Eq. 2); inverting gives the
 * minimum sample size n >= ((z * V) / epsilon)^2 for a target
 * relative half-width epsilon (Eq. 3).
 */

#ifndef SMARTS_STATS_CONFIDENCE_HH
#define SMARTS_STATS_CONFIDENCE_HH

#include <cstdint>

namespace smarts::stats {

/** A confidence target: level (e.g. 0.997) and relative error. */
struct ConfidenceSpec
{
    double level = 0.997;
    double epsilon = 0.03;

    /** 95% +/- 3%: the paper's relaxed target. */
    static ConfidenceSpec
    ninetyFive3pct()
    {
        return {0.95, 0.03};
    }

    /** 99.7% +/- 3%: the paper's headline target. */
    static ConfidenceSpec
    virtuallyCertain3pct()
    {
        return {0.997, 0.03};
    }

    /** 99.7% +/- 1%: the paper's tight target. */
    static ConfidenceSpec
    virtuallyCertain1pct()
    {
        return {0.997, 0.01};
    }
};

/**
 * Two-sided critical value z for a confidence level in (0, 1):
 * the (1 - alpha/2) quantile of the standard normal.
 */
double zScore(double level);

/**
 * Relative confidence-interval half-width z * cv / sqrt(n) (Eq. 2).
 * Returns 0 for n = 0.
 */
double confidenceHalfWidth(double cv, std::uint64_t n, double level);

/**
 * Minimum sample size meeting @p spec for a measured coefficient of
 * variation @p cv (Eq. 3), never less than 2.
 */
std::uint64_t requiredSampleSize(double cv, const ConfidenceSpec &spec);

} // namespace smarts::stats

#endif // SMARTS_STATS_CONFIDENCE_HH
