/**
 * @file
 * Numerically stable single-pass mean/variance accumulator
 * (Welford's algorithm). The per-unit CPI/EPI observations of a
 * SMARTS run feed one of these; its coefficient of variation drives
 * the paper's confidence-interval math (stats/confidence.hh).
 */

#ifndef SMARTS_STATS_ONLINE_STATS_HH
#define SMARTS_STATS_ONLINE_STATS_HH

#include <cmath>
#include <cstdint>

namespace smarts::stats {

class OnlineStats
{
  public:
    void
    add(double x)
    {
        ++count_;
        const double delta = x - mean_;
        // smarts-lint: allow(float-fold-discipline) Welford update:
        // OnlineStats IS the blessed reducer this check routes
        // merge paths through; adds arrive in stream order.
        mean_ += delta / static_cast<double>(count_);
        // smarts-lint: allow(float-fold-discipline) Welford update
        // (second moment), same stream-order contract as mean_.
        m2_ += delta * (x - mean_);
    }

    std::uint64_t
    count() const
    {
        return count_;
    }

    double
    mean() const
    {
        return count_ ? mean_ : 0.0;
    }

    /** Sample variance (n-1 denominator). */
    double
    variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
    }

    double
    stddev() const
    {
        return std::sqrt(variance());
    }

    /** Coefficient of variation, stddev/mean (0 when mean is 0). */
    double
    cv() const
    {
        return mean() != 0.0 ? stddev() / std::fabs(mean()) : 0.0;
    }

    /** Standard error of the mean. */
    double
    meanError() const
    {
        return count_ ? stddev() / std::sqrt(static_cast<double>(count_))
                      : 0.0;
    }

    void
    merge(const OnlineStats &other)
    {
        if (!other.count_)
            return;
        if (!count_) {
            *this = other;
            return;
        }
        const double delta = other.mean_ - mean_;
        const double na = static_cast<double>(count_);
        const double nb = static_cast<double>(other.count_);
        const double n = na + nb;
        // smarts-lint: allow(float-fold-discipline) Chan parallel
        // merge of two Welford states; callers merge slices in
        // deterministic stream order (foldSlice), so the fold tree
        // is fixed and offset-invariant.
        mean_ += delta * nb / n;
        // smarts-lint: allow(float-fold-discipline) Chan merge of
        // the second moment, same fixed fold tree as mean_.
        m2_ += other.m2_ + delta * delta * na * nb / n;
        count_ += other.count_;
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

} // namespace smarts::stats

#endif // SMARTS_STATS_ONLINE_STATS_HH
