/**
 * @file
 * k-means with k-means++ seeding and the SimPoint/X-means BIC
 * criterion for choosing k: sweep k = 1..maxK and keep the smallest
 * k whose BIC reaches 90% of the best (Sherwood et al.'s rule).
 */

#ifndef SMARTS_SIMPOINT_KMEANS_HH
#define SMARTS_SIMPOINT_KMEANS_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace smarts::simpoint {

struct Clustering
{
    unsigned k = 0;
    std::vector<std::uint32_t> assignment; ///< per input point.
    std::vector<std::vector<double>> centroids;
    double bic = 0.0;

    /** Number of clusters (container-style accessor). */
    std::size_t
    size() const
    {
        return k;
    }
};

/** One Lloyd run at fixed @p k (k-means++ init from @p rng). */
Clustering kmeans(const std::vector<std::vector<double>> &points,
                  unsigned k, Xoshiro256StarStar &rng);

/** Sweep k = 1..maxK, return the BIC-chosen clustering. */
Clustering kmeansSweep(const std::vector<std::vector<double>> &points,
                       unsigned maxK, Xoshiro256StarStar &rng);

} // namespace smarts::simpoint

#endif // SMARTS_SIMPOINT_KMEANS_HH
