/**
 * @file
 * SimPoint baseline (Sherwood et al., ASPLOS '02), the methodology
 * the paper's Figure 8 compares against: profile basic-block
 * vectors per interval, cluster them, simulate one representative
 * interval per cluster (cold-started, as published), and report the
 * weighted CPI — a point estimate with no confidence interval.
 */

#ifndef SMARTS_SIMPOINT_SIMPOINT_HH
#define SMARTS_SIMPOINT_SIMPOINT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/session.hh"
#include "simpoint/kmeans.hh"

namespace smarts::simpoint {

struct SimPointConfig
{
    std::uint64_t intervalSize = 100'000;
    unsigned maxK = 10;
    std::size_t bbvDims = 32; ///< projected BBV dimensionality.
    std::uint64_t seed = 42;  ///< clustering seed.
};

struct SimPointSelection
{
    unsigned k = 0;
    std::vector<std::uint64_t> intervals; ///< chosen interval indices.
    std::vector<double> weights;          ///< cluster weights.
};

struct SimPointEstimate
{
    double cpi = 0.0;
    std::uint64_t instructionsDetailed = 0;
    SimPointSelection selection;
};

/**
 * Full SimPoint flow over fresh sessions from @p factory: one
 * functional profiling pass, clustering, then one detailed pass
 * visiting the representative intervals in stream order.
 */
SimPointEstimate
runSimPoint(const std::function<std::unique_ptr<core::SimSession>()>
                &factory,
            const SimPointConfig &config);

} // namespace smarts::simpoint

#endif // SMARTS_SIMPOINT_SIMPOINT_HH
