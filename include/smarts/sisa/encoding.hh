/**
 * @file
 * SISA: the tiny deterministic RISC ISA the synthetic workloads are
 * compiled to. 32-bit fixed-width instructions:
 *
 *   R-type  op:6 | a:5 | b:5 | c:5 | 0:11     (a = dest, b/c = srcs)
 *   I-type  op:6 | a:5 | b:5 | imm:16 signed
 *
 * Conventions: register 0 reads as zero; branch/jump immediates are
 * byte offsets relative to the branch's own PC; LD/ST address is
 * regs[b] + imm with a = data register; JAL links into a and JR
 * jumps to regs[a] (a return when a reads a link saved in r31).
 */

#ifndef SMARTS_SISA_ENCODING_HH
#define SMARTS_SISA_ENCODING_HH

#include <cstdint>

namespace smarts::sisa {

enum class Opcode : std::uint8_t
{
    // R-type.
    ADD,
    SUB,
    MUL,
    AND,
    OR,
    XOR,
    SLT,
    // I-type ALU.
    ADDI,
    ANDI,
    ORI,
    SHLI,
    SHRI,
    LUI,
    // Memory.
    LD,
    ST,
    // Control.
    BEQ,
    BNE,
    BLT,
    BGE,
    JAL,
    JR,
    HALT,
    NOP,
    kCount,
};

constexpr bool
isRType(Opcode op)
{
    return op == Opcode::ADD || op == Opcode::SUB || op == Opcode::MUL ||
           op == Opcode::AND || op == Opcode::OR || op == Opcode::XOR ||
           op == Opcode::SLT;
}

struct DecodedInst
{
    Opcode op = Opcode::NOP;
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    std::uint8_t c = 0;
    std::int32_t imm = 0;

    constexpr bool
    isCondBranch() const
    {
        return op == Opcode::BEQ || op == Opcode::BNE ||
               op == Opcode::BLT || op == Opcode::BGE;
    }

    constexpr bool
    isJump() const
    {
        return op == Opcode::JAL || op == Opcode::JR;
    }

    constexpr bool
    isBranch() const
    {
        return isCondBranch() || isJump();
    }

    constexpr bool
    isLoad() const
    {
        return op == Opcode::LD;
    }

    constexpr bool
    isStore() const
    {
        return op == Opcode::ST;
    }

    constexpr bool
    isMem() const
    {
        return isLoad() || isStore();
    }

    /** Static target of a PC-relative branch/JAL at @p pc. */
    constexpr std::uint32_t
    branchTarget(std::uint32_t pc) const
    {
        return pc + static_cast<std::uint32_t>(imm);
    }
};

constexpr std::uint32_t
encode(Opcode op, unsigned a, unsigned b, unsigned c, int imm)
{
    std::uint32_t word = (static_cast<std::uint32_t>(op) << 26) |
                         ((a & 31u) << 21) | ((b & 31u) << 16);
    if (isRType(op))
        word |= (c & 31u) << 11;
    else
        word |= static_cast<std::uint32_t>(imm) & 0xffffu;
    return word;
}

constexpr DecodedInst
decode(std::uint32_t word)
{
    DecodedInst di;
    di.op = static_cast<Opcode>((word >> 26) & 63u);
    di.a = static_cast<std::uint8_t>((word >> 21) & 31u);
    di.b = static_cast<std::uint8_t>((word >> 16) & 31u);
    if (isRType(di.op)) {
        di.c = static_cast<std::uint8_t>((word >> 11) & 31u);
    } else {
        // Sign-extend the 16-bit immediate.
        di.imm = static_cast<std::int16_t>(word & 0xffffu);
    }
    return di;
}

} // namespace smarts::sisa

#endif // SMARTS_SISA_ENCODING_HH
