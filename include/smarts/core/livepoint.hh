/**
 * @file
 * Live-points: one checkpoint per MEASURED SAMPLING UNIT, captured
 * in a single streaming pass. Where a shard checkpoint
 * (core/checkpoint.hh) resumes a contiguous slice of the unit grid
 * — so a resumed shard still pays functional warming from its
 * boundary to each of its units — a live-point carries exactly the
 * warm state one (W + U) measurement needs: restore, detailed-warm
 * at most W instructions, measure U, done. Measurement cost becomes
 * proportional to the units actually measured instead of the stream
 * length, units become independently schedulable in ANY order, and
 * the fixed-n two-pass procedure turns into an anytime estimator
 * (SystematicSampler::runAnytime): measure units in seeded-shuffle
 * order, watch the streaming confidence interval, stop the moment
 * the paper's Eq. 1-3 target is met.
 *
 * Each snapshot is taken at the serial sampling loop's iteration
 * start for that unit — after the inter-unit gap is fast-forwarded,
 * before detailed warming — where the capture pass's state is
 * bit-identical to the serial run's (fastForward over gaps,
 * SimSession::warmAsDetailed over the regions the serial run
 * simulates in detail, exactly like the shard capture pass). A unit
 * measured from its live-point therefore reproduces the serial
 * run's observation bit for bit, and runAnytime driven to
 * completion folds to an estimate byte-identical to run()'s.
 *
 * On disk (save()/load(), version 2 of docs/checkpoint-format.md,
 * `.smlp`) the per-unit states are delta-encoded against the
 * previous unit's raw state (util/delta_codec.hh) — consecutive
 * units share nearly all serialized state, so a library of hundreds
 * of live-points costs a small multiple of one full checkpoint —
 * with a per-record FNV-1a checksum over the DECODED state so
 * corruption anywhere in a chain is pinned to the record where it
 * breaks. CheckpointStore persists live-point libraries next to
 * shard libraries under the same LibraryKey geometry-hash scheme.
 */

#ifndef SMARTS_CORE_LIVEPOINT_HH
#define SMARTS_CORE_LIVEPOINT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/multi_session.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "util/binary_io.hh"

namespace smarts::core {

/**
 * On-disk live-point library format version (`.smlp` files).
 * Version 3 adds the same flavor byte as checkpoint format v2
 * (kCheckpointFlavorSolo/Mix, after the endianness marker);
 * version-2 files — always solo — still load. Flavor 1 (co-run mix
 * live-points) is RESERVED: no writer exists yet, and the loader
 * refuses it by name so the reservation cannot rot silently.
 */
constexpr std::uint32_t kLivePointFormatVersion = 3;

/** Warm resume state for ONE measured unit's (W + U) window. */
struct LivePoint
{
    /** Grid index (offset + m*k form) of the measured unit. */
    std::uint64_t unitIndex = 0;

    /**
     * Instruction position of the snapshot: the serial loop's
     * iteration start for this unit (at most W before the unit).
     */
    std::uint64_t position = 0;

    ArchState arch;
    TimingState timing;

    /** Approximate in-memory footprint, for capacity planning. */
    std::size_t
    byteSize() const
    {
        return arch.byteSize() + timing.byteSize() +
               2 * sizeof(std::uint64_t);
    }
};

class LivePointLibrary
{
  public:
    /**
     * Stream @p session (fresh, at stream start) through the serial
     * sampling schedule of @p config with state-equivalent warming,
     * snapshotting every measured unit's iteration start, then run
     * the stream out so streamLength() is the true dynamic length.
     * Costs roughly one functional-warming pass plus one snapshot
     * per unit.
     */
    static LivePointLibrary build(SimSession &session,
                                  const SamplingConfig &config);

    /**
     * Per-point capture hook: called with the library slot index and
     * the freshly captured point, immediately after it is appended.
     * The reference is valid ONLY for the duration of the call (the
     * library's storage may move as later points are appended) — a
     * sink that hands the point to concurrent measurement work (the
     * leapfrog overlap) must copy it.
     */
    using PointSink =
        std::function<void(std::size_t, const LivePoint &)>;

    /**
     * build() with a capture hook: @p sink fires once per captured
     * live-point, in stream order, on the calling thread. This is
     * the primitive under SystematicSampler::runAnytimeLeapfrog —
     * overlap measurement of already-captured units with capture of
     * the rest.
     */
    static LivePointLibrary build(SimSession &session,
                                  const SamplingConfig &config,
                                  const PointSink &sink);

    /**
     * Multi-config capture: ONE streaming pass over @p session (N
     * configs in lockstep off the shared architectural stream)
     * yields the per-config libraries of an N-config study —
     * library c is byte-identical to what build() over a
     * single-config session of config c would have captured, at
     * roughly 1/N of the total capture cost.
     */
    static std::vector<LivePointLibrary>
    buildMulti(MultiSession &session, const SamplingConfig &config);

    /**
     * Serialize under @p key into the delta-encoded v2 format
     * (docs/checkpoint-format.md § Version 2) and publish atomically
     * at @p path. False with @p error set on filesystem failure.
     */
    bool save(const LibraryKey &key, const std::string &path,
              std::string *error = nullptr,
              bool createDirs = true) const;

    /**
     * Load a library from @p path, refusing — nullopt plus a
     * diagnostic in @p error — on anything short of an exact match:
     * missing/truncated/corrupt file, a record failing its state
     * checksum, an unknown format version, a key whose benchmark,
     * sampling design or config geometry differs from @p expect, or
     * records off the sampling grid. Refusal is the contract: a
     * mis-keyed live-point must never silently mis-warm a unit.
     */
    static std::optional<LivePointLibrary>
    load(const std::string &path, const LibraryKey &expect,
         std::string *error = nullptr);

    /** Serialize to @p out (save() = serialize + checksummed file). */
    void serialize(const LibraryKey &key,
                   util::BinaryWriter &out) const;

    LivePointLibrary() = default;

    const SamplingConfig &
    samplingConfig() const
    {
        return config_;
    }

    /** True dynamic stream length (the capture pass runs the tail). */
    std::uint64_t
    streamLength() const
    {
        return streamLength_;
    }

    /** Measured units on the grid — one live-point each. */
    std::size_t
    unitCount() const
    {
        return points_.size();
    }

    const LivePoint &
    at(std::size_t unit) const
    {
        return points_[unit];
    }

    /** Total in-memory footprint of the captured live-points. */
    std::size_t
    byteSize() const
    {
        std::size_t total = 0;
        for (const LivePoint &point : points_)
            total += point.byteSize();
        return total;
    }

  private:
    SamplingConfig config_;
    std::uint64_t streamLength_ = 0;
    std::vector<LivePoint> points_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_LIVEPOINT_HH
