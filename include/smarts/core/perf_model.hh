/**
 * @file
 * The paper's analytic simulation-rate model (Section 3.4,
 * Figure 4). Rates are relative to functional simulation speed
 * S_F = 1; a SMARTS run spends n*(U+W) instructions at the detailed
 * rate S_D and the rest of the N-instruction stream at S_F (no
 * warming) or S_FW (functional warming).
 */

#ifndef SMARTS_CORE_PERF_MODEL_HH
#define SMARTS_CORE_PERF_MODEL_HH

#include <algorithm>
#include <cstdint>

namespace smarts::core {

/** Relative mode rates; functional is the 1.0 reference. */
struct RateParams
{
    double functional = 1.0;         ///< S_F.
    double detailed = 1.0 / 60.0;    ///< S_D.
    double functionalWarming = 0.55; ///< S_FW.
};

/**
 * Aggregate rate with detailed warming only: detailed instructions
 * n*(U+W) at S_D, the rest at S_F. Clamps when the detailed portion
 * covers the whole stream (the W -> inf limit is S_D).
 */
inline double
smartsRateDetailedWarming(std::uint64_t N, std::uint64_t n,
                          std::uint64_t U, std::uint64_t W,
                          const RateParams &p)
{
    const double total = static_cast<double>(N);
    const double detailed = std::min(
        total, static_cast<double>(n) * static_cast<double>(U + W));
    const double rest = total - detailed;
    return total / (detailed / p.detailed + rest / p.functional);
}

/**
 * Aggregate rate with functional warming: the non-detailed portion
 * runs at S_FW instead of S_F, and W stays bounded small.
 */
inline double
smartsRateFunctionalWarming(std::uint64_t N, std::uint64_t n,
                            std::uint64_t U, std::uint64_t W,
                            const RateParams &p)
{
    const double total = static_cast<double>(N);
    const double detailed = std::min(
        total, static_cast<double>(n) * static_cast<double>(U + W));
    const double rest = total - detailed;
    return total / (detailed / p.detailed + rest / p.functionalWarming);
}

/** Speedup of a SMARTS run at @p rate over full detailed simulation. */
inline double
speedupOverDetailed(double rate, const RateParams &p)
{
    return rate / p.detailed;
}

} // namespace smarts::core

#endif // SMARTS_CORE_PERF_MODEL_HH
