/**
 * @file
 * StoreIndex: the journaled size/atime ledger behind the bounded
 * CheckpointStore (core/checkpoint_store.hh). GC needs every
 * entry's byte size and last-access order to pick LRU victims
 * without statting the whole store on each decision, so the store
 * keeps a `store-index` journal in its root: a versioned header
 * followed by APPEND-ONLY records (Add / Touch / Remove), each
 * carrying its own FNV-1a checksum so a crash mid-append — or a
 * concurrent appender's torn write — is detected at the exact
 * record where the journal stops making sense.
 *
 * The index is a CACHE, never the truth: the `.smck`/`.smlp` files
 * are. A journal that refuses to load (truncated, corrupt,
 * version-bumped) is discarded and rebuilt by a directory scan
 * (rebuild()), which re-seeds LRU order from file modification
 * times; the store then snapshots the rebuilt index so the next
 * open is cheap again. Access times are LOGICAL ticks (a per-index
 * monotone counter), not wall-clock reads — LRU decisions are a
 * pure function of the access sequence, which is what lets the
 * tests script an atime sequence and pin the eviction order.
 */

#ifndef SMARTS_CORE_STORE_INDEX_HH
#define SMARTS_CORE_STORE_INDEX_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smarts::core {

/** On-disk journal format version (`store-index` files). */
constexpr std::uint32_t kStoreIndexFormatVersion = 1;

/** What the store tracks per persisted library file. */
struct StoreIndexEntry
{
    std::uint64_t bytes = 0; ///< serialized file size.
    std::uint64_t atime = 0; ///< logical last-access tick.
};

class StoreIndex
{
  public:
    /** Journal record kinds (docs/store-service.md § Index). */
    enum class Op : std::uint8_t
    {
        Add = 1,    ///< entry created/replaced: bytes + atime.
        Touch = 2,  ///< entry accessed: new atime.
        Remove = 3, ///< entry evicted or superseded.
    };

    /**
     * Load and validate a journal. Refuses — nullopt plus a
     * diagnostic in @p error — on a missing/short file, bad magic,
     * unknown version, bad endianness marker, or any record whose
     * checksum or encoding breaks (a crash mid-append corrupts
     * exactly one trailing record; the whole journal is discarded
     * and rebuilt rather than trusting a prefix whose end cannot
     * be distinguished from tampering).
     */
    static std::optional<StoreIndex>
    load(const std::string &path, std::string *error = nullptr);

    /**
     * Rebuild from a directory scan of @p root: every `.smck` and
     * `.smlp` file below it (service directories — `.pins`,
     * `.trash`, temp files — are skipped) becomes an entry. LRU
     * order is re-seeded from file modification times (oldest
     * first, path as tiebreak), the best recovery of "least
     * recently useful" a scan can offer; the result is idempotent:
     * rebuilding again without intervening file changes yields the
     * same entries, sizes and order.
     */
    static StoreIndex rebuild(const std::string &root);

    /**
     * Write the whole index as a fresh journal (header + one Add
     * per entry) and publish it atomically at @p path — journal
     * compaction, and the snapshot after a rebuild.
     */
    bool saveSnapshot(const std::string &path,
                      std::string *error = nullptr) const;

    /**
     * Append one record to the journal at @p path (creating it
     * with a header first if missing). The record is encoded into
     * one buffer and appended with a single write so concurrent
     * appenders interleave at record granularity on POSIX; a torn
     * interleave is caught by the record checksum at the next
     * load, which triggers a rebuild.
     */
    static bool appendRecord(const std::string &path, Op op,
                             const std::string &rel,
                             std::uint64_t bytes,
                             std::uint64_t atime,
                             std::string *error = nullptr);

    /** Record an entry (new or replaced); returns its atime. */
    std::uint64_t noteAdd(const std::string &rel,
                          std::uint64_t bytes);

    /** Record an access; returns the new atime (0 if unknown). */
    std::uint64_t noteTouch(const std::string &rel);

    void noteRemove(const std::string &rel);

    bool
    contains(const std::string &rel) const
    {
        return entries_.count(rel) != 0;
    }

    const StoreIndexEntry *
    find(const std::string &rel) const
    {
        const auto it = entries_.find(rel);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /** Sum of tracked file sizes — what GC budgets against. */
    std::uint64_t
    totalBytes() const
    {
        return totalBytes_;
    }

    std::size_t
    entryCount() const
    {
        return entries_.size();
    }

    /** Ordered map so every walk of the index is deterministic. */
    const std::map<std::string, StoreIndexEntry> &
    entries() const
    {
        return entries_;
    }

    /**
     * Eviction order: ascending (atime, path) — least recently
     * used first, path as the deterministic tiebreak.
     */
    std::vector<std::pair<std::string, StoreIndexEntry>>
    lruOrder() const;

    /** Journal records replayed by load() (compaction heuristic). */
    std::uint64_t
    journalRecords() const
    {
        return journalRecords_;
    }

    /** True when the journal holds many more records than entries
     *  — time to compact via saveSnapshot(). */
    bool
    wantsCompaction() const
    {
        return journalRecords_ > 64 &&
               journalRecords_ > 4 * (entryCount() + 1);
    }

  private:
    /** Install @p rel at an explicit tick (journal replay). */
    void noteAddAt(const std::string &rel, std::uint64_t bytes,
                   std::uint64_t atime);

    std::map<std::string, StoreIndexEntry> entries_;
    std::uint64_t clock_ = 0; ///< next logical access tick.
    std::uint64_t totalBytes_ = 0;
    std::uint64_t journalRecords_ = 0;
};

} // namespace smarts::core

#endif // SMARTS_CORE_STORE_INDEX_HH
