/**
 * @file
 * ArchCore: the architectural half of a simulation session — program
 * image, register file, PC, and the SISA interpreter. One ArchCore
 * step stream is configuration-independent, which is what lets a
 * single functional-warming pass feed any number of per-config
 * timing models (core/timing.hh) in lockstep: interpret once, warm
 * and time N machines.
 */

#ifndef SMARTS_CORE_ARCH_HH
#define SMARTS_CORE_ARCH_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "sisa/encoding.hh"
#include "util/binary_io.hh"
#include "util/logging.hh"
#include "workloads/program.hh"

namespace smarts::core {

/** Everything a timing model needs to know about one executed inst. */
struct StepInfo
{
    sisa::DecodedInst di;
    std::uint32_t pc = 0;      ///< pc of the executed inst.
    std::uint32_t memAddr = 0; ///< valid when di.isMem().
    bool taken = false;        ///< valid when di.isBranch().
    std::uint32_t nextPc = 0;
};

/**
 * Serialized architectural state for checkpointing: registers, PC,
 * progress counters, and the mutable data image (code is rebuilt
 * deterministically from the benchmark spec, so it is not stored).
 */
struct ArchState
{
    std::array<std::uint32_t, 32> regs{};
    std::uint32_t pc = 0;
    bool finished = false;
    std::uint64_t instCount = 0;
    std::vector<std::uint32_t> data;

    std::size_t
    byteSize() const
    {
        return sizeof(regs) + sizeof(pc) + sizeof(finished) +
               sizeof(instCount) + data.size() * sizeof(std::uint32_t);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        for (const std::uint32_t r : regs)
            out.u32(r);
        out.u32(pc);
        out.u8(finished ? 1 : 0);
        out.u64(instCount);
        out.vecU32(data);
    }

    void
    read(util::BinaryReader &in)
    {
        for (std::uint32_t &r : regs)
            r = in.u32();
        pc = in.u32();
        finished = in.u8() != 0;
        instCount = in.u64();
        data = in.vecU32();
    }
};

class ArchCore
{
  public:
    explicit ArchCore(const workloads::BenchmarkSpec &spec)
        : program_(workloads::buildProgram(spec)),
          dataMask_(program_.dataBytes - 1),
          pc_(program_.entryPc)
    {
        if (!program_.dataBytes ||
            (program_.dataBytes & (program_.dataBytes - 1)))
            SMARTS_FATAL("data footprint must be a power of two");
        decoded_.reserve(program_.code.size());
        for (const std::uint32_t word : program_.code)
            decoded_.push_back(sisa::decode(word));
    }

    /** Execute one instruction architecturally. False at HALT/end. */
    bool
    step(StepInfo &info)
    {
        using sisa::Opcode;
        if (finished_)
            return false;
        const std::uint32_t idx = (pc_ - workloads::kCodeBase) >> 2;
        if (idx >= decoded_.size()) {
            finished_ = true;
            return false;
        }
        const sisa::DecodedInst di = decoded_[idx];
        info.di = di;
        info.pc = pc_;
        info.taken = false;
        std::uint32_t next = pc_ + 4;

        auto setReg = [this](unsigned r, std::uint32_t v) {
            if (r)
                regs_[r] = v;
        };
        const std::uint32_t vb = regs_[di.b];
        const std::uint32_t uimm =
            static_cast<std::uint32_t>(di.imm) & 0xffffu;

        switch (di.op) {
          case Opcode::ADD:
            setReg(di.a, vb + regs_[di.c]);
            break;
          case Opcode::SUB:
            setReg(di.a, vb - regs_[di.c]);
            break;
          case Opcode::MUL:
            setReg(di.a, vb * regs_[di.c]);
            break;
          case Opcode::AND:
            setReg(di.a, vb & regs_[di.c]);
            break;
          case Opcode::OR:
            setReg(di.a, vb | regs_[di.c]);
            break;
          case Opcode::XOR:
            setReg(di.a, vb ^ regs_[di.c]);
            break;
          case Opcode::SLT:
            setReg(di.a, static_cast<std::int32_t>(vb) <
                                 static_cast<std::int32_t>(regs_[di.c])
                             ? 1
                             : 0);
            break;
          case Opcode::ADDI:
            setReg(di.a, vb + static_cast<std::uint32_t>(di.imm));
            break;
          case Opcode::ANDI:
            setReg(di.a, vb & uimm);
            break;
          case Opcode::ORI:
            setReg(di.a, vb | uimm);
            break;
          case Opcode::SHLI:
            setReg(di.a, vb << (di.imm & 31));
            break;
          case Opcode::SHRI:
            setReg(di.a, vb >> (di.imm & 31));
            break;
          case Opcode::LUI:
            setReg(di.a, uimm << 16);
            break;
          case Opcode::LD:
            info.memAddr = vb + static_cast<std::uint32_t>(di.imm);
            setReg(di.a, loadWord(info.memAddr));
            break;
          case Opcode::ST:
            info.memAddr = vb + static_cast<std::uint32_t>(di.imm);
            storeWord(info.memAddr, regs_[di.a]);
            break;
          case Opcode::BEQ:
            info.taken = regs_[di.a] == vb;
            break;
          case Opcode::BNE:
            info.taken = regs_[di.a] != vb;
            break;
          case Opcode::BLT:
            info.taken = static_cast<std::int32_t>(regs_[di.a]) <
                         static_cast<std::int32_t>(vb);
            break;
          case Opcode::BGE:
            info.taken = static_cast<std::int32_t>(regs_[di.a]) >=
                         static_cast<std::int32_t>(vb);
            break;
          case Opcode::JAL:
            info.taken = true;
            setReg(di.a, pc_ + 4);
            next = di.branchTarget(pc_);
            break;
          case Opcode::JR:
            info.taken = true;
            next = regs_[di.a];
            break;
          case Opcode::HALT:
            finished_ = true;
            return false;
          case Opcode::NOP:
          default:
            break;
        }
        if (di.isCondBranch() && info.taken)
            next = di.branchTarget(pc_);

        info.nextPc = next;
        pc_ = next;
        ++instCount_;
        return true;
    }

    bool
    finished() const
    {
        return finished_;
    }

    /** Instructions executed so far, all modes. */
    std::uint64_t
    instCount() const
    {
        return instCount_;
    }

    std::uint32_t
    pc() const
    {
        return pc_;
    }

    void
    saveState(ArchState &state) const
    {
        std::copy(std::begin(regs_), std::end(regs_),
                  state.regs.begin());
        state.pc = pc_;
        state.finished = finished_;
        state.instCount = instCount_;
        state.data = program_.data;
    }

    void
    restoreState(const ArchState &state)
    {
        if (state.data.size() != program_.data.size())
            SMARTS_FATAL("arch checkpoint data image mismatch (",
                         state.data.size(), " words vs ",
                         program_.data.size(), ")");
        std::copy(state.regs.begin(), state.regs.end(), regs_);
        pc_ = state.pc;
        finished_ = state.finished;
        instCount_ = state.instCount;
        program_.data = state.data;
    }

  private:
    std::uint32_t
    loadWord(std::uint32_t addr) const
    {
        return program_
            .data[((addr - workloads::kDataBase) & dataMask_) >> 2];
    }

    void
    storeWord(std::uint32_t addr, std::uint32_t value)
    {
        program_
            .data[((addr - workloads::kDataBase) & dataMask_) >> 2] =
            value;
    }

    workloads::Program program_;
    std::vector<sisa::DecodedInst> decoded_; ///< predecoded code.
    std::uint32_t dataMask_;

    std::uint32_t regs_[32] = {};
    std::uint32_t pc_;
    bool finished_ = false;
    std::uint64_t instCount_ = 0;
};

} // namespace smarts::core

#endif // SMARTS_CORE_ARCH_HH
