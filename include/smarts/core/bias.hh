/**
 * @file
 * Warming-bias measurement (paper Tables 4-5): run the systematic
 * sampler at several evenly spaced phase offsets j and compare the
 * mean estimated CPI against the full-stream reference. Sampling
 * error averages out across phases; what remains is the bias of the
 * warming strategy under test.
 */

#ifndef SMARTS_CORE_BIAS_HH
#define SMARTS_CORE_BIAS_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/sampler.hh"

namespace smarts::core {

struct BiasResult
{
    double relativeBias = 0.0; ///< (mean est CPI - ref) / ref.
    double meanEstimatedCpi = 0.0;
    double referenceCpi = 0.0;
    std::vector<double> phaseCpi; ///< per-phase estimates.
};

/**
 * Measure warming bias: run @p phases sampler passes over fresh
 * sessions from @p factory, phase-offsetting each by interval/phases
 * units, and average against @p referenceCpi.
 */
BiasResult
measureBias(const std::function<std::unique_ptr<SimSession>()> &factory,
            const SamplingConfig &config, int phases,
            double referenceCpi);

} // namespace smarts::core

#endif // SMARTS_CORE_BIAS_HH
