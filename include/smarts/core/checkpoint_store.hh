/**
 * @file
 * CheckpointStore: a directory of persisted checkpoint libraries,
 * keyed by LibraryKey — benchmark, sampling design, and the machine
 * config's warm-state geometry hash. The layout is one subdirectory
 * per (benchmark, scale) holding one `.smck` file per (sampling,
 * geometry) key:
 *
 *   <root>/<benchmark>-<scale>/U<u>_W<w>_k<k>_j<j>_<warm>_g<hash>.smck
 *
 * The store is the reuse point the ROADMAP names: a library captured
 * by one process serves every later one — the two-pass procedure's
 * second run, repeated design studies, latency/energy sweeps (whose
 * configs hash to the same geometry), and external runners that
 * speak the documented format.
 *
 * Beyond the lab-artifact basics, the store is a bounded cache
 * service (docs/store-service.md):
 *
 *  - A byte budget (StoreOptions::budgetBytes) with LRU-by-atime GC.
 *    Access order is a LOGICAL clock persisted in a journaled
 *    `store-index` file (core/store_index.hh), so GC picks victims
 *    without statting the world and tests can script the sequence.
 *  - Concurrent-reader-safe eviction: GC renames victims into
 *    `<root>/.trash/` before deleting, so an already-open reader
 *    keeps its intact bytes (POSIX) and a racing opener gets a
 *    clean miss, never a torn file.
 *  - A pin/lease protocol: hard-link markers under `<root>/.pins/`
 *    (the distrib claim idiom) exempt an entry from eviction while
 *    a holder measures from it; StoreLease releases on destruction.
 *  - Op counters (hits/misses/refusals/evictions/stat calls...) so
 *    cache behavior is assertable in tests and exportable by the
 *    store daemon (tools/smarts_stored.cc) as BENCH_store.json.
 *
 * Loads verify everything (docs/checkpoint-format.md): checksum,
 * format version, and the full key. A file that fails any check is
 * treated as a miss — recapture, never mis-warm.
 */

#ifndef SMARTS_CORE_CHECKPOINT_STORE_HH
#define SMARTS_CORE_CHECKPOINT_STORE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <atomic>

#include "core/checkpoint.hh"
#include "core/livepoint.hh"
#include "core/store_index.hh"

namespace smarts::core {

/** Cache policy knobs (defaults reproduce the unbounded store). */
struct StoreOptions
{
    /** Byte budget over tracked entries; 0 = never evict. */
    std::uint64_t budgetBytes = 0;
};

/** Point-in-time snapshot of the store's operation counters. */
struct StoreCounters
{
    std::uint64_t hits = 0;      ///< loads served from a valid file.
    std::uint64_t misses = 0;    ///< no file for the key.
    std::uint64_t refusals = 0;  ///< file present but failed checks.
    std::uint64_t saves = 0;     ///< libraries published.
    std::uint64_t touches = 0;   ///< atime bumps (hits + touch()).
    std::uint64_t evictions = 0; ///< entries GC removed.
    std::uint64_t bytesEvicted = 0;
    std::uint64_t statCalls = 0;  ///< entry-existence probes on disk.
    std::uint64_t dirEnsures = 0; ///< create_directories actually run.
    std::uint64_t pinSkips = 0;   ///< evictions vetoed by a pin.
    std::uint64_t rebuilds = 0;   ///< index rebuilt by directory scan.
    std::uint64_t gcRuns = 0;
};

/**
 * RAII pin: while alive, GC will not evict the leased entry. Move-
 * only; the destructor removes the pin marker. Obtained from
 * CheckpointStore::pin() — nullopt means the (entry, owner) pin is
 * already held or the entry vanished first.
 */
class StoreLease
{
  public:
    StoreLease() = default;
    StoreLease(StoreLease &&other) noexcept { swap(other); }
    StoreLease &
    operator=(StoreLease &&other) noexcept
    {
        release();
        swap(other);
        return *this;
    }
    StoreLease(const StoreLease &) = delete;
    StoreLease &operator=(const StoreLease &) = delete;
    ~StoreLease() { release(); }

    explicit operator bool() const { return !markerPath_.empty(); }

    /** Absolute path of the pinned library file. */
    const std::string &
    entryPath() const
    {
        return entryPath_;
    }

    /** Drop the pin now (idempotent). */
    void release();

  private:
    friend class CheckpointStore;
    StoreLease(std::string marker, std::string entry)
        : markerPath_(std::move(marker)), entryPath_(std::move(entry))
    {
    }
    void
    swap(StoreLease &other) noexcept
    {
        markerPath_.swap(other.markerPath_);
        entryPath_.swap(other.entryPath_);
    }

    std::string markerPath_;
    std::string entryPath_;
};

class CheckpointStore
{
  public:
    /** Open (lazily creating) the store rooted at @p root. */
    explicit CheckpointStore(std::string root);

    /** Open with cache policy (budget ⇒ GC after saves). */
    CheckpointStore(std::string root, StoreOptions options);

    const std::string &
    root() const
    {
        return root_;
    }

    const StoreOptions &
    options() const
    {
        return options_;
    }

    /** Absolute-or-relative path a key's library lives at. */
    std::string pathFor(const LibraryKey &key) const;

    /** True when a file exists for @p key (index first, then disk). */
    bool contains(const LibraryKey &key) const;

    /**
     * Load and fully validate @p key's library. A missing file is a
     * silent miss (empty @p error); an existing file that refuses —
     * corrupt, wrong version, mis-keyed — is a miss with the
     * diagnostic in @p error. The load runs under an internal pin
     * so concurrent GC never unlinks the entry mid-read.
     */
    std::optional<CheckpointLibrary>
    tryLoad(const LibraryKey &key, std::string *error = nullptr) const;

    /** Persist @p library under @p key (atomic publish + GC). */
    bool save(const LibraryKey &key, const CheckpointLibrary &library,
              std::string *error = nullptr) const;

    /**
     * Make sure a library exists for every config of an N-config
     * design study, capturing ALL misses in ONE MultiSession
     * streaming pass (CheckpointLibrary::buildMulti). Configs whose
     * geometry hashes collide — e.g. a latency-only sweep — share a
     * key and are captured once. Returns the number of libraries
     * captured (0 = every config was already stored).
     */
    std::size_t ensure(const workloads::BenchmarkSpec &spec,
                       const std::vector<uarch::MachineConfig> &configs,
                       const SamplingConfig &sampling,
                       std::uint64_t streamLength,
                       std::size_t shards) const;

    /**
     * Plan-exact variant: a stored library counts as a hit only
     * when its shard plan equals @p plan EXACTLY; anything else —
     * missing, refusing, or captured under a different split — is
     * (re)captured with @p plan. The distributed leader ships
     * stores with this (every runner of a study must resume from
     * the manifest's own boundaries); the overload above keeps the
     * looser "any loadable library serves" contract the in-process
     * store-backed paths want.
     */
    std::size_t ensure(const workloads::BenchmarkSpec &spec,
                       const std::vector<uarch::MachineConfig> &configs,
                       const SamplingConfig &sampling,
                       const std::vector<ShardSpec> &plan) const;

    /**
     * Path of @p key's LIVE-POINT library (core/livepoint.hh): same
     * directory and stem as the shard library, `.smlp` extension.
     */
    std::string livePointPathFor(const LibraryKey &key) const;

    /**
     * Load and fully validate @p key's live-point library, with the
     * same miss semantics as tryLoad: a missing file is a silent
     * miss, an existing file that refuses is a miss with the
     * diagnostic — naming the failing record or mismatched key
     * component — in @p error.
     */
    std::optional<LivePointLibrary>
    tryLoadLivePoints(const LibraryKey &key,
                      std::string *error = nullptr) const;

    /** Persist @p library under @p key (atomic publish + GC). */
    bool saveLivePoints(const LivePointLibrary &library,
                        const LibraryKey &key,
                        std::string *error = nullptr) const;

    /**
     * Make sure a live-point library exists for every config of an
     * N-config study, capturing ALL misses in ONE MultiSession
     * streaming pass (LivePointLibrary::buildMulti), deduplicating
     * geometry-equal configs exactly as ensure() does. Returns the
     * number of libraries captured (0 = every config was stored).
     */
    std::size_t
    ensureLivePoints(const workloads::BenchmarkSpec &spec,
                     const std::vector<uarch::MachineConfig> &configs,
                     const SamplingConfig &sampling) const;

    /**
     * Generic flavor of tryLoad for payloads the core does not know
     * how to parse (e.g. mp::MixLibrary): the full store protocol —
     * index-first existence check, pinned read, hit/miss/refusal
     * accounting, vanished-entry cleanup — around a caller-supplied
     * @p loader that reads and validates the file at the entry's
     * path. Returns true on a hit (loader succeeded); a missing
     * entry is a silent miss (empty @p error), a loader refusal on a
     * still-existing file is a miss with the loader's diagnostic.
     */
    bool loadEntry(const LibraryKey &key,
                   const std::function<bool(const std::string &path,
                                            std::string *error)> &loader,
                   std::string *error = nullptr) const;

    /**
     * Generic flavor of save: directory creation, the atomic
     * publish (the @p writer must go through BinaryWriter::writeFile
     * or an equivalent temp+rename), and index/journal/GC
     * bookkeeping around a caller-supplied @p writer.
     */
    bool publishEntry(const LibraryKey &key,
                      const std::function<bool(const std::string &path,
                                               std::string *error)> &writer,
                      std::string *error = nullptr) const;

    // --- cache service surface -----------------------------------

    /**
     * Pin @p key's entry (shard library, or live-point library when
     * @p livePoints) against eviction. One pin per (entry, owner):
     * a second pin() with the same owner while the first lease is
     * alive returns nullopt — the exclusivity the daemon's single-
     * flight capture keys off. Also nullopt when the entry does not
     * exist (nothing to protect).
     */
    std::optional<StoreLease> pin(const LibraryKey &key,
                                  bool livePoints,
                                  const std::string &owner) const;

    /**
     * Record an access to @p key's entry without loading it: bumps
     * the logical atime (journaled), making the entry most-recently
     * used. Returns the new atime, or 0 when the entry is not
     * tracked. This is how tests script an exact LRU sequence and
     * how the daemon marks remote hits.
     */
    std::uint64_t touch(const LibraryKey &key, bool livePoints) const;

    /**
     * Evict least-recently-used entries until tracked bytes fit the
     * budget (no-op when unbounded or already within). Pinned
     * entries are skipped. Returns the number evicted. Runs
     * automatically after each save when a budget is set; public so
     * tests and the daemon can force a pass.
     */
    std::size_t gc(std::string *error = nullptr) const;

    /** Bytes currently tracked by the index. */
    std::uint64_t totalBytes() const;

    /** Counter snapshot (atomic reads; safe while others operate). */
    StoreCounters counters() const;

    /** The journal path (`<root>/store-index`). */
    std::string indexPath() const;

  private:
    std::size_t ensureImpl(
        const workloads::BenchmarkSpec &spec,
        const std::vector<uarch::MachineConfig> &configs,
        const SamplingConfig &sampling,
        const std::vector<ShardSpec> &plan,
        bool requirePlanMatch) const;

    /** Key's path relative to the root ('/'-separated). */
    std::string relFor(const LibraryKey &key, bool livePoints) const;

    /** Lazily load-or-rebuild the index; callers hold @c mu_. */
    StoreIndex &indexLocked() const;

    /**
     * Existence check that prefers the in-memory index and falls
     * back to ONE disk probe (counted in statCalls) for entries
     * another process may have published; a probe that finds the
     * file installs it in the index so the next check is free.
     */
    bool entryExists(const std::string &rel) const;

    /** Memoized create_directories for an entry path's parent. */
    void ensureDirFor(const std::string &path) const;

    /** Record a publish: index Add + journal append + GC. */
    void notePublish(const std::string &rel,
                     const std::string &path) const;

    /** Record a hit: atime bump + journal Touch. */
    void noteAccess(const std::string &rel) const;

    /** Drop a vanished entry from index + journal. */
    void noteVanished(const std::string &rel) const;

    /** Pin-marker path for (entry rel-path, owner). */
    std::string markerFor(const std::string &rel,
                          const std::string &owner) const;

    /** Any pin marker alive for @p rel? */
    bool isPinned(const std::string &rel) const;

    /** Evict under @c mu_; shared by gc() and the post-save hook. */
    std::size_t gcLocked(std::string *error) const;

    std::string root_;
    StoreOptions options_;

    mutable std::mutex mu_;
    mutable std::optional<StoreIndex> index_;
    mutable std::set<std::string> ensuredDirs_;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    mutable std::atomic<std::uint64_t> refusals_{0};
    mutable std::atomic<std::uint64_t> saves_{0};
    mutable std::atomic<std::uint64_t> touches_{0};
    mutable std::atomic<std::uint64_t> evictions_{0};
    mutable std::atomic<std::uint64_t> bytesEvicted_{0};
    mutable std::atomic<std::uint64_t> statCalls_{0};
    mutable std::atomic<std::uint64_t> dirEnsures_{0};
    mutable std::atomic<std::uint64_t> pinSkips_{0};
    mutable std::atomic<std::uint64_t> rebuilds_{0};
    mutable std::atomic<std::uint64_t> gcRuns_{0};
};

} // namespace smarts::core

#endif // SMARTS_CORE_CHECKPOINT_STORE_HH
