/**
 * @file
 * CheckpointStore: a directory of persisted checkpoint libraries,
 * keyed by LibraryKey — benchmark, sampling design, and the machine
 * config's warm-state geometry hash. The layout is one subdirectory
 * per (benchmark, scale) holding one `.smck` file per (sampling,
 * geometry) key:
 *
 *   <root>/<benchmark>-<scale>/U<u>_W<w>_k<k>_j<j>_<warm>_g<hash>.smck
 *
 * The store is the reuse point the ROADMAP names: a library captured
 * by one process serves every later one — the two-pass procedure's
 * second run, repeated design studies, latency/energy sweeps (whose
 * configs hash to the same geometry), and external runners that
 * speak the documented format. SystematicSampler::runSharded and
 * SmartsProcedure::estimateSharded consult the store before
 * capturing and populate it after a miss, so the second run of any
 * study pays no capture cost at all.
 *
 * Loads verify everything (docs/checkpoint-format.md): checksum,
 * format version, and the full key. A file that fails any check is
 * treated as a miss — recapture, never mis-warm.
 */

#ifndef SMARTS_CORE_CHECKPOINT_STORE_HH
#define SMARTS_CORE_CHECKPOINT_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/livepoint.hh"

namespace smarts::core {

class CheckpointStore
{
  public:
    /** Open (lazily creating) the store rooted at @p root. */
    explicit CheckpointStore(std::string root);

    const std::string &
    root() const
    {
        return root_;
    }

    /** Absolute-or-relative path a key's library lives at. */
    std::string pathFor(const LibraryKey &key) const;

    /** True when a file exists for @p key (no validation). */
    bool contains(const LibraryKey &key) const;

    /**
     * Load and fully validate @p key's library. A missing file is a
     * silent miss (empty @p error); an existing file that refuses —
     * corrupt, wrong version, mis-keyed — is a miss with the
     * diagnostic in @p error.
     */
    std::optional<CheckpointLibrary>
    tryLoad(const LibraryKey &key, std::string *error = nullptr) const;

    /** Persist @p library under @p key (atomic publish). */
    bool save(const LibraryKey &key, const CheckpointLibrary &library,
              std::string *error = nullptr) const;

    /**
     * Make sure a library exists for every config of an N-config
     * design study, capturing ALL misses in ONE MultiSession
     * streaming pass (CheckpointLibrary::buildMulti). Configs whose
     * geometry hashes collide — e.g. a latency-only sweep — share a
     * key and are captured once. Returns the number of libraries
     * captured (0 = every config was already stored).
     */
    std::size_t ensure(const workloads::BenchmarkSpec &spec,
                       const std::vector<uarch::MachineConfig> &configs,
                       const SamplingConfig &sampling,
                       std::uint64_t streamLength,
                       std::size_t shards) const;

    /**
     * Plan-exact variant: a stored library counts as a hit only
     * when its shard plan equals @p plan EXACTLY; anything else —
     * missing, refusing, or captured under a different split — is
     * (re)captured with @p plan. The distributed leader ships
     * stores with this (every runner of a study must resume from
     * the manifest's own boundaries); the overload above keeps the
     * looser "any loadable library serves" contract the in-process
     * store-backed paths want.
     */
    std::size_t ensure(const workloads::BenchmarkSpec &spec,
                       const std::vector<uarch::MachineConfig> &configs,
                       const SamplingConfig &sampling,
                       const std::vector<ShardSpec> &plan) const;

    /**
     * Path of @p key's LIVE-POINT library (core/livepoint.hh): same
     * directory and stem as the shard library, `.smlp` extension.
     */
    std::string livePointPathFor(const LibraryKey &key) const;

    /**
     * Load and fully validate @p key's live-point library, with the
     * same miss semantics as tryLoad: a missing file is a silent
     * miss, an existing file that refuses is a miss with the
     * diagnostic — naming the failing record or mismatched key
     * component — in @p error.
     */
    std::optional<LivePointLibrary>
    tryLoadLivePoints(const LibraryKey &key,
                      std::string *error = nullptr) const;

    /** Persist @p library under @p key (atomic publish). */
    bool saveLivePoints(const LivePointLibrary &library,
                        const LibraryKey &key,
                        std::string *error = nullptr) const;

    /**
     * Make sure a live-point library exists for every config of an
     * N-config study, capturing ALL misses in ONE MultiSession
     * streaming pass (LivePointLibrary::buildMulti), deduplicating
     * geometry-equal configs exactly as ensure() does. Returns the
     * number of libraries captured (0 = every config was stored).
     */
    std::size_t
    ensureLivePoints(const workloads::BenchmarkSpec &spec,
                     const std::vector<uarch::MachineConfig> &configs,
                     const SamplingConfig &sampling) const;

  private:
    std::size_t ensureImpl(
        const workloads::BenchmarkSpec &spec,
        const std::vector<uarch::MachineConfig> &configs,
        const SamplingConfig &sampling,
        const std::vector<ShardSpec> &plan,
        bool requirePlanMatch) const;

    std::string root_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_CHECKPOINT_STORE_HH
