/**
 * @file
 * SmartsProcedure: the paper's two-pass recipe (Figure 9 /
 * Section 5.1). Run once with a generic n_init; if the measured
 * coefficient of variation leaves the confidence interval wider
 * than the target, size n_tuned = ((z * V-hat) / epsilon)^2 from
 * the measurement and run a second, properly sized pass.
 */

#ifndef SMARTS_CORE_PROCEDURE_HH
#define SMARTS_CORE_PROCEDURE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/sampler.hh"
#include "stats/confidence.hh"

namespace smarts::core {

struct ProcedureConfig
{
    std::uint64_t unitSize = 1000;
    std::uint64_t detailedWarming = 2000;
    WarmingMode warming = WarmingMode::Functional;
    stats::ConfidenceSpec target{};
    std::uint64_t nInit = 10'000; ///< the paper's generic first n.
};

struct ProcedureResult
{
    SmartsEstimate initial;
    std::optional<SmartsEstimate> tuned;
    std::uint64_t recommendedN = 0; ///< n_tuned from the initial V-hat.

    bool
    metOnFirstTry() const
    {
        return !tuned.has_value();
    }

    const SmartsEstimate &
    final() const
    {
        return tuned ? *tuned : initial;
    }
};

/** Two-pass result for a matched multi-config run. */
struct MatchedProcedureResult
{
    MatchedEstimate initial;
    std::optional<MatchedEstimate> tuned;
    std::uint64_t recommendedN = 0; ///< n_tuned from the worst V-hat.

    bool
    metOnFirstTry() const
    {
        return !tuned.has_value();
    }

    const MatchedEstimate &
    final() const
    {
        return tuned ? *tuned : initial;
    }
};

class SmartsProcedure
{
  public:
    using SessionFactory = core::SessionFactory;
    using MultiSessionFactory =
        std::function<std::unique_ptr<MultiSession>()>;

    explicit SmartsProcedure(const ProcedureConfig &config);

    /**
     * Run the two-pass procedure over fresh sessions from
     * @p factory; @p streamLength is the benchmark's known length
     * (one functional pass, or a prior reference).
     */
    ProcedureResult estimate(const SessionFactory &factory,
                             std::uint64_t streamLength) const;

    /**
     * Two-pass procedure with each pass executed as a
     * checkpoint-sharded run (SystematicSampler::runSharded): the
     * unit grid splits into @p shards shards that resume from
     * captured warm state on @p pool. Estimates are bit-identical
     * to estimate()'s at any shard/thread count.
     */
    ProcedureResult estimateSharded(const SessionFactory &factory,
                                    std::uint64_t streamLength,
                                    exec::ThreadPool &pool,
                                    std::size_t shards) const;

    /**
     * Store-backed two-pass procedure: each pass consults @p store
     * (keyed by @p spec, @p machine's warm-state geometry and the
     * pass's sampling design) before capturing, and persists what it
     * captures. Both pass designs are deterministic functions of the
     * stream and the config, so rerunning the same study hits the
     * store on every pass — the second process run pays no capture
     * (functional-warming) cost at all. Estimates stay bit-identical
     * to estimate()'s.
     */
    ProcedureResult estimateSharded(const SessionFactory &factory,
                                    const workloads::BenchmarkSpec &spec,
                                    const uarch::MachineConfig &machine,
                                    std::uint64_t streamLength,
                                    exec::ThreadPool &pool,
                                    std::size_t shards,
                                    CheckpointStore &store) const;

    /**
     * ANYTIME alternative to the two-pass recipe, built on
     * live-points (core/livepoint.hh): ensure @p store holds a
     * live-point library for the densest nInit-unit design this
     * procedure would consider (capturing one streaming pass on a
     * miss, persisting it for every later run), then measure units
     * in seeded-shuffle order on @p pool and stop the moment the
     * configured confidence target is met
     * (SystematicSampler::runAnytime). Where the two-pass recipe
     * commits to n_tuned up front — overshooting when V-hat was
     * pessimistic — the anytime estimator pays for exactly the
     * units the stream's variance demands, and a warm store makes
     * a config sweep's marginal cost just those measured units.
     */
    AnytimeResult
    estimateAnytime(const SessionFactory &factory,
                    const workloads::BenchmarkSpec &spec,
                    const uarch::MachineConfig &machine,
                    std::uint64_t streamLength,
                    exec::ThreadPool &pool, CheckpointStore &store,
                    std::uint64_t seed = 1) const;

    /**
     * Matched multi-config variant: one functional-warming stream
     * per pass feeds every config. n_tuned is sized from the worst
     * per-config V-hat, so the rerun (when needed) brings every
     * config inside the target.
     */
    MatchedProcedureResult
    estimateMatched(const MultiSessionFactory &factory,
                    std::uint64_t streamLength) const;

  private:
    ProcedureConfig config_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_PROCEDURE_HH
