/**
 * @file
 * TimingModel: the microarchitectural half of a simulation session —
 * one MachineConfig's caches, TLBs, branch predictor, cycle and
 * energy accumulators. A TimingModel consumes the StepInfo stream an
 * ArchCore produces, either warming long-history state (functional
 * warming, no timing) or charging the full detailed timing model.
 * Several TimingModels can consume the same stream, which is how
 * matched-pair multi-config sampling amortizes the functional
 * warming pass the paper's Table 6 identifies as the dominant cost.
 */

#ifndef SMARTS_CORE_TIMING_HH
#define SMARTS_CORE_TIMING_HH

#include <cstdint>

#include "bpred/branch_unit.hh"
#include "core/arch.hh"
#include "mem/hierarchy.hh"
#include "uarch/config.hh"

namespace smarts::core {

/** What state fast-forwarding keeps warm (paper Section 4). */
enum class WarmingMode
{
    None,       ///< architectural state only (plain fast-forward).
    CachesOnly, ///< caches + TLBs, predictors stale.
    BpredOnly,  ///< predictors, caches stale.
    Functional, ///< the paper's functional warming: everything.
};

constexpr bool
warmsCaches(WarmingMode mode)
{
    return mode == WarmingMode::CachesOnly ||
           mode == WarmingMode::Functional;
}

constexpr bool
warmsBpred(WarmingMode mode)
{
    return mode == WarmingMode::BpredOnly ||
           mode == WarmingMode::Functional;
}

/** One detailed-simulation segment's measurements. */
struct Segment
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double energyNj = 0.0;
};

/** Cumulative event counters (all modes). */
struct Activity
{
    std::uint64_t branches = 0;
    std::uint64_t bpredLookups = 0;
    std::uint64_t bpredMispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

class TimingModel
{
  public:
    explicit TimingModel(const uarch::MachineConfig &config)
        : config_(config),
          hierarchy_(config.mem),
          bpred_(config.bpred),
          invWidth_(1.0 / config.width)
    {
        fetchLineShift_ = 0;
        while ((1u << fetchLineShift_) < config_.mem.l1i.lineBytes)
            ++fetchLineShift_;
    }

    /** Consume one instruction in a fast-forward (warming) mode. */
    void
    warm(const StepInfo &info, bool warmCaches, bool warmBpred)
    {
        if (warmCaches) {
            const std::uint32_t line = info.pc >> fetchLineShift_;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                hierarchy_.warmFetch(info.pc);
            }
            if (info.di.isLoad())
                hierarchy_.warmLoad(info.memAddr);
            else if (info.di.isStore())
                hierarchy_.warmStore(info.memAddr);
        }
        if (info.di.isLoad())
            ++activity_.loads;
        else if (info.di.isStore())
            ++activity_.stores;
        else if (info.di.isBranch()) {
            ++activity_.branches;
            if (warmBpred) {
                // Mirror the detailed core's RAS traffic: predict()
                // pops on returns there, so warming must pop too or
                // the stack depth drifts across warming gaps.
                if (info.di.op == sisa::Opcode::JR && info.di.a == 31)
                    bpred_.popReturn();
                bpred_.update(info.pc, info.di, info.taken,
                              info.nextPc);
            }
        }
    }

    /** Consume one instruction with the full detailed timing model. */
    void
    detailedStep(const StepInfo &info)
    {
        const auto &energy = config_.energy;
        cycles_ += invWidth_;
        energyNj_ += energy.perInst;

        auto chargeMem = [&](const mem::MemResult &r) {
            energyNj_ += energy.l1Access;
            if (r.level != mem::ServedBy::L1)
                energyNj_ += energy.l2Access;
            if (r.level == mem::ServedBy::Memory)
                energyNj_ += energy.memAccess;
        };

        // Front end: one I-cache access per fetched line.
        const std::uint32_t line = info.pc >> fetchLineShift_;
        if (line != lastFetchLine_) {
            lastFetchLine_ = line;
            const mem::MemResult f = hierarchy_.fetch(info.pc);
            chargeMem(f);
            if (f.latency > config_.mem.l1i.latency)
                cycles_ += f.latency - config_.mem.l1i.latency;
        }

        if (info.di.isLoad()) {
            ++activity_.loads;
            const mem::MemResult r = hierarchy_.load(info.memAddr);
            chargeMem(r);
            if (r.latency > config_.mem.l1d.latency)
                cycles_ += (r.latency - config_.mem.l1d.latency) *
                           config_.loadStallFactor;
        } else if (info.di.isStore()) {
            ++activity_.stores;
            const mem::MemResult r = hierarchy_.store(info.memAddr);
            chargeMem(r);
            if (r.latency > config_.mem.l1d.latency)
                cycles_ += (r.latency - config_.mem.l1d.latency) *
                           config_.storeStallFactor;
        } else if (info.di.isBranch()) {
            ++activity_.branches;
            ++activity_.bpredLookups;
            const bpred::Prediction p = bpred_.predict(info.pc, info.di);
            energyNj_ += energy.bpredAccess;
            const bool mispredict =
                p.taken != info.taken ||
                (info.taken && p.target != info.nextPc);
            if (mispredict) {
                ++activity_.bpredMispredicts;
                cycles_ += config_.pipelineDepth;
                if (config_.modelWrongPath) {
                    // The front end ran down the predicted (wrong)
                    // path: pollute the I-side and refetch after
                    // the redirect.
                    const std::uint32_t wrong =
                        p.taken ? p.target : info.pc + 4;
                    for (std::uint32_t i = 0;
                         i < config_.wrongPathFetches; ++i)
                        hierarchy_.warmFetch(
                            wrong + i * config_.mem.l1i.lineBytes);
                    lastFetchLine_ = ~0u;
                }
            }
            bpred_.update(info.pc, info.di, info.taken, info.nextPc);
        }
    }

    /** Bracketing state for one detailed segment's measurements. */
    struct SegmentMark
    {
        std::uint64_t cyclesBefore = 0;
        double cyclesStart = 0.0;
        double energyBefore = 0.0;
    };

    SegmentMark
    beginSegment() const
    {
        return {static_cast<std::uint64_t>(cycles_), cycles_,
                energyNj_};
    }

    /** Charge per-cycle energy for the segment and extract it. */
    Segment
    endSegment(const SegmentMark &mark, std::uint64_t executed)
    {
        energyNj_ +=
            config_.energy.perCycle * (cycles_ - mark.cyclesStart);
        Segment seg;
        seg.instructions = executed;
        seg.cycles =
            static_cast<std::uint64_t>(cycles_) - mark.cyclesBefore;
        seg.energyNj = energyNj_ - mark.energyBefore;
        return seg;
    }

    /** Exact detailed cycles so far (fractional issue slots kept). */
    double
    cycleCount() const
    {
        return cycles_;
    }

    /** Detailed energy so far, nanojoules. */
    double
    energyCount() const
    {
        return energyNj_;
    }

    const Activity &
    activity() const
    {
        return activity_;
    }

    const uarch::MachineConfig &
    config() const
    {
        return config_;
    }

  private:
    uarch::MachineConfig config_;
    mem::MemHierarchy hierarchy_;
    bpred::BranchUnit bpred_;
    double invWidth_;
    double cycles_ = 0.0;
    double energyNj_ = 0.0;
    std::uint32_t fetchLineShift_ = 6; ///< log2(L1I line bytes).
    std::uint32_t lastFetchLine_ = ~0u;
    Activity activity_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_TIMING_HH
