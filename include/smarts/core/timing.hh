/**
 * @file
 * TimingModel: the microarchitectural half of a simulation session —
 * one MachineConfig's caches, TLBs, branch predictor, cycle and
 * energy accumulators. A TimingModel consumes the StepInfo stream an
 * ArchCore produces, either warming long-history state (functional
 * warming, no timing) or charging the full detailed timing model.
 * Several TimingModels can consume the same stream, which is how
 * matched-pair multi-config sampling amortizes the functional
 * warming pass the paper's Table 6 identifies as the dominant cost.
 *
 * Cycle and energy accumulation is exact 48.16 fixed-point integer
 * arithmetic: every increment is a pure function of the instruction
 * and the config (never of the accumulator value), so a segment's
 * measured cycles/energy depend only on the instructions it covers —
 * not on how much simulation preceded it. That offset invariance is
 * what lets a checkpoint-resumed shard (core/checkpoint.hh) measure
 * a unit bit-identically to a serial run that reached the same unit
 * with hours of accumulated history.
 */

#ifndef SMARTS_CORE_TIMING_HH
#define SMARTS_CORE_TIMING_HH

#include <cmath>
#include <cstdint>

#include "bpred/branch_unit.hh"
#include "core/arch.hh"
#include "mem/hierarchy.hh"
#include "uarch/config.hh"
#include "util/binary_io.hh"

namespace smarts::core {

/** What state fast-forwarding keeps warm (paper Section 4). */
enum class WarmingMode
{
    None,       ///< architectural state only (plain fast-forward).
    CachesOnly, ///< caches + TLBs, predictors stale.
    BpredOnly,  ///< predictors, caches stale.
    Functional, ///< the paper's functional warming: everything.
};

constexpr bool
warmsCaches(WarmingMode mode)
{
    return mode == WarmingMode::CachesOnly ||
           mode == WarmingMode::Functional;
}

constexpr bool
warmsBpred(WarmingMode mode)
{
    return mode == WarmingMode::BpredOnly ||
           mode == WarmingMode::Functional;
}

/** One detailed-simulation segment's measurements. */
struct Segment
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double energyNj = 0.0;
};

/** Cumulative event counters (all modes). */
struct Activity
{
    std::uint64_t branches = 0;
    std::uint64_t bpredLookups = 0;
    std::uint64_t bpredMispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

/**
 * Serialized microarchitectural state for checkpointing: the memory
 * hierarchy, the branch unit, the fixed-point cycle/energy
 * accumulators, and the fetch-line dedup register.
 */
struct TimingState
{
    mem::HierarchyState mem;
    bpred::BranchUnitState bpred;
    std::uint64_t cyclesFx = 0;
    std::uint64_t energyFx = 0;
    std::uint32_t lastFetchLine = ~0u;
    Activity activity;

    std::size_t
    byteSize() const
    {
        return mem.byteSize() + bpred.byteSize() +
               2 * sizeof(std::uint64_t) + sizeof(std::uint32_t) +
               sizeof(Activity);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        mem.write(out);
        bpred.write(out);
        out.u64(cyclesFx);
        out.u64(energyFx);
        out.u32(lastFetchLine);
        out.u64(activity.branches);
        out.u64(activity.bpredLookups);
        out.u64(activity.bpredMispredicts);
        out.u64(activity.loads);
        out.u64(activity.stores);
    }

    void
    read(util::BinaryReader &in)
    {
        mem.read(in);
        bpred.read(in);
        cyclesFx = in.u64();
        energyFx = in.u64();
        lastFetchLine = in.u32();
        activity.branches = in.u64();
        activity.bpredLookups = in.u64();
        activity.bpredMispredicts = in.u64();
        activity.loads = in.u64();
        activity.stores = in.u64();
    }
};

class TimingModel
{
  public:
    /** 48.16 fixed point: exact for widths, latencies, stall terms. */
    static constexpr std::uint32_t kFixedShift = 16;
    static constexpr double kFixedOne = 65536.0;

    explicit TimingModel(const uarch::MachineConfig &config)
        : config_(config),
          hierarchy_(config.mem),
          bpred_(config.bpred)
    {
        fetchLineShift_ = 0;
        while ((1u << fetchLineShift_) < config_.mem.l1i.lineBytes)
            ++fetchLineShift_;

        invWidthFx_ = toFixed(1.0 / config.width);
        loadStallFx_ = toFixed(config.loadStallFactor);
        storeStallFx_ = toFixed(config.storeStallFactor);
        mispredictFx_ = static_cast<std::uint64_t>(config.pipelineDepth)
                        << kFixedShift;
        ePerInstFx_ = toFixed(config.energy.perInst);
        ePerCycleFx_ = toFixed(config.energy.perCycle);
        eL1Fx_ = toFixed(config.energy.l1Access);
        eL2Fx_ = toFixed(config.energy.l2Access);
        eMemFx_ = toFixed(config.energy.memAccess);
        eBpredFx_ = toFixed(config.energy.bpredAccess);
    }

    /** Consume one instruction in a fast-forward (warming) mode. */
    void
    warm(const StepInfo &info, bool warmCaches, bool warmBpred)
    {
        if (warmCaches) {
            const std::uint32_t line = info.pc >> fetchLineShift_;
            if (line != lastFetchLine_) {
                lastFetchLine_ = line;
                hierarchy_.warmFetch(info.pc);
            }
            if (info.di.isLoad())
                hierarchy_.warmLoad(info.memAddr);
            else if (info.di.isStore())
                hierarchy_.warmStore(info.memAddr);
        }
        if (info.di.isLoad())
            ++activity_.loads;
        else if (info.di.isStore())
            ++activity_.stores;
        else if (info.di.isBranch()) {
            ++activity_.branches;
            if (warmBpred) {
                // Mirror the detailed core's RAS traffic: predict()
                // pops on returns there, so warming must pop too or
                // the stack depth drifts across warming gaps.
                if (info.di.op == sisa::Opcode::JR && info.di.a == 31)
                    bpred_.popReturn();
                bpred_.update(info.pc, info.di, info.taken,
                              info.nextPc);
            }
        }
    }

    /**
     * Consume one instruction applying the EXACT state transitions
     * of detailedStep() — fetch-line dedup, cache/TLB fills,
     * predictor lookups and training, wrong-path I-cache pollution —
     * while skipping the cycle/energy/latency bookkeeping. This is
     * the checkpoint capture pass's fast path: after warmDetailed
     * over the instructions a serial run simulated in detail, every
     * microarchitectural structure is bit-identical to the serial
     * run's, at a fraction of the cost.
     *
     * MUST stay in lockstep with detailedStep(): any state update
     * added there needs its mirror here (tests/test_checkpoint.cc
     * fails on divergence).
     */
    void
    warmDetailed(const StepInfo &info)
    {
        const std::uint32_t line = info.pc >> fetchLineShift_;
        if (line != lastFetchLine_) {
            lastFetchLine_ = line;
            hierarchy_.warmFetch(info.pc);
        }

        if (info.di.isLoad()) {
            ++activity_.loads;
            hierarchy_.warmLoad(info.memAddr);
        } else if (info.di.isStore()) {
            ++activity_.stores;
            hierarchy_.warmStore(info.memAddr);
        } else if (info.di.isBranch()) {
            ++activity_.branches;
            ++activity_.bpredLookups;
            const bpred::Prediction p = bpred_.predict(info.pc, info.di);
            const bool mispredict =
                p.taken != info.taken ||
                (info.taken && p.target != info.nextPc);
            if (mispredict) {
                ++activity_.bpredMispredicts;
                if (config_.modelWrongPath) {
                    const std::uint32_t wrong =
                        p.taken ? p.target : info.pc + 4;
                    for (std::uint32_t i = 0;
                         i < config_.wrongPathFetches; ++i)
                        hierarchy_.warmFetch(
                            wrong + i * config_.mem.l1i.lineBytes);
                    lastFetchLine_ = ~0u;
                }
            }
            bpred_.update(info.pc, info.di, info.taken, info.nextPc);
        }
    }

    /** Consume one instruction with the full detailed timing model. */
    void
    detailedStep(const StepInfo &info)
    {
        cyclesFx_ += invWidthFx_;
        energyFx_ += ePerInstFx_;

        auto chargeMem = [&](const mem::MemResult &r) {
            energyFx_ += eL1Fx_;
            if (r.level != mem::ServedBy::L1)
                energyFx_ += eL2Fx_;
            if (r.level == mem::ServedBy::Memory)
                energyFx_ += eMemFx_;
        };

        // Front end: one I-cache access per fetched line.
        const std::uint32_t line = info.pc >> fetchLineShift_;
        if (line != lastFetchLine_) {
            lastFetchLine_ = line;
            const mem::MemResult f = hierarchy_.fetch(info.pc);
            chargeMem(f);
            if (f.latency > config_.mem.l1i.latency)
                cyclesFx_ += static_cast<std::uint64_t>(
                                 f.latency - config_.mem.l1i.latency)
                             << kFixedShift;
        }

        if (info.di.isLoad()) {
            ++activity_.loads;
            const mem::MemResult r = hierarchy_.load(info.memAddr);
            chargeMem(r);
            if (r.latency > config_.mem.l1d.latency)
                cyclesFx_ += (r.latency - config_.mem.l1d.latency) *
                             loadStallFx_;
        } else if (info.di.isStore()) {
            ++activity_.stores;
            const mem::MemResult r = hierarchy_.store(info.memAddr);
            chargeMem(r);
            if (r.latency > config_.mem.l1d.latency)
                cyclesFx_ += (r.latency - config_.mem.l1d.latency) *
                             storeStallFx_;
        } else if (info.di.isBranch()) {
            ++activity_.branches;
            ++activity_.bpredLookups;
            const bpred::Prediction p = bpred_.predict(info.pc, info.di);
            energyFx_ += eBpredFx_;
            const bool mispredict =
                p.taken != info.taken ||
                (info.taken && p.target != info.nextPc);
            if (mispredict) {
                ++activity_.bpredMispredicts;
                cyclesFx_ += mispredictFx_;
                if (config_.modelWrongPath) {
                    // The front end ran down the predicted (wrong)
                    // path: pollute the I-side and refetch after
                    // the redirect.
                    const std::uint32_t wrong =
                        p.taken ? p.target : info.pc + 4;
                    for (std::uint32_t i = 0;
                         i < config_.wrongPathFetches; ++i)
                        hierarchy_.warmFetch(
                            wrong + i * config_.mem.l1i.lineBytes);
                    lastFetchLine_ = ~0u;
                }
            }
            bpred_.update(info.pc, info.di, info.taken, info.nextPc);
        }
    }

    /** Bracketing state for one detailed segment's measurements. */
    struct SegmentMark
    {
        std::uint64_t cyclesFx = 0;
        std::uint64_t energyFx = 0;
    };

    SegmentMark
    beginSegment() const
    {
        return {cyclesFx_, energyFx_};
    }

    /** Charge per-cycle energy for the segment and extract it. */
    Segment
    endSegment(const SegmentMark &mark, std::uint64_t executed)
    {
        const std::uint64_t cycDeltaFx = cyclesFx_ - mark.cyclesFx;
        energyFx_ += mulFixed(ePerCycleFx_, cycDeltaFx);
        Segment seg;
        seg.instructions = executed;
        seg.cycles = cycDeltaFx >> kFixedShift;
        seg.energyNj =
            static_cast<double>(energyFx_ - mark.energyFx) / kFixedOne;
        return seg;
    }

    /** Exact detailed cycles so far (fractional issue slots kept). */
    double
    cycleCount() const
    {
        return static_cast<double>(cyclesFx_) / kFixedOne;
    }

    /** Detailed energy so far, nanojoules. */
    double
    energyCount() const
    {
        return static_cast<double>(energyFx_) / kFixedOne;
    }

    const Activity &
    activity() const
    {
        return activity_;
    }

    const uarch::MachineConfig &
    config() const
    {
        return config_;
    }

    void
    saveState(TimingState &state) const
    {
        hierarchy_.saveState(state.mem);
        bpred_.saveState(state.bpred);
        state.cyclesFx = cyclesFx_;
        state.energyFx = energyFx_;
        state.lastFetchLine = lastFetchLine_;
        state.activity = activity_;
    }

    void
    restoreState(const TimingState &state)
    {
        hierarchy_.restoreState(state.mem);
        bpred_.restoreState(state.bpred);
        cyclesFx_ = state.cyclesFx;
        energyFx_ = state.energyFx;
        lastFetchLine_ = state.lastFetchLine;
        activity_ = state.activity;
    }

  private:
    static std::uint64_t
    toFixed(double v)
    {
        return static_cast<std::uint64_t>(
            std::llround(v * kFixedOne));
    }

    /** Exact (a * b) >> kFixedShift without 128-bit intermediates. */
    static std::uint64_t
    mulFixed(std::uint64_t a, std::uint64_t b)
    {
        const std::uint64_t hi = b >> kFixedShift;
        const std::uint64_t lo = b & ((1ull << kFixedShift) - 1);
        return a * hi + ((a * lo) >> kFixedShift);
    }

    uarch::MachineConfig config_;
    mem::MemHierarchy hierarchy_;
    bpred::BranchUnit bpred_;

    // Per-event fixed-point increments, precomputed from the config.
    std::uint64_t invWidthFx_ = 0;
    std::uint64_t loadStallFx_ = 0;
    std::uint64_t storeStallFx_ = 0;
    std::uint64_t mispredictFx_ = 0;
    std::uint64_t ePerInstFx_ = 0;
    std::uint64_t ePerCycleFx_ = 0;
    std::uint64_t eL1Fx_ = 0;
    std::uint64_t eL2Fx_ = 0;
    std::uint64_t eMemFx_ = 0;
    std::uint64_t eBpredFx_ = 0;

    std::uint64_t cyclesFx_ = 0;
    std::uint64_t energyFx_ = 0;
    std::uint32_t fetchLineShift_ = 6; ///< log2(L1I line bytes).
    std::uint32_t lastFetchLine_ = ~0u;
    Activity activity_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_TIMING_HH
