/**
 * @file
 * Checkpointed functional warming: the subsystem that lets ONE
 * benchmark's stream be sharded across threads (paper Table 6 shows
 * functional warming dominating SMARTS runtime, and warming is
 * inherently serial — so a single long benchmark bottlenecks even a
 * perfectly parallel experiment grid, which is exactly what PR 2's
 * ExperimentRunner left on the table).
 *
 * An ArchCheckpoint serializes the full warm simulator state:
 * architectural (registers, PC, data image) plus microarchitectural
 * (caches, TLBs, branch predictor, fixed-point accumulators). A
 * CheckpointLibrary plans the shard split of a sampling run's unit
 * grid and captures each shard's resume checkpoint with a single
 * streaming pass that applies the serial schedule's EXACT state
 * transitions — fastForward over the warming gaps,
 * SimSession::warmAsDetailed over the regions the serial run
 * simulates in detail — so a shard resumed from its checkpoint
 * measures every unit bit-identically to the serial run.
 *
 * The capture pass costs roughly a functional-warming pass of the
 * stream, far less than the serial run's warming + detailed bill,
 * and it pipelines: shard s starts executing the moment checkpoint
 * s is captured, while the capture pass streams on toward
 * checkpoint s+1. The library is also the seed of every future
 * scaling step named in ROADMAP.md — pipelined warming/detail
 * overlap, distributed runners, checkpoint reuse across design
 * studies.
 */

#ifndef SMARTS_CORE_CHECKPOINT_HH
#define SMARTS_CORE_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/sampler.hh"
#include "core/session.hh"

namespace smarts::core {

/** Full warm simulator state, resumable into a same-spec session. */
struct ArchCheckpoint
{
    ArchState arch;
    TimingState timing;

    /** Instruction position the checkpoint resumes at. */
    std::uint64_t position = 0;

    /** First measured grid index of the shard this resume feeds. */
    std::uint64_t unitIndex = 0;

    /** Approximate serialized footprint, for capacity planning. */
    std::size_t
    byteSize() const
    {
        return arch.byteSize() + timing.byteSize() +
               2 * sizeof(std::uint64_t);
    }
};

/** One contiguous slice of a sampling run's measured-unit grid. */
struct ShardSpec
{
    /** Grid index (offset + m*k form) of the shard's first unit. */
    std::uint64_t firstUnitIndex = 0;

    /** Measured units owned by this shard. */
    std::uint64_t unitCount = 0;

    /** Serial instruction position at the shard's first iteration. */
    std::uint64_t resumePos = 0;

    /** Last shard: run the stream out so streamLength is exact. */
    bool runsTail = false;
};

/**
 * A built checkpoint library: the shard plan plus every captured
 * resume checkpoint, reusable across runs. Capturing costs roughly
 * one warming pass; once built, sharded measurement of the same
 * (benchmark, sampling design) scales with threads and re-runs —
 * the tuned second pass of the two-pass procedure, config sweeps,
 * repeated design studies — pay no warming at all.
 */
class CheckpointLibrary
{
  public:
    /** Called as checkpoint @p shard becomes available (shard >= 1). */
    using CheckpointSink =
        std::function<void(std::size_t shard, ArchCheckpoint &&)>;

    /**
     * Split the measured-unit grid of (@p config, @p streamLength)
     * into at most @p shards contiguous, non-empty shards (clamped
     * to the unit count; an empty grid yields one tail-only shard).
     * Shard boundaries land on iteration starts of the serial
     * sampling loop, i.e. just after the previous measured unit
     * completes.
     */
    static std::vector<ShardSpec>
    planShards(const SamplingConfig &config,
               std::uint64_t streamLength, std::size_t shards);

    /**
     * Stream @p session (fresh, at stream start) through the serial
     * sampling schedule using state-equivalent warming, invoking
     * @p sink the moment each shard's resume state is reached.
     * Shard 0 resumes at stream start and gets no checkpoint. The
     * pass stops after the last checkpoint — the tail belongs to
     * the last shard.
     */
    static void capture(SimSession &session,
                        const SamplingConfig &config,
                        const std::vector<ShardSpec> &plan,
                        const CheckpointSink &sink);

    /**
     * Capture every checkpoint of @p plan into a reusable library
     * (slot 0 is an empty placeholder — shard 0 needs none).
     */
    static CheckpointLibrary build(SimSession &session,
                                   const SamplingConfig &config,
                                   const std::vector<ShardSpec> &plan);

    CheckpointLibrary() = default;

    const SamplingConfig &
    samplingConfig() const
    {
        return config_;
    }

    const std::vector<ShardSpec> &
    plan() const
    {
        return plan_;
    }

    const ArchCheckpoint &
    at(std::size_t shard) const
    {
        return checkpoints_[shard];
    }

    std::size_t
    shardCount() const
    {
        return plan_.size();
    }

    /** Total in-memory footprint of the captured checkpoints. */
    std::size_t
    byteSize() const
    {
        std::size_t total = 0;
        for (const ArchCheckpoint &cp : checkpoints_)
            total += cp.byteSize();
        return total;
    }

  private:
    SamplingConfig config_;
    std::vector<ShardSpec> plan_;
    std::vector<ArchCheckpoint> checkpoints_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_CHECKPOINT_HH
