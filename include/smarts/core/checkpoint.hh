/**
 * @file
 * Checkpointed functional warming: the subsystem that lets ONE
 * benchmark's stream be sharded across threads (paper Table 6 shows
 * functional warming dominating SMARTS runtime, and warming is
 * inherently serial — so a single long benchmark bottlenecks even a
 * perfectly parallel experiment grid, which is exactly what PR 2's
 * ExperimentRunner left on the table).
 *
 * An ArchCheckpoint serializes the full warm simulator state:
 * architectural (registers, PC, data image) plus microarchitectural
 * (caches, TLBs, branch predictor, fixed-point accumulators). A
 * CheckpointLibrary plans the shard split of a sampling run's unit
 * grid and captures each shard's resume checkpoint with a single
 * streaming pass that applies the serial schedule's EXACT state
 * transitions — fastForward over the warming gaps,
 * SimSession::warmAsDetailed over the regions the serial run
 * simulates in detail — so a shard resumed from its checkpoint
 * measures every unit bit-identically to the serial run.
 *
 * The capture pass costs roughly a functional-warming pass of the
 * stream, far less than the serial run's warming + detailed bill,
 * and it pipelines: shard s starts executing the moment checkpoint
 * s is captured, while the capture pass streams on toward
 * checkpoint s+1.
 *
 * Libraries are durable: save()/load() move them through a
 * versioned, endian-explicit, checksummed binary format
 * (docs/checkpoint-format.md) keyed by LibraryKey — benchmark,
 * sampling design, and the warm-state geometry hash of the machine
 * config — so a library captured once serves every later process:
 * the two-pass procedure's second run, repeated design studies, and
 * distributed runners. buildMulti() captures the per-config
 * libraries of an N-config study in ONE MultiSession streaming
 * pass. CheckpointStore (core/checkpoint_store.hh) is the directory
 * cache that runSharded/estimateSharded consult before capturing.
 */

#ifndef SMARTS_CORE_CHECKPOINT_HH
#define SMARTS_CORE_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/multi_session.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "util/binary_io.hh"
#include "util/logging.hh"
#include "workloads/benchmark.hh"

namespace smarts::core {

/**
 * On-disk library format version (docs/checkpoint-format.md).
 * Version 2 adds a FLAVOR byte after the endianness marker so one
 * `.smck` container carries either solo (flavor 0) or co-run mix
 * (flavor 1, mp::MixLibrary) state; version-1 files — always solo —
 * still load (the v1→v2 migration path, tests/test_mix.cc).
 */
constexpr std::uint32_t kCheckpointFormatVersion = 2;

/** File magic: 8 bytes, shared by every version and flavor. */
constexpr char kCheckpointMagic[8] = {'S', 'M', 'R', 'T',
                                      'C', 'K', 'P', 'T'};

/**
 * Endianness probe: written as a u32 through the little-endian
 * encoder, so the file always carries bytes 04 03 02 01. An external
 * reader that decodes it as anything but 0x01020304 is applying the
 * wrong byte order.
 */
constexpr std::uint32_t kCheckpointEndianMark = 0x01020304u;

/** v2 flavor byte: which session tier's state the payload carries. */
constexpr std::uint8_t kCheckpointFlavorSolo = 0;
constexpr std::uint8_t kCheckpointFlavorMix = 1;

/** Full warm simulator state, resumable into a same-spec session. */
struct ArchCheckpoint
{
    ArchState arch;
    TimingState timing;

    /** Instruction position the checkpoint resumes at. */
    std::uint64_t position = 0;

    /** First measured grid index of the shard this resume feeds. */
    std::uint64_t unitIndex = 0;

    /** Approximate serialized footprint, for capacity planning. */
    std::size_t
    byteSize() const
    {
        return arch.byteSize() + timing.byteSize() +
               2 * sizeof(std::uint64_t);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        out.u64(position);
        out.u64(unitIndex);
        arch.write(out);
        timing.write(out);
    }

    void
    read(util::BinaryReader &in)
    {
        position = in.u64();
        unitIndex = in.u64();
        arch.read(in);
        timing.read(in);
    }
};

/**
 * Identity of a persisted checkpoint library: what must match, field
 * for field, before stored warm state may be resumed. The benchmark
 * spec pins the instruction stream, the sampling config pins the
 * capture schedule (which regions were warmed as-detailed vs
 * fast-forwarded), and the geometry hash
 * (uarch::warmGeometryHash) pins every structure whose state the
 * checkpoints carry. Timing-only config differences (latencies,
 * width, energy) hash identically on purpose: warm state does not
 * depend on them, so one library serves a whole latency/energy
 * sweep.
 */
struct LibraryKey
{
    workloads::BenchmarkSpec benchmark;
    std::uint64_t geometryHash = 0;
    SamplingConfig sampling;

    static LibraryKey of(const workloads::BenchmarkSpec &spec,
                         const uarch::MachineConfig &config,
                         const SamplingConfig &sampling);

    /**
     * Field order is normative (docs/checkpoint-format.md § Key);
     * the distributed job manifest and result files
     * (docs/distributed-runners.md) embed the same encoding.
     */
    void write(util::BinaryWriter &out) const;
    static LibraryKey read(util::BinaryReader &in);

    /** Store subdirectory for the benchmark: "<name>-<scale>". */
    std::string dirName() const;

    /** Filesystem-safe file name encoding the sampling + geometry. */
    std::string fileName() const;

    /**
     * File name of the key's LIVE-POINT library (core/livepoint.hh):
     * same stem, `.smlp` extension — both flavors of warm state for
     * a key sit side by side in its store directory.
     */
    std::string livePointFileName() const;

    /** Empty when equal; else which component diverges (for logs). */
    std::string mismatchAgainst(const LibraryKey &other) const;
};

/** One contiguous slice of a sampling run's measured-unit grid. */
struct ShardSpec
{
    /** Grid index (offset + m*k form) of the shard's first unit. */
    std::uint64_t firstUnitIndex = 0;

    /** Measured units owned by this shard. */
    std::uint64_t unitCount = 0;

    /** Serial instruction position at the shard's first iteration. */
    std::uint64_t resumePos = 0;

    /** Last shard: run the stream out so streamLength is exact. */
    bool runsTail = false;
};

/**
 * Field-for-field equality — the ONE definition every plan/echo
 * comparison uses (store plan-match checks, the distributed
 * shard-echo refusal), so a future ShardSpec field cannot make one
 * path recapture while another accepts a stale plan. Whole plans
 * compare via std::vector's operator==.
 */
inline bool
operator==(const ShardSpec &a, const ShardSpec &b)
{
    return a.firstUnitIndex == b.firstUnitIndex &&
           a.unitCount == b.unitCount && a.resumePos == b.resumePos &&
           a.runsTail == b.runsTail;
}

inline bool
operator!=(const ShardSpec &a, const ShardSpec &b)
{
    return !(a == b);
}

namespace detail {

/**
 * The serial sampling schedule with state-equivalent warming, shared
 * by every capture flavor: fastForward over the inter-unit gaps
 * (identical to the serial run), warmAsDetailed over the
 * detailed-warming and measured windows (identical state
 * transitions, no timing). @p snap(shard) fires at each shard
 * boundary — an iteration start, where the session state is
 * bit-identical to the serial run's. Works for any session exposing
 * the stepping surface — SimSession (one config), MultiSession (N
 * configs in lockstep), mp::MixSession (N programs over a shared
 * hierarchy, positions in rounds): the stream driving the schedule
 * does not depend on what is being warmed.
 */
template <typename Session, typename Snap>
void
captureSchedule(Session &session, const SamplingConfig &config,
                const std::vector<ShardSpec> &plan, Snap &&snap)
{
    if (plan.size() <= 1)
        return;
    const std::uint64_t u = config.unitSize;
    const std::uint64_t w = config.detailedWarming;
    const std::uint64_t k = config.interval;
    if (!u || !k)
        SMARTS_FATAL("capture needs nonzero unit size and interval");

    std::uint64_t pos = session.instCount();
    std::uint64_t unitIdx = config.nextGridIndex(config.offset, pos);
    std::size_t next = 1;

    while (next < plan.size()) {
        if (unitIdx >= plan[next].firstUnitIndex) {
            // The grid index can cross a boundary the STREAM never
            // reached (it ended mid-unit on a mis-stated length);
            // snapping there would persist a checkpoint load() must
            // forever refuse. Unreachable boundary = stop.
            if (session.instCount() < plan[next].resumePos)
                break;
            snap(next);
            ++next;
            continue;
        }
        // Stream shorter than planned (mis-stated length): the
        // remaining checkpoints are unreachable.
        if (session.finished() || unitIdx > ~0ull / u)
            break;

        const std::uint64_t unitStart = unitIdx * u;
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;
        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos,
                                       config.warming);
            if (session.finished())
                continue;
        }
        if (unitStart > pos)
            pos += session.warmAsDetailed(unitStart - pos);
        pos += session.warmAsDetailed(u);
        unitIdx += k;
    }
}

} // namespace detail

/**
 * A built checkpoint library: the shard plan plus every captured
 * resume checkpoint, reusable across runs. Capturing costs roughly
 * one warming pass; once built, sharded measurement of the same
 * (benchmark, sampling design) scales with threads and re-runs —
 * the tuned second pass of the two-pass procedure, config sweeps,
 * repeated design studies — pay no warming at all.
 */
class CheckpointLibrary
{
  public:
    /** Called as checkpoint @p shard becomes available (shard >= 1). */
    using CheckpointSink =
        std::function<void(std::size_t shard, ArchCheckpoint &&)>;

    /**
     * Split the measured-unit grid of (@p config, @p streamLength)
     * into at most @p shards contiguous, non-empty shards (clamped
     * to the unit count; an empty grid yields one tail-only shard).
     * Shard boundaries land on iteration starts of the serial
     * sampling loop, i.e. just after the previous measured unit
     * completes.
     */
    static std::vector<ShardSpec>
    planShards(const SamplingConfig &config,
               std::uint64_t streamLength, std::size_t shards);

    /**
     * Check that @p plan is one planShards(@p config, ...) could
     * have produced: contiguous shard geometry, interior resume
     * positions on iteration boundaries, the tail flag on exactly
     * the last shard. Returns an empty string when valid, else a
     * diagnostic naming the offending shard. Both the library
     * loader and the distributed job manifest refuse files whose
     * plan fails this — a checksum only proves the writer was
     * careful, not honest, and executing a malformed plan would
     * MIS-MEASURE instead of failing loudly.
     */
    static std::string
    validatePlan(const SamplingConfig &config,
                 const std::vector<ShardSpec> &plan);

    /**
     * Stream @p session (fresh, at stream start) through the serial
     * sampling schedule using state-equivalent warming, invoking
     * @p sink the moment each shard's resume state is reached.
     * Shard 0 resumes at stream start and gets no checkpoint. The
     * pass stops after the last checkpoint — the tail belongs to
     * the last shard.
     */
    static void capture(SimSession &session,
                        const SamplingConfig &config,
                        const std::vector<ShardSpec> &plan,
                        const CheckpointSink &sink);

    /**
     * Capture every checkpoint of @p plan into a reusable library
     * (slot 0 is an empty placeholder — shard 0 needs none).
     */
    static CheckpointLibrary build(SimSession &session,
                                   const SamplingConfig &config,
                                   const std::vector<ShardSpec> &plan);

    /**
     * Multi-config capture: ONE streaming pass over @p session (N
     * configs in lockstep off the shared architectural stream)
     * produces the per-config libraries an N-config design study
     * needs — library c is byte-identical to what build() over a
     * single-config session of config c would have captured, at
     * roughly 1/N of the total capture cost. This is what makes
     * checkpoint reuse work ACROSS configs even though warm state is
     * config-dependent.
     */
    static std::vector<CheckpointLibrary>
    buildMulti(MultiSession &session, const SamplingConfig &config,
               const std::vector<ShardSpec> &plan);

    /**
     * An empty library for (@p config, @p plan) whose checkpoints
     * arrive later via record() — the pipelined capture path uses
     * this to collect a persistable library while shards already
     * execute.
     */
    static CheckpointLibrary prepare(const SamplingConfig &config,
                                     const std::vector<ShardSpec> &plan);

    /** Store shard @p shard's captured checkpoint (copied). */
    void
    record(std::size_t shard, const ArchCheckpoint &cp)
    {
        checkpoints_[shard] = cp;
    }

    /** True when every resume slot (shard >= 1) holds a checkpoint. */
    bool
    complete() const
    {
        for (std::size_t s = 1; s < checkpoints_.size(); ++s)
            if (checkpoints_[s].arch.data.empty())
                return false;
        return !checkpoints_.empty();
    }

    /**
     * Serialize under @p key into the versioned on-disk format
     * (docs/checkpoint-format.md) and publish atomically at @p path.
     * False with @p error set on filesystem failure.
     */
    bool save(const LibraryKey &key, const std::string &path,
              std::string *error = nullptr,
              bool createDirs = true) const;

    /**
     * Load a library from @p path, refusing — nullopt plus a
     * diagnostic in @p error — on anything short of an exact match:
     * missing/truncated/corrupt file (checksum), unknown format
     * version, or a key whose benchmark, sampling design or config
     * geometry differs from @p expect. Refusal is the contract: a
     * mis-keyed library must never silently mis-warm a shard.
     */
    static std::optional<CheckpointLibrary>
    load(const std::string &path, const LibraryKey &expect,
         std::string *error = nullptr);

    /** Serialize to @p out (save() = serialize + checksummed file). */
    void serialize(const LibraryKey &key,
                   util::BinaryWriter &out) const;

    CheckpointLibrary() = default;

    const SamplingConfig &
    samplingConfig() const
    {
        return config_;
    }

    const std::vector<ShardSpec> &
    plan() const
    {
        return plan_;
    }

    const ArchCheckpoint &
    at(std::size_t shard) const
    {
        return checkpoints_[shard];
    }

    std::size_t
    shardCount() const
    {
        return plan_.size();
    }

    /** Total in-memory footprint of the captured checkpoints. */
    std::size_t
    byteSize() const
    {
        std::size_t total = 0;
        for (const ArchCheckpoint &cp : checkpoints_)
            total += cp.byteSize();
        return total;
    }

  private:
    SamplingConfig config_;
    std::vector<ShardSpec> plan_;
    std::vector<ArchCheckpoint> checkpoints_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_CHECKPOINT_HH
