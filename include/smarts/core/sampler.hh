/**
 * @file
 * SystematicSampler: the paper's U/W/k sampling-unit geometry. The
 * stream is viewed as N = length/U contiguous units; every k-th
 * unit (starting at unit index `offset`, the paper's random or
 * phase-swept j) is measured in detail, preceded by W instructions
 * of detailed warming; everything between is fast-forwarded in the
 * configured warming mode. The result is a SmartsEstimate: per-unit
 * CPI/EPI statistics with the paper's confidence intervals.
 */

#ifndef SMARTS_CORE_SAMPLER_HH
#define SMARTS_CORE_SAMPLER_HH

#include <cstdint>

#include "core/session.hh"
#include "stats/confidence.hh"
#include "stats/online_stats.hh"

namespace smarts::core {

struct SamplingConfig
{
    std::uint64_t unitSize = 1000;      ///< U.
    std::uint64_t detailedWarming = 2000; ///< W.
    std::uint64_t interval = 10;        ///< k, in units.
    std::uint64_t offset = 0;           ///< first measured unit index.
    WarmingMode warming = WarmingMode::Functional;

    /**
     * Pick k so that roughly @p targetUnits units of @p unitSize are
     * measured out of a @p totalInsts stream (never below 1).
     */
    static std::uint64_t
    chooseInterval(std::uint64_t totalInsts, std::uint64_t unitSize,
                   std::uint64_t targetUnits)
    {
        const std::uint64_t units =
            unitSize ? totalInsts / unitSize : 0;
        if (!targetUnits || units <= targetUnits)
            return 1;
        return units / targetUnits;
    }
};

/** A sampled estimate of CPI and EPI with confidence intervals. */
struct SmartsEstimate
{
    stats::OnlineStats cpiStats; ///< per-unit CPI observations.
    stats::OnlineStats epiStats; ///< per-unit EPI observations (nJ).
    std::uint64_t instructionsMeasured = 0;
    std::uint64_t instructionsWarmed = 0; ///< detailed warming insts.
    std::uint64_t streamLength = 0;

    std::uint64_t
    units() const
    {
        return cpiStats.count();
    }

    double
    cpi() const
    {
        return cpiStats.mean();
    }

    double
    epi() const
    {
        return epiStats.mean();
    }

    double
    cpiCv() const
    {
        return cpiStats.cv();
    }

    double
    epiCv() const
    {
        return epiStats.cv();
    }

    /** Relative CI half-width at @p level (Eq. 2). */
    double
    cpiConfidenceInterval(double level) const
    {
        return stats::confidenceHalfWidth(cpiCv(), units(), level);
    }

    double
    epiConfidenceInterval(double level) const
    {
        return stats::confidenceHalfWidth(epiCv(), units(), level);
    }

    /** Fraction of the stream simulated in detail (measure + warm). */
    double
    detailedFraction() const
    {
        return streamLength
                   ? static_cast<double>(instructionsMeasured +
                                         instructionsWarmed) /
                         static_cast<double>(streamLength)
                   : 0.0;
    }
};

class SystematicSampler
{
  public:
    explicit SystematicSampler(const SamplingConfig &config);

    /** Run the session to end of stream, sampling systematically. */
    SmartsEstimate run(SimSession &session) const;

  private:
    SamplingConfig config_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_SAMPLER_HH
