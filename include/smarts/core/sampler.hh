/**
 * @file
 * SystematicSampler: the paper's U/W/k sampling-unit geometry. The
 * stream is viewed as N = length/U contiguous units; every k-th
 * unit (starting at unit index `offset`, the paper's random or
 * phase-swept j) is measured in detail, preceded by W instructions
 * of detailed warming; everything between is fast-forwarded in the
 * configured warming mode. The result is a SmartsEstimate: per-unit
 * CPI/EPI statistics with the paper's confidence intervals.
 */

#ifndef SMARTS_CORE_SAMPLER_HH
#define SMARTS_CORE_SAMPLER_HH

#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "core/multi_session.hh"
#include "core/session.hh"
#include "stats/confidence.hh"
#include "stats/online_stats.hh"

namespace smarts::exec {
class ThreadPool;
} // namespace smarts::exec

namespace smarts::core {

class CheckpointLibrary;
class CheckpointStore;
class LivePointLibrary;
struct ShardSpec;

/** Builds a fresh session at stream start (thread-safe, reentrant). */
using SessionFactory = std::function<std::unique_ptr<SimSession>()>;

/**
 * Called between sampled units of a slice: a liveness/progress hook
 * for long executions (the distributed runner heartbeats its claim
 * marker here). Return false to ABANDON the slice — the loop stops
 * where it is and the partial result must not be published or
 * folded.
 */
using ProgressTick = std::function<bool()>;

struct SamplingConfig
{
    std::uint64_t unitSize = 1000;      ///< U.
    std::uint64_t detailedWarming = 2000; ///< W.
    std::uint64_t interval = 10;        ///< k, in units.
    std::uint64_t offset = 0;           ///< first measured unit index.
    WarmingMode warming = WarmingMode::Functional;

    /**
     * Pick k so that roughly @p targetUnits units of @p unitSize are
     * measured out of a @p totalInsts stream (never below 1).
     * Rounds to the NEAREST interval: truncation used to turn e.g.
     * units=1999, target=1000 into k=1 and measure ~2x the requested
     * units (with the detailed-simulation bill to match).
     */
    static std::uint64_t
    chooseInterval(std::uint64_t totalInsts, std::uint64_t unitSize,
                   std::uint64_t targetUnits)
    {
        const std::uint64_t units =
            unitSize ? totalInsts / unitSize : 0;
        if (!targetUnits || units <= targetUnits)
            return 1;
        // Round half up, overflow-free: bump the quotient when the
        // remainder reaches half the divisor.
        const std::uint64_t k = units / targetUnits +
                                (units % targetUnits >=
                                         (targetUnits + 1) / 2
                                     ? 1
                                     : 0);
        return k ? k : 1;
    }

    /**
     * First grid index at or after instruction position @p pos,
     * starting from grid index @p idx (any index of the form
     * offset + m*interval). O(1) arithmetic — the sampler's resume
     * path used to step the index one interval per loop iteration.
     */
    std::uint64_t
    nextGridIndex(std::uint64_t idx, std::uint64_t pos) const
    {
        const std::uint64_t firstWhole =
            unitSize ? (pos + unitSize - 1) / unitSize : 0;
        if (firstWhole <= idx)
            return idx;
        const std::uint64_t steps =
            (firstWhole - idx + interval - 1) / interval;
        return idx + steps * interval;
    }
};

/** One measured unit's observations, in stream order. */
struct UnitObservation
{
    double cpi = 0.0;
    double epi = 0.0;
};

/**
 * Raw results of one contiguous slice of the sampling loop — the
 * unit of work a shard (in-process or on a remote runner) produces
 * and the unit foldSlice() merges. Everything an estimate
 * accumulates is here verbatim, so folding slices in shard order
 * reproduces the serial run bit for bit; this is also exactly what
 * a distributed per-shard result file carries
 * (docs/distributed-runners.md).
 */
struct SliceResult
{
    std::vector<UnitObservation> obs; ///< per complete unit, stream order.
    std::uint64_t measured = 0;
    std::uint64_t warmed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t endPos = 0; ///< session position at slice end.
};

/** A sampled estimate of CPI and EPI with confidence intervals. */
struct SmartsEstimate
{
    stats::OnlineStats cpiStats; ///< per-unit CPI observations.
    stats::OnlineStats epiStats; ///< per-unit EPI observations (nJ).

    /** Instructions in COMPLETE units: always units() * U. */
    std::uint64_t instructionsMeasured = 0;
    std::uint64_t instructionsWarmed = 0; ///< detailed warming insts.

    /**
     * Detailed-simulated instructions of a truncated final unit:
     * they cost detailed-simulation time but produced no CPI/EPI
     * observation, so they are tracked apart from
     * instructionsMeasured (which previously absorbed them,
     * overstating the instructions behind the statistics).
     */
    std::uint64_t instructionsDropped = 0;
    std::uint64_t streamLength = 0;

    std::uint64_t
    units() const
    {
        return cpiStats.count();
    }

    double
    cpi() const
    {
        return cpiStats.mean();
    }

    double
    epi() const
    {
        return epiStats.mean();
    }

    double
    cpiCv() const
    {
        return cpiStats.cv();
    }

    double
    epiCv() const
    {
        return epiStats.cv();
    }

    /** Relative CI half-width at @p level (Eq. 2). */
    double
    cpiConfidenceInterval(double level) const
    {
        return stats::confidenceHalfWidth(cpiCv(), units(), level);
    }

    double
    epiConfidenceInterval(double level) const
    {
        return stats::confidenceHalfWidth(epiCv(), units(), level);
    }

    /**
     * Fraction of the stream simulated in detail (measure + warm +
     * the truncated final unit, which was detailed-simulated even
     * though it yielded no observation).
     */
    double
    detailedFraction() const
    {
        return streamLength
                   ? static_cast<double>(instructionsMeasured +
                                         instructionsWarmed +
                                         instructionsDropped) /
                         static_cast<double>(streamLength)
                   : 0.0;
    }

    /**
     * Bit-exact fingerprint of every field — statistical
     * accumulators and instruction counters, doubles compared by
     * bit pattern. This is the ONE definition behind every
     * bit-identity contract (the determinism test suites, the
     * golden bench columns, smarts_runner --serial-check): when the
     * estimate grows a field, adding it here tightens all of them
     * at once instead of silently narrowing one.
     */
    std::vector<std::uint64_t>
    fingerprint() const
    {
        auto bits = [](double v) {
            std::uint64_t b;
            std::memcpy(&b, &v, sizeof b);
            return b;
        };
        return {cpiStats.count(),     bits(cpiStats.mean()),
                bits(cpiStats.variance()),
                epiStats.count(),     bits(epiStats.mean()),
                bits(epiStats.variance()),
                instructionsMeasured, instructionsWarmed,
                instructionsDropped,  streamLength};
    }
};

/**
 * A matched multi-config estimate: per-config SmartsEstimates whose
 * sampled units are the identical instruction windows, plus the
 * per-unit CPI-difference statistics against config 0. Matched pairs
 * cancel the shared per-unit variance, so the confidence interval on
 * a design comparison (the delta, or the speedup) is far tighter
 * than combining two independent per-config intervals.
 */
struct MatchedEstimate
{
    std::vector<SmartsEstimate> perConfig;

    /** Per-unit (cpi_i - cpi_0) stats; index 0 is all-zero deltas. */
    std::vector<stats::OnlineStats> cpiDelta;

    /**
     * Point estimate of config @p i's speedup over config 0
     * (cpi_0 / cpi_i: above 1 when config i is the faster machine).
     */
    double
    speedup(std::size_t i) const
    {
        return perConfig[i].cpi() != 0.0
                   ? perConfig[0].cpi() / perConfig[i].cpi()
                   : 0.0;
    }

    /**
     * Absolute CI half-width on the mean CPI delta (config @p i
     * minus config 0) at @p level, from the matched per-unit pairs.
     */
    double
    deltaCiAbs(std::size_t i, double level) const
    {
        return stats::zScore(level) * cpiDelta[i].meanError();
    }

    /**
     * CI half-width on the delta relative to config 0's CPI — the
     * number to compare against an unmatched two-run CI, which is
     * sqrt(ci_0^2 + ci_i^2) in the same units.
     */
    double
    deltaCiRelative(std::size_t i, double level) const
    {
        return perConfig[0].cpi() != 0.0
                   ? deltaCiAbs(i, level) / perConfig[0].cpi()
                   : 0.0;
    }

    /**
     * What an unmatched (independent per-config runs) design
     * comparison would put on the same delta, relative to config 0:
     * the root-sum-square of the two per-config ABSOLUTE half-widths
     * (each relative CI rescaled by its own mean), over cpi_0.
     */
    double
    independentDeltaCiRelative(std::size_t i, double level) const
    {
        if (perConfig[0].cpi() == 0.0)
            return 0.0;
        const double a =
            perConfig[0].cpiConfidenceInterval(level) *
            perConfig[0].cpi();
        const double b =
            perConfig[i].cpiConfidenceInterval(level) *
            perConfig[i].cpi();
        return std::sqrt(a * a + b * b) / perConfig[0].cpi();
    }
};

/** Knobs of the anytime estimator (SystematicSampler::runAnytime). */
struct AnytimeOptions
{
    /**
     * Stop once the streaming CPI confidence interval at
     * target.level reaches +/- target.epsilon of the mean (Eq. 2).
     * epsilon = 0 never stops early: the run measures every
     * live-point, which is the completion mode whose estimate is
     * bit-identical to the serial run()'s.
     */
    stats::ConfidenceSpec target{};

    /** Seed of the deterministic measurement-order shuffle. */
    std::uint64_t seed = 1;

    /**
     * Units measured before the stop rule may fire: the CI is a CLT
     * statement and needs a minimum sample behind it (the paper
     * samples thousands; 32 is a floor, not a recommendation).
     */
    std::uint64_t minUnits = 32;

    /**
     * Units measured between stop-rule evaluations. Decisions happen
     * only at batch boundaries — data-independent cut points — so
     * the measured set is identical at any thread count.
     */
    std::uint64_t batch = 64;

    /**
     * Consecutive shuffle-order units per pool job: each job builds
     * ONE session and restores it per unit, amortizing session
     * construction without affecting the result (restore replaces
     * the full state). Purely a scheduling knob.
     */
    std::uint64_t chunk = 8;
};

/** What the anytime estimator produced and how hard it worked. */
struct AnytimeResult
{
    SmartsEstimate estimate;

    /** Live-points in the library (the fixed-n design's n). */
    std::uint64_t unitsAvailable = 0;

    /** Live-points actually measured (= n when run to completion). */
    std::uint64_t unitsMeasured = 0;

    /** True when the confidence target fired before completion. */
    bool earlyStopped = false;
};

class SystematicSampler
{
  public:
    explicit SystematicSampler(const SamplingConfig &config);

    /** Run the session to end of stream, sampling systematically. */
    SmartsEstimate run(SimSession &session) const;

    /**
     * Execute ONE shard's slice of the sampling loop on @p session
     * (fresh at stream start for shard 0, restored from the shard's
     * checkpoint otherwise). This is the slice entry point the
     * sharded overloads below and the distributed runner
     * (smarts::distrib) share: the serial loop body is common code,
     * so no execution path can drift from run()'s semantics.
     */
    SliceResult runSlice(SimSession &session, const ShardSpec &shard,
                         const ProgressTick &tick = {}) const;

    /**
     * Measure live-point slots [firstUnit, firstUnit + unitCount) of
     * @p library — restore, detailed-warm W, measure U per unit,
     * with serial-identical accounting — into one SliceResult in
     * slot (= stream) order. This is the unit-range job body of the
     * distributed runner: folding range results in slot order
     * reproduces the serial run() bit for bit, exactly as fold of
     * runSlice results does in shard mode. @p tick fires between
     * units (see ProgressTick; an abandoned slice is partial and
     * must not be published). Implemented in livepoint.cc.
     */
    SliceResult measureUnits(SimSession &session,
                             const LivePointLibrary &library,
                             std::uint64_t firstUnit,
                             std::uint64_t unitCount,
                             const ProgressTick &tick = {}) const;

    /**
     * Accumulate a slice into @p est by replaying its per-unit
     * observations in stream order. Replay, not OnlineStats::merge:
     * Chan's merge rounds differently from sequential accumulation,
     * and every sharded/distributed path's contract is bit-identity
     * with run(). Slices MUST be folded in shard (stream) order.
     */
    static void foldSlice(SmartsEstimate &est,
                          const SliceResult &slice);

    /**
     * Matched-pair run: sample the shared stream once, measuring
     * every config of @p session on the identical units. One
     * functional-warming pass feeds all N timing models.
     */
    MatchedEstimate runMatched(MultiSession &session) const;

    /**
     * Checkpoint-sharded run of ONE benchmark's stream: the unit
     * grid is split into @p shards contiguous shards
     * (CheckpointLibrary::planShards), a capture pass streams the
     * serial schedule in state-equivalent warming modes and emits
     * each shard's resume checkpoint the moment it is reached, and
     * shards execute on @p pool as their checkpoints materialize
     * (shard 0 starts immediately). Per-shard results are merged in
     * shard order by replaying the per-unit observations through
     * the estimate's accumulators — replay rather than
     * stats::OnlineStats::merge because Chan's merge, while
     * algebraically exact, rounds differently from sequential
     * accumulation and the bar here is BIT-IDENTITY: the returned
     * SmartsEstimate equals run()'s byte for byte at any shard and
     * thread count (ctest-enforced by tests/test_checkpoint.cc).
     *
     * @p streamLength must be the benchmark's true dynamic length
     * (one functional pass, or a prior reference) — the same
     * contract SmartsProcedure::estimate already imposes.
     */
    SmartsEstimate runSharded(const SessionFactory &factory,
                              std::uint64_t streamLength,
                              std::size_t shards,
                              exec::ThreadPool &pool) const;

    /**
     * Sharded run resuming from a PREBUILT checkpoint library
     * (CheckpointLibrary::build): no capture pass in this call, so
     * the wall clock is the shard work divided by the pool — this
     * is the checkpoint-reuse fast path for tuned second passes and
     * repeated design studies over the same benchmark. The library
     * must have been built with this sampler's SamplingConfig
     * (fatal otherwise); the estimate is bit-identical to run()'s.
     */
    SmartsEstimate runSharded(const SessionFactory &factory,
                              const CheckpointLibrary &library,
                              exec::ThreadPool &pool) const;

    /**
     * Store-backed sharded run: consult @p store for a library keyed
     * by (@p spec, @p machine's warm-state geometry, this sampler's
     * design) BEFORE capturing. On a hit, shards resume from the
     * persisted warm state — the capture pass disappears from the
     * run entirely. On a miss (including a file that refuses to
     * load), fall back to the pipelined cold path, collect the
     * library as it is captured, and persist it for every later run.
     * Either way the estimate is bit-identical to the serial run()'s
     * (a hit ignores @p shards and uses the stored plan; any shard
     * count yields the same bytes).
     */
    SmartsEstimate runSharded(const SessionFactory &factory,
                              const workloads::BenchmarkSpec &spec,
                              const uarch::MachineConfig &machine,
                              std::uint64_t streamLength,
                              std::size_t shards,
                              exec::ThreadPool &pool,
                              CheckpointStore &store) const;

    /**
     * The third execution mode — ANYTIME over a live-point library
     * (core/livepoint.hh): measure units in the seeded-shuffle order
     * of @p options, in parallel across @p pool, feeding a streaming
     * OnlineStats confidence interval, and stop at the first batch
     * boundary where the target of @p options is met. The final
     * estimate is folded DETERMINISTICALLY — the measured units'
     * observations are replayed in stream order through the
     * accumulators, never OnlineStats::merge — so the result is
     * bit-identical at any thread count, and a run driven to
     * completion (options.target.epsilon = 0, or a target the
     * stream's variance cannot meet) equals the serial run()'s
     * estimate byte for byte (ctest-enforced by
     * tests/test_livepoint.cc). The library must have been built
     * with this sampler's SamplingConfig (fatal otherwise).
     */
    AnytimeResult runAnytime(const SessionFactory &factory,
                             const LivePointLibrary &library,
                             exec::ThreadPool &pool,
                             const AnytimeOptions &options = {}) const;

    /**
     * LEAPFROG cold path: no live-point library exists yet, so
     * capture and measurement overlap at per-unit grain instead of
     * one serial capture pass followed by measurement. The capture
     * schedule streams @p captureSession on the calling thread; the
     * moment a unit's live-point is taken it is handed to @p pool
     * (in chunk-sized groups, options.chunk) to be measured while
     * capture leapfrogs ahead to the next unit. After capture
     * drains, the anytime stop rule is REPLAYED over the complete
     * sample set — the identical seeded shuffle, batch boundaries
     * and streaming-CI arithmetic runAnytime applies while
     * measuring — so the returned AnytimeResult (estimate,
     * unitsMeasured, earlyStopped) is bit-identical to a warm-store
     * runAnytime over the same library, and a run to completion
     * equals the serial run() byte for byte (ctest-enforced by
     * tests/test_livepoint.cc at 1/2/5 threads). Unlike the warm
     * path, every unit is measured (the stop rule cannot fire
     * mid-capture without biasing the shuffle) — the overlap, not
     * early exit, is where the cold-path wall clock goes down.
     * @p collect (optional) receives the captured library for
     * persistence.
     */
    AnytimeResult
    runAnytimeLeapfrog(SimSession &captureSession,
                       const SessionFactory &factory,
                       exec::ThreadPool &pool,
                       const AnytimeOptions &options = {},
                       LivePointLibrary *collect = nullptr) const;

  private:
    /** The cold pipelined path; @p collect (optional) receives the
     *  captured library for persistence. */
    SmartsEstimate runShardedCold(const SessionFactory &factory,
                                  std::uint64_t streamLength,
                                  std::size_t shards,
                                  exec::ThreadPool &pool,
                                  CheckpointLibrary *collect) const;

    SamplingConfig config_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_SAMPLER_HH
