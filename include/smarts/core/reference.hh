/**
 * @file
 * ReferenceRunner: full-stream detailed simulation, cached per
 * benchmark, recording CPI at a fine chunk granularity so the
 * coefficient of variation V_CPI(U) can be evaluated at any unit
 * size afterwards (the measurement behind the paper's Figures 2-5).
 */

#ifndef SMARTS_CORE_REFERENCE_HH
#define SMARTS_CORE_REFERENCE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "uarch/config.hh"
#include "workloads/benchmark.hh"

namespace smarts::core {

struct ReferenceResult
{
    double cpi = 0.0;
    double epi = 0.0; ///< nanojoules per instruction.
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;

    /** Per-chunk detailed cycles, chunkSize instructions per chunk. */
    std::uint64_t chunkSize = 10;
    std::vector<float> chunkCycles;
};

/**
 * V_CPI at sampling-unit size @p unitSize, from the reference's
 * chunk trace (complete units only; 0 when fewer than two units).
 * Granularity is ref.chunkSize: @p unitSize is rounded down to a
 * chunk multiple (and up to one chunk minimum), so ask for
 * multiples of chunkSize when exact unit sizes matter.
 */
double cvAtUnitSize(const ReferenceResult &ref, std::uint64_t unitSize);

class ReferenceRunner
{
  public:
    ReferenceRunner(workloads::Scale scale,
                    const uarch::MachineConfig &config);

    /**
     * Full detailed simulation of @p spec (at the runner's scale and
     * machine), cached per benchmark name for the runner's lifetime.
     */
    const ReferenceResult &get(const workloads::BenchmarkSpec &spec);

  private:
    workloads::Scale scale_;
    uarch::MachineConfig config_;
    std::map<std::string, ReferenceResult> cache_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_REFERENCE_HH
