/**
 * @file
 * MultiSession: one benchmark's instruction stream driving N machine
 * configurations in lockstep. The architectural interpretation —
 * the dominant cost of functional warming the paper's Table 6
 * measures at >99% of sampled runtime — happens once per step; each
 * config's caches, TLBs and predictors are warmed (or timed) from
 * the shared StepInfo. Because every config observes the identical
 * instruction sequence, per-unit measurements across configs are
 * matched pairs: the variance of their difference shrinks by the
 * inter-config correlation, which is what lets design studies use
 * far fewer sampled units for the same confidence on the comparison.
 */

#ifndef SMARTS_CORE_MULTI_SESSION_HH
#define SMARTS_CORE_MULTI_SESSION_HH

#include <cstdint>
#include <vector>

#include "core/arch.hh"
#include "core/timing.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

namespace smarts::core {

/** One detailed segment, measured by every config simultaneously. */
struct MultiSegment
{
    std::uint64_t instructions = 0; ///< shared across configs.
    std::vector<Segment> per;       ///< one per config, same order.
};

class MultiSession
{
  public:
    MultiSession(const workloads::BenchmarkSpec &spec,
                 const std::vector<uarch::MachineConfig> &configs);

    /**
     * Execute up to @p maxInsts functionally, warming every config's
     * long-history state per @p mode from one interpretation pass.
     */
    std::uint64_t fastForward(std::uint64_t maxInsts, WarmingMode mode);

    /**
     * Execute up to @p maxInsts with every config's detailed timing
     * model consuming the same architectural stream.
     */
    MultiSegment detailedRun(std::uint64_t maxInsts);

    /**
     * Execute up to @p maxInsts applying every config's detailedRun
     * state transitions (wrong-path pollution included) without the
     * timing bookkeeping — the multi-config checkpoint capture pass
     * (CheckpointLibrary::buildMulti): since the architectural
     * stream is config-independent, one interpretation pass leaves
     * every config's microarchitectural state bit-identical to what
     * its own serial capture would have produced.
     */
    std::uint64_t warmAsDetailed(std::uint64_t maxInsts);

    /**
     * Snapshot the shared architectural state and every config's
     * timing state (resized to configCount()), in config order.
     */
    void saveState(ArchState &arch,
                   std::vector<TimingState> &timings) const;

    bool
    finished() const
    {
        return arch_.finished();
    }

    std::uint64_t
    instCount() const
    {
        return arch_.instCount();
    }

    std::size_t
    configCount() const
    {
        return models_.size();
    }

    const TimingModel &
    model(std::size_t i) const
    {
        return models_[i];
    }

  private:
    ArchCore arch_;
    std::vector<TimingModel> models_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_MULTI_SESSION_HH
