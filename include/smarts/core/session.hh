/**
 * @file
 * SimSession: one benchmark bound to one machine, executable in the
 * three speeds the paper's rate model names — pure functional
 * (S_F, fastForward with WarmingMode::None), functional warming
 * (S_FW, fastForward updating caches/TLBs/predictors in program
 * order), and detailed (S_D, detailedRun with the full timing and
 * energy model). All modes share one architectural and one
 * microarchitectural state, so interleaving them implements the
 * SMARTS measurement cycle.
 */

#ifndef SMARTS_CORE_SESSION_HH
#define SMARTS_CORE_SESSION_HH

#include <cstdint>
#include <vector>

#include "bpred/branch_unit.hh"
#include "mem/hierarchy.hh"
#include "sisa/encoding.hh"
#include "uarch/config.hh"
#include "workloads/program.hh"

namespace smarts::core {

/** What state fast-forwarding keeps warm (paper Section 4). */
enum class WarmingMode
{
    None,       ///< architectural state only (plain fast-forward).
    CachesOnly, ///< caches + TLBs, predictors stale.
    BpredOnly,  ///< predictors, caches stale.
    Functional, ///< the paper's functional warming: everything.
};

/** One detailed-simulation segment's measurements. */
struct Segment
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double energyNj = 0.0;
};

/** Cumulative event counters (all modes). */
struct Activity
{
    std::uint64_t branches = 0;
    std::uint64_t bpredLookups = 0;
    std::uint64_t bpredMispredicts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

class SimSession
{
  public:
    SimSession(const workloads::BenchmarkSpec &spec,
               const uarch::MachineConfig &config);

    /**
     * Execute up to @p maxInsts functionally, warming per @p mode.
     * Returns the number of instructions executed by this call
     * (less than @p maxInsts only at end of stream).
     */
    std::uint64_t fastForward(std::uint64_t maxInsts, WarmingMode mode);

    /** Execute up to @p maxInsts with the detailed timing model. */
    Segment detailedRun(std::uint64_t maxInsts);

    /**
     * Functional profiling pass to end of stream: per-interval
     * basic-block vectors projected into @p dims buckets (the
     * SimPoint front end). Intervals are @p intervalSize
     * instructions; a final partial interval is dropped.
     */
    std::vector<std::vector<double>>
    profileBbvs(std::uint64_t intervalSize, std::size_t dims);

    bool
    finished() const
    {
        return finished_;
    }

    /** Instructions executed so far, all modes. */
    std::uint64_t
    instCount() const
    {
        return instCount_;
    }

    /** Exact detailed cycles so far (fractional issue slots kept). */
    double
    cycleCount() const
    {
        return cycles_;
    }

    /** Detailed energy so far, nanojoules. */
    double
    energyCount() const
    {
        return energyNj_;
    }

    const Activity &
    activity() const
    {
        return activity_;
    }

    std::uint32_t
    pc() const
    {
        return pc_;
    }

    const uarch::MachineConfig &
    config() const
    {
        return config_;
    }

  private:
    struct StepInfo
    {
        sisa::DecodedInst di;
        std::uint32_t pc = 0;       ///< pc of the executed inst.
        std::uint32_t memAddr = 0;  ///< valid when di.isMem().
        bool taken = false;         ///< valid when di.isBranch().
        std::uint32_t nextPc = 0;
    };

    /** Execute one instruction architecturally. False at HALT/end. */
    bool step(StepInfo &info);

    std::uint32_t loadWord(std::uint32_t addr) const;
    void storeWord(std::uint32_t addr, std::uint32_t value);

    uarch::MachineConfig config_;
    workloads::Program program_;
    std::vector<sisa::DecodedInst> decoded_; ///< predecoded code.
    std::uint32_t dataMask_;

    std::uint32_t regs_[32] = {};
    std::uint32_t pc_;
    bool finished_ = false;

    mem::MemHierarchy hierarchy_;
    bpred::BranchUnit bpred_;

    std::uint64_t instCount_ = 0;
    double cycles_ = 0.0;
    double energyNj_ = 0.0;
    std::uint32_t fetchLineShift_ = 6; ///< log2(L1I line bytes).
    std::uint32_t lastFetchLine_ = ~0u;
    Activity activity_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_SESSION_HH
