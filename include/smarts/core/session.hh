/**
 * @file
 * SimSession: one benchmark bound to one machine, executable in the
 * three speeds the paper's rate model names — pure functional
 * (S_F, fastForward with WarmingMode::None), functional warming
 * (S_FW, fastForward updating caches/TLBs/predictors in program
 * order), and detailed (S_D, detailedRun with the full timing and
 * energy model). All modes share one architectural and one
 * microarchitectural state, so interleaving them implements the
 * SMARTS measurement cycle.
 *
 * Internally a SimSession is an ArchCore (core/arch.hh) driving one
 * TimingModel (core/timing.hh); MultiSession (core/multi_session.hh)
 * drives N TimingModels from the same stream for matched-pair
 * multi-config studies.
 */

#ifndef SMARTS_CORE_SESSION_HH
#define SMARTS_CORE_SESSION_HH

#include <cstdint>
#include <vector>

#include "core/arch.hh"
#include "core/timing.hh"
#include "uarch/config.hh"
#include "workloads/program.hh"

namespace smarts::core {

class SimSession
{
  public:
    SimSession(const workloads::BenchmarkSpec &spec,
               const uarch::MachineConfig &config);

    /**
     * Execute up to @p maxInsts functionally, warming per @p mode.
     * Returns the number of instructions executed by this call
     * (less than @p maxInsts only at end of stream).
     */
    std::uint64_t fastForward(std::uint64_t maxInsts, WarmingMode mode);

    /** Execute up to @p maxInsts with the detailed timing model. */
    Segment detailedRun(std::uint64_t maxInsts);

    /**
     * Execute up to @p maxInsts applying detailedRun's exact
     * microarchitectural state transitions (including wrong-path
     * pollution and predictor lookup traffic) without the timing
     * bookkeeping. The checkpoint capture pass uses this to stream
     * through regions a serial sampling run simulates in detail, so
     * the captured state matches the serial run's bit for bit.
     */
    std::uint64_t warmAsDetailed(std::uint64_t maxInsts);

    /** Snapshot the full simulator state (core/checkpoint.hh). */
    void
    saveState(ArchState &arch, TimingState &timing) const
    {
        arch_.saveState(arch);
        model_.saveState(timing);
    }

    /** Resume from a snapshot of a same-spec, same-config session. */
    void
    restoreState(const ArchState &arch, const TimingState &timing)
    {
        arch_.restoreState(arch);
        model_.restoreState(timing);
    }

    /**
     * Functional profiling pass to end of stream: per-interval
     * basic-block vectors projected into @p dims buckets (the
     * SimPoint front end). Intervals are @p intervalSize
     * instructions; a final partial interval is dropped.
     */
    std::vector<std::vector<double>>
    profileBbvs(std::uint64_t intervalSize, std::size_t dims);

    bool
    finished() const
    {
        return arch_.finished();
    }

    /** Instructions executed so far, all modes. */
    std::uint64_t
    instCount() const
    {
        return arch_.instCount();
    }

    /** Exact detailed cycles so far (fractional issue slots kept). */
    double
    cycleCount() const
    {
        return model_.cycleCount();
    }

    /** Detailed energy so far, nanojoules. */
    double
    energyCount() const
    {
        return model_.energyCount();
    }

    const Activity &
    activity() const
    {
        return model_.activity();
    }

    std::uint32_t
    pc() const
    {
        return arch_.pc();
    }

    const uarch::MachineConfig &
    config() const
    {
        return model_.config();
    }

  private:
    ArchCore arch_;
    TimingModel model_;
};

} // namespace smarts::core

#endif // SMARTS_CORE_SESSION_HH
