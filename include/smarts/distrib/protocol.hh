/**
 * @file
 * The on-disk protocol of the distributed shard runner
 * (docs/distributed-runners.md): a LEADER writes a versioned,
 * checksummed job manifest next to a shipped CheckpointStore; RUNNER
 * processes atomically claim (config × shard) jobs, execute them
 * through the same SystematicSampler::runSlice the in-process
 * sharded paths use, and publish per-shard result files; the leader
 * folds completed shards in shard order into per-config
 * SmartsEstimates that are BIT-IDENTICAL to serial run() at any
 * runner count.
 *
 * Everything here is a plain file in a shared directory — the queue
 * needs nothing but a filesystem both sides can reach (NFS, a
 * synced directory, scp). All files use the smarts::util binary
 * format discipline: little-endian byte-wise encoding, trailing
 * FNV-1a checksum, atomic temp+rename publish, and refusal — never
 * silent acceptance — of truncated, corrupt, version-bumped or
 * mis-keyed files.
 */

#ifndef SMARTS_DISTRIB_PROTOCOL_HH
#define SMARTS_DISTRIB_PROTOCOL_HH

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hh"
#include "core/sampler.hh"
#include "uarch/config.hh"
#include "util/binary_io.hh"
#include "workloads/benchmark.hh"

namespace smarts::distrib {

/** On-disk protocol version, shared by manifest and result files
 *  (docs/distributed-runners.md § Versioning). */
constexpr std::uint32_t kDistribFormatVersion = 2;

/**
 * Fingerprint of THIS build's measurement semantics: the protocol
 * version mixed with a timing-model fingerprint derived from a
 * golden micro-run (short fixed workloads driven through the full
 * detailed timing and energy model under the stock machines). The
 * geometry hash only catches warm-STATE divergence between builds; a
 * build whose timing model diverged produces results that pass every
 * structural check and merge into a silently non-serial-identical
 * estimate. Embedding this fingerprint in the manifest (and, through
 * it, the study id) turns that silent merge into a refusal at
 * manifest load. Computed once per process, cached.
 */
std::uint64_t buildFingerprint();

/**
 * How the manifest slices the study into jobs
 * (docs/distributed-runners.md § Job modes).
 */
enum class JobMode : std::uint8_t
{
    /** (config × shard) jobs over the `.smck` shard plan (v1). */
    Shard = 0,

    /**
     * (config × unit-range) jobs over the store's `.smlp` live-point
     * libraries: each job measures a contiguous range of measured
     * units from their per-unit checkpoints. Ranges live as marker
     * files under `<queue>/ranges/` so the leader can SPLIT a
     * still-unclaimed range when a new runner joins mid-study.
     */
    UnitRange = 1,
};

/** A contiguous run of measured-unit slots [firstUnit,
 *  firstUnit + unitCount) of a live-point library. */
struct UnitRange
{
    std::uint64_t firstUnit = 0;
    std::uint64_t unitCount = 0;
};

inline bool
operator==(const UnitRange &a, const UnitRange &b)
{
    return a.firstUnit == b.firstUnit && a.unitCount == b.unitCount;
}

inline bool
operator!=(const UnitRange &a, const UnitRange &b)
{
    return !(a == b);
}

/**
 * MachineConfig serialization — every field, doubles as raw
 * IEEE-754 bit patterns, in the normative order of
 * docs/distributed-runners.md § Machine config. Public because the
 * job manifest and the store-service request files
 * (distrib/store_service.hh) embed the same encoding: a daemon must
 * reconstruct the EXACT machine a leader meant, including the
 * timing-only fields the geometry hash deliberately ignores.
 */
void writeMachineConfig(util::BinaryWriter &out,
                        const uarch::MachineConfig &config);
uarch::MachineConfig readMachineConfig(util::BinaryReader &in);

/** Queue-directory file names (docs/distributed-runners.md). */
std::string manifestPath(const std::string &dir);
std::string claimPath(const std::string &dir, std::uint32_t config,
                      std::uint32_t shard);
std::string resultPath(const std::string &dir, std::uint32_t config,
                       std::uint32_t shard);

/** Unit-range job file names: "u<F>_n<N>" slots into the same
 *  claims/ and results/ directories, "ranges/u<F>_n<N>.range" is the
 *  live-range marker (docs/distributed-runners.md § Unit-range
 *  jobs). */
std::string rangeName(const UnitRange &range);
std::string rangeMarkerPath(const std::string &dir,
                            const UnitRange &range);
std::string claimPathRange(const std::string &dir,
                           std::uint32_t config,
                           const UnitRange &range);
std::string resultPathRange(const std::string &dir,
                            std::uint32_t config,
                            const UnitRange &range);

/** The live ranges published under `<dir>/ranges/`, sorted by
 *  firstUnit (missing directory = empty). */
std::vector<UnitRange> listRanges(const std::string &dir);

/** Ranges with a published result file for @p config, parsed from
 *  the results directory, sorted by (firstUnit, unitCount desc). */
std::vector<UnitRange> listResultRanges(const std::string &dir,
                                        std::uint32_t config);

/**
 * The leader's statement of a study: ONE benchmark and sampling
 * design, N machine configs, and the shard plan every runner must
 * execute against. The manifest is self-describing — a runner needs
 * nothing but this file and a checkpoint store to do its share —
 * and self-validating: load() refuses a manifest whose plan no
 * planShards() could produce or whose per-config geometry hashes
 * disagree with this build's warmGeometryHash (a leader built from
 * incompatible sources must fail loudly, not mis-warm).
 */
struct JobManifest
{
    /**
     * Study identity: an FNV-1a digest of every other manifest
     * field, echoed by every result file. Deterministic on purpose
     * — republishing the identical study accepts a prior run's
     * results (they are bit-identical by contract), while a result
     * produced under ANY other manifest is refused at merge.
     */
    std::uint64_t studyId = 0;

    /** The publishing build's buildFingerprint(); load() refuses a
     *  manifest whose fingerprint this build does not reproduce. */
    std::uint64_t fingerprint = 0;

    std::uint64_t streamLength = 0; ///< true dynamic stream length.
    workloads::BenchmarkSpec benchmark;
    core::SamplingConfig sampling;
    std::vector<uarch::MachineConfig> configs;
    std::vector<std::uint64_t> geometryHashes; ///< one per config.

    JobMode mode = JobMode::Shard;

    /** Shard mode: the plan every runner executes. Empty in
     *  unit-range mode. */
    std::vector<core::ShardSpec> plan;

    /** Unit-range mode: measured-unit count of the study's
     *  live-point libraries. 0 in shard mode. */
    std::uint64_t totalUnits = 0;

    /** Unit-range mode: the INITIAL partition of [0, totalUnits).
     *  The live partition evolves in `<queue>/ranges/` as the leader
     *  splits; this field only seeds it. Empty in shard mode. */
    std::vector<UnitRange> ranges;

    /** Jobs are the (config × shard) grid, or in unit-range mode the
     *  (config × initial-range) grid (splits add more). */
    std::size_t
    jobCount() const
    {
        return configs.size() *
               (mode == JobMode::UnitRange ? ranges.size()
                                           : plan.size());
    }

    /** The checkpoint-store key config @p c's shards resume from. */
    core::LibraryKey
    keyFor(std::size_t c) const
    {
        core::LibraryKey key;
        key.benchmark = benchmark;
        key.geometryHash = geometryHashes[c];
        key.sampling = sampling;
        return key;
    }

    /** Field order is normative: docs/distributed-runners.md. */
    void serialize(util::BinaryWriter &out) const;

    /** Serialize + checksum + atomic publish at @p path. */
    bool save(const std::string &path,
              std::string *error = nullptr) const;

    /**
     * Load and fully validate a manifest. Refuses — nullopt plus a
     * diagnostic — on a missing/truncated/corrupt file, unknown
     * version, a build fingerprint this build does not reproduce
     * (the diagnostic names both fingerprints), malformed shard
     * plan or range partition, or a geometry hash this build's
     * warmGeometryHash does not reproduce.
     */
    static std::optional<JobManifest>
    load(const std::string &path, std::string *error = nullptr);
};

/**
 * One completed job: the raw SliceResult of shard @p shardIndex
 * under config @p configIndex, plus everything the leader must
 * verify before folding it — the study id, the job indices, the
 * full library key, and an echo of the shard spec executed. The
 * leader REFUSES (never silently merges) a result whose any field
 * disagrees with the manifest.
 */
struct ShardResult
{
    std::uint64_t studyId = 0;
    JobMode mode = JobMode::Shard;
    std::uint32_t configIndex = 0;
    std::uint32_t shardIndex = 0;  ///< shard mode only.
    UnitRange range;               ///< unit-range mode only.
    core::LibraryKey key;
    core::ShardSpec shard;         ///< echo; zeroed in range mode.
    core::SliceResult slice;

    /** Field order is normative: docs/distributed-runners.md. */
    void serialize(util::BinaryWriter &out) const;

    /** Serialize + checksum + atomic publish at @p path. */
    bool save(const std::string &path,
              std::string *error = nullptr) const;

    /**
     * Load the result for job (@p config, @p shard) of
     * @p manifest, refusing on anything short of an exact match:
     * missing/truncated/corrupt file, unknown version, study-id or
     * job-index mismatch, key mismatch, a shard-spec echo that
     * disagrees with the manifest plan, or internally inconsistent
     * observation counts.
     */
    static std::optional<ShardResult>
    load(const std::string &path, const JobManifest &manifest,
         std::uint32_t config, std::uint32_t shard,
         std::string *error = nullptr);

    /**
     * Unit-range counterpart of load(): load the result for job
     * (@p config, @p range) of @p manifest, refusing on a mode or
     * range-echo mismatch, a range outside [0, totalUnits), or
     * observation counts inconsistent with the range.
     */
    static std::optional<ShardResult>
    loadRange(const std::string &path, const JobManifest &manifest,
              std::uint32_t config, const UnitRange &range,
              std::string *error = nullptr);
};

/**
 * Atomically claim job (@p config, @p shard) in @p dir for
 * @p runnerId. A claim is an exclusively-created marker file
 * (write-temp + hard-link, which fails if the claim exists), so of
 * N racing runners exactly one wins. Claims are a work-avoidance
 * device, not a correctness one: results are deterministic and
 * bit-identical, so a duplicated execution publishes identical
 * bytes — wasted work, never corruption.
 *
 * @p staleSeconds >= 0 enables abandoned-claim recovery: a claim
 * older than that with no published result may be re-claimed
 * (atomic rename replaces the marker). Negative = never steal.
 *
 * Returns true when this caller owns the job.
 */
bool claimJob(const std::string &dir, std::uint32_t config,
              std::uint32_t shard, const std::string &runnerId,
              double staleSeconds = -1.0);

/** claimJob for a unit-range job (same claim semantics). */
bool claimRange(const std::string &dir, std::uint32_t config,
                const UnitRange &range, const std::string &runnerId,
                double staleSeconds = -1.0);

/**
 * Refresh the mtime of a held claim marker — the claim HEARTBEAT.
 * Staleness is judged by claim-file age, so a runner must touch its
 * marker between units/shards or a job merely LONGER than the steal
 * window gets stolen repeatedly; with heartbeats only genuinely dead
 * claims age past it. Returns false if the marker vanished (the
 * claim was stolen) — the holder should abandon the job.
 */
bool touchClaim(const std::string &claimFile);

/**
 * The order in which a runner should PROBE the (config × shard) job
 * grid: a per-runner permutation (seeded from @p runnerId and the
 * study id) biased toward expensive shards first — weight is a
 * shard's measured-unit count plus a tail-run-out bonus, and jobs
 * are ranked by the weighted-shuffle key u^(1/w). N racing runners
 * therefore start at N different jobs instead of all colliding on
 * (0,0), and the expensive tail shard is claimed early instead of
 * serializing the study's critical path.
 */
std::vector<std::pair<std::uint32_t, std::uint32_t>>
claimOrder(const JobManifest &manifest, const std::string &runnerId);

/** Unit-range counterpart: order (config × range) jobs over the
 *  CURRENT live ranges, weight = range unit count. */
std::vector<std::pair<std::uint32_t, UnitRange>>
claimOrder(const JobManifest &manifest,
           const std::vector<UnitRange> &ranges,
           const std::string &runnerId);

/** Publish @p result into @p dir (atomic temp+rename); the file name
 *  follows result.mode. */
bool publishResult(const std::string &dir, const ShardResult &result,
                   std::string *error = nullptr);

/**
 * Exponential poll backoff for the protocol's wait loops (the
 * leader's result collection, the runner's manifest wait). Polling a
 * shared filesystem is not free — on NFS every exists() is a round
 * trip, and a fixed 100 ms cadence from every participant of a
 * large study hammers the server exactly when nothing is changing.
 * The delay starts at initialMs, doubles per idle poll, and caps at
 * capMs (~1 s keeps worst-case added latency humane); any sign of
 * progress resets it to the initial value so an active queue is
 * polled eagerly again.
 */
class PollBackoff
{
  public:
    explicit PollBackoff(double initialMs = 100.0,
                         double capMs = 1000.0)
        : initialMs_(initialMs > 0.0 ? initialMs : 1.0),
          capMs_(capMs > initialMs_ ? capMs : initialMs_),
          currentMs_(initialMs_)
    {
    }

    /** Delay to sleep before the next poll, milliseconds. */
    double
    currentMs() const
    {
        return currentMs_;
    }

    /** Record an idle poll: returns the delay to sleep now, then
     *  doubles it toward the cap. */
    double
    nextMs()
    {
        const double delay = currentMs_;
        currentMs_ = std::min(currentMs_ * 2.0, capMs_);
        return delay;
    }

    /** Record progress: poll eagerly again. */
    void
    reset()
    {
        currentMs_ = initialMs_;
    }

  private:
    double initialMs_;
    double capMs_;
    double currentMs_;
};

} // namespace smarts::distrib

#endif // SMARTS_DISTRIB_PROTOCOL_HH
