/**
 * @file
 * The runner side of the distributed protocol: a Runner process (or
 * thread) points at a queue directory and a local copy of the
 * shipped CheckpointStore, waits for the leader's manifest, then
 * claims and executes shard jobs until none remain. Execution goes
 * through the exact slice machinery the in-process sharded paths
 * use — restore the shard's checkpoint from the store, run
 * SystematicSampler::runSlice — so a result produced on another
 * host folds into an estimate bit-identical to serial run().
 *
 * A runner that finds no usable library in its store (missing file,
 * or a stored plan that disagrees with the manifest's) falls back
 * to capturing one itself with the manifest's plan: slower, never
 * wrong. A leader that ships the store (Leader::ensureStudyStore)
 * makes this fallback cold-path only.
 */

#ifndef SMARTS_DISTRIB_RUNNER_HH
#define SMARTS_DISTRIB_RUNNER_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/checkpoint_store.hh"
#include "core/livepoint.hh"
#include "distrib/protocol.hh"

namespace smarts::distrib {

struct RunnerOptions
{
    /** Claim-marker identity; also shows up in diagnostics. */
    std::string id = "runner";

    /**
     * Abandoned-claim recovery window: a claim older than this with
     * no result may be re-claimed (docs/distributed-runners.md
     * § Crash and retry). Negative disables stealing.
     */
    double staleClaimSeconds = -1.0;

    /**
     * Seconds between claim heartbeats: while a job executes, the
     * runner touchClaim()s its marker between units at this cadence,
     * so a LIVE long job never ages past the steal window — only
     * genuinely dead claims do. Non-positive heartbeats every unit.
     */
    double heartbeatSeconds = 0.5;

    /**
     * Cooperative kill switch, polled between units: once it
     * returns true the runner abandons the job in flight (claim
     * left in place to age stale; the partial result is discarded,
     * never published) and stops draining. The chaos tests use this
     * to kill a runner mid-drain.
     */
    std::function<bool()> cancelled;

    /**
     * Observation hook: called with a job's name ("c0_s3",
     * "c1_u40_n20") as its execution starts. Tests and the scaling
     * bench tally duplicate executions with it.
     */
    std::function<void(const std::string &)> onExecute;
};

class Runner
{
  public:
    Runner(std::string queueDir, std::string storeRoot,
           RunnerOptions options = {});

    /**
     * Poll for a LOADABLE manifest for up to @p waitSeconds. A
     * manifest file that refuses to load (e.g. a leftover
     * incompatible one the leader is about to replace) does NOT end
     * the wait — the runner keeps polling until the deadline and
     * surfaces the last refusal reason on timeout. @p pollMillis
     * seeds the idle-poll backoff (PollBackoff): polls start that
     * far apart and double toward ~1 s while nothing loads.
     */
    std::optional<JobManifest>
    awaitManifest(double waitSeconds, std::string *error = nullptr,
                  double pollMillis = 100.0) const;

    /**
     * Drain the study's jobs: probe them in this runner's
     * claimOrder() permutation (expensive jobs first, decorrelated
     * across runners), claim, execute, publish atomically. In
     * unit-range mode the live ranges are re-scanned between sweeps
     * so ranges split mid-drain are picked up. Returns the number
     * of jobs this call executed (0 = everything was done or
     * claimed elsewhere).
     */
    std::size_t drain(const JobManifest &manifest);

    /**
     * Execute job (@p config, @p shard) regardless of claims —
     * drain() calls this after winning a claim; tests call it
     * directly to provoke duplicate execution (the result bytes
     * are identical either way, which is what makes duplicated
     * claims benign).
     */
    ShardResult execute(const JobManifest &manifest,
                        std::uint32_t config, std::uint32_t shard);

    /**
     * Unit-range counterpart of execute(): measure live-point slots
     * [range.firstUnit, +range.unitCount) of @p config's `.smlp`
     * library (store-cached; captured on a miss). Nullopt when the
     * cancelled hook fired mid-job — the partial result must not be
     * published.
     */
    std::optional<ShardResult>
    executeRange(const JobManifest &manifest, std::uint32_t config,
                 const UnitRange &range);

    const std::string &
    queueDir() const
    {
        return dir_;
    }

  private:
    /** Load (or capture, on a store miss) config @p c's library. */
    const core::CheckpointLibrary &
    libraryFor(const JobManifest &manifest, std::uint32_t c);

    /** Same, for the live-point library of a unit-range study. */
    const core::LivePointLibrary &
    livePointsFor(const JobManifest &manifest, std::uint32_t c);

    std::size_t drainShards(const JobManifest &manifest);
    std::size_t drainRanges(const JobManifest &manifest);

    bool
    cancelledNow() const
    {
        return options_.cancelled && options_.cancelled();
    }

    /** The per-unit ProgressTick: heartbeat the held claim, then
     *  report liveness (false = abandon the slice). */
    bool tick();

    std::string dir_;
    core::CheckpointStore store_;
    RunnerOptions options_;

    /** Claim marker of the job in flight ('' when idle). */
    std::string heartbeatPath_;
    // smarts-lint: allow(no-ambient-nondeterminism) monotonic
    // heartbeat stamp: throttles claim-marker mtime refreshes and
    // is never serialized or folded into an estimate.
    std::chrono::steady_clock::time_point lastBeat_{};

    /**
     * Per-config libraries of the study last executed, invalidated
     * by study id: a long-lived runner serving successive manifests
     * must never resume study B's shards from study A's warm state
     * (the published key would still echo B's, so the leader could
     * not catch it — the cache has to be correct by construction).
     */
    std::uint64_t cachedStudyId_ = 0;
    std::map<std::uint32_t, core::CheckpointLibrary> libraries_;
    std::map<std::uint32_t, core::LivePointLibrary>
        livePointLibraries_;
};

} // namespace smarts::distrib

#endif // SMARTS_DISTRIB_RUNNER_HH
