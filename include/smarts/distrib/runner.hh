/**
 * @file
 * The runner side of the distributed protocol: a Runner process (or
 * thread) points at a queue directory and a local copy of the
 * shipped CheckpointStore, waits for the leader's manifest, then
 * claims and executes shard jobs until none remain. Execution goes
 * through the exact slice machinery the in-process sharded paths
 * use — restore the shard's checkpoint from the store, run
 * SystematicSampler::runSlice — so a result produced on another
 * host folds into an estimate bit-identical to serial run().
 *
 * A runner that finds no usable library in its store (missing file,
 * or a stored plan that disagrees with the manifest's) falls back
 * to capturing one itself with the manifest's plan: slower, never
 * wrong. A leader that ships the store (Leader::ensureStudyStore)
 * makes this fallback cold-path only.
 */

#ifndef SMARTS_DISTRIB_RUNNER_HH
#define SMARTS_DISTRIB_RUNNER_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/checkpoint_store.hh"
#include "distrib/protocol.hh"

namespace smarts::distrib {

struct RunnerOptions
{
    /** Claim-marker identity; also shows up in diagnostics. */
    std::string id = "runner";

    /**
     * Abandoned-claim recovery window: a claim older than this with
     * no result may be re-claimed (docs/distributed-runners.md
     * § Crash and retry). Negative disables stealing.
     */
    double staleClaimSeconds = -1.0;
};

class Runner
{
  public:
    Runner(std::string queueDir, std::string storeRoot,
           RunnerOptions options = {});

    /**
     * Poll for the leader's manifest for up to @p waitSeconds.
     * Nullopt when none appeared in time or the file refused to
     * load (diagnostic in @p error). @p pollMillis seeds the
     * idle-poll backoff (PollBackoff): polls start that far apart
     * and double toward ~1 s while the manifest stays absent.
     */
    std::optional<JobManifest>
    awaitManifest(double waitSeconds, std::string *error = nullptr,
                  double pollMillis = 100.0) const;

    /**
     * One sweep over the (config × shard) job grid: claim every
     * available job and execute it, publishing each result
     * atomically. Returns the number of jobs this call executed
     * (0 = everything was done or claimed elsewhere).
     */
    std::size_t drain(const JobManifest &manifest);

    /**
     * Execute job (@p config, @p shard) regardless of claims —
     * drain() calls this after winning a claim; tests call it
     * directly to provoke duplicate execution (the result bytes
     * are identical either way, which is what makes duplicated
     * claims benign).
     */
    ShardResult execute(const JobManifest &manifest,
                        std::uint32_t config, std::uint32_t shard);

    const std::string &
    queueDir() const
    {
        return dir_;
    }

  private:
    /** Load (or capture, on a store miss) config @p c's library. */
    const core::CheckpointLibrary &
    libraryFor(const JobManifest &manifest, std::uint32_t c);

    std::string dir_;
    core::CheckpointStore store_;
    RunnerOptions options_;

    /**
     * Per-config libraries of the study last executed, invalidated
     * by study id: a long-lived runner serving successive manifests
     * must never resume study B's shards from study A's warm state
     * (the published key would still echo B's, so the leader could
     * not catch it — the cache has to be correct by construction).
     */
    std::uint64_t cachedStudyId_ = 0;
    std::map<std::uint32_t, core::CheckpointLibrary> libraries_;
};

} // namespace smarts::distrib

#endif // SMARTS_DISTRIB_RUNNER_HH
