/**
 * @file
 * The store-service protocol (docs/store-service.md): a DAEMON
 * process (tools/smarts_stored.cc) owns ONE hot CheckpointStore —
 * index, budget, GC, counters — and any number of concurrent leader
 * processes ask it for live-point libraries instead of each opening
 * the store directly. The win over N direct opener processes:
 *
 *  - SINGLE-FLIGHT capture. Two leaders missing on the same key at
 *    the same time would each pay a full capture pass (identical
 *    bytes — wasted work, never corruption, same argument as
 *    duplicated distrib jobs). The daemon groups same-key misses
 *    per scan and captures ONCE; every waiter gets the same entry.
 *  - One index, one GC. Budget accounting and LRU order live in one
 *    process instead of being re-derived per opener.
 *  - Observable cache behavior: the daemon exports its counters
 *    (hit rate, evictions, lookup-latency percentiles) as a JSON
 *    artifact (BENCH_store.json in CI).
 *
 * Like the distributed job queue (distrib/protocol.hh), the wire is
 * plain files in a shared directory — no sockets, nothing but a
 * filesystem both sides can reach:
 *
 *   <svc>/stored.pid            daemon presence marker
 *   <svc>/requests/<id>.req     client → daemon (atomic publish)
 *   <svc>/replies/<id>.rep      daemon → client (atomic publish)
 *
 * Both file kinds use the smarts::util binary discipline: 8-byte
 * magic, version, endianness marker, little-endian fields, trailing
 * FNV-1a checksum, atomic temp+rename publish, refusal of anything
 * short of an exact parse.
 *
 * Availability contract: the daemon is an OPTIMIZATION, never a
 * dependency. StoreServiceClient::ensureLivePoints degrades to the
 * caller's own direct-store path — with a warning, and the
 * `degraded` flag set — when the daemon is absent, dies mid-lookup,
 * refuses the request, or the reply's entry fails validation. The
 * result is bit-identical either way; only the capture cost moves.
 */

#ifndef SMARTS_DISTRIB_STORE_SERVICE_HH
#define SMARTS_DISTRIB_STORE_SERVICE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "core/checkpoint_store.hh"
#include "core/livepoint.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

namespace smarts::distrib {

/** On-disk store-service protocol version (request + reply). */
constexpr std::uint32_t kStoreServiceFormatVersion = 1;

/** Service-directory file names. */
std::string daemonMarkerPath(const std::string &svc);
std::string requestPath(const std::string &svc,
                        const std::string &reqId);
std::string replyPath(const std::string &svc,
                      const std::string &reqId);

/** True while a daemon advertises itself under @p svc (marker file
 *  present). Cheap liveness, not proof — the degrade path covers a
 *  daemon that died without cleaning up. */
bool daemonPresent(const std::string &svc);

/** What a client asks of the daemon. */
enum class StoreRequestKind : std::uint8_t
{
    /** Make sure @p key's live-point library exists (capturing on
     *  miss) and reply with its path. */
    EnsureLivePoints = 0,
};

/**
 * One client request: the full study identity — benchmark, sampling
 * design, and the COMPLETE machine config, not just its geometry
 * hash — so a missing library can be captured by the daemon from
 * nothing but this file. The daemon recomputes the geometry hash
 * from the embedded config and refuses a request whose hash claim
 * it cannot reproduce (the manifest-fingerprint idiom: incompatible
 * builds fail loudly, never mis-warm).
 */
struct StoreRequest
{
    std::string reqId; ///< unique per request; names the reply file.
    StoreRequestKind kind = StoreRequestKind::EnsureLivePoints;
    workloads::BenchmarkSpec benchmark;
    core::SamplingConfig sampling;
    uarch::MachineConfig machine;

    /** The store key this request resolves to. */
    core::LibraryKey key() const;

    /** Serialize + checksum + atomic publish at @p path. */
    bool save(const std::string &path,
              std::string *error = nullptr) const;

    /** Load and fully validate; nullopt + diagnostic on refusal. */
    static std::optional<StoreRequest>
    load(const std::string &path, std::string *error = nullptr);
};

/** How the daemon disposed of a request. */
enum class StoreReplyStatus : std::uint8_t
{
    Hit = 0,      ///< entry already existed; atime bumped.
    Captured = 1, ///< entry captured (this scan) for this key.
    Refused = 2,  ///< request invalid or capture failed; see error.
};

/**
 * The daemon's answer. On Hit/Captured, @p path names the published
 * `.smlp` entry in the daemon's store; the client loads it through
 * the normal fully-validating LivePointLibrary::load. The counter
 * echo is the daemon's CUMULATIVE totals at reply time — this is
 * how tests assert single-flight from the outside: two leaders
 * racing one cold key both see captures == 1.
 */
struct StoreReply
{
    std::string reqId;
    StoreReplyStatus status = StoreReplyStatus::Refused;
    std::string path;  ///< entry path; empty on Refused.
    std::string error; ///< diagnostic; empty on Hit/Captured.

    std::uint64_t hits = 0;      ///< daemon-lifetime request hits.
    std::uint64_t misses = 0;    ///< daemon-lifetime request misses.
    std::uint64_t captures = 0;  ///< libraries actually captured.
    std::uint64_t evictions = 0; ///< store GC evictions so far.

    /** Serialize + checksum + atomic publish at @p path. */
    bool save(const std::string &path,
              std::string *error = nullptr) const;

    /** Load and fully validate; nullopt + diagnostic on refusal. */
    static std::optional<StoreReply>
    load(const std::string &path, std::string *error = nullptr);
};

/** What StoreServiceClient::ensureLivePoints resolved to. */
struct StoreServiceOutcome
{
    /** The validated library; nullopt only when BOTH the daemon and
     *  the local fallback failed (error says why). */
    std::optional<core::LivePointLibrary> library;

    /** True when the daemon path failed and the local direct-store
     *  fallback served the request instead. */
    bool degraded = false;

    /** True when a capture ran anywhere (daemon or fallback). */
    bool captured = false;

    /** The daemon's reply, when one arrived and parsed. */
    std::optional<StoreReply> reply;

    std::string error;
};

/**
 * A leader's view of the service: publish a request, wait for the
 * reply with the protocol's standard poll backoff, load the named
 * entry. Every failure mode past that — no daemon, timeout, daemon
 * death mid-lookup, refusal, an entry that fails validation —
 * degrades to @p fallback's own direct-store path (tryLoadLivePoints
 * / ensureLivePoints) with a warning, so callers never block on the
 * service being up.
 */
class StoreServiceClient
{
  public:
    /** @p svc is the daemon's service directory; @p id tags this
     *  client's request file names (default: pid-based). */
    explicit StoreServiceClient(std::string svc,
                                std::string id = std::string());

    const std::string &
    serviceDir() const
    {
        return svc_;
    }

    /**
     * Resolve (benchmark, machine, sampling) to a validated
     * live-point library via the daemon, degrading to @p fallback
     * on any service failure. @p timeoutSeconds bounds the reply
     * wait — generous by default because a cold daemon-side capture
     * is real simulation work, not a file stat.
     */
    StoreServiceOutcome
    ensureLivePoints(core::CheckpointStore &fallback,
                     const workloads::BenchmarkSpec &benchmark,
                     const uarch::MachineConfig &machine,
                     const core::SamplingConfig &sampling,
                     double timeoutSeconds = 120.0) const;

  private:
    std::string svc_;
    std::string id_;
};

} // namespace smarts::distrib

#endif // SMARTS_DISTRIB_STORE_SERVICE_HH
