/**
 * @file
 * The leader side of the distributed protocol: plan a study, ship
 * the checkpoint store, publish the manifest, and fold completed
 * shard results into per-config SmartsEstimates that are
 * bit-identical to serial SystematicSampler::run() at any runner
 * count. The leader REFUSES — never silently merges — a result
 * file that is truncated, corrupt, version-bumped, mis-keyed or
 * from another study (docs/distributed-runners.md § Refusals).
 */

#ifndef SMARTS_DISTRIB_LEADER_HH
#define SMARTS_DISTRIB_LEADER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint_store.hh"
#include "core/sampler.hh"
#include "distrib/protocol.hh"
#include "distrib/runner.hh"

namespace smarts::distrib {

/**
 * Build the manifest of a study: ONE benchmark and sampling design,
 * N machine configs, a shard plan of at most @p shards shards
 * (CheckpointLibrary::planShards — the same split every in-process
 * sharded path uses). The study id is a deterministic digest of
 * every field, so republishing the identical study accepts prior
 * (bit-identical) results while any other manifest's results
 * refuse.
 */
JobManifest planStudy(const workloads::BenchmarkSpec &spec,
                      const std::vector<uarch::MachineConfig> &configs,
                      const core::SamplingConfig &sampling,
                      std::uint64_t streamLength,
                      std::size_t shards);

/** What ensureStudyLivePoints() learned about a study's stream. */
struct LivePointPlan
{
    std::uint64_t totalUnits = 0;   ///< live-points per library.
    std::uint64_t streamLength = 0; ///< true dynamic length.
};

/**
 * Make @p store serve a unit-range study: capture the `.smlp`
 * live-point libraries for every config (one streaming pass, misses
 * only — CheckpointStore::ensureLivePoints), then report the unit
 * count and stream length the manifest must carry. Fatal if a
 * library still refuses to load after capture.
 */
LivePointPlan
ensureStudyLivePoints(const core::CheckpointStore &store,
                      const workloads::BenchmarkSpec &spec,
                      const std::vector<uarch::MachineConfig> &configs,
                      const core::SamplingConfig &sampling);

/**
 * Build a UNIT-RANGE manifest (JobMode::UnitRange): jobs are
 * contiguous live-point ranges instead of shards, seeded as an even
 * partition of [0, totalUnits) into at most @p jobs ranges. The
 * live partition evolves in `<queue>/ranges/` — splitRemainingRanges
 * halves unclaimed ranges when runners join — and merge tiles
 * whatever result granularity it finds, so the estimate stays
 * bit-identical to serial run() through any split history.
 * @p totalUnits / @p streamLength come from ensureStudyLivePoints.
 */
JobManifest
planUnitStudy(const workloads::BenchmarkSpec &spec,
              const std::vector<uarch::MachineConfig> &configs,
              const core::SamplingConfig &sampling,
              std::uint64_t streamLength, std::uint64_t totalUnits,
              std::size_t jobs);

/**
 * Halve every live range that no runner has claimed (any config)
 * and no result covers, down to @p minUnits per child: the elastic
 * response to a runner JOINING mid-study — remaining work re-grains
 * so the newcomer gets a fair share instead of idling behind big
 * claims. Child markers are published before the parent marker is
 * removed, so a racing claim of the parent stays mergeable (the
 * tiling merge accepts either granularity). Returns the number of
 * ranges split. Shard-mode studies: always 0.
 */
std::size_t splitRemainingRanges(const std::string &dir,
                                 const JobManifest &manifest,
                                 std::uint64_t minUnits = 8);

/**
 * Make @p store serve every (config, shard > 0) resume of
 * @p manifest: any key whose library is missing, refuses to load,
 * or was captured under a DIFFERENT shard plan is (re)captured with
 * the manifest's plan — all misses in one MultiSession streaming
 * pass, geometry-duplicate configs captured once. Returns the
 * number of libraries captured (0 = the store already matched).
 * After this, runners sharing the store never pay capture cost.
 */
std::size_t ensureStudyStore(const core::CheckpointStore &store,
                             const JobManifest &manifest);

/**
 * Publish @p manifest into @p dir (atomic temp+rename). A queue
 * holding a DIFFERENT study (by studyId) — or no loadable manifest
 * — is reset first: its claims would shadow live work and its
 * results would refuse at merge anyway. Republishing the IDENTICAL
 * study keeps claims and results: they are bit-identical by
 * contract, so a restarted leader reuses them without
 * re-execution.
 */
bool publishStudy(const std::string &dir, const JobManifest &manifest,
                  std::string *error = nullptr);

/** True when every (config × shard) result file exists. */
bool studyComplete(const std::string &dir,
                   const JobManifest &manifest);

/**
 * Fold every result file into per-config estimates, in shard order
 * per config — the same foldSlice replay order the in-process
 * sharded paths use, so each estimate is bit-identical to serial
 * run() under that config. Nullopt with a diagnostic if ANY result
 * is missing or refuses validation; a partial or suspect study
 * never yields an estimate.
 */
std::optional<std::vector<core::SmartsEstimate>>
mergeStudy(const std::string &dir, const JobManifest &manifest,
           std::string *error = nullptr);

/**
 * Wait for the study to complete, then merge. @p helper (optional)
 * is a Runner the leader uses to execute still-unclaimed jobs while
 * it waits — a leader with a helper makes progress even with zero
 * external runners. A result file that refuses validation is
 * QUARANTINED (result + claim deleted, with a logged diagnostic)
 * and its job re-executed, so one poisoned file cannot wedge a live
 * study; the timeout still bounds everything. Nullopt with a
 * diagnostic on timeout or unrecoverable refusal.
 *
 * @p pollMillis seeds the idle-poll backoff (PollBackoff): polls
 * start that far apart and double toward ~1 s while nothing
 * changes, resetting whenever the helper makes progress or a
 * refused result is quarantined.
 */
std::optional<std::vector<core::SmartsEstimate>>
collectStudy(const std::string &dir, const JobManifest &manifest,
             double timeoutSeconds, Runner *helper = nullptr,
             std::string *error = nullptr,
             double pollMillis = 100.0);

} // namespace smarts::distrib

#endif // SMARTS_DISTRIB_LEADER_HH
