/**
 * @file
 * TextTable: the tabular output helper all benches share. Rows are
 * built by chaining add() calls after row(); the table renders as an
 * aligned text block for stdout and as a CSV artifact for the
 * experiment drivers.
 */

#ifndef SMARTS_UTIL_TABLE_HH
#define SMARTS_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace smarts {

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    /** Start a new row; subsequent add() calls fill it. */
    TextTable &
    row()
    {
        rows_.emplace_back();
        return *this;
    }

    TextTable &
    add(const std::string &cell)
    {
        cellText(cell);
        return *this;
    }

    TextTable &
    add(const char *cell)
    {
        cellText(cell);
        return *this;
    }

    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    TextTable &
    add(T value)
    {
        cellText(std::to_string(value));
        return *this;
    }

    /** Fixed-precision floating-point cell. */
    TextTable &add(double value, int precision);

    /** Fraction rendered as a signed percentage, e.g. 0.0123 -> 1.23%. */
    TextTable &addPercent(double fraction, int precision);

    std::size_t
    rowCount() const
    {
        return rows_.size();
    }

    std::size_t
    columnCount() const
    {
        return headers_.size();
    }

    /** Aligned text rendering (header, rule, rows). */
    std::string toString() const;

    /** Write header + rows as CSV. Fatal on I/O failure. */
    void writeCsv(const std::string &path) const;

  private:
    void cellText(std::string text);

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace smarts

#endif // SMARTS_UTIL_TABLE_HH
