/**
 * @file
 * Minimal logging helpers: SMARTS_FATAL aborts with a formatted
 * message, SMARTS_LOG writes a tagged line to stderr. Both accept a
 * comma-separated list of streamable arguments.
 */

#ifndef SMARTS_UTIL_LOGGING_HH
#define SMARTS_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace smarts::log {

inline void
append(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
append(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    append(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    append(os, args...);
    return os.str();
}

[[noreturn]] inline void
fatal(const std::string &message)
{
    std::cerr << "smarts: fatal: " << message << std::endl;
    std::exit(1);
}

} // namespace smarts::log

#define SMARTS_FATAL(...)                                               \
    ::smarts::log::fatal(::smarts::log::format(__VA_ARGS__))

#define SMARTS_LOG(...)                                                 \
    (std::cerr << "smarts: " << ::smarts::log::format(__VA_ARGS__)      \
               << std::endl)

#endif // SMARTS_UTIL_LOGGING_HH
