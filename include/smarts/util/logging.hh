/**
 * @file
 * Minimal logging helpers: SMARTS_FATAL aborts with a formatted
 * message, SMARTS_WARN flags a recoverable-but-costly event (a
 * capture fallback, a store refusal) and SMARTS_LOG writes a tagged
 * informational line to stderr. All accept a comma-separated list of
 * streamable arguments.
 */

#ifndef SMARTS_UTIL_LOGGING_HH
#define SMARTS_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace smarts::log {

inline void
append(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
append(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    append(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    append(os, args...);
    return os.str();
}

[[noreturn]] inline void
fatal(const std::string &message)
{
    std::cerr << "smarts: fatal: " << message << std::endl;
    std::exit(1);
}

} // namespace smarts::log

#define SMARTS_FATAL(...)                                               \
    ::smarts::log::fatal(::smarts::log::format(__VA_ARGS__))

#define SMARTS_LOG(...)                                                 \
    (std::cerr << "smarts: " << ::smarts::log::format(__VA_ARGS__)      \
               << std::endl)

/**
 * Warn level: the run proceeds, but something the user relies on for
 * performance or reuse (a persisted library, a store hit) fell back
 * to a slower path — worth surfacing above the informational noise.
 */
#define SMARTS_WARN(...)                                                \
    (std::cerr << "smarts: warning: "                                   \
               << ::smarts::log::format(__VA_ARGS__) << std::endl)

#endif // SMARTS_UTIL_LOGGING_HH
