/**
 * @file
 * Binary serialization primitives for the persistent checkpoint
 * format (docs/checkpoint-format.md): a BinaryWriter that encodes
 * every multi-byte value LITTLE-ENDIAN byte by byte — so a library
 * written on any host reads back on any other — and a BinaryReader
 * that never trusts the file: every read checks the remaining bytes
 * and flips a sticky fail() flag instead of running past the end,
 * which is how truncated or corrupt files are refused rather than
 * mis-parsed.
 *
 * Writers accumulate into a memory buffer; writeFile() appends an
 * FNV-1a checksum of everything before it and publishes the file
 * atomically (write to a temp name, then rename), so a crashed or
 * concurrent writer can never leave a half-written library behind a
 * valid path.
 */

#ifndef SMARTS_UTIL_BINARY_IO_HH
#define SMARTS_UTIL_BINARY_IO_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace smarts::util {

/** FNV-1a 64-bit over @p size bytes (the format's checksum). */
inline std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size,
      std::uint64_t hash = 0xcbf29ce484222325ull)
{
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Accumulates little-endian encoded values into a byte buffer. */
class BinaryWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buffer_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int shift = 0; shift < 32; shift += 8)
            buffer_.push_back(
                static_cast<std::uint8_t>(v >> shift));
    }

    void
    u64(std::uint64_t v)
    {
        for (int shift = 0; shift < 64; shift += 8)
            buffer_.push_back(
                static_cast<std::uint8_t>(v >> shift));
    }

    /**
     * IEEE-754 double as its raw 64-bit pattern, little-endian —
     * the round trip is bit-exact, which is what lets per-shard
     * result files reproduce an estimate byte for byte.
     */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    /** Length-prefixed (u32) UTF-8/ASCII bytes. */
    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        buffer_.insert(buffer_.end(), s.begin(), s.end());
    }

    /** Length-prefixed (u64) element vectors. */
    void
    vecU8(const std::vector<std::uint8_t> &v)
    {
        u64(v.size());
        buffer_.insert(buffer_.end(), v.begin(), v.end());
    }

    void
    vecU32(const std::vector<std::uint32_t> &v)
    {
        u64(v.size());
        for (const std::uint32_t x : v)
            u32(x);
    }

    void
    vecU64(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (const std::uint64_t x : v)
            u64(x);
    }

    const std::vector<std::uint8_t> &
    buffer() const
    {
        return buffer_;
    }

    std::size_t
    size() const
    {
        return buffer_.size();
    }

    /**
     * Append the FNV-1a checksum of the buffer, then publish the
     * result at @p path atomically (temp file + rename). Returns
     * false with @p error set on any filesystem failure. Callers
     * that already guaranteed the parent directory — e.g. the
     * checkpoint store's memoized ensureDirFor — pass
     * @p createDirs false to skip the per-write re-stat.
     */
    bool writeFile(const std::string &path, std::string *error,
                   bool createDirs = true) const;

  private:
    std::vector<std::uint8_t> buffer_;
};

/**
 * Decodes a little-endian byte buffer with sticky failure: any read
 * past the end returns zero values and latches fail(), so callers
 * can parse a whole structure and check once at the end.
 */
class BinaryReader
{
  public:
    explicit BinaryReader(std::vector<std::uint8_t> data)
        : data_(std::move(data))
    {
    }

    /**
     * Read @p path, verify the trailing FNV-1a checksum, and return
     * a reader over the payload (checksum stripped). Nullptr-style
     * failure: ok() is false and @p error says why (missing file,
     * short file, checksum mismatch = truncation or corruption).
     */
    static BinaryReader fromFile(const std::string &path,
                                 std::string *error);

    std::uint8_t
    u8()
    {
        if (!require(1))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!require(4))
            return 0;
        std::uint32_t v = 0;
        for (int shift = 0; shift < 32; shift += 8)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!require(8))
            return 0;
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 8)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
        return v;
    }

    /** Bit-exact inverse of BinaryWriter::f64. */
    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!require(n))
            return {};
        std::string s(data_.begin() + pos_, data_.begin() + pos_ + n);
        pos_ += n;
        return s;
    }

    std::vector<std::uint8_t>
    vecU8()
    {
        const std::uint64_t n = u64();
        if (!require(n))
            return {};
        std::vector<std::uint8_t> v(data_.begin() + pos_,
                                    data_.begin() + pos_ + n);
        pos_ += n;
        return v;
    }

    std::vector<std::uint32_t>
    vecU32()
    {
        // Divide, don't multiply: 4 * n wraps for a hostile length
        // field, and the whole point is refusing such files.
        const std::uint64_t n = u64();
        if (failed_ || n > (data_.size() - pos_) / 4) {
            failed_ = true;
            return {};
        }
        std::vector<std::uint32_t> v(n);
        for (std::uint64_t i = 0; i < n; ++i)
            v[i] = u32();
        return v;
    }

    std::vector<std::uint64_t>
    vecU64()
    {
        const std::uint64_t n = u64();
        if (failed_ || n > (data_.size() - pos_) / 8) {
            failed_ = true;
            return {};
        }
        std::vector<std::uint64_t> v(n);
        for (std::uint64_t i = 0; i < n; ++i)
            v[i] = u64();
        return v;
    }

    /** False once any read overran the buffer (truncated payload). */
    bool
    failed() const
    {
        return failed_;
    }

    bool
    ok() const
    {
        return !failed_;
    }

    /** Bytes left unconsumed (a well-formed file ends at zero). */
    std::size_t
    remaining() const
    {
        return data_.size() - pos_;
    }

  private:
    bool
    require(std::uint64_t bytes)
    {
        if (failed_ || bytes > data_.size() - pos_) {
            failed_ = true;
            return false;
        }
        return true;
    }

    std::vector<std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace smarts::util

#endif // SMARTS_UTIL_BINARY_IO_HH
