/**
 * @file
 * Delta codec for consecutive checkpoint states: XOR the payload
 * against a base (the previous live-point's raw state), then
 * run-length encode the zero bytes. Successive sampling units share
 * almost all of their serialized state — data image, cache arrays,
 * predictor tables — so the XOR residue is overwhelmingly zero and a
 * library of per-unit live-points (core/livepoint.hh) stays within a
 * small multiple of one full checkpoint on disk.
 *
 * Encoded stream (little-endian, on top of BinaryWriter/Reader;
 * normative layout in docs/checkpoint-format.md § Version 2):
 *
 *   u64 rawSize
 *   repeat until rawSize bytes are covered:
 *     u32 zeroRun      XOR-residue bytes equal to the base
 *     u32 literalLen   differing bytes, XOR residues follow verbatim
 *     u8[literalLen]
 *
 * The base is conceptually zero-padded to rawSize, so the first
 * record of a chain deltas against an empty base and simply stores
 * its literal bytes. Decoding never trusts the stream: overrunning
 * ops, zero-progress ops, truncation and trailing garbage are all
 * refused with a diagnostic instead of mis-decoded.
 */

#ifndef SMARTS_UTIL_DELTA_CODEC_HH
#define SMARTS_UTIL_DELTA_CODEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace smarts::util {

/** Encode @p data as a delta against @p base (zero-padded). */
std::vector<std::uint8_t>
deltaEncode(const std::vector<std::uint8_t> &base,
            const std::vector<std::uint8_t> &data);

/**
 * Invert deltaEncode: reconstruct the payload from @p base and
 * @p delta. Nullopt with a diagnostic in @p error on any malformed
 * input (truncated stream, ops overrunning the declared size,
 * zero-progress ops, trailing garbage).
 */
std::optional<std::vector<std::uint8_t>>
deltaDecode(const std::vector<std::uint8_t> &base,
            const std::vector<std::uint8_t> &delta,
            std::string *error = nullptr);

} // namespace smarts::util

#endif // SMARTS_UTIL_DELTA_CODEC_HH
