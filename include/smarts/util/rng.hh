/**
 * @file
 * xoshiro256** pseudo-random generator (Blackman & Vigna). Fast,
 * deterministic across platforms, and good enough statistically for
 * workload synthesis and k-means seeding. Seeded through splitmix64
 * so small integer seeds give well-mixed states.
 */

#ifndef SMARTS_UTIL_RNG_HH
#define SMARTS_UTIL_RNG_HH

#include <cstdint>

namespace smarts {

/** splitmix64 finalizer: a cheap, well-mixed 64-bit hash. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t z = x + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

class Xoshiro256StarStar
{
  public:
    explicit Xoshiro256StarStar(std::uint64_t seed = 1)
    {
        // splitmix64 state expansion.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            word = mix64(x);
            x += 0x9e3779b97f4a7c15ull;
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound = 0 yields 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Multiply-shift range reduction; the slight modulo bias is
        // irrelevant at the bounds used here.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace smarts

#endif // SMARTS_UTIL_RNG_HH
