/**
 * @file
 * Two-level memory hierarchy with split L1s, a unified L2 and split
 * fully-associative TLBs. Timing accesses (fetch/load/store) return
 * the latency and the level that served the request; warm accesses
 * (warmFetch/warmLoad/warmStore) update the identical state with no
 * timing — that distinction is the heart of functional warming.
 */

#ifndef SMARTS_MEM_HIERARCHY_HH
#define SMARTS_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"

namespace smarts::mem {

struct TlbConfig
{
    std::uint32_t entries = 64;
    std::uint32_t pageBytes = 4096;
    std::uint32_t missLatency = 30;
};

struct HierarchyConfig
{
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;
    TlbConfig itlb;
    TlbConfig dtlb;
    std::uint32_t memLatency = 80;
};

/** Which level served a timing access. */
enum class ServedBy : std::uint8_t
{
    L1 = 1,
    L2 = 2,
    Memory = 3,
};

struct MemResult
{
    std::uint32_t latency = 0;
    ServedBy level = ServedBy::L1;
    bool tlbMiss = false;
};

/**
 * Serialized TLB contents for checkpointing: the entry array, the
 * intrusive LRU list, and the open-addressing page index are all
 * captured verbatim so a restored TLB replays the identical
 * hit/miss/eviction sequence.
 */
struct TlbState
{
    std::vector<std::uint32_t> pages;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint32_t> next;
    std::vector<std::uint32_t> prev;
    std::uint32_t head = 0;
    std::uint32_t tail = 0;
    std::vector<std::uint32_t> keys;
    std::vector<std::uint32_t> vals;
    std::uint64_t misses = 0;

    std::size_t
    byteSize() const
    {
        return (pages.size() + next.size() + prev.size() +
                keys.size() + vals.size()) *
                   sizeof(std::uint32_t) +
               valid.size() + 2 * sizeof(std::uint32_t) +
               sizeof(std::uint64_t);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        out.vecU32(pages);
        out.vecU8(valid);
        out.vecU32(next);
        out.vecU32(prev);
        out.u32(head);
        out.u32(tail);
        out.vecU32(keys);
        out.vecU32(vals);
        out.u64(misses);
    }

    void
    read(util::BinaryReader &in)
    {
        pages = in.vecU32();
        valid = in.vecU8();
        next = in.vecU32();
        prev = in.vecU32();
        head = in.u32();
        tail = in.u32();
        keys = in.vecU32();
        vals = in.vecU32();
        misses = in.u64();
    }
};

/**
 * Tiny fully-associative true-LRU TLB. LRU order lives in an
 * intrusive doubly-linked list and lookups go through a small
 * open-addressing page index, so hits and misses are O(1) instead
 * of a scan of every entry — the TLB is touched by every warm and
 * detailed memory access, so this is squarely on the functional-
 * warming hot path. Hit/miss/eviction sequences are identical to
 * the scan-based implementation (true LRU either way).
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config) : config_(config)
    {
        if (!config.entries)
            SMARTS_FATAL("TLB needs at least one entry");
        pages_.assign(config.entries, 0);
        valid_.assign(config.entries, 0);
        next_.assign(config.entries, 0);
        prev_.assign(config.entries, 0);
        slots_ = 4;
        while (slots_ < 4 * config.entries)
            slots_ <<= 1;
        keys_.assign(slots_, 0); ///< page + 1; 0 marks empty.
        vals_.assign(slots_, 0);
        initList();
    }

    /** Returns true on a miss (and fills). */
    bool
    access(std::uint32_t addr)
    {
        const std::uint32_t page = addr / config_.pageBytes;
        // MRU fast path: consecutive same-page references.
        if (valid_[head_] && pages_[head_] == page)
            return false;
        const std::size_t slot = find(page);
        if (slot != kNone) {
            moveToFront(static_cast<std::uint32_t>(slot));
            return false;
        }
        ++misses_;
        const std::uint32_t victim = tail_; ///< LRU (or unfilled).
        if (valid_[victim])
            erase(pages_[victim]);
        pages_[victim] = page;
        valid_[victim] = 1;
        insert(page, victim);
        moveToFront(victim);
        return true;
    }

    void
    reset()
    {
        std::fill(valid_.begin(), valid_.end(), 0);
        std::fill(keys_.begin(), keys_.end(), 0);
        initList();
        misses_ = 0;
    }

    void
    saveState(TlbState &state) const
    {
        state.pages = pages_;
        state.valid = valid_;
        state.next = next_;
        state.prev = prev_;
        state.head = head_;
        state.tail = tail_;
        state.keys = keys_;
        state.vals = vals_;
        state.misses = misses_;
    }

    void
    restoreState(const TlbState &state)
    {
        if (state.pages.size() != pages_.size() ||
            state.keys.size() != keys_.size())
            SMARTS_FATAL("TLB checkpoint geometry mismatch");
        pages_ = state.pages;
        valid_ = state.valid;
        next_ = state.next;
        prev_ = state.prev;
        head_ = state.head;
        tail_ = state.tail;
        keys_ = state.keys;
        vals_ = state.vals;
        misses_ = state.misses;
    }

    std::uint64_t misses() const { return misses_; }
    const TlbConfig &config() const { return config_; }

  private:
    static constexpr std::size_t kNone = ~std::size_t(0);

    void
    initList()
    {
        const std::uint32_t n = config_.entries;
        for (std::uint32_t i = 0; i < n; ++i) {
            next_[i] = (i + 1) % n;
            prev_[i] = (i + n - 1) % n;
        }
        head_ = 0;
        tail_ = n - 1;
    }

    /** Move entry @p e to the MRU end of the list. */
    void
    moveToFront(std::uint32_t e)
    {
        if (e == head_)
            return;
        if (e == tail_) {
            // The list is circular: rotating the head/tail markers
            // suffices when touching the tail.
            head_ = e;
            tail_ = prev_[e];
            return;
        }
        next_[prev_[e]] = next_[e];
        prev_[next_[e]] = prev_[e];
        prev_[e] = tail_;
        next_[e] = head_;
        next_[tail_] = e;
        prev_[head_] = e;
        head_ = e;
    }

    std::size_t
    hashSlot(std::uint32_t page) const
    {
        // Fibonacci hashing spreads consecutive pages well.
        return (page * 2654435761u) & (slots_ - 1);
    }

    std::size_t
    find(std::uint32_t page) const
    {
        std::size_t s = hashSlot(page);
        while (keys_[s]) {
            if (keys_[s] == page + 1)
                return vals_[s];
            s = (s + 1) & (slots_ - 1);
        }
        return kNone;
    }

    void
    insert(std::uint32_t page, std::uint32_t entry)
    {
        std::size_t s = hashSlot(page);
        while (keys_[s])
            s = (s + 1) & (slots_ - 1);
        keys_[s] = page + 1;
        vals_[s] = entry;
    }

    void
    erase(std::uint32_t page)
    {
        std::size_t s = hashSlot(page);
        while (keys_[s] != page + 1)
            s = (s + 1) & (slots_ - 1);
        // Backward-shift deletion keeps probe chains intact.
        std::size_t hole = s;
        for (;;) {
            s = (s + 1) & (slots_ - 1);
            if (!keys_[s])
                break;
            const std::size_t home = hashSlot(keys_[s] - 1);
            // Can this key legally move into the hole?
            const bool movable =
                ((s - home) & (slots_ - 1)) >=
                ((s - hole) & (slots_ - 1));
            if (movable) {
                keys_[hole] = keys_[s];
                vals_[hole] = vals_[s];
                hole = s;
            }
        }
        keys_[hole] = 0;
    }

    TlbConfig config_;
    std::vector<std::uint32_t> pages_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint32_t> next_; ///< intrusive LRU list.
    std::vector<std::uint32_t> prev_;
    std::uint32_t head_ = 0; ///< MRU entry.
    std::uint32_t tail_ = 0; ///< LRU entry (eviction victim).
    std::size_t slots_ = 0;  ///< power-of-two hash capacity.
    std::vector<std::uint32_t> keys_;
    std::vector<std::uint32_t> vals_;
    std::uint64_t misses_ = 0;
};

/** Serialized hierarchy: every cache and TLB, in member order. */
struct HierarchyState
{
    CacheState l1i;
    CacheState l1d;
    CacheState l2;
    TlbState itlb;
    TlbState dtlb;

    std::size_t
    byteSize() const
    {
        return l1i.byteSize() + l1d.byteSize() + l2.byteSize() +
               itlb.byteSize() + dtlb.byteSize();
    }

    void
    write(util::BinaryWriter &out) const
    {
        l1i.write(out);
        l1d.write(out);
        l2.write(out);
        itlb.write(out);
        dtlb.write(out);
    }

    void
    read(util::BinaryReader &in)
    {
        l1i.read(in);
        l1d.read(in);
        l2.read(in);
        itlb.read(in);
        dtlb.read(in);
    }
};

class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyConfig &config)
        : config_(config),
          l1i_("l1i", config.l1i),
          l1d_("l1d", config.l1d),
          l2_("l2", config.l2),
          itlb_(config.itlb),
          dtlb_(config.dtlb)
    {
    }

    MemResult
    fetch(std::uint32_t addr)
    {
        return timingAccess(l1i_, itlb_, addr, false);
    }

    MemResult
    load(std::uint32_t addr)
    {
        return timingAccess(l1d_, dtlb_, addr, false);
    }

    MemResult
    store(std::uint32_t addr)
    {
        return timingAccess(l1d_, dtlb_, addr, true);
    }

    void
    warmFetch(std::uint32_t addr)
    {
        warmAccess(l1i_, itlb_, addr, false);
    }

    void
    warmLoad(std::uint32_t addr)
    {
        warmAccess(l1d_, dtlb_, addr, false);
    }

    void
    warmStore(std::uint32_t addr)
    {
        warmAccess(l1d_, dtlb_, addr, true);
    }

    void
    reset()
    {
        l1i_.reset();
        l1d_.reset();
        l2_.reset();
        itlb_.reset();
        dtlb_.reset();
    }

    void
    saveState(HierarchyState &state) const
    {
        l1i_.saveState(state.l1i);
        l1d_.saveState(state.l1d);
        l2_.saveState(state.l2);
        itlb_.saveState(state.itlb);
        dtlb_.saveState(state.dtlb);
    }

    void
    restoreState(const HierarchyState &state)
    {
        l1i_.restoreState(state.l1i);
        l1d_.restoreState(state.l1d);
        l2_.restoreState(state.l2);
        itlb_.restoreState(state.itlb);
        dtlb_.restoreState(state.dtlb);
    }

    const HierarchyConfig &config() const { return config_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }

  private:
    MemResult
    timingAccess(Cache &l1, Tlb &tlb, std::uint32_t addr, bool write)
    {
        MemResult result;
        result.tlbMiss = tlb.access(addr);
        result.latency =
            result.tlbMiss ? tlb.config().missLatency : 0;
        result.latency += l1.config().latency;
        if (l1.access(addr, write).hit) {
            result.level = ServedBy::L1;
        } else if (l2_.access(addr, write).hit) {
            result.level = ServedBy::L2;
            result.latency += config_.l2.latency;
        } else {
            result.level = ServedBy::Memory;
            result.latency += config_.l2.latency + config_.memLatency;
        }
        return result;
    }

    void
    warmAccess(Cache &l1, Tlb &tlb, std::uint32_t addr, bool write)
    {
        tlb.access(addr);
        if (!l1.access(addr, write).hit)
            l2_.access(addr, write);
    }

    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tlb itlb_;
    Tlb dtlb_;
};

} // namespace smarts::mem

#endif // SMARTS_MEM_HIERARCHY_HH
