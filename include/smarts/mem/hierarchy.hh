/**
 * @file
 * Two-level memory hierarchy with split L1s, a unified L2 and split
 * fully-associative TLBs. Timing accesses (fetch/load/store) return
 * the latency and the level that served the request; warm accesses
 * (warmFetch/warmLoad/warmStore) update the identical state with no
 * timing — that distinction is the heart of functional warming.
 */

#ifndef SMARTS_MEM_HIERARCHY_HH
#define SMARTS_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"

namespace smarts::mem {

struct TlbConfig
{
    std::uint32_t entries = 64;
    std::uint32_t pageBytes = 4096;
    std::uint32_t missLatency = 30;
};

struct HierarchyConfig
{
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;
    TlbConfig itlb;
    TlbConfig dtlb;
    std::uint32_t memLatency = 80;
};

/** Which level served a timing access. */
enum class ServedBy : std::uint8_t
{
    L1 = 1,
    L2 = 2,
    Memory = 3,
};

struct MemResult
{
    std::uint32_t latency = 0;
    ServedBy level = ServedBy::L1;
    bool tlbMiss = false;
};

/** Tiny fully-associative LRU TLB. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config) : config_(config)
    {
        pages_.assign(config.entries, 0);
        valid_.assign(config.entries, 0);
        lastUse_.assign(config.entries, 0);
    }

    /** Returns true on a miss (and fills). */
    bool
    access(std::uint32_t addr)
    {
        const std::uint32_t page = addr / config_.pageBytes;
        ++tick_;
        std::size_t victim = 0;
        std::uint64_t oldest = ~0ull;
        for (std::size_t i = 0; i < pages_.size(); ++i) {
            if (valid_[i] && pages_[i] == page) {
                lastUse_[i] = tick_;
                return false;
            }
            if (lastUse_[i] < oldest) {
                oldest = lastUse_[i];
                victim = i;
            }
        }
        ++misses_;
        pages_[victim] = page;
        valid_[victim] = 1;
        lastUse_[victim] = tick_;
        return true;
    }

    void
    reset()
    {
        std::fill(valid_.begin(), valid_.end(), 0);
        std::fill(lastUse_.begin(), lastUse_.end(), 0);
        tick_ = misses_ = 0;
    }

    std::uint64_t misses() const { return misses_; }
    const TlbConfig &config() const { return config_; }

  private:
    TlbConfig config_;
    std::vector<std::uint32_t> pages_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint64_t> lastUse_;
    std::uint64_t tick_ = 0;
    std::uint64_t misses_ = 0;
};

class MemHierarchy
{
  public:
    explicit MemHierarchy(const HierarchyConfig &config)
        : config_(config),
          l1i_("l1i", config.l1i),
          l1d_("l1d", config.l1d),
          l2_("l2", config.l2),
          itlb_(config.itlb),
          dtlb_(config.dtlb)
    {
    }

    MemResult
    fetch(std::uint32_t addr)
    {
        return timingAccess(l1i_, itlb_, addr, false);
    }

    MemResult
    load(std::uint32_t addr)
    {
        return timingAccess(l1d_, dtlb_, addr, false);
    }

    MemResult
    store(std::uint32_t addr)
    {
        return timingAccess(l1d_, dtlb_, addr, true);
    }

    void
    warmFetch(std::uint32_t addr)
    {
        warmAccess(l1i_, itlb_, addr, false);
    }

    void
    warmLoad(std::uint32_t addr)
    {
        warmAccess(l1d_, dtlb_, addr, false);
    }

    void
    warmStore(std::uint32_t addr)
    {
        warmAccess(l1d_, dtlb_, addr, true);
    }

    void
    reset()
    {
        l1i_.reset();
        l1d_.reset();
        l2_.reset();
        itlb_.reset();
        dtlb_.reset();
    }

    const HierarchyConfig &config() const { return config_; }
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Tlb &itlb() const { return itlb_; }
    const Tlb &dtlb() const { return dtlb_; }

  private:
    MemResult
    timingAccess(Cache &l1, Tlb &tlb, std::uint32_t addr, bool write)
    {
        MemResult result;
        result.tlbMiss = tlb.access(addr);
        result.latency =
            result.tlbMiss ? tlb.config().missLatency : 0;
        result.latency += l1.config().latency;
        if (l1.access(addr, write).hit) {
            result.level = ServedBy::L1;
        } else if (l2_.access(addr, write).hit) {
            result.level = ServedBy::L2;
            result.latency += config_.l2.latency;
        } else {
            result.level = ServedBy::Memory;
            result.latency += config_.l2.latency + config_.memLatency;
        }
        return result;
    }

    void
    warmAccess(Cache &l1, Tlb &tlb, std::uint32_t addr, bool write)
    {
        tlb.access(addr);
        if (!l1.access(addr, write).hit)
            l2_.access(addr, write);
    }

    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tlb itlb_;
    Tlb dtlb_;
};

} // namespace smarts::mem

#endif // SMARTS_MEM_HIERARCHY_HH
