/**
 * @file
 * Shared memory hierarchy for multi-programmed co-run sessions
 * (smarts::mp): per-program private L1s and TLBs in front of ONE
 * owner-tagged shared L2, plus a per-program SHADOW L2 — a plain
 * mem::Cache with the solo configuration that is fed the identical
 * L1-miss request stream the shared L2 sees from that program. With
 * private L1s the architectural stream and every L1/TLB hit/miss
 * sequence of a program inside the co-run are identical to its solo
 * run, so the shadow L2's state and counters are bit-identical to
 * the L2 of a true solo run of the same schedule BY CONSTRUCTION
 * (same class, same access sequence) — that is the whole QoS trick:
 * one co-run stream yields each program's would-be-solo hit/miss
 * stream for free (tests/test_shared_mem.cc pins the bit-equality).
 *
 * The shared L2 tags every line with its owning program — the
 * programs' address spaces are disjoint even when their addresses
 * collide numerically (each SISA image starts at the same base), so
 * a hit requires tag AND owner to match. Two partitioning policies:
 * Shared (victim = global LRU over the whole set) and WayPartitioned
 * (victim = LRU within the program's contiguous way range, hits
 * still visible set-wide — classic way partitioning).
 */

#ifndef SMARTS_MEM_SHARED_HIERARCHY_HH
#define SMARTS_MEM_SHARED_HIERARCHY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/hierarchy.hh"
#include "util/binary_io.hh"
#include "util/logging.hh"

namespace smarts::mem {

/** How co-running programs divide the shared cache. */
enum class PartitionPolicy : std::uint8_t
{
    Shared = 0,         ///< free-for-all: global LRU victim choice.
    WayPartitioned = 1, ///< each program evicts only its own ways.
};

inline const char *
partitionPolicyName(PartitionPolicy policy)
{
    switch (policy) {
      case PartitionPolicy::Shared: return "shared";
      case PartitionPolicy::WayPartitioned: return "waypart";
    }
    return "?";
}

/**
 * Serialized shared-cache contents: the tag/owner/valid/recency
 * image plus the per-program event counters, enough to resume a
 * warm shared cache bit-exactly.
 */
struct SharedCacheState
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> owners;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint64_t> lastUse;
    std::vector<std::uint32_t> mruWay;
    std::uint64_t tick = 0;
    std::vector<std::uint64_t> loads;  ///< per program.
    std::vector<std::uint64_t> stores; ///< per program.
    std::vector<std::uint64_t> misses; ///< per program.

    std::size_t
    byteSize() const
    {
        return tags.size() * sizeof(std::uint32_t) + owners.size() +
               valid.size() + lastUse.size() * sizeof(std::uint64_t) +
               mruWay.size() * sizeof(std::uint32_t) +
               (1 + loads.size() + stores.size() + misses.size()) *
                   sizeof(std::uint64_t);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        out.vecU32(tags);
        out.vecU8(owners);
        out.vecU8(valid);
        out.vecU64(lastUse);
        out.vecU32(mruWay);
        out.u64(tick);
        out.vecU64(loads);
        out.vecU64(stores);
        out.vecU64(misses);
    }

    void
    read(util::BinaryReader &in)
    {
        tags = in.vecU32();
        owners = in.vecU8();
        valid = in.vecU8();
        lastUse = in.vecU64();
        mruWay = in.vecU32();
        tick = in.u64();
        loads = in.vecU64();
        stores = in.vecU64();
        misses = in.vecU64();
    }
};

/**
 * Set-associative true-LRU cache shared by N programs: every line
 * carries its owner, a hit requires tag and owner to match, and the
 * victim way is drawn from the whole set (Shared) or the program's
 * contiguous way range (WayPartitioned). The access logic is
 * mem::Cache's with the owner predicate added — same MRU fast path,
 * same tick/recency arithmetic — so a one-program Shared instance
 * replays a mem::Cache bit for bit.
 */
class SharedCache
{
  public:
    SharedCache(std::string name, const CacheConfig &config,
                std::uint32_t programs, PartitionPolicy policy)
        : name_(std::move(name)), config_(config),
          programs_(programs), policy_(policy)
    {
        if (!config.sizeBytes || !config.assoc || !config.lineBytes ||
            config.sizeBytes % (config.assoc * config.lineBytes))
            SMARTS_FATAL("cache '", name_, "': size ", config.sizeBytes,
                         " not divisible into ", config.assoc,
                         "-way sets of ", config.lineBytes, "B lines");
        if (!programs || programs > 255)
            SMARTS_FATAL("cache '", name_, "': ", programs,
                         " programs (owner tags are one byte)");
        if (policy == PartitionPolicy::WayPartitioned &&
            programs > config.assoc)
            SMARTS_FATAL("cache '", name_, "': cannot way-partition ",
                         config.assoc, " ways across ", programs,
                         " programs");
        sets_ = config.sizeBytes / (config.assoc * config.lineBytes);
        lineShift_ = 0;
        while ((1u << lineShift_) < config.lineBytes)
            ++lineShift_;
        // Contiguous way ranges: assoc/N each, the first assoc%N
        // programs get one extra way.
        wayBase_.assign(programs + 1, 0);
        const std::uint32_t share = config.assoc / programs;
        const std::uint32_t extra = config.assoc % programs;
        for (std::uint32_t p = 0; p < programs; ++p)
            wayBase_[p + 1] =
                wayBase_[p] + share + (p < extra ? 1 : 0);
        tags_.assign(static_cast<std::size_t>(sets_) * config.assoc, 0);
        owners_.assign(tags_.size(), 0);
        valid_.assign(tags_.size(), 0);
        lastUse_.assign(tags_.size(), 0);
        mruWay_.assign(sets_, 0);
        loads_.assign(programs, 0);
        stores_.assign(programs, 0);
        misses_.assign(programs, 0);
    }

    /**
     * Look up (@p prog, @p addr), fill on miss, update LRU. Mirrors
     * mem::Cache::access with the owner predicate and the policy's
     * victim range.
     */
    AccessResult
    access(std::uint32_t prog, std::uint32_t addr, bool write)
    {
        ++(write ? stores_ : loads_)[prog];
        const std::uint32_t line = addr >> lineShift_;
        const std::uint32_t set = line % sets_;
        const std::size_t base =
            static_cast<std::size_t>(set) * config_.assoc;
        ++tick_;

        // MRU fast path: exactly equivalent to the full scan (a hit
        // never changes victims).
        const std::size_t mru = base + mruWay_[set];
        if (valid_[mru] && tags_[mru] == line && owners_[mru] == prog) {
            lastUse_[mru] = tick_;
            return {true};
        }

        // Hit scan covers the whole set: under way partitioning a
        // program's lines only ever live in its own ways, so the
        // owner predicate makes the full scan equivalent to a
        // range-restricted one.
        for (std::size_t w = base; w < base + config_.assoc; ++w) {
            if (valid_[w] && tags_[w] == line && owners_[w] == prog) {
                lastUse_[w] = tick_;
                mruWay_[set] = static_cast<std::uint32_t>(w - base);
                return {true};
            }
        }

        // Miss: victim = LRU over the policy's way range.
        std::size_t lo = base;
        std::size_t hi = base + config_.assoc;
        if (policy_ == PartitionPolicy::WayPartitioned) {
            lo = base + wayBase_[prog];
            hi = base + wayBase_[prog + 1];
        }
        std::size_t victim = lo;
        std::uint64_t oldest = ~0ull;
        for (std::size_t w = lo; w < hi; ++w) {
            if (lastUse_[w] < oldest) {
                oldest = lastUse_[w];
                victim = w;
            }
        }
        ++misses_[prog];
        tags_[victim] = line;
        owners_[victim] = static_cast<std::uint8_t>(prog);
        valid_[victim] = 1;
        lastUse_[victim] = tick_;
        mruWay_[set] = static_cast<std::uint32_t>(victim - base);
        return {false};
    }

    void
    saveState(SharedCacheState &state) const
    {
        state.tags = tags_;
        state.owners = owners_;
        state.valid = valid_;
        state.lastUse = lastUse_;
        state.mruWay = mruWay_;
        state.tick = tick_;
        state.loads = loads_;
        state.stores = stores_;
        state.misses = misses_;
    }

    void
    restoreState(const SharedCacheState &state)
    {
        if (state.tags.size() != tags_.size() ||
            state.mruWay.size() != mruWay_.size() ||
            state.misses.size() != misses_.size())
            SMARTS_FATAL("cache '", name_,
                         "': checkpoint geometry mismatch");
        tags_ = state.tags;
        owners_ = state.owners;
        valid_ = state.valid;
        lastUse_ = state.lastUse;
        mruWay_ = state.mruWay;
        tick_ = state.tick;
        loads_ = state.loads;
        stores_ = state.stores;
        misses_ = state.misses;
    }

    const CacheConfig &config() const { return config_; }
    PartitionPolicy policy() const { return policy_; }
    std::uint32_t programs() const { return programs_; }

    std::uint64_t
    accesses(std::uint32_t prog) const
    {
        return loads_[prog] + stores_[prog];
    }

    std::uint64_t
    misses(std::uint32_t prog) const
    {
        return misses_[prog];
    }

  private:
    std::string name_;
    CacheConfig config_;
    std::uint32_t programs_ = 1;
    PartitionPolicy policy_ = PartitionPolicy::Shared;
    std::uint32_t sets_ = 1;
    std::uint32_t lineShift_ = 6;
    std::vector<std::uint32_t> wayBase_; ///< per-program way ranges.
    std::vector<std::uint32_t> tags_;
    std::vector<std::uint8_t> owners_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint32_t> mruWay_; ///< per-set MRU fast path.
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> loads_;
    std::vector<std::uint64_t> stores_;
    std::vector<std::uint64_t> misses_;
};

/** One program's private warm state inside a SharedHierarchy. */
struct SharedLaneMemState
{
    CacheState l1i;
    CacheState l1d;
    CacheState shadowL2;
    TlbState itlb;
    TlbState dtlb;

    std::size_t
    byteSize() const
    {
        return l1i.byteSize() + l1d.byteSize() + shadowL2.byteSize() +
               itlb.byteSize() + dtlb.byteSize();
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        l1i.write(out);
        l1d.write(out);
        shadowL2.write(out);
        itlb.write(out);
        dtlb.write(out);
    }

    void
    read(util::BinaryReader &in)
    {
        l1i.read(in);
        l1d.read(in);
        shadowL2.read(in);
        itlb.read(in);
        dtlb.read(in);
    }
};

/** Serialized shared hierarchy: every lane, then the shared L2. */
struct SharedHierarchyState
{
    std::vector<SharedLaneMemState> lanes;
    SharedCacheState l2;

    std::size_t
    byteSize() const
    {
        std::size_t total = l2.byteSize();
        for (const SharedLaneMemState &lane : lanes)
            total += lane.byteSize();
        return total;
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        out.u64(lanes.size());
        for (const SharedLaneMemState &lane : lanes)
            lane.write(out);
        l2.write(out);
    }

    void
    read(util::BinaryReader &in)
    {
        lanes.resize(in.u64());
        for (SharedLaneMemState &lane : lanes)
            lane.read(in);
        l2.read(in);
    }
};

/** A timing access resolved in both worlds: co-run and would-be-solo. */
struct SharedMemResult
{
    MemResult co;   ///< served by the SHARED L2.
    MemResult solo; ///< served by the program's SHADOW (solo) L2.
};

/**
 * N private (L1I, L1D, ITLB, DTLB, shadow L2) lanes over one shared
 * L2. Access semantics per lane mirror MemHierarchy::timingAccess /
 * warmAccess exactly; on an L1 miss the request goes to BOTH the
 * shared L2 (the co-run world) and the lane's shadow L2 (the solo
 * world), each resolving its own latency and level.
 */
class SharedHierarchy
{
  public:
    SharedHierarchy(const HierarchyConfig &config,
                    std::uint32_t programs, PartitionPolicy policy)
        : config_(config),
          l2_("shared-l2", config.l2, programs, policy)
    {
        lanes_.reserve(programs);
        for (std::uint32_t p = 0; p < programs; ++p)
            lanes_.emplace_back(config, p);
    }

    SharedMemResult
    fetch(std::uint32_t prog, std::uint32_t addr)
    {
        Lane &lane = lanes_[prog];
        return timingAccess(prog, lane.l1i, lane.itlb,
                            lane.shadowL2, addr, false);
    }

    SharedMemResult
    load(std::uint32_t prog, std::uint32_t addr)
    {
        Lane &lane = lanes_[prog];
        return timingAccess(prog, lane.l1d, lane.dtlb,
                            lane.shadowL2, addr, false);
    }

    SharedMemResult
    store(std::uint32_t prog, std::uint32_t addr)
    {
        Lane &lane = lanes_[prog];
        return timingAccess(prog, lane.l1d, lane.dtlb,
                            lane.shadowL2, addr, true);
    }

    void
    warmFetch(std::uint32_t prog, std::uint32_t addr)
    {
        Lane &lane = lanes_[prog];
        warmAccess(prog, lane.l1i, lane.itlb, lane.shadowL2, addr,
                   false);
    }

    void
    warmLoad(std::uint32_t prog, std::uint32_t addr)
    {
        Lane &lane = lanes_[prog];
        warmAccess(prog, lane.l1d, lane.dtlb, lane.shadowL2, addr,
                   false);
    }

    void
    warmStore(std::uint32_t prog, std::uint32_t addr)
    {
        Lane &lane = lanes_[prog];
        warmAccess(prog, lane.l1d, lane.dtlb, lane.shadowL2, addr,
                   true);
    }

    void
    saveState(SharedHierarchyState &state) const
    {
        state.lanes.resize(lanes_.size());
        for (std::size_t p = 0; p < lanes_.size(); ++p) {
            const Lane &lane = lanes_[p];
            lane.l1i.saveState(state.lanes[p].l1i);
            lane.l1d.saveState(state.lanes[p].l1d);
            lane.shadowL2.saveState(state.lanes[p].shadowL2);
            lane.itlb.saveState(state.lanes[p].itlb);
            lane.dtlb.saveState(state.lanes[p].dtlb);
        }
        l2_.saveState(state.l2);
    }

    void
    restoreState(const SharedHierarchyState &state)
    {
        if (state.lanes.size() != lanes_.size())
            SMARTS_FATAL("shared hierarchy checkpoint has ",
                         state.lanes.size(), " lanes, expected ",
                         lanes_.size());
        for (std::size_t p = 0; p < lanes_.size(); ++p) {
            Lane &lane = lanes_[p];
            lane.l1i.restoreState(state.lanes[p].l1i);
            lane.l1d.restoreState(state.lanes[p].l1d);
            lane.shadowL2.restoreState(state.lanes[p].shadowL2);
            lane.itlb.restoreState(state.lanes[p].itlb);
            lane.dtlb.restoreState(state.lanes[p].dtlb);
        }
        l2_.restoreState(state.l2);
    }

    const HierarchyConfig &config() const { return config_; }
    const SharedCache &sharedL2() const { return l2_; }

    /** The lane's solo-world L2 (the shadow tag array). */
    const Cache &
    shadowL2(std::uint32_t prog) const
    {
        return lanes_[prog].shadowL2;
    }

  private:
    struct Lane
    {
        Lane(const HierarchyConfig &config, std::uint32_t prog)
            : l1i(log::format("l1i.", prog), config.l1i),
              l1d(log::format("l1d.", prog), config.l1d),
              shadowL2(log::format("shadow-l2.", prog), config.l2),
              itlb(config.itlb), dtlb(config.dtlb)
        {
        }

        Cache l1i;
        Cache l1d;
        Cache shadowL2; ///< the solo world: a plain solo-config L2.
        Tlb itlb;
        Tlb dtlb;
    };

    /**
     * MemHierarchy::timingAccess per world: TLB + L1 latency are
     * shared (private structures, one physical access); on an L1
     * miss each world's L2 resolves independently.
     */
    SharedMemResult
    timingAccess(std::uint32_t prog, Cache &l1, Tlb &tlb,
                 Cache &shadow, std::uint32_t addr, bool write)
    {
        SharedMemResult r;
        const bool tlbMiss = tlb.access(addr);
        const std::uint32_t base =
            (tlbMiss ? tlb.config().missLatency : 0) +
            l1.config().latency;
        r.co.tlbMiss = r.solo.tlbMiss = tlbMiss;
        r.co.latency = r.solo.latency = base;
        if (l1.access(addr, write).hit) {
            r.co.level = r.solo.level = ServedBy::L1;
            return r;
        }
        if (l2_.access(prog, addr, write).hit) {
            r.co.level = ServedBy::L2;
            r.co.latency += config_.l2.latency;
        } else {
            r.co.level = ServedBy::Memory;
            r.co.latency += config_.l2.latency + config_.memLatency;
        }
        if (shadow.access(addr, write).hit) {
            r.solo.level = ServedBy::L2;
            r.solo.latency += config_.l2.latency;
        } else {
            r.solo.level = ServedBy::Memory;
            r.solo.latency += config_.l2.latency + config_.memLatency;
        }
        return r;
    }

    void
    warmAccess(std::uint32_t prog, Cache &l1, Tlb &tlb, Cache &shadow,
               std::uint32_t addr, bool write)
    {
        tlb.access(addr);
        if (!l1.access(addr, write).hit) {
            l2_.access(prog, addr, write);
            shadow.access(addr, write);
        }
    }

    HierarchyConfig config_;
    std::vector<Lane> lanes_;
    SharedCache l2_;
};

} // namespace smarts::mem

#endif // SMARTS_MEM_SHARED_HIERARCHY_HH
