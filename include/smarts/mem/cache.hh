/**
 * @file
 * Set-associative write-allocate cache with true-LRU replacement.
 * This is the long-history microarchitectural state functional
 * warming must maintain (paper Section 4.4): the same object is
 * updated by warm accesses (no timing) and detailed accesses
 * (timing charged by the hierarchy).
 */

#ifndef SMARTS_MEM_CACHE_HH
#define SMARTS_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/binary_io.hh"
#include "util/logging.hh"

namespace smarts::mem {

struct CacheConfig
{
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 64;
    std::uint32_t latency = 1;
};

struct AccessResult
{
    bool hit = false;
};

/**
 * Serialized cache contents for checkpointing (core/checkpoint.hh):
 * the full tag/valid/recency image plus the event counters, enough
 * to resume a warm cache bit-exactly.
 */
struct CacheState
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> valid;
    std::vector<std::uint64_t> lastUse;
    std::vector<std::uint32_t> mruWay;
    std::uint64_t tick = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t misses = 0;

    std::size_t
    byteSize() const
    {
        return tags.size() * sizeof(std::uint32_t) + valid.size() +
               lastUse.size() * sizeof(std::uint64_t) +
               mruWay.size() * sizeof(std::uint32_t) +
               4 * sizeof(std::uint64_t);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        out.vecU32(tags);
        out.vecU8(valid);
        out.vecU64(lastUse);
        out.vecU32(mruWay);
        out.u64(tick);
        out.u64(loads);
        out.u64(stores);
        out.u64(misses);
    }

    void
    read(util::BinaryReader &in)
    {
        tags = in.vecU32();
        valid = in.vecU8();
        lastUse = in.vecU64();
        mruWay = in.vecU32();
        tick = in.u64();
        loads = in.u64();
        stores = in.u64();
        misses = in.u64();
    }
};

class Cache
{
  public:
    Cache(std::string name, const CacheConfig &config)
        : name_(std::move(name)), config_(config)
    {
        if (!config.sizeBytes || !config.assoc || !config.lineBytes ||
            config.sizeBytes % (config.assoc * config.lineBytes))
            SMARTS_FATAL("cache '", name_, "': size ", config.sizeBytes,
                         " not divisible into ", config.assoc,
                         "-way sets of ", config.lineBytes, "B lines");
        sets_ = config.sizeBytes / (config.assoc * config.lineBytes);
        lineShift_ = 0;
        while ((1u << lineShift_) < config.lineBytes)
            ++lineShift_;
        tags_.assign(static_cast<std::size_t>(sets_) * config.assoc, 0);
        valid_.assign(tags_.size(), 0);
        lastUse_.assign(tags_.size(), 0);
        mruWay_.assign(sets_, 0);
    }

    /**
     * Look up @p addr, fill on miss, update LRU. @p write is
     * recorded for the store counters only: allocation policy is
     * identical for loads and stores.
     */
    AccessResult
    access(std::uint32_t addr, bool write)
    {
        ++(write ? stores_ : loads_);
        const std::uint32_t line = addr >> lineShift_;
        const std::uint32_t set = line % sets_;
        const std::size_t base =
            static_cast<std::size_t>(set) * config_.assoc;
        ++tick_;

        // MRU fast path: a re-reference of the set's most recent
        // line needs only its recency stamp refreshed. Exactly
        // equivalent to the full scan (a hit never changes victims).
        const std::size_t mru = base + mruWay_[set];
        if (valid_[mru] && tags_[mru] == line) {
            lastUse_[mru] = tick_;
            return {true};
        }

        std::size_t victim = base;
        std::uint64_t oldest = ~0ull;
        for (std::size_t w = base; w < base + config_.assoc; ++w) {
            if (valid_[w] && tags_[w] == line) {
                lastUse_[w] = tick_;
                mruWay_[set] = static_cast<std::uint32_t>(w - base);
                return {true};
            }
            if (lastUse_[w] < oldest) {
                oldest = lastUse_[w];
                victim = w;
            }
        }
        ++misses_;
        tags_[victim] = line;
        valid_[victim] = 1;
        lastUse_[victim] = tick_;
        mruWay_[set] = static_cast<std::uint32_t>(victim - base);
        return {false};
    }

    /** Hit check without any state update. */
    bool
    probe(std::uint32_t addr) const
    {
        const std::uint32_t line = addr >> lineShift_;
        const std::uint32_t set = line % sets_;
        const std::size_t base =
            static_cast<std::size_t>(set) * config_.assoc;
        for (std::size_t w = base; w < base + config_.assoc; ++w)
            if (valid_[w] && tags_[w] == line)
                return true;
        return false;
    }

    void
    reset()
    {
        std::fill(valid_.begin(), valid_.end(), 0);
        std::fill(lastUse_.begin(), lastUse_.end(), 0);
        std::fill(mruWay_.begin(), mruWay_.end(), 0);
        tick_ = loads_ = stores_ = misses_ = 0;
    }

    void
    saveState(CacheState &state) const
    {
        state.tags = tags_;
        state.valid = valid_;
        state.lastUse = lastUse_;
        state.mruWay = mruWay_;
        state.tick = tick_;
        state.loads = loads_;
        state.stores = stores_;
        state.misses = misses_;
    }

    void
    restoreState(const CacheState &state)
    {
        if (state.tags.size() != tags_.size() ||
            state.mruWay.size() != mruWay_.size())
            SMARTS_FATAL("cache '", name_,
                         "': checkpoint geometry mismatch");
        tags_ = state.tags;
        valid_ = state.valid;
        lastUse_ = state.lastUse;
        mruWay_ = state.mruWay;
        tick_ = state.tick;
        loads_ = state.loads;
        stores_ = state.stores;
        misses_ = state.misses;
    }

    const std::string &name() const { return name_; }
    const CacheConfig &config() const { return config_; }
    std::uint64_t accesses() const { return loads_ + stores_; }
    std::uint64_t misses() const { return misses_; }

  private:
    std::string name_;
    CacheConfig config_;
    std::uint32_t sets_ = 1;
    std::uint32_t lineShift_ = 6;
    std::vector<std::uint32_t> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<std::uint32_t> mruWay_; ///< per-set MRU fast path.
    std::uint64_t tick_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace smarts::mem

#endif // SMARTS_MEM_CACHE_HH
