/**
 * @file
 * smarts_lint: a repo-specific static-analysis pass that turns the
 * determinism and serialization contracts every headline result
 * rests on (docs/determinism-contracts.md) into build failures.
 *
 * The checks are source-level and heuristic by design — this is a
 * contract linter for THIS codebase's idioms (BinaryWriter/Reader
 * serializers, checksummed load paths, OnlineStats folds), not a
 * general C++ analyzer. Every check is individually toggleable and
 * every diagnostic can be suppressed at the violation site with
 *
 *     // smarts-lint: allow(<check>) <one-line justification>
 *
 * on the flagged line or the line above it. A suppression with no
 * justification is itself a diagnostic: the point is a tree where
 * every exception to a contract says why it is safe.
 */

#ifndef SMARTS_LINT_LINT_HH
#define SMARTS_LINT_LINT_HH

#include <string>
#include <vector>

namespace smarts::lint {

/** One contract violation, anchored to a source line. */
struct Diagnostic
{
    std::string check; ///< check name, e.g. "no-unordered-iteration".
    std::string file;
    int line = 0;
    std::string message;
};

/** Which checks to run; both empty means "all of them". */
struct Options
{
    std::vector<std::string> enabled;  ///< if non-empty, only these.
    std::vector<std::string> disabled; ///< always skipped.
};

/** Aggregate result of a lint pass. */
struct Report
{
    std::vector<Diagnostic> diagnostics;
    int filesScanned = 0;
    int suppressionsHonored = 0;

    bool clean() const { return diagnostics.empty(); }
};

/** The five contract checks, in documentation order. */
const std::vector<std::string> &checkNames();

/** True for a contract check name or the "suppression" meta check. */
bool knownCheck(const std::string &name);

/**
 * Collect the lintable sources under @p root: every .hh/.cc beneath
 * root/include and root/src, sorted for stable diagnostic order.
 * Returns false (with @p error set) when neither directory exists.
 */
bool collectTreeSources(const std::string &root,
                        std::vector<std::string> &paths,
                        std::string *error);

/**
 * Run the enabled checks over @p paths. Serializer-completeness
 * resolves out-of-class write/read definitions across the whole
 * file set, so pass every file of interest in one call. Unreadable
 * files produce a "suppression"-style I/O diagnostic rather than
 * aborting the pass.
 */
Report lintFiles(const std::vector<std::string> &paths,
                 const Options &options);

/** "file:line: [check] message" — the one true diagnostic format. */
std::string formatDiagnostic(const Diagnostic &d);

} // namespace smarts::lint

#endif // SMARTS_LINT_LINT_HH
