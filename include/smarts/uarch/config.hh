/**
 * @file
 * MachineConfig: the full microarchitecture description consumed by
 * the detailed timing model, modeled after the paper's Table 2
 * 8-way and 16-way machines. Cache/L2 capacities are scaled down
 * (paper: 64KB L1s, 2/4MB L2) so the synthetic workloads' working
 * sets exercise every level the way SPEC2000 exercised the originals.
 */

#ifndef SMARTS_UARCH_CONFIG_HH
#define SMARTS_UARCH_CONFIG_HH

#include <cstdint>
#include <string>

#include "bpred/branch_unit.hh"
#include "mem/hierarchy.hh"
#include "util/binary_io.hh"

namespace smarts::uarch {

/** Per-event energy model (nanojoules), Wattch-style. */
struct EnergyParams
{
    double perInst = 0.40;     ///< decode/rename/execute/commit.
    double perCycle = 0.15;    ///< clock tree + leakage.
    double l1Access = 0.10;
    double l2Access = 0.60;
    double memAccess = 2.50;
    double bpredAccess = 0.02;
};

struct MachineConfig
{
    std::string name;

    // Core geometry.
    std::uint32_t width = 8;           ///< issue/commit width.
    std::uint32_t robSize = 128;
    std::uint32_t pipelineDepth = 14;  ///< mispredict penalty cycles.

    // Wrong-path modeling: after a mispredict the detailed front end
    // fetches this many sequential lines down the wrong path,
    // polluting the I-cache (paper Section 4.5).
    bool modelWrongPath = true;
    std::uint32_t wrongPathFetches = 4;

    // Stall overlap: fraction of a miss latency exposed to the
    // pipeline (the ROB hides the rest).
    double loadStallFactor = 0.55;
    double storeStallFactor = 0.12;

    mem::HierarchyConfig mem;
    bpred::BpredConfig bpred;
    EnergyParams energy;

    /** The paper's baseline 8-way out-of-order machine. */
    static MachineConfig
    eightWay()
    {
        MachineConfig c;
        c.name = "8-way";
        c.width = 8;
        c.robSize = 128;
        c.pipelineDepth = 14;
        c.wrongPathFetches = 4;
        c.mem.l1i = {32 * 1024, 2, 64, 1};
        c.mem.l1d = {32 * 1024, 4, 64, 2};
        c.mem.l2 = {256 * 1024, 8, 64, 12};
        c.mem.itlb = {48, 4096, 30};
        c.mem.dtlb = {64, 4096, 30};
        c.mem.memLatency = 80;
        c.bpred = {12, 512, 8};
        return c;
    }

    /** The aggressive 16-way machine (bigger everything, deeper pipe). */
    static MachineConfig
    sixteenWay()
    {
        MachineConfig c;
        c.name = "16-way";
        c.width = 16;
        c.robSize = 256;
        c.pipelineDepth = 20;
        c.wrongPathFetches = 8;
        c.loadStallFactor = 0.45;
        c.mem.l1i = {64 * 1024, 2, 64, 1};
        c.mem.l1d = {64 * 1024, 4, 64, 2};
        c.mem.l2 = {1024 * 1024, 8, 64, 16};
        c.mem.itlb = {64, 4096, 30};
        c.mem.dtlb = {128, 4096, 30};
        c.mem.memLatency = 80;
        c.bpred = {14, 2048, 16};
        c.energy.perInst = 0.55;
        c.energy.perCycle = 0.25;
        c.energy.l1Access = 0.14;
        c.energy.l2Access = 0.80;
        return c;
    }
};

/**
 * FNV-1a fingerprint of the parts of a MachineConfig that shape its
 * WARM STATE TRAJECTORY: cache/TLB geometries, the branch-unit
 * tables, and the wrong-path fetch model. Deliberately EXCLUDED are
 * everything only the timing bookkeeping reads — latencies, stall
 * factors, width/ROB/pipeline depth, and the energy model — because
 * warm-state transitions never depend on them: two configs that
 * differ only in those fields produce bit-identical checkpoints, so
 * one persisted library serves an entire latency/energy sweep. This
 * hash is the "config-geometry" component of a checkpoint-library
 * key (core/checkpoint.hh); loading refuses on mismatch rather than
 * silently mis-warming.
 */
inline std::uint64_t
warmGeometryHash(const MachineConfig &c)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    // Each field widened to u64 and folded little-endian — the same
    // FNV-1a the file format's checksum uses (util/binary_io.hh).
    auto mix = [&h](std::uint64_t v) {
        std::uint8_t bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
        h = util::fnv1a(bytes, sizeof bytes, h);
    };
    auto mixCache = [&mix](const mem::CacheConfig &cc) {
        mix(cc.sizeBytes);
        mix(cc.assoc);
        mix(cc.lineBytes);
    };
    auto mixTlb = [&mix](const mem::TlbConfig &tc) {
        mix(tc.entries);
        mix(tc.pageBytes);
    };
    mixCache(c.mem.l1i);
    mixCache(c.mem.l1d);
    mixCache(c.mem.l2);
    mixTlb(c.mem.itlb);
    mixTlb(c.mem.dtlb);
    mix(c.bpred.historyBits);
    mix(c.bpred.btbEntries);
    mix(c.bpred.rasEntries);
    mix(c.modelWrongPath ? 1 : 0);
    mix(c.wrongPathFetches);
    return h;
}

} // namespace smarts::uarch

#endif // SMARTS_UARCH_CONFIG_HH
