/**
 * @file
 * A compiled workload: SISA code, initial data image, and the
 * address-space layout the interpreter and caches share. Programs
 * are generated deterministically from a BenchmarkSpec, so every
 * session over the same spec replays the identical instruction
 * stream — the property systematic sampling and the full-stream
 * reference both depend on.
 */

#ifndef SMARTS_WORKLOADS_PROGRAM_HH
#define SMARTS_WORKLOADS_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "workloads/benchmark.hh"

namespace smarts::workloads {

/** Code is fetched from this byte address upward. */
constexpr std::uint32_t kCodeBase = 0x1000;

/** Data lives at this byte address; dataBytes is a power of two. */
constexpr std::uint32_t kDataBase = 0x0100'0000;

struct Program
{
    std::vector<std::uint32_t> code;  ///< one word per instruction.
    std::vector<std::uint32_t> data;  ///< word-indexed initial image.
    std::uint32_t dataBytes = 0;      ///< power-of-two footprint.
    std::uint32_t entryPc = kCodeBase;
};

/** Generate the program for a benchmark spec (deterministic). */
Program buildProgram(const BenchmarkSpec &spec);

} // namespace smarts::workloads

#endif // SMARTS_WORKLOADS_PROGRAM_HH
