/**
 * @file
 * The synthetic benchmark suite standing in for SPEC2000: named,
 * deterministic SISA instruction streams with distinct
 * microarchitectural personalities (branch-heavy, memory-bound,
 * phase-alternating, ...). Suites come in three scales so benches
 * can trade fidelity for runtime.
 */

#ifndef SMARTS_WORKLOADS_BENCHMARK_HH
#define SMARTS_WORKLOADS_BENCHMARK_HH

#include <cstdint>
#include <string>
#include <vector>

namespace smarts::workloads {

/** Stream-length scale: ~2M / ~12M / ~120M dynamic instructions. */
enum class Scale
{
    Mini,
    Small,
    Large,
};

/** The generator kernel behind a benchmark. */
enum class Kernel
{
    Sort,    ///< repeated refill + insertion sort: data-dep branches.
    Bsearch, ///< random-key binary search: mispredict-dominated.
    Fsm,     ///< table-driven state machine: dependent loads.
    Phase,   ///< alternating memory/ALU/branch phases: high V at large U.
    Stream,  ///< c[i] = a[i] + b[i] over L2-busting arrays.
    Chase,   ///< pointer chase over a permutation ring.
    Alu,     ///< register-only LCG mix: near the issue-width bound.
    Mix,     ///< random loads + stores + hard branches.
};

struct BenchmarkSpec
{
    std::string name;
    Kernel kernel = Kernel::Alu;
    std::uint32_t variant = 1;
    std::uint64_t seed = 1;
    Scale scale = Scale::Mini;
};

/** Approximate dynamic-instruction budget for a scale. */
std::uint64_t instructionBudget(Scale scale);

/** The 6-benchmark quick suite (one per major personality). */
std::vector<BenchmarkSpec> quickSuite(Scale scale);

/** The 12-benchmark standard suite (quick + second variants). */
std::vector<BenchmarkSpec> standardSuite(Scale scale);

/** Look up a benchmark by name at a scale; fatal if unknown. */
BenchmarkSpec findBenchmark(const std::string &name, Scale scale);

} // namespace smarts::workloads

#endif // SMARTS_WORKLOADS_BENCHMARK_HH
