/**
 * @file
 * ExperimentRunner: the batch engine for SMARTS experiment grids.
 * A batch is a vector of ExperimentSpecs — (benchmark, one or more
 * machine configs, sampling design) cells. Jobs are sharded across a
 * work-stealing ThreadPool; a spec with N > 1 configs runs as ONE
 * matched multi-config job whose single functional-warming stream
 * feeds all N timing models (amortizing the cost the paper's
 * Table 6 shows dominates sampled simulation).
 *
 * Determinism: every job derives its RNG seed from the spec and its
 * batch index alone (never from thread identity or submission
 * timing) and writes only its own result slot, so a batch's
 * estimates are bit-identical at any thread count.
 */

#ifndef SMARTS_EXEC_EXPERIMENT_HH
#define SMARTS_EXEC_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "core/sampler.hh"
#include "exec/thread_pool.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

namespace smarts::exec {

/** One experiment cell: benchmark x config set x sampling design. */
struct ExperimentSpec
{
    workloads::BenchmarkSpec benchmark;
    std::vector<uarch::MachineConfig> configs; ///< >1 => matched.
    core::SamplingConfig sampling;

    /**
     * Draw the sampling offset j uniformly from [0, interval) using
     * the job's deterministic RNG (the paper's random phase j).
     */
    bool randomizeOffset = false;

    /** Folded into the per-job RNG seed (for replicated designs). */
    std::uint64_t seedSalt = 0;
};

struct ExperimentResult
{
    std::size_t index = 0; ///< position in the submitted batch.
    core::MatchedEstimate estimate; ///< perConfig parallels configs.
    std::uint64_t rngSeed = 0; ///< the job's derived seed.
    double seconds = 0.0; ///< wall clock of this job alone.
};

class ExperimentRunner
{
  public:
    /** @p threads = 0 means one worker per hardware thread. */
    explicit ExperimentRunner(unsigned threads = 0);

    /**
     * Run every spec to completion; results are indexed like the
     * input batch regardless of scheduling order.
     */
    std::vector<ExperimentResult>
    run(const std::vector<ExperimentSpec> &specs);

    unsigned
    threadCount() const
    {
        return pool_.threadCount();
    }

    /** The deterministic seed job @p index of a batch would get. */
    static std::uint64_t jobSeed(const ExperimentSpec &spec,
                                 std::size_t index);

    /** The pool, for benches that shard non-sampling work too. */
    ThreadPool &
    pool()
    {
        return pool_;
    }

  private:
    ThreadPool pool_;
};

} // namespace smarts::exec

#endif // SMARTS_EXEC_EXPERIMENT_HH
