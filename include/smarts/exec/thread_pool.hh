/**
 * @file
 * ThreadPool: a work-stealing pool for sharding independent
 * simulation jobs across hardware threads. Each worker owns a deque;
 * it pops its own work LIFO (cache-warm) and steals FIFO from the
 * other workers when idle. Jobs must not throw. Scheduling order is
 * nondeterministic by design — determinism lives one level up:
 * every job writes only its own result slot and derives any
 * randomness from a seed that depends on the job alone, so a batch's
 * results are bit-identical at any thread count.
 */

#ifndef SMARTS_EXEC_THREAD_POOL_HH
#define SMARTS_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace smarts::exec {

class ThreadPool
{
  public:
    /** @p threads = 0 means one worker per hardware thread. */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains remaining work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job; pair with wait() to block on completion. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    unsigned
    threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Hardware concurrency, never reported as 0. */
    static unsigned hardwareThreads();

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> queue;
    };

    bool popOwn(std::size_t self, std::function<void()> &job);
    bool steal(std::size_t self, std::function<void()> &job);
    void workerLoop(std::size_t self);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex signalMutex_;
    std::condition_variable workSignal_;   ///< new work or shutdown.
    std::condition_variable idleSignal_;   ///< pending_ reached zero.
    std::uint64_t signalEpoch_ = 0;        ///< bumped per submit.
    std::size_t pending_ = 0;              ///< submitted, not finished.
    std::size_t nextQueue_ = 0;            ///< round-robin submit.
    bool stop_ = false;
};

/**
 * Run @p fn(0..n-1) across the pool and block until all complete.
 * Each index must touch only its own outputs.
 */
template <typename Fn>
void
parallelForIndexed(ThreadPool &pool, std::size_t n, Fn fn)
{
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([fn, i] { fn(i); });
    pool.wait();
}

} // namespace smarts::exec

#endif // SMARTS_EXEC_THREAD_POOL_HH
