/**
 * @file
 * MixSession: N ArchCores advancing in round-robin (one instruction
 * per program per round, in program order) over one SharedHierarchy,
 * with per-program "lane" accounting that charges TWO timing worlds
 * from the one architectural stream:
 *
 *  - the CO-RUN world, whose memory latencies come from the shared
 *    owner-tagged L2, and
 *  - the SOLO world, whose latencies come from the lane's shadow L2
 *    (a plain solo-config mem::Cache fed the identical L1-miss
 *    stream).
 *
 * With private L1s/TLBs and a private branch unit per lane, a
 * program's architectural stream and every front-end event inside
 * the co-run are identical to its solo run — so the solo world IS a
 * second timing pass of a true solo run, reusing the one functional-
 * warming stream (the tentpole's matched-pair QoS trick). The lane
 * accounting mirrors core::TimingModel's warm/warmDetailed/
 * detailedStep transitions term for term (same 48.16 fixed-point
 * increments, same charge order); tests/test_shared_mem.cc pins a
 * one-program mix bit-identical to a real solo SimSession run, so
 * the mirror cannot drift silently.
 *
 * Progress is counted in ROUNDS: after R complete rounds every
 * program has executed exactly R instructions, so a sampling unit of
 * U rounds measures the same U-instruction window of every program.
 * The stream ends when ANY program finishes (a partial round is not
 * counted).
 */

#ifndef SMARTS_MP_MIX_SESSION_HH
#define SMARTS_MP_MIX_SESSION_HH

#include <cstdint>
#include <vector>

#include "bpred/branch_unit.hh"
#include "core/arch.hh"
#include "core/timing.hh"
#include "mem/shared_hierarchy.hh"
#include "mp/mix.hh"
#include "uarch/config.hh"

namespace smarts::mp {

/** One program's measurements over a detailed segment, both worlds. */
struct MixLaneSegment
{
    std::uint64_t instructions = 0; ///< = rounds of the segment.
    std::uint64_t coCycles = 0;
    double coEnergyNj = 0.0;
    std::uint64_t soloCycles = 0;
    double soloEnergyNj = 0.0;
    std::uint64_t sharedAccesses = 0; ///< shared-L2 request delta.
    std::uint64_t sharedMisses = 0;
    std::uint64_t shadowAccesses = 0; ///< shadow-L2 request delta.
    std::uint64_t shadowMisses = 0;
};

/** One detailed segment of a mix: complete rounds + per-lane data. */
struct MixSegment
{
    std::uint64_t rounds = 0;
    std::vector<MixLaneSegment> per;
};

/**
 * One lane's serialized timing-world state: branch unit, both
 * worlds' fixed-point accumulators, the fetch-line dedup register
 * and the activity counters (the lane's memory state lives in
 * mem::SharedHierarchyState).
 */
struct MixLaneState
{
    bpred::BranchUnitState bpred;
    std::uint64_t coCyclesFx = 0;
    std::uint64_t coEnergyFx = 0;
    std::uint64_t soloCyclesFx = 0;
    std::uint64_t soloEnergyFx = 0;
    std::uint32_t lastFetchLine = ~0u;
    core::Activity activity;

    std::size_t
    byteSize() const
    {
        return bpred.byteSize() + 4 * sizeof(std::uint64_t) +
               sizeof(std::uint32_t) + sizeof(core::Activity);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        bpred.write(out);
        out.u64(coCyclesFx);
        out.u64(coEnergyFx);
        out.u64(soloCyclesFx);
        out.u64(soloEnergyFx);
        out.u32(lastFetchLine);
        out.u64(activity.branches);
        out.u64(activity.bpredLookups);
        out.u64(activity.bpredMispredicts);
        out.u64(activity.loads);
        out.u64(activity.stores);
    }

    void
    read(util::BinaryReader &in)
    {
        bpred.read(in);
        coCyclesFx = in.u64();
        coEnergyFx = in.u64();
        soloCyclesFx = in.u64();
        soloEnergyFx = in.u64();
        lastFetchLine = in.u32();
        activity.branches = in.u64();
        activity.bpredLookups = in.u64();
        activity.bpredMispredicts = in.u64();
        activity.loads = in.u64();
        activity.stores = in.u64();
    }
};

/** Full serialized co-run session state (checkpoint flavor 1). */
struct MixState
{
    std::vector<core::ArchState> archs;
    mem::SharedHierarchyState sharedMem;
    std::vector<MixLaneState> lanes;
    std::uint64_t rounds = 0;

    std::size_t
    byteSize() const
    {
        std::size_t total =
            sharedMem.byteSize() + sizeof(std::uint64_t);
        for (const core::ArchState &arch : archs)
            total += arch.byteSize();
        for (const MixLaneState &lane : lanes)
            total += lane.byteSize();
        return total;
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        out.u64(archs.size());
        for (const core::ArchState &arch : archs)
            arch.write(out);
        sharedMem.write(out);
        out.u64(lanes.size());
        for (const MixLaneState &lane : lanes)
            lane.write(out);
        out.u64(rounds);
    }

    void
    read(util::BinaryReader &in)
    {
        archs.resize(in.u64());
        for (core::ArchState &arch : archs)
            arch.read(in);
        sharedMem.read(in);
        lanes.resize(in.u64());
        for (MixLaneState &lane : lanes)
            lane.read(in);
        rounds = in.u64();
    }
};

class MixSession
{
  public:
    MixSession(const WorkloadMix &mix,
               const uarch::MachineConfig &config);

    /**
     * Execute up to @p maxRounds rounds functionally, warming per
     * @p mode. Returns the number of COMPLETE rounds executed (less
     * than @p maxRounds only at end of stream).
     */
    std::uint64_t fastForward(std::uint64_t maxRounds,
                              core::WarmingMode mode);

    /** Execute up to @p maxRounds rounds with full dual-world timing. */
    MixSegment detailedRun(std::uint64_t maxRounds);

    /**
     * Execute up to @p maxRounds rounds applying detailedRun's EXACT
     * state transitions without the timing bookkeeping — the
     * checkpoint capture pass's fast path (cf.
     * SimSession::warmAsDetailed).
     */
    std::uint64_t warmAsDetailed(std::uint64_t maxRounds);

    void saveState(MixState &state) const;
    void restoreState(const MixState &state);

    /** True once any program's stream ended. */
    bool
    finished() const
    {
        return finished_;
    }

    /** Complete rounds executed = instructions per program. */
    std::uint64_t
    roundCount() const
    {
        return rounds_;
    }

    /** Alias so generic schedule code can treat rounds as positions. */
    std::uint64_t
    instCount() const
    {
        return rounds_;
    }

    std::size_t
    programCount() const
    {
        return cores_.size();
    }

    const uarch::MachineConfig &
    config() const
    {
        return config_;
    }

    const mem::SharedHierarchy &
    hierarchy() const
    {
        return shared_;
    }

  private:
    /**
     * Per-program timing lane: one branch unit plus TWO accumulator
     * pairs charged in lockstep with core::TimingModel's arithmetic.
     */
    struct Lane
    {
        explicit Lane(const bpred::BpredConfig &config)
            : bpred(config)
        {
        }

        bpred::BranchUnit bpred;
        std::uint64_t coCyclesFx = 0;
        std::uint64_t coEnergyFx = 0;
        std::uint64_t soloCyclesFx = 0;
        std::uint64_t soloEnergyFx = 0;
        std::uint32_t lastFetchLine = ~0u;
        core::Activity activity;
    };

    void warmStep(std::uint32_t p, const core::StepInfo &info,
                  bool warmCaches, bool warmBpred);
    void warmDetailedStep(std::uint32_t p,
                          const core::StepInfo &info);
    void detailedStep(std::uint32_t p, const core::StepInfo &info);

    /**
     * One round: step every core in program order, applying
     * @p perStep to each (program, StepInfo). Returns false (without
     * counting the round) when any core's stream ends mid-round.
     */
    template <typename PerStep>
    bool
    round(PerStep &&perStep)
    {
        core::StepInfo info;
        for (std::uint32_t p = 0; p < cores_.size(); ++p) {
            if (!cores_[p].step(info)) {
                finished_ = true;
                return false;
            }
            perStep(p, info);
        }
        ++rounds_;
        return true;
    }

    static std::uint64_t
    toFixed(double v)
    {
        return static_cast<std::uint64_t>(
            std::llround(v * core::TimingModel::kFixedOne));
    }

    /** Exact (a * b) >> kFixedShift (cf. TimingModel::mulFixed). */
    static std::uint64_t
    mulFixed(std::uint64_t a, std::uint64_t b)
    {
        const std::uint64_t hi =
            b >> core::TimingModel::kFixedShift;
        const std::uint64_t lo =
            b & ((1ull << core::TimingModel::kFixedShift) - 1);
        return a * hi + ((a * lo) >> core::TimingModel::kFixedShift);
    }

    uarch::MachineConfig config_;
    std::vector<core::ArchCore> cores_;
    mem::SharedHierarchy shared_;
    std::vector<Lane> lanes_;
    std::uint64_t rounds_ = 0;
    bool finished_ = false;

    // Per-event fixed-point increments (cf. TimingModel's ctor).
    std::uint64_t invWidthFx_ = 0;
    std::uint64_t loadStallFx_ = 0;
    std::uint64_t storeStallFx_ = 0;
    std::uint64_t mispredictFx_ = 0;
    std::uint64_t ePerInstFx_ = 0;
    std::uint64_t ePerCycleFx_ = 0;
    std::uint64_t eL1Fx_ = 0;
    std::uint64_t eL2Fx_ = 0;
    std::uint64_t eMemFx_ = 0;
    std::uint64_t eBpredFx_ = 0;
    std::uint32_t fetchLineShift_ = 6;
};

} // namespace smarts::mp

#endif // SMARTS_MP_MIX_SESSION_HH
