/**
 * @file
 * Workload mixes and per-program QoS estimates for multi-programmed
 * co-run sampling (the ROADMAP's SMT/co-run scenario tier). A
 * WorkloadMix names 2+ benchmarks co-running over one shared memory
 * hierarchy (mem/shared_hierarchy.hh); MixEstimate carries, per
 * program, a co-run SmartsEstimate AND a would-be-solo
 * SmartsEstimate measured from the SAME sampling units via the
 * shadow-L2 second timing pass — the paper's matched-pair trick
 * (core/sampler.hh MatchedEstimate) applied to workload mixes
 * instead of machine configs. The per-unit (co - solo) CPI deltas
 * give a paired confidence interval on the slowdown that is far
 * tighter than combining independent solo and co-run runs.
 */

#ifndef SMARTS_MP_MIX_HH
#define SMARTS_MP_MIX_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/sampler.hh"
#include "mem/shared_hierarchy.hh"
#include "stats/confidence.hh"
#include "stats/online_stats.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

namespace smarts::mp {

/** 2+ programs co-running over one shared hierarchy. */
struct WorkloadMix
{
    std::string name; ///< "<a>+<b>": derived from the programs.
    std::vector<workloads::BenchmarkSpec> programs;
    mem::PartitionPolicy policy = mem::PartitionPolicy::Shared;

    static WorkloadMix
    of(std::vector<workloads::BenchmarkSpec> programs,
       mem::PartitionPolicy policy = mem::PartitionPolicy::Shared)
    {
        WorkloadMix mix;
        for (const workloads::BenchmarkSpec &spec : programs) {
            if (!mix.name.empty())
                mix.name += '+';
            mix.name += spec.name;
        }
        mix.programs = std::move(programs);
        mix.policy = policy;
        return mix;
    }
};

/**
 * One program's matched co-run/solo estimate: both worlds observed
 * on the identical sampling units of the identical instruction
 * stream, plus the per-unit CPI-difference statistics and the
 * shared/shadow L2 miss counters behind the solo-miss-rate claim.
 */
struct MixProgramEstimate
{
    core::SmartsEstimate coRun; ///< the co-run (shared-L2) world.
    core::SmartsEstimate solo;  ///< the shadow (solo-L2) world.

    /** Per-unit (co-run CPI - solo CPI): the matched pairs. */
    stats::OnlineStats cpiDelta;

    // Shared vs shadow L2 traffic over the measured units: the
    // per-program solo-miss-rate estimate the shadow tags exist for.
    std::uint64_t sharedAccesses = 0;
    std::uint64_t sharedMisses = 0;
    std::uint64_t shadowAccesses = 0;
    std::uint64_t shadowMisses = 0;

    /** QoS slowdown: co-run CPI over would-be-solo CPI (>= 1). */
    double
    slowdown() const
    {
        return solo.cpi() != 0.0 ? coRun.cpi() / solo.cpi() : 0.0;
    }

    /** Estimated L2 miss rate the program would see running alone. */
    double
    soloMissRate() const
    {
        return shadowAccesses ? static_cast<double>(shadowMisses) /
                                    static_cast<double>(shadowAccesses)
                              : 0.0;
    }

    /** L2 miss rate the program actually sees inside the co-run. */
    double
    coMissRate() const
    {
        return sharedAccesses ? static_cast<double>(sharedMisses) /
                                    static_cast<double>(sharedAccesses)
                              : 0.0;
    }

    /** Absolute CI half-width on the mean CPI delta at @p level. */
    double
    deltaCiAbs(double level) const
    {
        return stats::zScore(level) * cpiDelta.meanError();
    }

    /**
     * Matched-pair CI half-width on the slowdown, relative to the
     * solo CPI — the number to compare against an unmatched
     * two-run CI in the same units.
     */
    double
    deltaCiRelative(double level) const
    {
        return solo.cpi() != 0.0 ? deltaCiAbs(level) / solo.cpi()
                                 : 0.0;
    }

    /**
     * What INDEPENDENT solo and co-run runs would put on the same
     * delta, relative to the solo CPI: the root-sum-square of the
     * two per-world absolute half-widths (mirrors
     * core::MatchedEstimate::independentDeltaCiRelative).
     */
    double
    independentDeltaCiRelative(double level) const
    {
        if (solo.cpi() == 0.0)
            return 0.0;
        const double a =
            solo.cpiConfidenceInterval(level) * solo.cpi();
        const double b =
            coRun.cpiConfidenceInterval(level) * coRun.cpi();
        return std::sqrt(a * a + b * b) / solo.cpi();
    }

    /**
     * Matched-pair CI half-width on the slowdown ITSELF, relative
     * to the slowdown — the delta method on the ratio of per-unit
     * CPI means. The slowdown is a ratio, so absolute CPI deltas
     * are the wrong pairs for phased programs (phase magnitude
     * never cancels); the ratio CI pairs through the per-unit
     * co/solo covariance instead, which is recovered exactly from
     * the three accumulated variances:
     * var(co - solo) = var(co) + var(solo) - 2 cov.
     */
    double
    slowdownCiRelative(double level) const
    {
        const double n = static_cast<double>(cpiDelta.count());
        const double mc = coRun.cpiStats.mean();
        const double ms = solo.cpiStats.mean();
        if (n < 2.0 || mc == 0.0 || ms == 0.0)
            return 0.0;
        const double vc = coRun.cpiStats.variance();
        const double vs = solo.cpiStats.variance();
        const double cov =
            0.5 * (vc + vs - cpiDelta.variance());
        const double rel2 = vc / (mc * mc) + vs / (ms * ms) -
                            2.0 * cov / (mc * ms);
        return stats::zScore(level) *
               std::sqrt(std::max(0.0, rel2) / n);
    }

    /**
     * The same delta-method slowdown CI with the covariance term
     * dropped: what independent solo and co-run runs over the same
     * number of units would put on the ratio. slowdownCiRelative /
     * independentSlowdownCiRelative is therefore a pure measure of
     * the matched-pair payoff — same estimator, same units, the
     * pairing is the only difference.
     */
    double
    independentSlowdownCiRelative(double level) const
    {
        const double n = static_cast<double>(cpiDelta.count());
        const double mc = coRun.cpiStats.mean();
        const double ms = solo.cpiStats.mean();
        if (n < 2.0 || mc == 0.0 || ms == 0.0)
            return 0.0;
        const double rel2 =
            coRun.cpiStats.variance() / (mc * mc) +
            solo.cpiStats.variance() / (ms * ms);
        return stats::zScore(level) * std::sqrt(rel2 / n);
    }

    /**
     * Bit-exact fingerprint: both worlds' SmartsEstimate
     * fingerprints, the delta statistics, and the L2 counters —
     * the ONE definition behind the mix determinism contracts
     * (tests/test_mix.cc, the bench mix section's bitwise verdict).
     */
    std::vector<std::uint64_t>
    fingerprint() const
    {
        auto bits = [](double v) {
            std::uint64_t b;
            std::memcpy(&b, &v, sizeof b);
            return b;
        };
        std::vector<std::uint64_t> fp = coRun.fingerprint();
        const std::vector<std::uint64_t> soloFp = solo.fingerprint();
        fp.insert(fp.end(), soloFp.begin(), soloFp.end());
        fp.push_back(cpiDelta.count());
        fp.push_back(bits(cpiDelta.mean()));
        fp.push_back(bits(cpiDelta.variance()));
        fp.push_back(sharedAccesses);
        fp.push_back(sharedMisses);
        fp.push_back(shadowAccesses);
        fp.push_back(shadowMisses);
        return fp;
    }
};

/** The sampled estimate of a whole mix: one entry per program. */
struct MixEstimate
{
    std::vector<MixProgramEstimate> perProgram;

    /** Concatenated per-program fingerprints (bit-identity tests). */
    std::vector<std::uint64_t>
    fingerprint() const
    {
        std::vector<std::uint64_t> fp;
        fp.push_back(perProgram.size());
        for (const MixProgramEstimate &p : perProgram) {
            const std::vector<std::uint64_t> one = p.fingerprint();
            fp.insert(fp.end(), one.begin(), one.end());
        }
        return fp;
    }
};

/**
 * Warm-geometry hash of a CO-RUN: the machine's solo geometry hash
 * (uarch::warmGeometryHash — the private lanes and the shadow L2s
 * warm exactly that state) folded with everything else that shapes
 * shared warm state: the program count, the partitioning policy,
 * and every program's full identity (the shared L2's contents
 * depend on every co-runner's stream, not just this key's
 * benchmark field).
 */
inline std::uint64_t
mixGeometryHash(const uarch::MachineConfig &machine,
                const WorkloadMix &mix)
{
    std::uint64_t h = uarch::warmGeometryHash(machine);
    auto mixIn = [&h](std::uint64_t v) {
        std::uint8_t bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
        h = util::fnv1a(bytes, sizeof bytes, h);
    };
    mixIn(mix.programs.size());
    mixIn(static_cast<std::uint64_t>(mix.policy));
    for (const workloads::BenchmarkSpec &spec : mix.programs) {
        h = util::fnv1a(
            reinterpret_cast<const std::uint8_t *>(spec.name.data()),
            spec.name.size(), h);
        mixIn(static_cast<std::uint64_t>(spec.kernel));
        mixIn(spec.variant);
        mixIn(spec.seed);
        mixIn(static_cast<std::uint64_t>(spec.scale));
    }
    return h;
}

/**
 * Store key of a mix's checkpoint library: a synthetic benchmark
 * spec named after the mix (its own store subdirectory) with the
 * co-run geometry hash — which folds every program's identity and
 * the policy, so a mis-keyed load refuses exactly as solo libraries
 * do. The sampling config is in ROUNDS (one instruction per program
 * per round).
 */
inline core::LibraryKey
mixKey(const WorkloadMix &mix, const uarch::MachineConfig &machine,
       const core::SamplingConfig &sampling)
{
    core::LibraryKey key;
    key.benchmark.name = "mix-" + mix.name;
    key.benchmark.kernel = mix.programs.empty()
                               ? workloads::Kernel::Alu
                               : mix.programs.front().kernel;
    key.benchmark.variant =
        static_cast<std::uint32_t>(mix.programs.size());
    key.benchmark.seed =
        mix.programs.empty() ? 0 : mix.programs.front().seed;
    key.benchmark.scale = mix.programs.empty()
                              ? workloads::Scale::Mini
                              : mix.programs.front().scale;
    key.geometryHash = mixGeometryHash(machine, mix);
    key.sampling = sampling;
    return key;
}

} // namespace smarts::mp

#endif // SMARTS_MP_MIX_HH
