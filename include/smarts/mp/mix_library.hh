/**
 * @file
 * MixLibrary: the checkpoint library of a CO-RUN (mp::MixSession)
 * sampling run — the mix analogue of core::CheckpointLibrary, with
 * positions counted in ROUNDS. It reuses the solo machinery
 * wholesale: core::CheckpointLibrary::planShards/validatePlan plan
 * the round grid (a round is to a mix what an instruction is to a
 * solo run), core::detail::captureSchedule streams the capture pass,
 * and the on-disk container is the same versioned `.smck` format
 * (docs/checkpoint-format.md) with flavor byte 1 — so one
 * CheckpointStore serves both tiers, and a mis-flavored load refuses
 * by name from either loader.
 */

#ifndef SMARTS_MP_MIX_LIBRARY_HH
#define SMARTS_MP_MIX_LIBRARY_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "mp/mix_session.hh"

namespace smarts::mp {

/** Full warm co-run state, resumable into a same-mix MixSession. */
struct MixCheckpoint
{
    MixState state;

    /** Round position the checkpoint resumes at. */
    std::uint64_t position = 0;

    /** First measured grid index of the shard this resume feeds. */
    std::uint64_t unitIndex = 0;

    std::size_t
    byteSize() const
    {
        return state.byteSize() + 2 * sizeof(std::uint64_t);
    }

    /** Field order is normative: docs/checkpoint-format.md. */
    void
    write(util::BinaryWriter &out) const
    {
        out.u64(position);
        out.u64(unitIndex);
        state.write(out);
    }

    void
    read(util::BinaryReader &in)
    {
        position = in.u64();
        unitIndex = in.u64();
        state.read(in);
    }
};

/**
 * The shard plan plus every captured co-run resume checkpoint of one
 * (mix, machine, sampling design) — same lifecycle and same refusal
 * discipline as core::CheckpointLibrary.
 */
class MixLibrary
{
  public:
    /** Called as checkpoint @p shard becomes available (shard >= 1). */
    using CheckpointSink =
        std::function<void(std::size_t shard, MixCheckpoint &&)>;

    /**
     * Stream @p session (fresh, at round 0) through the serial mix
     * sampling schedule using state-equivalent warming, invoking
     * @p sink the moment each shard's resume state is reached
     * (core::detail::captureSchedule over rounds).
     */
    static void capture(MixSession &session,
                        const core::SamplingConfig &config,
                        const std::vector<core::ShardSpec> &plan,
                        const CheckpointSink &sink);

    /** Capture every checkpoint of @p plan into a reusable library. */
    static MixLibrary build(MixSession &session,
                            const core::SamplingConfig &config,
                            const std::vector<core::ShardSpec> &plan);

    /** An empty library whose checkpoints arrive via record(). */
    static MixLibrary prepare(const core::SamplingConfig &config,
                              const std::vector<core::ShardSpec> &plan);

    /** Store shard @p shard's captured checkpoint (copied). */
    void
    record(std::size_t shard, const MixCheckpoint &cp)
    {
        checkpoints_[shard] = cp;
    }

    /** True when every resume slot (shard >= 1) holds a checkpoint. */
    bool
    complete() const
    {
        for (std::size_t s = 1; s < checkpoints_.size(); ++s)
            if (checkpoints_[s].state.archs.empty())
                return false;
        return !checkpoints_.empty();
    }

    /**
     * Serialize under (@p mix, @p key) — @p key should be
     * mixKey(mix, machine, sampling) — and publish atomically at
     * @p path. False with @p error set on filesystem failure.
     */
    bool save(const WorkloadMix &mix, const core::LibraryKey &key,
              const std::string &path, std::string *error = nullptr,
              bool createDirs = true) const;

    /**
     * Load a mix library from @p path, refusing — nullopt plus a
     * diagnostic in @p error — on anything short of an exact match:
     * corrupt file, wrong version, a solo-flavor payload, a program
     * list or partition policy differing from @p expectMix, or a key
     * mismatch against @p expect.
     */
    static std::optional<MixLibrary>
    load(const std::string &path, const WorkloadMix &expectMix,
         const core::LibraryKey &expect,
         std::string *error = nullptr);

    /** Serialize to @p out (save() = serialize + checksummed file). */
    void serialize(const WorkloadMix &mix,
                   const core::LibraryKey &key,
                   util::BinaryWriter &out) const;

    MixLibrary() = default;

    const core::SamplingConfig &
    samplingConfig() const
    {
        return config_;
    }

    const std::vector<core::ShardSpec> &
    plan() const
    {
        return plan_;
    }

    const MixCheckpoint &
    at(std::size_t shard) const
    {
        return checkpoints_[shard];
    }

    std::size_t
    shardCount() const
    {
        return plan_.size();
    }

    std::size_t
    byteSize() const
    {
        std::size_t total = 0;
        for (const MixCheckpoint &cp : checkpoints_)
            total += cp.byteSize();
        return total;
    }

  private:
    core::SamplingConfig config_;
    std::vector<core::ShardSpec> plan_;
    std::vector<MixCheckpoint> checkpoints_;
};

} // namespace smarts::mp

#endif // SMARTS_MP_MIX_LIBRARY_HH
