/**
 * @file
 * MixSampler: the U/W/k systematic sampling loop applied to a co-run
 * (mp::MixSession), producing a MixEstimate — per program, a co-run
 * AND a would-be-solo SmartsEstimate from the SAME sampling units,
 * with matched-pair QoS statistics. Positions are in ROUNDS (one
 * instruction per program per round), so the solo world's schedule
 * maps one-to-one onto the schedule a true solo run of the same
 * U/W/k design executes in instructions — the bit-exactness claim
 * tests/test_shared_mem.cc pins.
 *
 * Execution modes mirror core::SystematicSampler: serial run(),
 * checkpoint-sharded runSharded() (cold-pipelined, prebuilt
 * MixLibrary, or store-backed through the generic
 * CheckpointStore::loadEntry/publishEntry hooks), all folding
 * per-unit observations in stream order so every mode is
 * bit-identical to the serial run at any thread count
 * (tests/test_mix.cc).
 */

#ifndef SMARTS_MP_MIX_SAMPLER_HH
#define SMARTS_MP_MIX_SAMPLER_HH

#include <cstdint>
#include <vector>

#include "core/sampler.hh"
#include "mp/mix.hh"
#include "mp/mix_library.hh"
#include "mp/mix_session.hh"

namespace smarts::exec {
class ThreadPool;
} // namespace smarts::exec

namespace smarts::core {
class CheckpointStore;
} // namespace smarts::core

namespace smarts::mp {

/** One program's observations of one measured unit, both worlds. */
struct MixLaneObservation
{
    double coCpi = 0.0;
    double coEpi = 0.0;
    double soloCpi = 0.0;
    double soloEpi = 0.0;
    std::uint64_t sharedAccesses = 0;
    std::uint64_t sharedMisses = 0;
    std::uint64_t shadowAccesses = 0;
    std::uint64_t shadowMisses = 0;
};

/** One measured unit: every program observed the same round window. */
struct MixUnitObservation
{
    std::vector<MixLaneObservation> per;
};

/**
 * Raw results of one contiguous slice of the mix sampling loop —
 * everything foldSlice() accumulates, verbatim, so folding slices
 * in shard order reproduces the serial run bit for bit (the same
 * contract as core::SliceResult). Counters are in rounds.
 */
struct MixSliceResult
{
    std::vector<MixUnitObservation> obs; ///< stream order.
    std::uint64_t measured = 0;
    std::uint64_t warmed = 0;
    std::uint64_t dropped = 0;
    std::uint64_t endPos = 0; ///< session round position at slice end.
};

class MixSampler
{
  public:
    MixSampler(const WorkloadMix &mix,
               const uarch::MachineConfig &machine,
               const core::SamplingConfig &sampling);

    /** Fresh co-run session at round 0. */
    MixSession makeSession() const;

    /**
     * The mix's dynamic stream length in ROUNDS (= the shortest
     * program's dynamic instruction count): one functional pass,
     * the same contract solo streamLength estimation has.
     */
    std::uint64_t measureStreamLength() const;

    /** Serial run to end of stream, sampling systematically. */
    MixEstimate run() const;

    /**
     * Checkpoint-sharded run, cold: plan the round grid, stream the
     * capture pass, execute shards on @p pool as their checkpoints
     * materialize, fold in shard order — bit-identical to run() at
     * any shard and thread count.
     */
    MixEstimate runSharded(std::uint64_t streamLength,
                           std::size_t shards,
                           exec::ThreadPool &pool) const;

    /** Sharded run resuming from a prebuilt MixLibrary (no capture). */
    MixEstimate runSharded(const MixLibrary &library,
                           exec::ThreadPool &pool) const;

    /**
     * Store-backed sharded run: consult @p store under
     * mixKey(mix, machine, sampling) before capturing; on a miss,
     * run cold and persist the captured library (flavor-1 `.smck`).
     */
    MixEstimate runSharded(std::uint64_t streamLength,
                           std::size_t shards,
                           exec::ThreadPool &pool,
                           core::CheckpointStore &store) const;

    /** One shard's slice (public so tests can pin slice semantics). */
    MixSliceResult runSlice(MixSession &session,
                            const core::ShardSpec &shard) const;

    /**
     * Accumulate a slice by replaying per-unit observations in
     * stream order (replay, never OnlineStats::merge — the
     * bit-identity contract). @p est must have one perProgram entry
     * per lane. Slices MUST fold in shard (stream) order.
     */
    static void foldSlice(MixEstimate &est,
                          const MixSliceResult &slice);

    const core::SamplingConfig &
    samplingConfig() const
    {
        return sampling_;
    }

    const WorkloadMix &
    mix() const
    {
        return mix_;
    }

  private:
    MixEstimate runShardedCold(std::uint64_t streamLength,
                               std::size_t shards,
                               exec::ThreadPool &pool,
                               MixLibrary *collect) const;

    MixEstimate emptyEstimate() const;

    WorkloadMix mix_;
    uarch::MachineConfig machine_;
    core::SamplingConfig sampling_;
};

/**
 * Sample @p mix on @p machine with @p sampling: serial when
 * @p threads <= 1, checkpoint-sharded otherwise (the stream length
 * comes from one functional pass). The estimate is bit-identical at
 * every thread count.
 */
MixEstimate runMix(const WorkloadMix &mix,
                   const uarch::MachineConfig &machine,
                   const core::SamplingConfig &sampling,
                   std::size_t threads = 1);

/**
 * Store-backed runMix: resume the capture from @p store when a
 * flavor-1 library is persisted for the key, else capture and
 * persist. Same bytes either way.
 */
MixEstimate estimateMix(const WorkloadMix &mix,
                        const uarch::MachineConfig &machine,
                        const core::SamplingConfig &sampling,
                        std::size_t threads,
                        core::CheckpointStore &store);

} // namespace smarts::mp

#endif // SMARTS_MP_MIX_SAMPLER_HH
