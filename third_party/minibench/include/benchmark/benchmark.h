/**
 * @file
 * minibench: a minimal, header-only, API-compatible subset of
 * google-benchmark, used only when the real library is not
 * installed (see bench/CMakeLists.txt). Supports the pieces
 * bench_micro_components.cc uses: State iteration, items
 * processed, labels, DoNotOptimize, BENCHMARK()->Unit() and
 * BENCHMARK_MAIN(). Timing is adaptive: batches grow until a
 * benchmark has run for ~0.3 s.
 */

#ifndef SMARTS_MINIBENCH_BENCHMARK_H
#define SMARTS_MINIBENCH_BENCHMARK_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace benchmark {

enum TimeUnit
{
    kNanosecond,
    kMicrosecond,
    kMillisecond,
    kSecond,
};

class State
{
  public:
    explicit State(std::int64_t iterations)
        : max_iterations(iterations)
    {
    }

    /**
     * Non-trivially-destructible value type so `for (auto _ : state)`
     * does not trip -Wunused-variable.
     */
    struct Value
    {
        ~Value() {}
    };

    struct iterator
    {
        std::int64_t left;

        bool
        operator!=(const iterator &other) const
        {
            return left != other.left;
        }

        iterator &
        operator++()
        {
            --left;
            return *this;
        }

        Value
        operator*() const
        {
            return Value();
        }
    };

    iterator
    begin()
    {
        return {max_iterations};
    }

    iterator
    end()
    {
        return {0};
    }

    void
    SetItemsProcessed(std::int64_t items)
    {
        items_ = items;
    }

    void
    SetLabel(const std::string &label)
    {
        label_ = label;
    }

    std::int64_t
    iterations() const
    {
        return max_iterations;
    }

    std::int64_t max_iterations;
    std::int64_t items_ = 0;
    std::string label_;
};

template <class T>
inline void
DoNotOptimize(T const &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

template <class T>
inline void
DoNotOptimize(T &value)
{
    asm volatile("" : "+r,m"(value) : : "memory");
}

namespace internal {

class Benchmark
{
  public:
    Benchmark(std::string name, void (*fn)(State &))
        : name_(std::move(name)), fn_(fn)
    {
    }

    Benchmark *
    Unit(TimeUnit unit)
    {
        unit_ = unit;
        return this;
    }

    void
    run() const
    {
        using clock = std::chrono::steady_clock;
        std::int64_t iterations = 1;
        double seconds = 0.0;
        std::int64_t items = 0;
        std::string label;
        for (;;) {
            State state(iterations);
            const auto start = clock::now();
            fn_(state);
            seconds =
                std::chrono::duration<double>(clock::now() - start)
                    .count();
            items = state.items_;
            label = state.label_;
            if (seconds >= 0.3 || iterations >= (1ll << 30))
                break;
            iterations *= 4;
        }
        const double perIter =
            seconds / static_cast<double>(iterations);
        double shown = perIter;
        const char *suffix = "s";
        switch (unit_) {
          case kNanosecond:
            shown = perIter * 1e9;
            suffix = "ns";
            break;
          case kMicrosecond:
            shown = perIter * 1e6;
            suffix = "us";
            break;
          case kMillisecond:
            shown = perIter * 1e3;
            suffix = "ms";
            break;
          case kSecond:
            break;
        }
        std::printf("%-28s %12.3f %s/iter", name_.c_str(), shown,
                    suffix);
        if (items > 0 && seconds > 0)
            std::printf("  %10.2f Mitems/s",
                        static_cast<double>(items) / seconds / 1e6);
        if (!label.empty())
            std::printf("  [%s]", label.c_str());
        std::printf("\n");
        std::fflush(stdout);
    }

  private:
    std::string name_;
    void (*fn_)(State &);
    TimeUnit unit_ = kNanosecond;
};

inline std::vector<Benchmark *> &
registry()
{
    static std::vector<Benchmark *> list;
    return list;
}

inline Benchmark *
RegisterBenchmark(const char *name, void (*fn)(State &))
{
    auto *bench = new Benchmark(name, fn);
    registry().push_back(bench);
    return bench;
}

inline int
RunAll()
{
    std::printf("minibench (google-benchmark shim): %zu benchmarks\n",
                registry().size());
    for (const Benchmark *bench : registry())
        bench->run();
    return 0;
}

} // namespace internal

} // namespace benchmark

#define MINIBENCH_CONCAT2(a, b) a##b
#define MINIBENCH_CONCAT(a, b) MINIBENCH_CONCAT2(a, b)

#define BENCHMARK(fn)                                                  \
    static ::benchmark::internal::Benchmark *MINIBENCH_CONCAT(        \
        minibench_reg_, __LINE__) =                                    \
        ::benchmark::internal::RegisterBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                                               \
    int main()                                                         \
    {                                                                  \
        return ::benchmark::internal::RunAll();                        \
    }

#endif // SMARTS_MINIBENCH_BENCHMARK_H
