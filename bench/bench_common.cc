#include "bench_common.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/logging.hh"

namespace smarts::bench {

BenchOptions
parseOptions(int argc, char **argv, bool default_quick,
             const std::string &default_csv)
{
    BenchOptions opt;
    opt.quickSuite = default_quick;
    opt.csvPath = default_csv;
    opt.argv0 = argc > 0 ? argv[0] : "";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0
                       ? arg.c_str() + std::strlen(prefix)
                       : nullptr;
        };
        if (const char *v = value("--scale=")) {
            if (!std::strcmp(v, "mini"))
                opt.scale = workloads::Scale::Mini;
            else if (!std::strcmp(v, "small"))
                opt.scale = workloads::Scale::Small;
            else if (!std::strcmp(v, "large"))
                opt.scale = workloads::Scale::Large;
            else
                SMARTS_FATAL("unknown scale '", v, "'");
        } else if (const char *v2 = value("--suite=")) {
            opt.quickSuite = !std::strcmp(v2, "quick");
        } else if (const char *v3 = value("--machine=")) {
            opt.runEight =
                !std::strcmp(v3, "8") || !std::strcmp(v3, "both");
            opt.runSixteen =
                !std::strcmp(v3, "16") || !std::strcmp(v3, "both");
        } else if (const char *v4 = value("--csv=")) {
            opt.csvPath = v4;
        } else if (const char *v5 = value("--section=")) {
            opt.section = v5;
        } else if (const char *v6 = value("--store=")) {
            opt.storePath = v6;
        } else if (const char *v7 = value("--runner-bin=")) {
            opt.runnerBin = v7;
        } else if (const char *v8 = value("--json=")) {
            opt.jsonPath = v8;
        } else if (arg == "--benchmark_format" ||
                   arg.rfind("--benchmark", 0) == 0) {
            // Tolerate google-benchmark-style flags when invoked by
            // generic runners.
        } else {
            SMARTS_FATAL("unknown flag '", arg,
                         "' (supported: --scale=, --suite=, "
                         "--machine=, --csv=, --section=, "
                         "--store=, --runner-bin=, --json=)");
        }
    }
    return opt;
}

std::vector<uarch::MachineConfig>
machines(const BenchOptions &opt)
{
    std::vector<uarch::MachineConfig> configs;
    if (opt.runEight)
        configs.push_back(uarch::MachineConfig::eightWay());
    if (opt.runSixteen)
        configs.push_back(uarch::MachineConfig::sixteenWay());
    return configs;
}

std::string
runnerBinary(const BenchOptions &opt)
{
    if (!opt.runnerBin.empty())
        return opt.runnerBin;
    // The build puts bench/ and tools/ side by side.
    return (std::filesystem::path(opt.argv0).parent_path() /
            ".." / "tools" / "smarts_runner")
        .string();
}

std::uint64_t
recommendedW(const uarch::MachineConfig &config)
{
    return config.name == "16-way" ? 4000 : 2000;
}

void
banner(const std::string &title, const BenchOptions &opt)
{
    std::printf("=== %s ===\n", title.c_str());
    std::printf("suite: %s, scale: %s\n\n",
                opt.quickSuite ? "quick" : "standard",
                opt.scaleName());
    std::fflush(stdout);
}

void
emit(const TextTable &table, const BenchOptions &opt)
{
    std::printf("%s\n", table.toString().c_str());
    if (!opt.csvPath.empty()) {
        table.writeCsv(opt.csvPath);
        std::printf("csv: %s\n", opt.csvPath.c_str());
    }
    std::fflush(stdout);
}

} // namespace smarts::bench
