/**
 * @file
 * Figure 7 reproduction: energy-per-instruction estimated by SMARTS
 * (8-way, initial sample), actual error vs the full-stream reference
 * and the predicted 99.7% confidence interval.
 *
 * Paper shape to match: EPI confidence intervals are tighter than
 * the CPI ones (less variability in EPI); actual errors within the
 * interval except where warming bias dominates (paper's gap case);
 * average |error| ~0.59%.
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>

#include "bench_common.hh"
#include "core/checkpoint_store.hh"
#include "core/sampler.hh"
#include "exec/thread_pool.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(
        argc, argv, /*default_quick=*/false, "fig7_epi_estimates.csv");
    banner("Figure 7: SMARTS EPI estimates (8-way)", opt);

    const auto config = uarch::MachineConfig::eightWay();
    core::ReferenceRunner runner(opt.scale, config);

    // --store= runs every estimate store-backed and sharded:
    // bit-identical to the serial path by contract, but resuming
    // from persisted warm state — a shipped store makes this bench
    // capture-free too.
    std::optional<core::CheckpointStore> store;
    std::optional<exec::ThreadPool> pool;
    if (!opt.storePath.empty()) {
        store.emplace(opt.storePath);
        pool.emplace();
    }

    TextTable table({"benchmark", "ref EPI (nJ)", "est EPI (nJ)",
                     "actual err", "EPI 99.7% CI", "CPI 99.7% CI",
                     "EPI CI tighter?"});

    stats::OnlineStats abs_err;
    int tighter = 0, total = 0;
    for (const auto &spec : opt.suite()) {
        const core::ReferenceResult ref = runner.get(spec);

        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = recommendedW(config);
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            ref.instructions, sc.unitSize,
            std::max<std::uint64_t>(ref.instructions / 1000 / 8, 60));

        core::SmartsEstimate est;
        if (store) {
            est = core::SystematicSampler(sc).runSharded(
                [&] {
                    return std::make_unique<core::SimSession>(
                        spec, config);
                },
                spec, config, ref.instructions, 8, *pool, *store);
        } else {
            core::SimSession session(spec, config);
            est = core::SystematicSampler(sc).run(session);
        }

        const double err = (est.epi() - ref.epi) / ref.epi;
        const double epi_ci = est.epiConfidenceInterval(0.997);
        const double cpi_ci = est.cpiConfidenceInterval(0.997);
        abs_err.add(std::abs(err));
        ++total;
        tighter += epi_ci < cpi_ci ? 1 : 0;

        table.row()
            .add(spec.name)
            .add(ref.epi, 3)
            .add(est.epi(), 3)
            .addPercent(err, 2)
            .addPercent(epi_ci, 2)
            .addPercent(cpi_ci, 2)
            .add(epi_ci < cpi_ci ? "yes" : "no");
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    emit(table, opt);
    std::printf("mean |EPI error| = %.2f%% (paper: 0.59%%); EPI CI "
                "tighter than CPI CI for %d/%d benchmarks (paper: EPI "
                "intervals are generally tighter).\n",
                abs_err.mean() * 100.0, tighter, total);
    return 0;
}
