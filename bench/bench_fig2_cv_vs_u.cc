/**
 * @file
 * Figure 2 reproduction: the coefficient of variation of CPI,
 * V_CPI(U), as a function of sampling unit size U.
 *
 * Paper shape to match: every benchmark's curve falls steeply for
 * U < 1000 and levels off after; several benchmarks keep a
 * non-negligible V_CPI even at unit sizes of millions of
 * instructions (which is why single-section sampling fails).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt =
        parseOptions(argc, argv, /*default_quick=*/false,
                     "fig2_cv_vs_u.csv");
    banner("Figure 2: V_CPI vs sampling unit size U (8-way)", opt);

    const auto config = uarch::MachineConfig::eightWay();
    core::ReferenceRunner runner(opt.scale, config);

    const std::vector<std::uint64_t> unit_sizes = {
        10, 100, 1000, 10'000, 100'000, 1'000'000};

    TextTable table({"benchmark", "U=10", "U=100", "U=1000", "U=10^4",
                     "U=10^5", "U=10^6"});

    double steep_drop = 0, flat_tail = 0;
    int counted = 0;
    for (const auto &spec : opt.suite()) {
        const core::ReferenceResult ref = runner.get(spec);
        table.row().add(spec.name);
        std::vector<double> cvs;
        for (const std::uint64_t u : unit_sizes) {
            const double cv = core::cvAtUnitSize(ref, u);
            cvs.push_back(cv);
            table.add(cv, 3);
        }
        if (cvs[0] > 0 && cvs[2] > 0) {
            steep_drop += cvs[0] / cvs[2]; // U=10 vs U=1000
            flat_tail += cvs[3] > 0 ? cvs[2] / cvs[3] : 1.0;
            ++counted;
        }
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    emit(table, opt);

    std::printf("shape check: mean V(U=10)/V(U=1000) = %.1fx (steep "
                "fall below U=1000),\n             mean "
                "V(U=1000)/V(U=10^4) = %.1fx (leveling off after)\n",
                steep_drop / counted, flat_tail / counted);
    return 0;
}
