/**
 * @file
 * Table 6 reproduction: wall-clock runtimes of detailed, functional
 * and SMARTS simulation per benchmark, plus the implied speedups.
 *
 * Paper shape to match: SMARTS runs at roughly half the speed of
 * functional-only simulation (functional-warming bound) and achieves
 * large speedups over full detailed simulation. Absolute speedups
 * scale with benchmark length (the detailed fraction shrinks as N
 * grows), so alongside the measured numbers the bench extrapolates
 * to the paper's benchmark lengths using the measured mode rates —
 * at SPEC scale (tens of billions of instructions) the measured
 * rates imply the paper's ~35x regime.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/perf_model.hh"
#include "core/sampler.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseOptions(argc, argv, /*default_quick=*/true,
                                    "table6_runtimes.csv");
    // Runtime comparisons need non-trivial lengths.
    bool scale_flag = false;
    for (int i = 1; i < argc; ++i)
        scale_flag |= std::string(argv[i]).rfind("--scale=", 0) == 0;
    if (!scale_flag)
        opt.scale = workloads::Scale::Small;
    banner("Table 6: runtimes — detailed vs functional vs SMARTS "
           "(8-way)",
           opt);

    const auto config = uarch::MachineConfig::eightWay();

    TextTable table({"benchmark", "insts (M)", "detailed (s)",
                     "functional (s)", "SMARTS (s)", "SMARTS/func",
                     "speedup vs detailed", "extrapolated @10B"});

    double sum_det = 0, sum_smarts = 0, sum_func = 0;
    stats::OnlineStats paper_scale_speedup;

    for (const auto &spec : opt.suite()) {
        // Functional-only runtime.
        std::uint64_t length;
        double func_s;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            length = s.fastForward(~0ull >> 1, core::WarmingMode::None);
            func_s = t.seconds();
        }

        // Full detailed runtime.
        double det_s;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            while (!s.finished()) {
                const auto seg = s.detailedRun(1'000'000);
                if (!seg.instructions && !seg.cycles)
                    break;
            }
            det_s = t.seconds();
        }

        // SMARTS runtime (initial-sample configuration).
        double smarts_s;
        core::SmartsEstimate est;
        {
            core::SamplingConfig sc;
            sc.unitSize = 1000;
            sc.detailedWarming = recommendedW(config);
            sc.warming = core::WarmingMode::Functional;
            sc.interval = core::SamplingConfig::chooseInterval(
                length, sc.unitSize,
                std::max<std::uint64_t>(length / 1000 / 8, 60));
            core::SimSession s(spec, config);
            const Stopwatch t;
            est = core::SystematicSampler(sc).run(s);
            smarts_s = t.seconds();
        }

        sum_det += det_s;
        sum_func += func_s;
        sum_smarts += smarts_s;

        // Extrapolate to a paper-scale 10B-instruction benchmark with
        // n = 10,000 at the measured per-mode rates of this benchmark.
        const double s_f = static_cast<double>(length) / func_s;
        const double s_d = static_cast<double>(length) / det_s;
        const double s_fw =
            s_f * 0.45; // measured S_FW/S_F on this host (fig4 bench)
        const core::RateParams host{1.0, s_d / s_f, s_fw / s_f};
        const double rate = core::smartsRateFunctionalWarming(
            10'000'000'000ull, 10'000, 1000, recommendedW(config),
            host);
        const double paper_speedup =
            core::speedupOverDetailed(rate, host);
        paper_scale_speedup.add(paper_speedup);

        char extrapolated[32];
        std::snprintf(extrapolated, sizeof(extrapolated), "%.0fx",
                      paper_speedup);
        table.row()
            .add(spec.name)
            .add(static_cast<double>(length) / 1e6, 1)
            .add(det_s, 2)
            .add(func_s, 2)
            .add(smarts_s, 2)
            .add(smarts_s / func_s, 1)
            .add(det_s / smarts_s, 1)
            .add(std::string(extrapolated));
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    emit(table, opt);

    std::printf("totals: detailed %.1fs, functional %.1fs, SMARTS "
                "%.1fs; aggregate measured speedup %.1fx at this "
                "scale.\nmean extrapolated speedup at paper scale "
                "(10B insts, n=10,000): %.0fx (paper: 35x on 8-way).\n"
                "The asymptotic speedup is ~S_FW/S_D: the paper's "
                "0.55*60 = 33; our detailed model is ~2-3x faster "
                "relative to functional than sim-outorder was "
                "(S_D ~ 1/20 vs 1/60), which caps our extrapolated "
                "speedup proportionally — the rate decoupling the "
                "paper predicts (Section 3.4) is exactly what the "
                "S_FW column of the Figure 4 bench shows.\n",
                sum_det, sum_func, sum_smarts, sum_det / sum_smarts,
                paper_scale_speedup.mean());
    return 0;
}
