/**
 * @file
 * Table 6 reproduction: wall-clock runtimes of detailed, functional
 * and SMARTS simulation per benchmark, plus the implied speedups —
 * and the experiment engine's headline: a 2-config design study run
 * as matched-pair multi-config jobs on the parallel ExperimentRunner
 * versus the serial single-config path. Sections (--section=):
 * "sharded" measures checkpoint-sharded single-benchmark streams
 * (cold capture-bound vs warm library-reuse), "persist" measures
 * the persistent checkpoint store (capture once per --store
 * directory, zero capture cost on every rerun), "distrib" runs the
 * multi-PROCESS regime: a leader plus smarts_runner subprocesses
 * sharing a file-based work queue and a shipped store, merged
 * estimates golden-pinned bit-identical to serial, "distrib_scale"
 * measures the elastic unit-range scheduler at 1/2/4 in-process
 * runners plus a death/join chaos pass (BENCH_distrib.json artifact
 * via --json=), and "livepoint"
 * compares the per-unit live-point regime (capture once, measure
 * units in shuffled order, stop at the confidence target) against
 * the warm sharded path on a 2-config study, emitting the
 * BENCH_livepoints.json perf artifact via --json=. The "store"
 * section drives the cache-service path — leapfrog capture on a
 * miss, warm hits, lookup-latency percentiles, a size-budgeted LRU
 * GC drill — emitting BENCH_store.json via --json=.
 *
 * Paper shape to match: SMARTS runs at roughly half the speed of
 * functional-only simulation (functional-warming bound) and achieves
 * large speedups over full detailed simulation. Absolute speedups
 * scale with benchmark length (the detailed fraction shrinks as N
 * grows), so alongside the measured numbers the bench extrapolates
 * to the paper's benchmark lengths using the measured mode rates —
 * at SPEC scale (tens of billions of instructions) the measured
 * rates imply the paper's ~35x regime.
 *
 * The design-study section measures the two costs the engine
 * removes: the per-config functional-warming pass (one matched
 * stream feeds both timing models) and the statistical overkill of
 * independent per-config sampling (matched pairs put a tighter CI
 * on the comparison with far fewer units). The engine's wall-clock
 * speedup is the product of the per-thread sharing factor and the
 * thread count; its estimates are bit-identical at any thread count
 * (asserted here and in tests/test_exec.cc).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "bench_common.hh"
#include "core/checkpoint.hh"
#include "core/checkpoint_store.hh"
#include "core/livepoint.hh"
#include "core/perf_model.hh"
#include "core/sampler.hh"
#include "distrib/leader.hh"
#include "exec/experiment.hh"
#include "exec/thread_pool.hh"
#include "mp/mix_sampler.hh"
#include "util/logging.hh"

using namespace smarts;
using namespace smarts::bench;

namespace {

/** Bit-exact fingerprint of a batch's estimates. */
std::vector<std::uint64_t>
fingerprint(const std::vector<exec::ExperimentResult> &results)
{
    std::vector<std::uint64_t> bits;
    auto addDouble = [&bits](double v) {
        std::uint64_t b;
        std::memcpy(&b, &v, sizeof b);
        bits.push_back(b);
    };
    for (const auto &r : results)
        for (const auto &e : r.estimate.perConfig) {
            bits.push_back(e.units());
            addDouble(e.cpi());
            addDouble(e.epi());
            addDouble(e.cpiStats.variance());
        }
    return bits;
}

/**
 * Sharded functional warming: the cost Table 6 shows dominating
 * SMARTS is serial PER BENCHMARK — PR 2's engine only parallelizes
 * across (benchmark x config) jobs, so one long stream bottlenecks
 * a whole grid. This section shards a single benchmark's stream via
 * the checkpoint library and measures what that buys, in both
 * flavors:
 *
 *  - COLD: runSharded captures checkpoints and executes shards in
 *    one pipelined call. The capture pass must itself warm the
 *    stream, so cold wall clock is bounded below by it — the
 *    paper's functional-warming bound (Section 6) made concrete.
 *  - WARM: the library is built once and shards resume from it with
 *    no capture in the timed path. This is the checkpoint-reuse
 *    regime (tuned second passes, config sweeps, repeated design
 *    studies over the same benchmark), where the shard work simply
 *    divides by the thread count.
 */
void
shardedSection(const BenchOptions &opt)
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto suite = opt.suite();
    exec::ThreadPool pool; // one worker per hardware thread.

    std::printf("=== Sharded single-benchmark stream: checkpointed "
                "functional warming ===\n\n");

    // Deterministic columns only (golden-pinned): the sharded
    // estimate is bit-identical to the serial one by contract, so
    // every value here is reproducible on any host.
    TextTable det({"benchmark", "shards", "units", "cpi",
                   "ckpt KB", "bitwise = serial?"});
    TextTable times({"benchmark", "serial (s)", "capture (s)",
                     "cold (s)", "warm (s)", "warm x"});

    double sumSerial = 0.0, sumCapture = 0.0;
    double sumCold = 0.0, sumWarm = 0.0;
    std::size_t identicalCount = 0;

    for (const auto &spec : suite) {
        std::uint64_t length;
        {
            core::SimSession probe(spec, config);
            length =
                probe.fastForward(~0ull >> 1, core::WarmingMode::None);
        }

        // Dense grid: a tuned second pass after a high-CV initial
        // pass routinely lands at small k, which is exactly when
        // one benchmark pins a whole experiment grid.
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = recommendedW(config);
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            length, sc.unitSize, length / sc.unitSize / 4);

        auto factory = [&spec, &config] {
            return std::make_unique<core::SimSession>(spec, config);
        };

        // Serial baseline.
        core::SmartsEstimate serial;
        double serialS;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            serial = core::SystematicSampler(sc).run(s);
            serialS = t.seconds();
        }

        // Build the library once (the cold path's serial spine).
        const std::size_t shards =
            std::max<std::size_t>(8, 2 * pool.threadCount());
        const auto plan =
            core::CheckpointLibrary::planShards(sc, length, shards);
        core::CheckpointLibrary library;
        double captureS;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            library = core::CheckpointLibrary::build(s, sc, plan);
            captureS = t.seconds();
        }

        // Cold: capture + shards, pipelined inside runSharded.
        core::SmartsEstimate cold;
        double coldS;
        {
            const Stopwatch t;
            cold = core::SystematicSampler(sc).runSharded(
                factory, length, shards, pool);
            coldS = t.seconds();
        }

        // Warm: shards resume from the prebuilt library.
        core::SmartsEstimate warm;
        double warmS;
        {
            const Stopwatch t;
            warm = core::SystematicSampler(sc).runSharded(
                factory, library, pool);
            warmS = t.seconds();
        }

        // Determinism at a FIXED shard count for the golden table
        // (the timing runs above scale shards with the host).
        const core::SmartsEstimate fixedShards =
            core::SystematicSampler(sc).runSharded(factory, length, 5,
                                                   pool);
        const bool identical =
            fixedShards.fingerprint() ==
                serial.fingerprint() &&
            cold.fingerprint() == serial.fingerprint() &&
            warm.fingerprint() == serial.fingerprint();
        identicalCount += identical ? 1 : 0;

        sumSerial += serialS;
        sumCapture += captureS;
        sumCold += coldS;
        sumWarm += warmS;

        det.row()
            .add(spec.name)
            .add(std::uint64_t(5))
            .add(fixedShards.units())
            .add(fixedShards.cpi(), 4)
            // Slot 0 is an empty placeholder (shard 0 resumes at
            // stream start), so average over the real checkpoints.
            .add(std::uint64_t(library.byteSize() /
                               (plan.size() > 1 ? plan.size() - 1
                                                : 1) /
                               1024))
            .add(identical ? "yes" : "NO");
        times.row()
            .add(spec.name)
            .add(serialS, 2)
            .add(captureS, 2)
            .add(coldS, 2)
            .add(warmS, 2)
            .add(serialS / warmS, 2);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");

    if (opt.section == "sharded")
        emit(det, opt); // golden-pinned deterministic columns.
    else
        std::printf("%s\n", det.toString().c_str());
    std::printf("%s\n", times.toString().c_str());

    // Warm shards divide the serial work by the pool; cold adds the
    // capture spine, pipelined against shard execution.
    const double perThreadWarm =
        sumSerial / sumWarm /
        static_cast<double>(pool.threadCount());
    auto projectedWarm = [&](double threads) {
        return perThreadWarm * threads;
    };
    auto projectedCold = [&](double threads) {
        return sumSerial /
               std::max(sumCapture,
                        (sumCapture + sumSerial) / threads);
    };
    std::printf(
        "serial %.2fs | capture-once %.2fs | cold sharded %.2fs | "
        "warm (library reuse) %.2fs, on %u thread(s)\n"
        "estimates bit-identical to the serial run for %zu/%zu "
        "benchmarks (cold, warm, and fixed-5-shard runs)\n"
        "warm path: %.2fx per thread -> projected %.2fx at 2 "
        "threads, %.2fx at 4 (shard work divides by the pool; "
        "capture amortized across reruns/configs)\n"
        "cold path: projected %.2fx at 2 threads, capture-bound "
        "ceiling %.2fx — the functional-warming bound the paper's "
        "Table 6 predicts; breaking it needs warming pipelining or "
        "reuse (ROADMAP)\n"
        "target >=1.5x at 2 threads (warm path): %s\n",
        sumSerial, sumCapture, sumCold, sumWarm, pool.threadCount(),
        identicalCount, suite.size(), perThreadWarm,
        projectedWarm(2.0), projectedWarm(4.0), projectedCold(2.0),
        sumSerial / sumCapture,
        pool.threadCount() >= 2
            ? (sumSerial / sumWarm >= 1.5 ? "MET (measured)"
                                          : "NOT MET (measured)")
            : (projectedWarm(2.0) >= 1.5
                   ? "MET by projection (1-thread host)"
                   : "NOT MET even by projection"));
    std::fflush(stdout);
}

/**
 * Persistent checkpoint libraries: the sharded section above showed
 * the warm (library-reuse) regime beating the cold capture-bound
 * one, but PR 3's libraries died with the process — every design
 * study and every run of the two-pass procedure re-paid the capture
 * (functional warming) bill. This section runs the store-backed
 * path: the first invocation captures each benchmark's library once
 * and persists it (keyed by benchmark, sampling design and the
 * machine's warm-state geometry hash); every later invocation with
 * the same --store finds the libraries on disk and pays NO capture
 * cost — run this section twice to watch the "capture (s)" column
 * drop to zero. The estimate columns are golden-pinned: store-hit
 * runs are bit-identical to the serial run by contract, so they
 * cannot drift between the cold and warm invocations.
 *
 * The tail of the section demonstrates the two reuse axes beyond
 * rerunning: ONE MultiSession streaming pass capturing the
 * per-config libraries of a 2-config design study, and a
 * latency-only config variant hitting the baseline's library
 * because warm state never depends on timing parameters.
 */
void
persistSection(const BenchOptions &opt)
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto suite = opt.suite();
    exec::ThreadPool pool; // one worker per hardware thread.
    const std::string root = opt.storePath.empty()
                                 ? "table6_ckpt_store"
                                 : opt.storePath;
    core::CheckpointStore store(root);

    std::printf("=== Persistent checkpoint store: capture once, "
                "reuse every run ===\n\nstore root: %s\n\n",
                root.c_str());

    // Deterministic, golden-pinned columns: the store-backed
    // estimate is bit-identical to the serial run by contract, and
    // the serialized library size is a pure function of the model
    // state (the format is endian-explicit), so every value here is
    // reproducible on any host — including across the cold and warm
    // invocations the CI pair runs.
    TextTable det({"benchmark", "units", "cpi", "file KB",
                   "bitwise = serial?"});
    TextTable times({"benchmark", "serial (s)", "capture (s)",
                     "store run (s)", "x vs serial"});

    // Host-independent stored plan (the golden "file KB" column
    // depends on the checkpoint count).
    const std::size_t shards = 8;

    double sumSerial = 0.0, sumCapture = 0.0, sumStore = 0.0;
    std::size_t misses = 0;
    for (const auto &spec : suite) {
        std::uint64_t length;
        {
            core::SimSession probe(spec, config);
            length =
                probe.fastForward(~0ull >> 1, core::WarmingMode::None);
        }

        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = recommendedW(config);
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            length, sc.unitSize, length / sc.unitSize / 4);

        auto factory = [&spec, &config] {
            return std::make_unique<core::SimSession>(spec, config);
        };

        // Serial baseline.
        core::SmartsEstimate serial;
        double serialS;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            serial = core::SystematicSampler(sc).run(s);
            serialS = t.seconds();
        }

        // Populate the store on a miss — this is the one-time cost
        // the warm invocation never pays again. A miss is "nothing
        // LOADS" (tryLoad), not "no file": a stale or corrupt file
        // must land in the capture column, not masquerade as warm.
        const core::LibraryKey key =
            core::LibraryKey::of(spec, config, sc);
        double captureS = 0.0;
        if (!store.tryLoad(key).has_value()) {
            ++misses;
            const auto plan = core::CheckpointLibrary::planShards(
                sc, length, shards);
            core::SimSession s(spec, config);
            const Stopwatch t;
            const auto library =
                core::CheckpointLibrary::build(s, sc, plan);
            std::string error;
            if (!store.save(key, library, &error))
                SMARTS_FATAL("cannot persist library: ", error);
            captureS = t.seconds();
        }

        // The timed run always hits the store now: shards resume
        // from persisted warm state, no capture in the timed path.
        core::SmartsEstimate est;
        double storeS;
        {
            const Stopwatch t;
            est = core::SystematicSampler(sc).runSharded(
                factory, spec, config, length, shards, pool, store);
            storeS = t.seconds();
        }

        sumSerial += serialS;
        sumCapture += captureS;
        sumStore += storeS;

        std::error_code ec;
        const auto fileBytes = std::filesystem::file_size(
            store.pathFor(key), ec);
        det.row()
            .add(spec.name)
            .add(est.units())
            .add(est.cpi(), 4)
            .add(std::uint64_t(ec ? 0 : fileBytes / 1024))
            .add(est.fingerprint() ==
                         serial.fingerprint()
                     ? "yes"
                     : "NO");
        times.row()
            .add(spec.name)
            .add(serialS, 2)
            .add(captureS, 2)
            .add(storeS, 2)
            .add(serialS / storeS, 2);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");

    if (opt.section == "persist")
        emit(det, opt); // golden-pinned deterministic columns.
    else
        std::printf("%s\n", det.toString().c_str());
    std::printf("%s\n", times.toString().c_str());

    std::printf(
        "%s: capture cost this run %.2fs (%zu/%zu libraries "
        "captured)\n"
        "store-backed runs %.2fs vs serial %.2fs on %u thread(s) — "
        "rerun this section with the same --store and the capture "
        "column is all zeros: the second run of a design study pays "
        "no functional-warming bill at all\n\n",
        misses ? "COLD store" : "WARM store (every library loaded)",
        sumCapture, misses, suite.size(), sumStore, sumSerial,
        pool.threadCount());

    // Multi-config capture: ONE MultiSession streaming pass produces
    // the per-config libraries of a design study — the capture cost
    // of N configs collapses toward that of one.
    {
        const auto &spec = suite.front();
        const auto cfg16 = uarch::MachineConfig::sixteenWay();
        std::uint64_t length;
        {
            core::SimSession probe(spec, config);
            length =
                probe.fastForward(~0ull >> 1, core::WarmingMode::None);
        }
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming =
            std::max(recommendedW(config), recommendedW(cfg16));
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            length, sc.unitSize, length / sc.unitSize / 4);

        Stopwatch t;
        const std::size_t captured = store.ensure(
            spec, {config, cfg16}, sc, length, shards);
        const double multiS = t.seconds();
        std::printf(
            "multi-config capture (%s, 8-way + 16-way): %zu "
            "libraries captured in one %.2fs streaming pass%s\n",
            spec.name.c_str(), captured, multiS,
            captured ? "" : " (already stored: 0-cost hit)");

        // Geometry-keyed reuse: a latency-only variant of the 8-way
        // machine hashes to the same warm-state geometry, so it
        // reuses the 8-way library without any capture.
        auto latVariant = config;
        latVariant.name = "8-way-slow-mem";
        latVariant.mem.memLatency = 200;
        const std::size_t extra = store.ensure(
            spec, {latVariant}, sc, length, shards);
        std::printf(
            "latency-only variant (mem 80 -> 200 cycles) reused the "
            "8-way library: %s (warm state never depends on timing "
            "parameters)\n",
            extra == 0 ? "yes" : "NO — geometry hash bug");
    }
    std::fflush(stdout);
}

/**
 * Distributed runners: the sections above scale one benchmark
 * across THREADS; this one scales it across PROCESSES — the
 * multi-host regime (ROADMAP "Distributed runners"), with hosts
 * stood in for by subprocesses. A leader plans the study, ships the
 * checkpoint store, and publishes a job manifest into a shared
 * queue directory; N smarts_runner subprocesses claim shard jobs
 * atomically, execute them against the store, and publish
 * checksummed result files; the leader folds completed shards in
 * shard order. The merged estimate is bit-identical to serial
 * run() — the column this section golden-pins — because every
 * process runs the same SystematicSampler::runSlice the in-process
 * sharded paths use (protocol: docs/distributed-runners.md).
 */
void
distribSection(const BenchOptions &opt)
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto suite = opt.suite();
    const std::string root = opt.storePath.empty()
                                 ? "table6_distrib_store"
                                 : opt.storePath;
    const std::string queue = root + "_queue";
    const std::string runnerBin = runnerBinary(opt);
    if (!std::filesystem::exists(runnerBin)) {
        // Fatal only when the section was asked for by name; the
        // sectionless grand tour stays self-contained for a bench
        // binary copied out of its build tree.
        if (opt.section == "distrib")
            SMARTS_FATAL("smarts_runner not found at ", runnerBin,
                         " (build the tools/ target, or pass "
                         "--runner-bin=)");
        std::printf("=== Distributed runners: SKIPPED (smarts_runner "
                    "not found at %s; build tools/ or pass "
                    "--runner-bin=) ===\n",
                    runnerBin.c_str());
        return;
    }
    core::CheckpointStore store(root);
    constexpr int kRunners = 2;
    constexpr std::size_t kShards = 6;

    // Start from an empty queue every invocation: this section
    // measures distributed EXECUTION, and a queue left by a prior
    // bench run (same deterministic study id, results possibly from
    // an older build of the model) would be merged instead of
    // re-executed — the store is the reuse point, the queue is not.
    std::filesystem::remove_all(queue);

    std::printf("=== Distributed runners: leader + %d smarts_runner "
                "subprocesses over a shipped store ===\n\n"
                "store: %s\nqueue: %s\nrunner: %s\n\n",
                kRunners, root.c_str(), queue.c_str(),
                runnerBin.c_str());

    // Deterministic, golden-pinned columns: the merged estimate is
    // bit-identical to the serial run by contract, at any runner
    // count, on any host.
    TextTable det({"benchmark", "runners", "units", "cpi",
                   "bitwise = serial?"});
    TextTable times({"benchmark", "serial (s)", "ship store (s)",
                     "distrib (s)"});

    double sumSerial = 0.0, sumShip = 0.0, sumDistrib = 0.0;
    std::size_t identicalCount = 0;
    for (const auto &spec : suite) {
        std::uint64_t length;
        {
            core::SimSession probe(spec, config);
            length =
                probe.fastForward(~0ull >> 1, core::WarmingMode::None);
        }

        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = recommendedW(config);
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            length, sc.unitSize, length / sc.unitSize / 4);

        // Serial baseline.
        core::SmartsEstimate serial;
        double serialS;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            serial = core::SystematicSampler(sc).run(s);
            serialS = t.seconds();
        }

        // Leader: plan, ship the store (one-time capture), publish.
        const distrib::JobManifest manifest = distrib::planStudy(
            spec, {config}, sc, length, kShards);
        double shipS;
        {
            const Stopwatch t;
            distrib::ensureStudyStore(store, manifest);
            shipS = t.seconds();
        }
        std::string error;
        if (!distrib::publishStudy(queue, manifest, &error))
            SMARTS_FATAL("cannot publish study: ", error);

        // Runner subprocesses do ALL the shard work; the leader
        // only polls and merges.
        double distribS;
        core::SmartsEstimate merged;
        {
            const Stopwatch t;
            FILE *runners[kRunners] = {};
            for (int r = 0; r < kRunners; ++r) {
                const std::string cmd = log::format(
                    "'", runnerBin, "' --dir='", queue,
                    "' --store='", root, "' --id=bench-r", r,
                    " --wait=30 >/dev/null 2>&1");
                runners[r] = ::popen(cmd.c_str(), "r");
                if (!runners[r])
                    SMARTS_FATAL("cannot launch ", cmd);
            }
            const auto estimates = distrib::collectStudy(
                queue, manifest, /*timeoutSeconds=*/300.0,
                /*helper=*/nullptr, &error);
            for (int r = 0; r < kRunners; ++r)
                ::pclose(runners[r]);
            if (!estimates)
                SMARTS_FATAL("distributed study failed: ", error);
            merged = estimates->front();
            distribS = t.seconds();
        }

        const bool identical =
            merged.fingerprint() == serial.fingerprint();
        identicalCount += identical ? 1 : 0;
        sumSerial += serialS;
        sumShip += shipS;
        sumDistrib += distribS;

        det.row()
            .add(spec.name)
            .add(std::uint64_t(kRunners))
            .add(merged.units())
            .add(merged.cpi(), 4)
            .add(identical ? "yes" : "NO");
        times.row()
            .add(spec.name)
            .add(serialS, 2)
            .add(shipS, 2)
            .add(distribS, 2);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");

    if (opt.section == "distrib")
        emit(det, opt); // golden-pinned deterministic columns.
    else
        std::printf("%s\n", det.toString().c_str());
    std::printf("%s\n", times.toString().c_str());

    std::printf(
        "serial %.2fs | ship store (capture, once per store) %.2fs "
        "| distributed across %d runner processes %.2fs\n"
        "merged estimates bit-identical to the serial run for "
        "%zu/%zu benchmarks — the number that makes fleet-scale "
        "fan-out safe: adding hosts can change wall-clock, never "
        "results\n"
        "(process spawn + file polling overhead dominates at mini "
        "scale; the regime pays off when shard work is minutes, "
        "i.e. exactly the studies that outgrow one machine)\n",
        sumSerial, sumShip, kRunners, sumDistrib, identicalCount,
        suite.size());
    std::fflush(stdout);
}

/**
 * Elastic distributed scaling: the distrib section above pins the
 * PROTOCOL (subprocess runners, bit-identical merge); this one
 * measures the ELASTIC layer on in-process Runner threads, where
 * spawn cost cannot blur the curve. Per benchmark it runs the same
 * unit-range study (live-point-backed jobs, weighted per-runner
 * claim order) at 1, 2 and 4 runners, then a chaos pass where one
 * runner DIES mid-drain (cooperative cancel; its claim ages stale)
 * and a second JOINS late with a tight steal window while the
 * leader's collect loop splits the remaining ranges for it. Every
 * merged estimate — any runner count, any death/join history — is
 * bit-identical to serial run(), which is what the golden CSV pins;
 * the wall-clock curve and the duplicate-execution tally land in
 * the BENCH_distrib.json artifact (--json=).
 */
void
distribScaleSection(const BenchOptions &opt)
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto suite = opt.suite();
    const std::string root = opt.storePath.empty()
                                 ? "table6_scale_store"
                                 : opt.storePath;
    const std::string queue = root + "_queue";
    core::CheckpointStore store(root);
    constexpr std::size_t kJobs = 8;
    const std::size_t counts[] = {1, 2, 4};

    std::printf("=== Elastic distributed scaling: unit-range jobs, "
                "1/2/4 runners + death/join chaos ===\n\n"
                "store: %s\nqueue: %s\n\n",
                root.c_str(), queue.c_str());

    // Deterministic, golden-pinned columns: merged estimates are
    // bit-identical to serial run() at every runner count and
    // through the chaos pass, by contract.
    TextTable det({"benchmark", "jobs", "units", "cpi", "1r=serial?",
                   "2r=serial?", "4r=serial?", "elastic=serial?"});
    TextTable times({"benchmark", "serial (s)", "1r (s)", "2r (s)",
                     "4r (s)", "elastic (s)", "4r x"});

    struct Row
    {
        std::string name;
        std::uint64_t totalUnits = 0;
        double serialS = 0.0;
        double runS[3] = {0.0, 0.0, 0.0};
        bool runIdentical[3] = {false, false, false};
        double elasticS = 0.0;
        bool elasticIdentical = false;
        std::size_t duplicates = 0;
        std::size_t finalRanges = 0;
    };
    std::vector<Row> rows;

    for (const auto &spec : suite) {
        std::uint64_t length;
        {
            core::SimSession probe(spec, config);
            length =
                probe.fastForward(~0ull >> 1, core::WarmingMode::None);
        }

        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = recommendedW(config);
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            length, sc.unitSize, length / sc.unitSize / 4);

        Row row;
        row.name = spec.name;

        // Serial baseline.
        core::SmartsEstimate serial;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            serial = core::SystematicSampler(sc).run(s);
            row.serialS = t.seconds();
        }

        // Unit-range study: live-point libraries once per store
        // lifetime, then the manifest's jobs are unit ranges.
        const distrib::LivePointPlan plan =
            distrib::ensureStudyLivePoints(store, spec, {config}, sc);
        row.totalUnits = plan.totalUnits;
        const distrib::JobManifest manifest = distrib::planUnitStudy(
            spec, {config}, sc, plan.streamLength, plan.totalUnits,
            kJobs);

        auto publishFresh = [&] {
            std::filesystem::remove_all(queue);
            std::string error;
            if (!distrib::publishStudy(queue, manifest, &error))
                SMARTS_FATAL("cannot publish study: ", error);
        };

        // The scaling curve: N in-process runners drain the study.
        for (std::size_t i = 0; i < 3; ++i) {
            publishFresh();
            const Stopwatch t;
            std::vector<std::thread> crew;
            for (std::size_t r = 0; r < counts[i]; ++r)
                crew.emplace_back([&, r] {
                    distrib::RunnerOptions options;
                    options.id = "scale-" + std::to_string(r);
                    options.staleClaimSeconds = -1.0;
                    distrib::Runner runner(queue, root, options);
                    runner.drain(manifest);
                });
            for (std::thread &t2 : crew)
                t2.join();
            std::string error;
            const auto merged =
                distrib::mergeStudy(queue, manifest, &error);
            if (!merged)
                SMARTS_FATAL("scale run (", counts[i],
                             " runners) failed: ", error);
            row.runS[i] = t.seconds();
            row.runIdentical[i] = merged->front().fingerprint() ==
                                  serial.fingerprint();
        }

        // The chaos pass: runner A dies as its second job starts
        // (claim abandoned mid-execution), runner B joins late with
        // a tight steal window, and the leader's collect loop
        // splits remaining ranges when it sees the new claimant.
        {
            publishFresh();
            const Stopwatch t;
            std::mutex tallyMutex;
            std::map<std::string, int> tally;
            std::atomic<int> started{0};

            distrib::RunnerOptions aOpt;
            aOpt.id = "chaos-victim";
            aOpt.heartbeatSeconds = 0.0;
            aOpt.cancelled = [&] { return started.load() >= 2; };
            aOpt.onExecute = [&](const std::string &job) {
                ++started;
                std::lock_guard<std::mutex> lock(tallyMutex);
                ++tally[job];
            };
            std::thread victim([&] {
                distrib::Runner a(queue, root, aOpt);
                a.drain(manifest);
            });

            distrib::RunnerOptions bOpt;
            bOpt.id = "chaos-joiner";
            bOpt.staleClaimSeconds = 0.3;
            bOpt.onExecute = [&](const std::string &job) {
                std::lock_guard<std::mutex> lock(tallyMutex);
                ++tally[job];
            };
            std::thread joiner([&] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(400));
                distrib::Runner b(queue, root, bOpt);
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::seconds(120);
                while (!distrib::studyComplete(queue, manifest) &&
                       std::chrono::steady_clock::now() < deadline) {
                    b.drain(manifest);
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(50));
                }
            });

            std::string error;
            const auto collected = distrib::collectStudy(
                queue, manifest, /*timeoutSeconds=*/120.0,
                /*helper=*/nullptr, &error);
            victim.join();
            joiner.join();
            if (!collected)
                SMARTS_FATAL("elastic run failed: ", error);
            row.elasticS = t.seconds();
            row.elasticIdentical =
                collected->front().fingerprint() ==
                serial.fingerprint();
            for (const auto &[job, n] : tally)
                row.duplicates += n > 1 ? std::size_t(n - 1) : 0;
            row.finalRanges = distrib::listRanges(queue).size();
        }

        det.row()
            .add(row.name)
            .add(std::uint64_t(kJobs))
            .add(row.totalUnits)
            .add(serial.cpi(), 4)
            .add(row.runIdentical[0] ? "yes" : "NO")
            .add(row.runIdentical[1] ? "yes" : "NO")
            .add(row.runIdentical[2] ? "yes" : "NO")
            .add(row.elasticIdentical ? "yes" : "NO");
        times.row()
            .add(row.name)
            .add(row.serialS, 2)
            .add(row.runS[0], 2)
            .add(row.runS[1], 2)
            .add(row.runS[2], 2)
            .add(row.elasticS, 2)
            .add(row.serialS / row.runS[2], 2);
        rows.push_back(row);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");

    if (opt.section == "distrib_scale")
        emit(det, opt); // golden-pinned deterministic columns.
    else
        std::printf("%s\n", det.toString().c_str());
    std::printf("%s\n", times.toString().c_str());

    std::size_t identicalAll = 0, duplicatesTotal = 0;
    for (const Row &row : rows) {
        identicalAll += (row.runIdentical[0] && row.runIdentical[1] &&
                         row.runIdentical[2] && row.elasticIdentical)
                            ? 1
                            : 0;
        duplicatesTotal += row.duplicates;
    }
    std::printf(
        "merged estimates bit-identical to serial run() through "
        "every runner count AND the death/join chaos pass for "
        "%zu/%zu benchmarks\n"
        "duplicate executions across all chaos passes: %zu (each "
        "abandoned job re-runs at most once per claimant — bounded, "
        "and benign because results are byte-identical)\n"
        "(in-process runners share one filesystem, so the curve "
        "shows protocol overhead, not host scaling; the elastic "
        "column includes the ~0.4s join delay and the 0.3s steal "
        "window by construction)\n",
        identicalAll, rows.size(), duplicatesTotal);
    std::fflush(stdout);

    if (opt.section != "distrib_scale" || opt.jsonPath.empty())
        return;
    std::FILE *json = std::fopen(opt.jsonPath.c_str(), "w");
    if (!json)
        SMARTS_FATAL("cannot write ", opt.jsonPath);
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"table6_distrib_scale\",\n"
                 "  \"scale\": \"%s\",\n"
                 "  \"suite\": \"%s\",\n"
                 "  \"initial_jobs\": %zu,\n"
                 "  \"benchmarks\": [\n",
                 opt.scaleName(),
                 opt.quickSuite ? "quick" : "standard", kJobs);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::fprintf(
            json,
            "    {\"name\": \"%s\", \"total_units\": %llu, "
            "\"serial_s\": %.4f,\n"
            "     \"runs\": [",
            row.name.c_str(),
            static_cast<unsigned long long>(row.totalUnits),
            row.serialS);
        for (std::size_t j = 0; j < 3; ++j)
            std::fprintf(
                json,
                "{\"runners\": %zu, \"wall_s\": %.4f, "
                "\"speedup_x\": %.2f, \"identical\": %s}%s",
                counts[j], row.runS[j],
                row.serialS / row.runS[j],
                row.runIdentical[j] ? "true" : "false",
                j < 2 ? ", " : "],\n");
        std::fprintf(
            json,
            "     \"elastic\": {\"wall_s\": %.4f, "
            "\"duplicate_executions\": %zu, \"final_ranges\": %zu, "
            "\"identical\": %s}}%s\n",
            row.elasticS, row.duplicates, row.finalRanges,
            row.elasticIdentical ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"identical_everywhere\": %s\n"
                 "}\n",
                 identicalAll == rows.size() ? "true" : "false");
    std::fclose(json);
    std::printf("json: %s\n", opt.jsonPath.c_str());
    std::fflush(stdout);
}

/**
 * Live-points: the third execution mode (core/livepoint.hh). The
 * sharded sections resume CONTIGUOUS slices, so a warm run still
 * walks the whole unit grid — its cost scales with the stream
 * length. A live-point library stores one delta-encoded checkpoint
 * per MEASURED UNIT, so a warm study's cost scales with the units
 * it actually measures, and the anytime estimator
 * (SystematicSampler::runAnytime) measures units in seeded-shuffle
 * order and stops at the paper's Eq. 1-3 target — on low-CV
 * benchmarks that is a few percent of the grid.
 *
 * The section runs the same (benchmark x 2-config) study down both
 * warm paths. Capture (one MultiSession pass per store lifetime)
 * and the one-time live-point load are reported separately; the
 * timed columns are pure study execution from resident warm state,
 * because that is what a sweep session repeats — per rerun, per
 * tightened target, per extra config — while libraries load once.
 * The golden-pinned columns are fully deterministic: early-stop
 * unit counts depend only on the seeded shuffle and batch-boundary
 * stop rule (thread-count invariant), and the completion-mode
 * (epsilon = 0) estimate is bit-identical to serial run() by
 * contract. The JSON artifact (--json=, BENCH_livepoints.json in
 * CI) records the same numbers machine-readably, headlined by the
 * sweep study where the anytime regime pays off hardest.
 */
void
livepointSection(const BenchOptions &opt)
{
    const auto cfg8 = uarch::MachineConfig::eightWay();
    const auto cfg16 = uarch::MachineConfig::sixteenWay();
    const std::vector<uarch::MachineConfig> configs{cfg8, cfg16};
    const auto suite = opt.suite();
    exec::ThreadPool pool; // one worker per hardware thread.
    const std::string root = opt.storePath.empty()
                                 ? "table6_livepoint_store"
                                 : opt.storePath;
    core::CheckpointStore store(root);
    constexpr int kReps = 5; // min-of-reps for the timed columns.
    constexpr std::size_t kShards = 8;
    const stats::ConfidenceSpec target{}; // paper: 99.7% / +/-3%.

    std::printf("=== Live-points: per-unit checkpoints + anytime "
                "early stopping ===\n\nstore root: %s\n\n",
                root.c_str());

    // Deterministic, golden-pinned columns (see the header comment).
    TextTable det({"benchmark", "config", "units", "measured",
                   "stopped?", "cpi", "bitwise = serial?"});
    TextTable times({"benchmark", "capture (s)", "lp load (s)",
                     "warm shard (s)", "anytime (s)", "x vs shard"});

    struct Row
    {
        std::string name;
        double captureS = 0.0, loadS = 0.0;
        double shardS = 0.0, anyS = 0.0;
        std::uint64_t avail = 0, measured = 0;
        bool stopped = false;
    };
    std::vector<Row> rows;
    std::size_t misses = 0, earlyWins = 0, identicalCount = 0;

    for (const auto &spec : suite) {
        std::uint64_t length;
        {
            core::SimSession probe(spec, cfg8);
            length =
                probe.fastForward(~0ull >> 1, core::WarmingMode::None);
        }

        core::SamplingConfig sc;
        sc.unitSize = 1000;
        // Live-point replay pays detailed warming per measured unit
        // for every config, so one deep-warming design (the 16-way
        // W) serves the whole sweep.
        sc.detailedWarming =
            std::max(recommendedW(cfg8), recommendedW(cfg16));
        sc.warming = core::WarmingMode::Functional;
        // Dense but bounded grid: ~1000 measured units at any scale
        // keeps capture memory flat while leaving the stop rule
        // plenty of headroom below fixed-n.
        sc.interval = core::SamplingConfig::chooseInterval(
            length, sc.unitSize, 1000);

        Row row;
        row.name = spec.name;

        // Capture once per store lifetime: both configs' live-point
        // libraries from ONE MultiSession streaming pass. A warm
        // store makes this column zero — the reuse the section is
        // about.
        {
            const Stopwatch t;
            const std::size_t captured =
                store.ensureLivePoints(spec, configs, sc);
            row.captureS = captured ? t.seconds() : 0.0;
            misses += captured;
        }
        // Warm shard libraries for the baseline, same one-pass
        // multi-config ensure (untimed: the sharded sections already
        // measure their capture).
        store.ensure(spec, configs, sc, length, kShards);

        // Load both paths' warm state out of the store ONCE. The
        // live-point load delta-decodes the whole grid and is the
        // sweep's amortized fixed cost — reported, not buried in
        // the per-study columns.
        std::vector<core::LivePointLibrary> lpLibs;
        std::vector<core::CheckpointLibrary> shardLibs;
        {
            const Stopwatch t;
            for (const auto &cfg : configs) {
                const auto key = core::LibraryKey::of(spec, cfg, sc);
                std::string error;
                auto lib = store.tryLoadLivePoints(key, &error);
                if (!lib)
                    SMARTS_FATAL("live-point store miss after "
                                 "ensure: ",
                                 error);
                lpLibs.push_back(std::move(*lib));
            }
            row.loadS = t.seconds();
        }
        for (const auto &cfg : configs) {
            auto lib =
                store.tryLoad(core::LibraryKey::of(spec, cfg, sc));
            if (!lib)
                SMARTS_FATAL("shard store miss after ensure");
            shardLibs.push_back(std::move(*lib));
        }

        auto factoryFor = [&spec](const uarch::MachineConfig &cfg) {
            return [&spec, &cfg] {
                return std::make_unique<core::SimSession>(spec, cfg);
            };
        };

        // Warm sharded study: every unit of every config, from the
        // resident shard libraries.
        row.shardS = 1e9;
        for (int rep = 0; rep < kReps; ++rep) {
            double s = 0.0;
            for (std::size_t c = 0; c < configs.size(); ++c) {
                const Stopwatch t;
                (void)core::SystematicSampler(sc).runSharded(
                    factoryFor(configs[c]), shardLibs[c], pool);
                s += t.seconds();
            }
            row.shardS = std::min(row.shardS, s);
        }

        // Warm anytime study: seeded-shuffle measurement with the
        // paper's stop rule, from the resident live-point libraries.
        // The measured sets are deterministic, so reps only tighten
        // the timing.
        std::vector<core::AnytimeResult> anytime(configs.size());
        row.anyS = 1e9;
        for (int rep = 0; rep < kReps; ++rep) {
            double s = 0.0;
            for (std::size_t c = 0; c < configs.size(); ++c) {
                core::AnytimeOptions aopt;
                aopt.target = target;
                const Stopwatch t;
                anytime[c] = core::SystematicSampler(sc).runAnytime(
                    factoryFor(configs[c]), lpLibs[c], pool, aopt);
                s += t.seconds();
            }
            row.anyS = std::min(row.anyS, s);
        }

        // Completion mode (epsilon = 0) pins the golden cpi column:
        // bit-identical to serial run() by contract.
        for (std::size_t c = 0; c < configs.size(); ++c) {
            core::AnytimeOptions aopt;
            aopt.target.epsilon = 0.0;
            const core::AnytimeResult full =
                core::SystematicSampler(sc).runAnytime(
                    factoryFor(configs[c]), lpLibs[c], pool, aopt);
            core::SimSession serialSession(spec, configs[c]);
            const core::SmartsEstimate serial =
                core::SystematicSampler(sc).run(serialSession);
            const bool identical = full.estimate.fingerprint() ==
                                   serial.fingerprint();
            identicalCount += identical ? 1 : 0;

            row.avail += anytime[c].unitsAvailable;
            row.measured += anytime[c].unitsMeasured;
            row.stopped |= anytime[c].earlyStopped;
            det.row()
                .add(spec.name)
                .add(configs[c].name)
                .add(anytime[c].unitsAvailable)
                .add(anytime[c].unitsMeasured)
                .add(anytime[c].earlyStopped ? "yes" : "no")
                .add(full.estimate.cpi(), 4)
                .add(identical ? "yes" : "NO");
        }
        earlyWins += row.measured < row.avail ? 1 : 0;

        times.row()
            .add(spec.name)
            .add(row.captureS, 2)
            .add(row.loadS, 2)
            .add(row.shardS, 3)
            .add(row.anyS, 3)
            .add(row.shardS / row.anyS, 1);
        rows.push_back(row);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");

    if (opt.section == "livepoint")
        emit(det, opt); // golden-pinned deterministic columns.
    else
        std::printf("%s\n", det.toString().c_str());
    std::printf("%s\n", times.toString().c_str());

    // The sweep headline: the study where the stop rule bites
    // hardest. That is the regime the live-point format exists for —
    // a warm config sweep whose cost is the measured units, not the
    // grid.
    const Row *sweep = &rows.front();
    for (const Row &row : rows)
        if (row.shardS / row.anyS > sweep->shardS / sweep->anyS)
            sweep = &row;
    const double sweepX = sweep->shardS / sweep->anyS;

    std::printf(
        "%s: %zu live-point librar%s captured this run (warm rerun "
        "captures none)\n"
        "completion-mode estimates bit-identical to serial run() "
        "for %zu/%zu (benchmark x config) studies\n"
        "early stop at %.1f%%/+/-%.0f%% measured fewer units than "
        "fixed-n on %zu/%zu benchmarks\n"
        "config sweep (%s, 2 configs): warm sharded %.3fs vs warm "
        "anytime %.3fs from resident libraries -> %.1fx "
        "(target >= 5x: %s); live-point load %.2fs amortizes "
        "across the sweep's reruns and targets\n",
        misses ? "COLD store" : "WARM store", misses,
        misses == 1 ? "y" : "ies", identicalCount,
        suite.size() * configs.size(), target.level * 100.0,
        target.epsilon * 100.0, earlyWins, suite.size(),
        sweep->name.c_str(), sweep->shardS, sweep->anyS, sweepX,
        sweepX >= 5.0 ? "MET" : "NOT MET", sweep->loadS);
    std::fflush(stdout);

    if (opt.jsonPath.empty())
        return;
    std::FILE *json = std::fopen(opt.jsonPath.c_str(), "w");
    if (!json)
        SMARTS_FATAL("cannot write ", opt.jsonPath);
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"table6_livepoint\",\n"
                 "  \"scale\": \"%s\",\n"
                 "  \"suite\": \"%s\",\n"
                 "  \"threads\": %u,\n"
                 "  \"confidence_level\": %.3f,\n"
                 "  \"epsilon\": %.2f,\n"
                 "  \"benchmarks\": [\n",
                 opt.scaleName(), opt.quickSuite ? "quick" : "standard",
                 pool.threadCount(), target.level, target.epsilon);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::fprintf(
            json,
            "    {\"name\": \"%s\", \"units_total\": %llu, "
            "\"units_measured\": %llu, \"early_stopped\": %s,\n"
            "     \"capture_s\": %.4f, \"livepoint_load_s\": %.4f, "
            "\"per_unit_measure_ms\": %.4f,\n"
            "     \"warm_sharded_s\": %.4f, \"warm_anytime_s\": "
            "%.4f, \"speedup_x\": %.2f}%s\n",
            row.name.c_str(),
            static_cast<unsigned long long>(row.avail),
            static_cast<unsigned long long>(row.measured),
            row.stopped ? "true" : "false", row.captureS, row.loadS,
            row.measured ? row.anyS * 1000.0 /
                               static_cast<double>(row.measured)
                         : 0.0,
            row.shardS, row.anyS, row.shardS / row.anyS,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(
        json,
        "  ],\n"
        "  \"early_stop_wins\": %zu,\n"
        "  \"suite_size\": %zu,\n"
        "  \"sweep\": {\"benchmark\": \"%s\", \"configs\": 2, "
        "\"units_total\": %llu, \"units_measured\": %llu,\n"
        "            \"warm_sharded_s\": %.4f, \"warm_anytime_s\": "
        "%.4f, \"speedup_x\": %.2f,\n"
        "            \"target_x\": 5.0, \"meets_target\": %s}\n"
        "}\n",
        earlyWins, suite.size(), sweep->name.c_str(),
        static_cast<unsigned long long>(sweep->avail),
        static_cast<unsigned long long>(sweep->measured),
        sweep->shardS, sweep->anyS, sweepX,
        sweepX >= 5.0 ? "true" : "false");
    std::fclose(json);
    std::printf("json: %s\n", opt.jsonPath.c_str());
    std::fflush(stdout);
}

/**
 * CheckpointStore as a cache service: the store section drives the
 * production cache path end to end — miss -> LEAPFROG capture
 * (measurement overlapped with capture at per-unit grain) ->
 * publish -> warm hits — and reports the cache-service metrics:
 * hit rate, lookup-latency percentiles, and a size-budgeted LRU GC
 * drill over the same entries. The golden-pinned columns are
 * identical cold and warm by contract: whatever path a lookup took
 * (leapfrog capture this run, or a store hit), the completion-mode
 * estimate it folds to is bit-identical to serial run(). The JSON
 * artifact (--json=, BENCH_store.json in CI) carries the service
 * metrics machine-readably.
 */
void
storeSection(const BenchOptions &opt)
{
    const auto cfg = uarch::MachineConfig::eightWay();
    const auto suite = opt.suite();
    exec::ThreadPool pool; // one worker per hardware thread.
    const std::string root = opt.storePath.empty()
                                 ? "table6_store_store"
                                 : opt.storePath;
    core::CheckpointStore store(root);
    constexpr int kLookupReps = 5;

    std::printf("=== Store service: leapfrog capture overlap, warm "
                "hits, budgeted LRU GC ===\n\nstore root: %s\n\n",
                root.c_str());

    // Deterministic, golden-pinned columns (see the header comment).
    TextTable det({"benchmark", "units", "cpi",
                   "bitwise = serial?"});
    TextTable times({"benchmark", "path", "leapfrog (s)",
                     "2-pass (s)", "overlap x"});

    struct Row
    {
        std::string name;
        bool hit = false;
        double leapS = 0.0, twoPassS = 0.0;
        std::uint64_t units = 0;
    };
    std::vector<Row> rows;
    std::vector<core::LibraryKey> keys;
    std::vector<double> lookupMs;

    for (const auto &spec : suite) {
        std::uint64_t length;
        {
            core::SimSession probe(spec, cfg);
            length =
                probe.fastForward(~0ull >> 1, core::WarmingMode::None);
        }
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = recommendedW(cfg);
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            length, sc.unitSize, 250);
        const auto key = core::LibraryKey::of(spec, cfg, sc);
        auto factory = [&spec, &cfg] {
            return std::make_unique<core::SimSession>(spec, cfg);
        };
        core::AnytimeOptions aopt;
        aopt.target.epsilon = 0.0; // completion: pin vs serial.

        Row row;
        row.name = spec.name;
        std::string error;
        core::AnytimeResult result;
        auto warm = store.tryLoadLivePoints(key, &error);
        row.hit = warm.has_value();
        if (warm) {
            result = core::SystematicSampler(sc).runAnytime(
                factory, *warm, pool, aopt);
        } else {
            // Cold miss, leapfrog path: measurement of captured
            // units overlaps capture of the rest, then the library
            // is published for every later run (and leader).
            core::SimSession capture(spec, cfg);
            core::LivePointLibrary collected;
            {
                const Stopwatch t;
                result =
                    core::SystematicSampler(sc).runAnytimeLeapfrog(
                        capture, factory, pool, aopt, &collected);
                row.leapS = t.seconds();
            }
            if (!store.saveLivePoints(collected, key, &error))
                SMARTS_WARN("store publish failed: ", error);
            // Baseline: the pre-leapfrog cold path — one full
            // capture pass, THEN measurement.
            {
                const Stopwatch t;
                core::SimSession capture2(spec, cfg);
                const core::LivePointLibrary serialLib =
                    core::LivePointLibrary::build(capture2, sc);
                (void)core::SystematicSampler(sc).runAnytime(
                    factory, serialLib, pool, aopt);
                row.twoPassS = t.seconds();
            }
        }

        // The golden columns: completion-mode estimate vs serial.
        core::SimSession serialSession(spec, cfg);
        const core::SmartsEstimate serial =
            core::SystematicSampler(sc).run(serialSession);
        const bool identical =
            result.estimate.fingerprint() == serial.fingerprint();
        row.units = result.unitsAvailable;
        det.row()
            .add(spec.name)
            .add(result.unitsAvailable)
            .add(result.estimate.cpi(), 4)
            .add(identical ? "yes" : "NO");

        // Cache-service lookups: warm hits timed one by one for the
        // latency percentiles (full load + delta-decode + checksum).
        for (int rep = 0; rep < kLookupReps; ++rep) {
            const Stopwatch t;
            const auto lib = store.tryLoadLivePoints(key, &error);
            if (!lib)
                SMARTS_FATAL("store miss after publish: ", error);
            lookupMs.push_back(t.seconds() * 1000.0);
        }

        times.row()
            .add(spec.name)
            .add(row.hit ? "warm hit" : "leapfrog")
            .add(row.leapS, 3)
            .add(row.twoPassS, 3)
            .add(row.hit ? 0.0 : row.twoPassS / row.leapS, 2);
        keys.push_back(key);
        rows.push_back(row);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");

    if (opt.section == "store")
        emit(det, opt); // golden-pinned deterministic columns.
    else
        std::printf("%s\n", det.toString().c_str());
    std::printf("%s\n", times.toString().c_str());

    // GC drill: republish every library into a budget that holds
    // the largest entry with headroom but not the full set;
    // LRU-by-atime eviction must keep the store within budget
    // whatever the save order.
    const std::string gcRoot = root + "_gc";
    std::filesystem::remove_all(gcRoot);
    core::StoreOptions gcOptions;
    {
        std::error_code ec;
        std::uint64_t total = 0, largest = 0;
        for (const core::LibraryKey &key : keys) {
            const std::uint64_t bytes = std::filesystem::file_size(
                store.livePointPathFor(key), ec);
            total += bytes;
            largest = std::max(largest, bytes);
        }
        gcOptions.budgetBytes =
            std::max(total / 2, largest * 3 / 2);
    }
    core::CheckpointStore gcStore(gcRoot, gcOptions);
    for (const core::LibraryKey &key : keys) {
        std::string error;
        const auto lib = store.tryLoadLivePoints(key, &error);
        if (!lib)
            SMARTS_FATAL("store miss during GC drill: ", error);
        if (!gcStore.saveLivePoints(*lib, key, &error))
            SMARTS_WARN("GC-drill publish failed: ", error);
    }
    const core::StoreCounters gc = gcStore.counters();
    const bool withinBudget =
        gcStore.totalBytes() <= gcOptions.budgetBytes;

    const core::StoreCounters c = store.counters();
    const std::uint64_t looked = c.hits + c.misses;
    const double hitRate =
        looked ? static_cast<double>(c.hits) /
                     static_cast<double>(looked)
               : 0.0;
    auto pct = [&lookupMs](double q) {
        std::vector<double> sorted = lookupMs;
        std::sort(sorted.begin(), sorted.end());
        if (sorted.empty())
            return 0.0;
        const double rank =
            q * static_cast<double>(sorted.size());
        std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
        idx = idx ? idx - 1 : 0;
        return sorted[std::min(idx, sorted.size() - 1)];
    };

    std::printf(
        "%s: %llu lookups, %llu hits, %llu misses -> hit rate "
        "%.3f\n"
        "lookup latency p50 %.3fms p90 %.3fms p99 %.3fms max "
        "%.3fms (%zu timed loads)\n"
        "GC drill: budget %llu bytes over %zu entries -> %llu "
        "evicted (%llu bytes), %llu bytes resident, within budget: "
        "%s\n",
        c.misses ? "COLD store" : "WARM store",
        static_cast<unsigned long long>(looked),
        static_cast<unsigned long long>(c.hits),
        static_cast<unsigned long long>(c.misses), hitRate,
        pct(0.50), pct(0.90), pct(0.99),
        lookupMs.empty()
            ? 0.0
            : *std::max_element(lookupMs.begin(), lookupMs.end()),
        lookupMs.size(),
        static_cast<unsigned long long>(gcOptions.budgetBytes),
        keys.size(), static_cast<unsigned long long>(gc.evictions),
        static_cast<unsigned long long>(gc.bytesEvicted),
        static_cast<unsigned long long>(gcStore.totalBytes()),
        withinBudget ? "yes" : "NO");
    std::fflush(stdout);

    if (opt.jsonPath.empty())
        return;
    std::FILE *json = std::fopen(opt.jsonPath.c_str(), "w");
    if (!json)
        SMARTS_FATAL("cannot write ", opt.jsonPath);
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"table6_store\",\n"
                 "  \"scale\": \"%s\",\n"
                 "  \"suite\": \"%s\",\n"
                 "  \"lookups\": %llu,\n"
                 "  \"hits\": %llu,\n"
                 "  \"misses\": %llu,\n"
                 "  \"hit_rate\": %.4f,\n"
                 "  \"lookup_ms\": {\"p50\": %.3f, \"p90\": %.3f, "
                 "\"p99\": %.3f, \"max\": %.3f},\n"
                 "  \"benchmarks\": [\n",
                 opt.scaleName(),
                 opt.quickSuite ? "quick" : "standard",
                 static_cast<unsigned long long>(looked),
                 static_cast<unsigned long long>(c.hits),
                 static_cast<unsigned long long>(c.misses), hitRate,
                 pct(0.50), pct(0.90), pct(0.99),
                 lookupMs.empty()
                     ? 0.0
                     : *std::max_element(lookupMs.begin(),
                                         lookupMs.end()));
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        std::fprintf(
            json,
            "    {\"name\": \"%s\", \"path\": \"%s\", \"units\": "
            "%llu, \"leapfrog_s\": %.4f, \"two_pass_s\": %.4f, "
            "\"overlap_x\": %.2f}%s\n",
            row.name.c_str(), row.hit ? "warm_hit" : "leapfrog",
            static_cast<unsigned long long>(row.units), row.leapS,
            row.twoPassS,
            row.hit ? 0.0 : row.twoPassS / row.leapS,
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(
        json,
        "  ],\n"
        "  \"gc\": {\"budget_bytes\": %llu, \"entries_saved\": %zu, "
        "\"evictions\": %llu, \"bytes_evicted\": %llu,\n"
        "         \"gc_runs\": %llu, \"total_bytes\": %llu, "
        "\"within_budget\": %s}\n"
        "}\n",
        static_cast<unsigned long long>(gcOptions.budgetBytes),
        keys.size(), static_cast<unsigned long long>(gc.evictions),
        static_cast<unsigned long long>(gc.bytesEvicted),
        static_cast<unsigned long long>(gc.gcRuns),
        static_cast<unsigned long long>(gcStore.totalBytes()),
        withinBudget ? "true" : "false");
    std::fclose(json);
    std::printf("json: %s\n", opt.jsonPath.c_str());
    std::fflush(stdout);
}

void
designStudySection(const BenchOptions &opt)
{
    const auto cfg8 = uarch::MachineConfig::eightWay();
    const auto cfg16 = uarch::MachineConfig::sixteenWay();
    const auto suite = opt.suite();

    std::printf("=== Design study: parallel matched-pair engine vs "
                "serial single-config path ===\n\n");

    // Serial path: the pre-engine workflow — one SimSession per
    // (benchmark, config), each paying its own functional-warming
    // pass, sampled densely (k=10) because independent runs need
    // n units per config for a confident comparison.
    struct SerialRow
    {
        double speedup = 0.0;
        double deltaCi = 0.0; ///< independent-runs CI on the delta.
        std::uint64_t units = 0;
    };
    std::vector<SerialRow> serialRows(suite.size());
    double serialSeconds = 0.0;
    {
        const Stopwatch t;
        for (std::size_t i = 0; i < suite.size(); ++i) {
            core::SamplingConfig sc;
            sc.unitSize = 1000;
            sc.interval = 10;
            sc.warming = core::WarmingMode::Functional;

            sc.detailedWarming = recommendedW(cfg8);
            core::SimSession s8(suite[i], cfg8);
            const auto e8 = core::SystematicSampler(sc).run(s8);

            sc.detailedWarming = recommendedW(cfg16);
            core::SimSession s16(suite[i], cfg16);
            const auto e16 = core::SystematicSampler(sc).run(s16);

            serialRows[i].speedup = e8.cpi() / e16.cpi();
            // Independent-runs CI on the CPI delta, relative to the
            // 8-way baseline: root-sum-square of the two ABSOLUTE
            // half-widths over cpi_8.
            const double a = e8.cpiConfidenceInterval(0.997) * e8.cpi();
            const double b =
                e16.cpiConfidenceInterval(0.997) * e16.cpi();
            serialRows[i].deltaCi = std::sqrt(a * a + b * b) / e8.cpi();
            serialRows[i].units = e8.units() + e16.units();
            std::printf(".");
            std::fflush(stdout);
        }
        serialSeconds = t.seconds();
    }

    // Engine path: matched multi-config jobs — ONE warming stream
    // feeds both timing models, and the matched-pair variance
    // reduction lets k grow 3x while keeping the comparison CI at
    // or below the serial path's.
    std::vector<exec::ExperimentSpec> specs(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        specs[i].benchmark = suite[i];
        specs[i].configs = {cfg8, cfg16};
        specs[i].sampling.unitSize = 1000;
        specs[i].sampling.detailedWarming =
            std::max(recommendedW(cfg8), recommendedW(cfg16));
        specs[i].sampling.interval = 30;
        specs[i].sampling.warming = core::WarmingMode::Functional;
    }

    exec::ExperimentRunner runner; // one worker per hardware thread.
    double engineSeconds = 0.0;
    std::vector<exec::ExperimentResult> results;
    {
        const Stopwatch t;
        results = runner.run(specs);
        engineSeconds = t.seconds();
    }
    std::printf("\n\n");

    TextTable table({"benchmark", "serial speedup", "+/- delta",
                     "engine speedup", "+/- delta (matched)",
                     "units serial", "units matched",
                     "CI tighter?"});
    int tighter = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const core::MatchedEstimate &est = results[i].estimate;
        const double matchedCi = est.deltaCiRelative(1, 0.997);
        const bool ok = matchedCi <= serialRows[i].deltaCi;
        tighter += ok ? 1 : 0;
        table.row()
            .add(suite[i].name)
            .add(serialRows[i].speedup, 3)
            .addPercent(serialRows[i].deltaCi, 2)
            .add(est.speedup(1), 3)
            .addPercent(matchedCi, 2)
            .add(serialRows[i].units)
            .add(est.perConfig[0].units() * 2)
            .add(ok ? "yes" : "NO");
    }
    std::printf("%s\n", table.toString().c_str());

    // Determinism spot check: the same batch on 1 thread must give
    // byte-identical estimates.
    exec::ExperimentRunner oneThread(1);
    const bool identical =
        fingerprint(oneThread.run(specs)) == fingerprint(results);

    const double speedup = serialSeconds / engineSeconds;
    const double usableThreads = static_cast<double>(
        std::min<std::size_t>(runner.threadCount(), suite.size()));
    std::printf(
        "serial path %.2fs; engine %.2fs on %u thread(s) -> "
        "%.2fx wall-clock speedup\n"
        "matched delta CI at-or-below the serial path's for %d/%zu "
        "benchmarks with ~3x fewer sampled units (exceptions: "
        "phase-alternating kernels decorrelate across configs, and "
        "lopsided speedups leave the independent CI tiny anyway)\n"
        "estimates bit-identical across thread counts: %s\n"
        "target >=2x: %s (per-thread matched-sharing factor %.2fx "
        "multiplies by the thread count; >=2 hardware threads puts "
        "the target comfortably in reach)\n",
        serialSeconds, engineSeconds, runner.threadCount(), speedup,
        tighter, suite.size(), identical ? "yes" : "NO",
        speedup >= 2.0 ? "MET"
                       : (runner.threadCount() < 2
                              ? "not met on this 1-thread host"
                              : "NOT MET"),
        speedup / usableThreads);
    std::fflush(stdout);
}

/**
 * Multi-programmed co-run mixes (mp::MixSampler): two programs
 * advance in lockstep over one shared L2 while per-program shadow
 * tags replay each program's would-be-solo L2 stream, so ONE
 * sampled co-run yields both the co-run estimate and a matched
 * solo estimate per program — the paper's matched-pair trick
 * applied to QoS. The golden-pinned columns are all deterministic:
 * per-program CPIs, slowdown, solo/co-run L2 miss rates, the
 * matched-pair CI on the slowdown vs what independent solo and
 * co-run runs would give on the same units (the "ci x" column —
 * the table's headline is that matching buys >= 2x tighter CIs),
 * and the bitwise serial-vs-threads verdict. The JSON artifact
 * (--json=, BENCH_mix.json in CI) carries the same numbers
 * machine-readably plus the wall-clock timings.
 */
void
mixSection(const BenchOptions &opt)
{
    const auto machine = uarch::MachineConfig::eightWay();

    std::printf("=== Co-run mixes: shadow-tag QoS estimation, "
                "matched-pair slowdown CIs ===\n\n");

    // Three regimes from the quick suite. QoS mixes (moderate
    // contention): the would-be-solo CPI variance is a correlated,
    // non-trivial share of the co-run variance, so the per-unit
    // pairing cancels it and the matched CI is >= 2x tighter — the
    // regime QoS/SLA estimation lives in, and the rows that carry
    // the >= 2x acceptance target. A no-contention control (the
    // shadow tags PROVE slowdown 1.0 exactly: matched CI 0 where
    // independent runs still pay full sampling noise). And the
    // saturated pair (chase and mix both overflow the shared
    // 256 KiB L2, under both policies): contention noise swamps the
    // solo variance, so pairing converges to the independent CI —
    // never worse, but no longer 2x.
    struct MixSpec
    {
        const char *a;
        const char *b;
        mem::PartitionPolicy policy;
        bool qos; ///< carries the >= 2x matched-pair target.
    };
    const MixSpec mixes[] = {
        {"chase-1", "bsearch-1", mem::PartitionPolicy::Shared, true},
        {"mix-1", "bsearch-1", mem::PartitionPolicy::Shared, true},
        {"bsearch-1", "stream-1", mem::PartitionPolicy::Shared,
         true},
        {"fsm-1", "sort-1", mem::PartitionPolicy::Shared, false},
        {"chase-1", "mix-1", mem::PartitionPolicy::Shared, false},
        {"chase-1", "mix-1", mem::PartitionPolicy::WayPartitioned,
         false},
    };

    TextTable det({"mix", "policy", "program", "units", "co cpi",
                   "solo cpi", "slowdown", "solo L2 mr", "co L2 mr",
                   "matched ci%", "indep ci%", "ci x", "qos target?",
                   "bitwise = serial?"});

    struct Row
    {
        std::string mix;
        std::string policy;
        std::string program;
        double slowdown, soloMr, coMr;
        double matched, indep, ratio;
        bool qos;
        bool identical;
    };
    std::vector<Row> rows;
    double sumSerialS = 0.0, sumThreadedS = 0.0;
    double minRatio = 0.0;
    bool haveRatio = false;
    std::size_t identicalCount = 0;

    for (const MixSpec &ms : mixes) {
        const mp::WorkloadMix mix = mp::WorkloadMix::of(
            {workloads::findBenchmark(ms.a, opt.scale),
             workloads::findBenchmark(ms.b, opt.scale)},
            ms.policy);

        core::SamplingConfig sc;
        sc.unitSize = 500;
        sc.detailedWarming = 1000;
        sc.interval = 50;
        sc.warming = core::WarmingMode::Functional;

        mp::MixEstimate serial;
        double serialS;
        {
            const Stopwatch t;
            serial = mp::runMix(mix, machine, sc);
            serialS = t.seconds();
        }
        mp::MixEstimate threaded;
        double threadedS;
        {
            const Stopwatch t;
            threaded = mp::runMix(mix, machine, sc, /*threads=*/5);
            threadedS = t.seconds();
        }
        const bool identical =
            serial.fingerprint() == threaded.fingerprint();
        identicalCount += identical ? 1 : 0;
        sumSerialS += serialS;
        sumThreadedS += threadedS;

        for (std::size_t p = 0; p < serial.perProgram.size(); ++p) {
            const mp::MixProgramEstimate &pe = serial.perProgram[p];
            const double matched = pe.slowdownCiRelative(0.95);
            const double indep =
                pe.independentSlowdownCiRelative(0.95);
            const double ratio = matched > 0.0 ? indep / matched
                                               : 0.0;
            // A matched CI of exactly 0 (uncontended lane: the
            // shadow tags prove the solo world bit-identical)
            // beats any finite independent CI; it is excluded
            // from the min rather than folded in as 0.
            if (ms.qos && ratio > 0.0) {
                minRatio = haveRatio ? std::min(minRatio, ratio)
                                     : ratio;
                haveRatio = true;
            }
            det.row()
                .add(mix.name)
                .add(mem::partitionPolicyName(ms.policy))
                .add(mix.programs[p].name)
                .add(pe.coRun.units())
                .add(pe.coRun.cpi(), 4)
                .add(pe.solo.cpi(), 4)
                .add(pe.slowdown(), 4)
                .add(pe.soloMissRate(), 4)
                .add(pe.coMissRate(), 4)
                .add(matched * 100.0, 3)
                .add(indep * 100.0, 3)
                .add(ratio, 1)
                .add(ms.qos ? "yes" : "no")
                .add(identical ? "yes" : "NO");
            rows.push_back({mix.name,
                            mem::partitionPolicyName(ms.policy),
                            mix.programs[p].name, pe.slowdown(),
                            pe.soloMissRate(), pe.coMissRate(),
                            matched, indep, ratio, ms.qos,
                            identical});
        }
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");

    if (opt.section == "mix")
        emit(det, opt); // golden-pinned deterministic columns.
    else
        std::printf("%s\n", det.toString().c_str());

    std::printf(
        "serial %.2fs | 5-thread sharded %.2fs\n"
        "estimates bit-identical serial vs 5 threads for %zu/%zu "
        "mixes\n"
        "matched-pair slowdown CIs vs independent solo+co-run "
        "runs on the same units,\n"
        "over the QoS-regime rows: worst ratio %.1fx, target >=2x "
        "tighter: %s\n"
        "(saturated rows converge toward the independent CI as "
        "contention noise swamps\n"
        "the solo variance; uncontended lanes are exact — matched "
        "CI 0)\n",
        sumSerialS, sumThreadedS, identicalCount,
        sizeof(mixes) / sizeof(mixes[0]), haveRatio ? minRatio : 0.0,
        haveRatio && minRatio >= 2.0 ? "MET" : "NOT MET");
    std::fflush(stdout);

    if (opt.jsonPath.empty())
        return;
    std::FILE *json = std::fopen(opt.jsonPath.c_str(), "w");
    if (!json)
        SMARTS_FATAL("cannot write ", opt.jsonPath);
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"table6_mix\",\n"
                 "  \"scale\": \"%s\",\n"
                 "  \"serial_s\": %.4f,\n"
                 "  \"threaded_s\": %.4f,\n"
                 "  \"programs\": [\n",
                 opt.scaleName(), sumSerialS, sumThreadedS);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            json,
            "    {\"mix\": \"%s\", \"policy\": \"%s\", "
            "\"program\": \"%s\",\n"
            "     \"slowdown\": %.6f, \"solo_miss_rate\": %.6f, "
            "\"co_miss_rate\": %.6f,\n"
            "     \"matched_ci_rel\": %.6f, "
            "\"independent_ci_rel\": %.6f, \"ci_ratio\": %.2f, "
            "\"qos_target\": %s, \"bitwise_serial\": %s}%s\n",
            r.mix.c_str(), r.policy.c_str(), r.program.c_str(),
            r.slowdown, r.soloMr, r.coMr, r.matched, r.indep,
            r.ratio, r.qos ? "true" : "false",
            r.identical ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n"
                 "  \"min_ci_ratio\": %.2f,\n"
                 "  \"target_ci_ratio\": 2.0,\n"
                 "  \"meets_target\": %s\n"
                 "}\n",
                 haveRatio ? minRatio : 0.0,
                 haveRatio && minRatio >= 2.0 ? "true" : "false");
    std::fclose(json);
    std::printf("json: %s\n", opt.jsonPath.c_str());
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseOptions(argc, argv, /*default_quick=*/true,
                                    "table6_runtimes.csv");
    // Runtime comparisons need non-trivial lengths.
    bool scale_flag = false;
    for (int i = 1; i < argc; ++i)
        scale_flag |= std::string(argv[i]).rfind("--scale=", 0) == 0;
    if (!scale_flag)
        opt.scale = workloads::Scale::Small;

    if (opt.section == "sharded") {
        banner("Table 6 (sharded section): checkpointed functional "
               "warming",
               opt);
        shardedSection(opt);
        return 0;
    }
    if (opt.section == "persist") {
        banner("Table 6 (persist section): persistent checkpoint "
               "store",
               opt);
        persistSection(opt);
        return 0;
    }
    if (opt.section == "distrib") {
        banner("Table 6 (distrib section): distributed shard "
               "runners",
               opt);
        distribSection(opt);
        return 0;
    }
    if (opt.section == "distrib_scale") {
        banner("Table 6 (distrib_scale section): elastic unit-range "
               "scheduling at 1/2/4 runners",
               opt);
        distribScaleSection(opt);
        return 0;
    }
    if (opt.section == "livepoint") {
        banner("Table 6 (livepoint section): per-unit checkpoints "
               "+ anytime early stopping",
               opt);
        livepointSection(opt);
        return 0;
    }
    if (opt.section == "store") {
        banner("Table 6 (store section): cache-service store — "
               "leapfrog capture, hit rate, budgeted GC",
               opt);
        storeSection(opt);
        return 0;
    }
    if (opt.section == "mix") {
        banner("Table 6 (mix section): multi-programmed co-runs — "
               "shadow-tag QoS, matched-pair slowdown CIs",
               opt);
        mixSection(opt);
        return 0;
    }
    if (!opt.section.empty())
        SMARTS_FATAL("unknown --section '", opt.section,
                     "' (supported: sharded, persist, distrib, "
                     "distrib_scale, livepoint, store, mix)");

    banner("Table 6: runtimes — detailed vs functional vs SMARTS "
           "(8-way)",
           opt);

    const auto config = uarch::MachineConfig::eightWay();

    TextTable table({"benchmark", "insts (M)", "detailed (s)",
                     "functional (s)", "SMARTS (s)", "SMARTS/func",
                     "speedup vs detailed", "extrapolated @10B"});

    double sum_det = 0, sum_smarts = 0, sum_func = 0;
    stats::OnlineStats paper_scale_speedup;

    for (const auto &spec : opt.suite()) {
        // Functional-only runtime.
        std::uint64_t length;
        double func_s;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            length = s.fastForward(~0ull >> 1, core::WarmingMode::None);
            func_s = t.seconds();
        }

        // Full detailed runtime.
        double det_s;
        {
            core::SimSession s(spec, config);
            const Stopwatch t;
            while (!s.finished()) {
                const auto seg = s.detailedRun(1'000'000);
                if (!seg.instructions && !seg.cycles)
                    break;
            }
            det_s = t.seconds();
        }

        // SMARTS runtime (initial-sample configuration).
        double smarts_s;
        core::SmartsEstimate est;
        {
            core::SamplingConfig sc;
            sc.unitSize = 1000;
            sc.detailedWarming = recommendedW(config);
            sc.warming = core::WarmingMode::Functional;
            sc.interval = core::SamplingConfig::chooseInterval(
                length, sc.unitSize,
                std::max<std::uint64_t>(length / 1000 / 8, 60));
            core::SimSession s(spec, config);
            const Stopwatch t;
            est = core::SystematicSampler(sc).run(s);
            smarts_s = t.seconds();
        }

        sum_det += det_s;
        sum_func += func_s;
        sum_smarts += smarts_s;

        // Extrapolate to a paper-scale 10B-instruction benchmark with
        // n = 10,000 at the measured per-mode rates of this benchmark.
        const double s_f = static_cast<double>(length) / func_s;
        const double s_d = static_cast<double>(length) / det_s;
        const double s_fw =
            s_f * 0.45; // measured S_FW/S_F on this host (fig4 bench)
        const core::RateParams host{1.0, s_d / s_f, s_fw / s_f};
        const double rate = core::smartsRateFunctionalWarming(
            10'000'000'000ull, 10'000, 1000, recommendedW(config),
            host);
        const double paper_speedup =
            core::speedupOverDetailed(rate, host);
        paper_scale_speedup.add(paper_speedup);

        char extrapolated[32];
        std::snprintf(extrapolated, sizeof(extrapolated), "%.0fx",
                      paper_speedup);
        table.row()
            .add(spec.name)
            .add(static_cast<double>(length) / 1e6, 1)
            .add(det_s, 2)
            .add(func_s, 2)
            .add(smarts_s, 2)
            .add(smarts_s / func_s, 1)
            .add(det_s / smarts_s, 1)
            .add(std::string(extrapolated));
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    emit(table, opt);

    std::printf("totals: detailed %.1fs, functional %.1fs, SMARTS "
                "%.1fs; aggregate measured speedup %.1fx at this "
                "scale.\nmean extrapolated speedup at paper scale "
                "(10B insts, n=10,000): %.0fx (paper: 35x on 8-way).\n"
                "The asymptotic speedup is ~S_FW/S_D: the paper's "
                "0.55*60 = 33; our detailed model is ~2-3x faster "
                "relative to functional than sim-outorder was "
                "(S_D ~ 1/20 vs 1/60), which caps our extrapolated "
                "speedup proportionally — the rate decoupling the "
                "paper predicts (Section 3.4) is exactly what the "
                "S_FW column of the Figure 4 bench shows.\n\n",
                sum_det, sum_func, sum_smarts, sum_det / sum_smarts,
                paper_scale_speedup.mean());

    designStudySection(opt);
    std::printf("\n");
    shardedSection(opt);
    std::printf("\n");
    persistSection(opt);
    std::printf("\n");
    distribSection(opt);
    std::printf("\n");
    distribScaleSection(opt);
    std::printf("\n");
    livepointSection(opt);
    return 0;
}
