/**
 * @file
 * Figure 3 reproduction: the minimum number of instructions that must
 * be *measured* (n·U) to reach common confidence targets, and that
 * number as a fraction of the benchmark, for U = 10.
 *
 * Paper shape to match: even the worst benchmark needs only a tiny
 * fraction of its stream measured (paper: < 0.1% at ±1%/99.7% on
 * 8-way; mostly ~0.001-0.03% at ±3%); n varies little across
 * benchmarks because V_CPI values are similar.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/confidence.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(
        argc, argv, /*default_quick=*/false, "fig3_min_instructions.csv");
    banner("Figure 3: minimum measured instructions (U=10)", opt);

    const struct
    {
        const char *label;
        stats::ConfidenceSpec spec;
    } targets[] = {
        {"±3% 95%", {0.95, 0.03}},
        {"±3% 99.7%", {0.997, 0.03}},
        {"±1% 95%", {0.95, 0.01}},
        {"±1% 99.7%", {0.997, 0.01}},
    };

    TextTable table({"benchmark", "V(U=10)", "n·U ±3%/95%",
                     "n·U ±3%/99.7%", "n·U ±1%/95%", "n·U ±1%/99.7%",
                     "% of bench (±3%/99.7%)"});

    for (const auto &machine : machines(opt)) {
        core::ReferenceRunner runner(opt.scale, machine);
        double worst_fraction = 0.0;
        for (const auto &spec : opt.suite()) {
            const core::ReferenceResult ref = runner.get(spec);
            const double cv = core::cvAtUnitSize(ref, 10);
            table.row().add(spec.name + " (" + machine.name + ")");
            table.add(cv, 3);
            double fraction_headline = 0;
            for (const auto &t : targets) {
                const std::uint64_t n =
                    stats::requiredSampleSize(cv, t.spec);
                table.add(n * 10);
                if (&t == &targets[1]) {
                    fraction_headline =
                        static_cast<double>(n * 10) /
                        static_cast<double>(ref.instructions);
                }
            }
            table.addPercent(fraction_headline, 4);
            worst_fraction = std::max(worst_fraction, fraction_headline);
            std::printf(".");
            std::fflush(stdout);
        }
        std::printf("\nworst-case measured fraction on %s at ±3%%/99.7%%:"
                    " %.4f%%\n(paper: all SPEC2K below 0.03%% at this "
                    "target; our benchmarks are ~1000x shorter, so "
                    "fractions scale up by ~1000x at equal n)\n\n",
                    machine.name.c_str(), worst_fraction * 100.0);
    }
    emit(table, opt);
    return 0;
}
