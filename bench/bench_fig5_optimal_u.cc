/**
 * @file
 * Figure 5 reproduction: the fraction of the benchmark that must be
 * simulated in detail, n·(U+W)/N, as a function of the sampling unit
 * size U, for several detailed-warming budgets W. n is derived from
 * the measured V_CPI(U) for a 99.7% ±3% target.
 *
 * The per-unit-size n = ((z·V(U))/ε)² is a property of the
 * benchmark's variability alone and does not depend on the
 * population size (paper Section 2), so the detailed *fraction* is
 * reported against the paper-scale population N = 10B instructions —
 * our synthetic benchmarks supply V(U), the nominal N supplies the
 * denominator the paper's figure uses.
 *
 * Paper shape to match: with W = 0 the smallest U wins; with real W
 * the optimum moves into U ≈ 100-10,000; U = 1000 stays within a
 * small factor of optimal everywhere (so the paper fixes U = 1000).
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/confidence.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(
        argc, argv, /*default_quick=*/true, "fig5_optimal_u.csv");
    banner("Figure 5: detailed fraction vs U, optimal U", opt);

    const auto config = uarch::MachineConfig::eightWay();
    core::ReferenceRunner runner(opt.scale, config);
    const stats::ConfidenceSpec target{0.997, 0.03};
    const double nominalN = 1e10; // paper-scale benchmark length

    const std::vector<std::uint64_t> unit_sizes = {10,     100,  1000,
                                                   10'000, 100'000};
    const std::vector<std::uint64_t> warmings = {0, 1000, 100'000};

    TextTable table({"benchmark", "W", "U=10", "U=100", "U=1000",
                     "U=10^4", "U=10^5", "optimal U"});

    int u1000_good = 0, cases = 0;
    int optimum_moved = 0;
    for (const auto &spec : opt.suite()) {
        const core::ReferenceResult ref = runner.get(spec);
        std::uint64_t best_u_w0 = 0;
        for (const std::uint64_t w : warmings) {
            table.row().add(spec.name).add(w);
            double best_frac = 1e300;
            std::uint64_t best_u = 0;
            double frac_u1000 = 0;
            for (const std::uint64_t u : unit_sizes) {
                // CV at large U needs enough units to estimate; skip
                // unit sizes leaving fewer than 16 units in the trace.
                const double cv =
                    ref.instructions / u >= 16
                        ? core::cvAtUnitSize(ref, u)
                        : core::cvAtUnitSize(
                              ref, ref.instructions / 16);
                const std::uint64_t n =
                    stats::requiredSampleSize(cv, target);
                const double frac =
                    static_cast<double>(n) *
                    static_cast<double>(u + w) / nominalN;
                table.addPercent(frac, 4);
                if (frac < best_frac) {
                    best_frac = frac;
                    best_u = u;
                }
                if (u == 1000)
                    frac_u1000 = frac;
            }
            table.add(best_u);
            if (w == 0)
                best_u_w0 = best_u;
            else if (best_u > best_u_w0)
                ++optimum_moved;
            ++cases;
            if (frac_u1000 <= best_frac * 10.0 + 1e-12)
                ++u1000_good;
        }
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    emit(table, opt);
    std::printf("shape check: nonzero W moved the optimal U upward in "
                "%d cases; U=1000 within 10x of the optimal detailed "
                "fraction in %d/%d cases (the paper's 'choosing the "
                "optimal U gains at most tens of minutes').\n",
                optimum_moved, u1000_good, cases);
    return 0;
}
