/**
 * @file
 * Figure 6 reproduction: CPI estimated by one SMARTS run with the
 * generic initial sample size, per benchmark: the actual error
 * against the full-stream reference and the predicted 99.7%
 * confidence interval; benchmarks with CIs above ±3% are rerun with
 * n_tuned.
 *
 * Paper shape to match: actual error well inside the predicted CI
 * for nearly all benchmarks (average |error| ~0.64%); a few
 * benchmarks miss the ±3% CI on the first try and meet it after the
 * n_tuned rerun.
 *
 * Scaling note: at paper scale n_init = 10,000 out of millions of
 * units; our benchmarks have thousands of units, so n_init is scaled
 * to ~N/8 to keep k ≈ 8 and preserve the procedure's structure.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/procedure.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseOptions(argc, argv, /*default_quick=*/false,
                                    "fig6_cpi_estimates.csv");
    bool machine_flag = false;
    for (int i = 1; i < argc; ++i)
        machine_flag |= std::string(argv[i]).rfind("--machine=", 0) == 0;
    if (!machine_flag)
        opt.runSixteen = true;
    banner("Figure 6: SMARTS CPI estimates with the initial sample",
           opt);

    TextTable table({"machine", "benchmark", "ref CPI", "est CPI",
                     "actual err", "99.7% CI", "within CI+2%?",
                     "n_tuned rerun err"});

    for (const auto &config : machines(opt)) {
        core::ReferenceRunner runner(opt.scale, config);
        stats::OnlineStats abs_err;
        stats::OnlineStats final_abs_err;
        int ci_ok = 0, total = 0, reruns = 0;

        for (const auto &spec : opt.suite()) {
            const core::ReferenceResult ref = runner.get(spec);

            core::ProcedureConfig pc;
            pc.unitSize = 1000;
            pc.detailedWarming = recommendedW(config);
            pc.warming = core::WarmingMode::Functional;
            pc.target = {0.997, 0.03};
            pc.nInit = std::max<std::uint64_t>(
                ref.instructions / 1000 / 8, 60);

            const core::SmartsProcedure proc(pc);
            const auto factory = [&] {
                return std::make_unique<core::SimSession>(spec, config);
            };

            // Initial run only (the figure's bars); procedure handles
            // the rerun when needed.
            const core::ProcedureResult result =
                proc.estimate(factory, ref.instructions);

            const auto &init = result.initial;
            const double err = (init.cpi() - ref.cpi) / ref.cpi;
            const double ci = init.cpiConfidenceInterval(0.997);
            abs_err.add(std::abs(err));
            ++total;
            // Sampling CI + the paper's ~2% empirical warming-bias
            // budget.
            const bool ok = std::abs(err) <= ci + 0.02;
            ci_ok += ok ? 1 : 0;

            std::string rerun_err = "-";
            if (!result.metOnFirstTry()) {
                ++reruns;
                const double terr =
                    (result.tuned->cpi() - ref.cpi) / ref.cpi;
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%+.2f%%",
                              terr * 100.0);
                rerun_err = buf;
            }
            final_abs_err.add(
                std::abs(result.final().cpi() - ref.cpi) / ref.cpi);

            table.row()
                .add(config.name)
                .add(spec.name)
                .add(ref.cpi, 4)
                .add(init.cpi(), 4)
                .addPercent(err, 2)
                .addPercent(ci, 2)
                .add(ok ? "yes" : "NO")
                .add(rerun_err);
            std::printf(".");
            std::fflush(stdout);
        }
        std::printf("\n%s: initial-sample mean |error| = %.2f%%; "
                    "final (after n_tuned) mean |error| = %.2f%% over "
                    "%d benchmarks (paper final: 0.64%%); %d/%d within "
                    "CI+2%%; %d n_tuned reruns\n",
                    config.name.c_str(), abs_err.mean() * 100.0,
                    final_abs_err.mean() * 100.0, total, ci_ok, total,
                    reruns);
    }
    std::printf("\n");
    emit(table, opt);
    return 0;
}
