/**
 * @file
 * Figure 6 reproduction: CPI estimated by one SMARTS run with the
 * generic initial sample size, per benchmark: the actual error
 * against the full-stream reference and the predicted 99.7%
 * confidence interval; benchmarks with CIs above ±3% are rerun with
 * n_tuned.
 *
 * Paper shape to match: actual error well inside the predicted CI
 * for nearly all benchmarks (average |error| ~0.64%); a few
 * benchmarks miss the ±3% CI on the first try and meet it after the
 * n_tuned rerun.
 *
 * Scaling note: at paper scale n_init = 10,000 out of millions of
 * units; our benchmarks have thousands of units, so n_init is scaled
 * to ~N/8 to keep k ≈ 8 and preserve the procedure's structure.
 *
 * Execution: every (machine, benchmark) cell — reference plus
 * two-pass procedure — is an independent job sharded across the
 * exec-layer work-stealing pool; rows are emitted in batch order, so
 * the output (and the golden CSV) is identical at any thread count.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "core/checkpoint_store.hh"
#include "core/procedure.hh"
#include "exec/thread_pool.hh"

using namespace smarts;
using namespace smarts::bench;

namespace {

struct CellResult
{
    double refCpi = 0.0;
    double initCpi = 0.0;
    double err = 0.0;
    double ci = 0.0;
    bool ok = false;
    bool rerun = false;
    double rerunErr = 0.0;
    double finalAbsErr = 0.0;
};

/**
 * @p store (optional, from --store=) switches the two-pass
 * procedure to its store-backed sharded overload on @p pool:
 * bit-identical estimates, but warm state comes from (and is
 * persisted into) the shipped store instead of being recaptured
 * per run.
 */
CellResult
runCell(const workloads::BenchmarkSpec &spec,
        const uarch::MachineConfig &config, workloads::Scale scale,
        core::CheckpointStore *store, exec::ThreadPool *pool)
{
    core::ReferenceRunner runner(scale, config);
    const core::ReferenceResult ref = runner.get(spec);

    core::ProcedureConfig pc;
    pc.unitSize = 1000;
    pc.detailedWarming = recommendedW(config);
    pc.warming = core::WarmingMode::Functional;
    pc.target = {0.997, 0.03};
    pc.nInit =
        std::max<std::uint64_t>(ref.instructions / 1000 / 8, 60);

    const core::SmartsProcedure proc(pc);
    const auto factory = [&] {
        return std::make_unique<core::SimSession>(spec, config);
    };

    // Initial run only (the figure's bars); procedure handles the
    // rerun when needed.
    const core::ProcedureResult result =
        store ? proc.estimateSharded(factory, spec, config,
                                     ref.instructions, *pool, 8,
                                     *store)
              : proc.estimate(factory, ref.instructions);

    CellResult cell;
    const auto &init = result.initial;
    cell.refCpi = ref.cpi;
    cell.initCpi = init.cpi();
    cell.err = (init.cpi() - ref.cpi) / ref.cpi;
    cell.ci = init.cpiConfidenceInterval(0.997);
    // Sampling CI + the paper's ~2% empirical warming-bias budget.
    cell.ok = std::abs(cell.err) <= cell.ci + 0.02;
    cell.rerun = !result.metOnFirstTry();
    if (cell.rerun)
        cell.rerunErr = (result.tuned->cpi() - ref.cpi) / ref.cpi;
    cell.finalAbsErr =
        std::abs(result.final().cpi() - ref.cpi) / ref.cpi;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opt = parseOptions(argc, argv, /*default_quick=*/false,
                                    "fig6_cpi_estimates.csv");
    bool machine_flag = false;
    for (int i = 1; i < argc; ++i)
        machine_flag |= std::string(argv[i]).rfind("--machine=", 0) == 0;
    if (!machine_flag)
        opt.runSixteen = true;
    banner("Figure 6: SMARTS CPI estimates with the initial sample",
           opt);

    TextTable table({"machine", "benchmark", "ref CPI", "est CPI",
                     "actual err", "99.7% CI", "within CI+2%?",
                     "n_tuned rerun err"});

    const auto configs = machines(opt);
    const auto suite = opt.suite();

    // One job per (machine, benchmark) cell, machine-major order.
    std::vector<CellResult> cells(configs.size() * suite.size());
    exec::ThreadPool pool; // one worker per hardware thread.
    if (opt.storePath.empty()) {
        exec::parallelForIndexed(
            pool, cells.size(), [&](std::size_t i) {
                const auto &config = configs[i / suite.size()];
                const auto &spec = suite[i % suite.size()];
                cells[i] = runCell(spec, config, opt.scale, nullptr,
                                   nullptr);
                std::printf(".");
                std::fflush(stdout);
            });
    } else {
        // Store-backed: cells run in sequence, each SHARDED across
        // the pool from persisted warm state (the estimates are
        // bit-identical to the parallel-cells path either way).
        core::CheckpointStore store(opt.storePath);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &config = configs[i / suite.size()];
            const auto &spec = suite[i % suite.size()];
            cells[i] = runCell(spec, config, opt.scale, &store,
                               &pool);
            std::printf(".");
            std::fflush(stdout);
        }
    }
    std::printf("\n");

    for (std::size_t m = 0; m < configs.size(); ++m) {
        const auto &config = configs[m];
        stats::OnlineStats abs_err;
        stats::OnlineStats final_abs_err;
        int ci_ok = 0, total = 0, reruns = 0;

        for (std::size_t b = 0; b < suite.size(); ++b) {
            const CellResult &cell = cells[m * suite.size() + b];
            abs_err.add(std::abs(cell.err));
            final_abs_err.add(cell.finalAbsErr);
            ++total;
            ci_ok += cell.ok ? 1 : 0;

            std::string rerun_err = "-";
            if (cell.rerun) {
                ++reruns;
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%+.2f%%",
                              cell.rerunErr * 100.0);
                rerun_err = buf;
            }

            table.row()
                .add(config.name)
                .add(suite[b].name)
                .add(cell.refCpi, 4)
                .add(cell.initCpi, 4)
                .addPercent(cell.err, 2)
                .addPercent(cell.ci, 2)
                .add(cell.ok ? "yes" : "NO")
                .add(rerun_err);
        }
        std::printf("%s: initial-sample mean |error| = %.2f%%; "
                    "final (after n_tuned) mean |error| = %.2f%% over "
                    "%d benchmarks (paper final: 0.64%%); %d/%d within "
                    "CI+2%%; %d n_tuned reruns\n",
                    config.name.c_str(), abs_err.mean() * 100.0,
                    final_abs_err.mean() * 100.0, total, ci_ok, total,
                    reruns);
    }
    std::printf("\n");
    emit(table, opt);
    return 0;
}
