/**
 * @file
 * Ablation (DESIGN.md §5.1): where does the residual
 * functional-warming bias come from? The paper attributes it to
 * wrong-path and out-of-order effects (Section 4.5). This bench
 * measures the 5-phase functional-warming bias with wrong-path fetch
 * modeling enabled and disabled: with wrong-path pollution off, the
 * detailed machine's I-side state matches what functional warming
 * reproduces, so branch-heavy benchmarks' bias should shrink.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/bias.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt =
        parseOptions(argc, argv, /*default_quick=*/true,
                     "ablation_wrongpath.csv");
    banner("Ablation: wrong-path fetch modeling vs warming bias "
           "(8-way)",
           opt);

    TextTable table({"benchmark", "CPI (wp on)", "CPI (wp off)",
                     "bias wp on", "bias wp off", "mispredicts/kinst"});

    for (const auto &spec : opt.suite()) {
        auto measure = [&](bool wrong_path) {
            auto config = uarch::MachineConfig::eightWay();
            config.modelWrongPath = wrong_path;

            core::ReferenceRunner runner(opt.scale, config);
            // Distinct config name keys a distinct reference cache
            // entry.
            config.name = wrong_path ? "8-way" : "8-way-nowp";
            core::ReferenceRunner variant_runner(opt.scale, config);
            const core::ReferenceResult ref =
                variant_runner.get(spec);

            core::SamplingConfig sc;
            sc.unitSize = 1000;
            sc.detailedWarming = 2000;
            sc.interval = core::SamplingConfig::chooseInterval(
                ref.instructions, sc.unitSize, 150);
            sc.warming = core::WarmingMode::Functional;
            const core::BiasResult bias = core::measureBias(
                [&] {
                    return std::make_unique<core::SimSession>(spec,
                                                              config);
                },
                sc, 5, ref.cpi);
            return std::pair<double, double>(ref.cpi,
                                             bias.relativeBias);
        };

        const auto [cpi_on, bias_on] = measure(true);
        const auto [cpi_off, bias_off] = measure(false);

        // Mispredict density for context.
        double mpki;
        {
            auto config = uarch::MachineConfig::eightWay();
            core::SimSession s(spec, config);
            while (!s.finished()) {
                if (!s.detailedRun(5'000'000).instructions)
                    break;
            }
            mpki = static_cast<double>(
                       s.activity().bpredMispredicts) /
                   (static_cast<double>(s.instCount()) / 1000.0);
        }

        table.row()
            .add(spec.name)
            .add(cpi_on, 4)
            .add(cpi_off, 4)
            .addPercent(bias_on, 2)
            .addPercent(bias_off, 2)
            .add(mpki, 2);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    emit(table, opt);
    std::printf("reading: in this reproduction wrong-path fetch "
                "modeling is I-side only, and every benchmark's text "
                "segment fits in the 32KB L1I — so the pollution term "
                "is measurably negligible (CPI and bias shift by "
                "<0.01%%). The residual functional-warming bias of the "
                "Table 5 bench therefore comes from the *other* "
                "mechanisms the paper names in Section 4.5: "
                "out-of-order (completion-order) predictor/cache "
                "update ordering and post-commit store-buffer delay, "
                "not wrong-path state. On SPEC-sized text and with "
                "wrong-path data accesses the paper's I-side term "
                "would reappear.\n");
    return 0;
}
