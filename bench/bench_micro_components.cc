/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * the functional interpreter, functional warming, the detailed core,
 * cache/TLB/predictor accesses, and k-means. These are the quantities
 * S_F, S_FW and S_D of the paper's rate model — run this to see what
 * the Figure 4 model means on this host.
 */

#include <benchmark/benchmark.h>

#include "bpred/branch_unit.hh"
#include "core/session.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "simpoint/kmeans.hh"
#include "sisa/encoding.hh"
#include "uarch/config.hh"
#include "util/rng.hh"
#include "workloads/benchmark.hh"

namespace {

using namespace smarts;

void
BM_FunctionalSimulation(benchmark::State &state)
{
    const auto spec =
        workloads::findBenchmark("fsm-2", workloads::Scale::Mini);
    const auto config = uarch::MachineConfig::eightWay();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::SimSession s(spec, config);
        insts += s.fastForward(~0ull >> 1, core::WarmingMode::None);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.SetLabel("items = simulated instructions (S_F)");
}
BENCHMARK(BM_FunctionalSimulation)->Unit(benchmark::kMillisecond);

void
BM_FunctionalWarming(benchmark::State &state)
{
    const auto spec =
        workloads::findBenchmark("fsm-2", workloads::Scale::Mini);
    const auto config = uarch::MachineConfig::eightWay();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::SimSession s(spec, config);
        insts +=
            s.fastForward(~0ull >> 1, core::WarmingMode::Functional);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.SetLabel("items = simulated instructions (S_FW)");
}
BENCHMARK(BM_FunctionalWarming)->Unit(benchmark::kMillisecond);

void
BM_DetailedSimulation(benchmark::State &state)
{
    const auto spec =
        workloads::findBenchmark("fsm-2", workloads::Scale::Mini);
    const auto config = uarch::MachineConfig::eightWay();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::SimSession s(spec, config);
        while (!s.finished()) {
            const auto seg = s.detailedRun(1'000'000);
            insts += seg.instructions;
            if (!seg.instructions && !seg.cycles)
                break;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
    state.SetLabel("items = simulated instructions (S_D)");
}
BENCHMARK(BM_DetailedSimulation)->Unit(benchmark::kMillisecond);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache("bm", {32 * 1024, 2, 32, 1});
    Xoshiro256StarStar rng(1);
    std::vector<std::uint32_t> addrs(4096);
    for (auto &a : addrs)
        a = static_cast<std::uint32_t>(rng.below(1 << 20));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addrs[i++ & 4095], false).hit);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_HierarchyWarmLoad(benchmark::State &state)
{
    mem::MemHierarchy hier(uarch::MachineConfig::eightWay().mem);
    Xoshiro256StarStar rng(2);
    std::vector<std::uint32_t> addrs(4096);
    for (auto &a : addrs)
        a = static_cast<std::uint32_t>(rng.below(1 << 24));
    std::size_t i = 0;
    for (auto _ : state)
        hier.warmLoad(addrs[i++ & 4095]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyWarmLoad);

void
BM_BranchPredict(benchmark::State &state)
{
    bpred::BranchUnit unit(uarch::MachineConfig::eightWay().bpred);
    const auto di =
        sisa::decode(sisa::encode(sisa::Opcode::BNE, 1, 2, 0, -16));
    Xoshiro256StarStar rng(3);
    std::uint32_t pc = 0x1000;
    for (auto _ : state) {
        const auto p = unit.predict(pc, di);
        benchmark::DoNotOptimize(p.taken);
        unit.update(pc, di, rng.chance(0.6), pc - 16);
        pc = 0x1000 + static_cast<std::uint32_t>(rng.below(512)) * 4;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

void
BM_KmeansSweep(benchmark::State &state)
{
    Xoshiro256StarStar rng(4);
    std::vector<std::vector<double>> points(200,
                                            std::vector<double>(15));
    for (auto &p : points)
        for (auto &x : p)
            x = rng.uniform();
    for (auto _ : state) {
        Xoshiro256StarStar seed(42);
        benchmark::DoNotOptimize(
            simpoint::kmeansSweep(points, 10, seed).size());
    }
}
BENCHMARK(BM_KmeansSweep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
