/**
 * @file
 * Figure 4 reproduction: the modeled SMARTS simulation rate as a
 * function of detailed warming W, for S_D = 1/60 (paper's
 * sim-outorder), S_D = 1/600 (projected future detailed core), and
 * the functional-warming plateau S_FW.
 *
 * Paper shape to match: without functional warming the rate falls
 * from ~S_F toward S_D as W grows (earlier and sharper for the
 * slower detailed simulator); with functional warming the rate stays
 * pinned near S_FW because W is bounded small.
 *
 * The bench also *measures* this host's actual S_F, S_FW and S_D on
 * one benchmark so the model can be read in real MIPS.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/perf_model.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(
        argc, argv, /*default_quick=*/true, "fig4_rate_model.csv");
    banner("Figure 4: modeled SMARTS simulation rate vs W", opt);

    // ---- measure this host's relative mode rates -------------------
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec = workloads::findBenchmark(
        "phase-1", opt.scale == workloads::Scale::Mini
                       ? workloads::Scale::Small
                       : opt.scale);

    double func_mips, fwarm_mips, det_mips;
    std::uint64_t length;
    {
        core::SimSession s(spec, config);
        const Stopwatch t;
        length = s.fastForward(~0ull >> 1, core::WarmingMode::None);
        func_mips = static_cast<double>(length) / t.seconds() / 1e6;
    }
    {
        core::SimSession s(spec, config);
        const Stopwatch t;
        s.fastForward(~0ull >> 1, core::WarmingMode::Functional);
        fwarm_mips = static_cast<double>(length) / t.seconds() / 1e6;
    }
    {
        core::SimSession s(spec, config);
        const Stopwatch t;
        std::uint64_t insts = 0;
        while (!s.finished()) {
            const auto seg = s.detailedRun(1'000'000);
            insts += seg.instructions;
            if (!seg.instructions && !seg.cycles)
                break;
        }
        det_mips = static_cast<double>(insts) / t.seconds() / 1e6;
    }

    std::printf("measured on this host (%s):\n", spec.name.c_str());
    std::printf("  S_F  (functional)          = %.1f MIPS (1.0)\n",
                func_mips);
    std::printf("  S_FW (functional warming)  = %.1f MIPS (%.2f)\n",
                fwarm_mips, fwarm_mips / func_mips);
    std::printf("  S_D  (detailed)            = %.2f MIPS (1/%.0f)\n\n",
                det_mips, func_mips / det_mips);
    std::printf("paper: S_FW ≈ 0.55, S_D = 1/60 "
                "(2 GHz Pentium 4, SimpleScalar)\n\n");

    // ---- the model curves (paper-scale N and n) ---------------------
    const std::uint64_t N = 10'000'000'000ull; // 10B-instruction bench
    const std::uint64_t n = 10'000;
    const std::uint64_t U = 1000;

    core::RateParams paper60{1.0, 1.0 / 60.0, 0.55};
    core::RateParams paper600{1.0, 1.0 / 600.0, 0.55};
    core::RateParams host{1.0, det_mips / func_mips,
                          fwarm_mips / func_mips};

    TextTable table({"W", "rate S_D=1/60", "rate S_D=1/600",
                     "rate S_FW (W bounded)", "rate (host S_D)"});
    for (std::uint64_t w = 0; w <= 10'000'000;
         w = w == 0 ? 1000 : w * 10) {
        table.row().add(w);
        table.add(core::smartsRateDetailedWarming(N, n, U, w, paper60),
                  4);
        table.add(core::smartsRateDetailedWarming(N, n, U, w, paper600),
                  4);
        // Functional warming bounds W to the recommended small value
        // regardless of the sweep (that is its point).
        table.add(core::smartsRateFunctionalWarming(N, n, U, 2000,
                                                    paper60),
                  4);
        table.add(core::smartsRateDetailedWarming(N, n, U, w, host), 4);
    }
    emit(table, opt);

    std::printf("shape check: the S_D columns fall from ~S_F toward "
                "S_D as W grows (the 1/600 curve earlier and sharper); "
                "the S_FW column is flat at %.2f.\n",
                core::smartsRateFunctionalWarming(N, n, U, 2000,
                                                  paper60));
    return 0;
}
