/**
 * @file
 * Table 5 reproduction: residual CPI bias with functional warming and
 * minimal detailed warming (W = 2000 on 8-way, 4000 on 16-way),
 * averaged over 5 evenly spaced systematic phases.
 *
 * Paper shape to match: all benchmarks under ±2% bias, only a
 * handful above ±1%, average of the rest ~0.2%. The residual comes
 * from wrong-path and out-of-order effects functional warming cannot
 * reproduce.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/bias.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseOptions(argc, argv, /*default_quick=*/false,
                                    "table5_fwarm_bias.csv");
    // The paper's Table 5 covers both machines; honour an explicit
    // --machine flag but default to both.
    bool machine_flag = false;
    for (int i = 1; i < argc; ++i)
        machine_flag |= std::string(argv[i]).rfind("--machine=", 0) == 0;
    if (!machine_flag)
        opt.runSixteen = true;
    banner("Table 5: residual CPI bias with functional warming", opt);

    TextTable table(
        {"machine", "benchmark", "bias", "|bias| < 2%?"});

    for (const auto &config : machines(opt)) {
        core::ReferenceRunner runner(opt.scale, config);

        struct Entry
        {
            std::string name;
            double bias;
        };
        std::vector<Entry> entries;

        for (const auto &spec : opt.suite()) {
            const core::ReferenceResult ref = runner.get(spec);
            core::SamplingConfig sc;
            sc.unitSize = 1000;
            sc.detailedWarming = recommendedW(config);
            sc.interval = core::SamplingConfig::chooseInterval(
                ref.instructions, sc.unitSize, 150);
            sc.warming = core::WarmingMode::Functional;
            const core::BiasResult bias = core::measureBias(
                [&] {
                    return std::make_unique<core::SimSession>(spec,
                                                              config);
                },
                sc, 5, ref.cpi);
            entries.push_back({spec.name, bias.relativeBias});
            std::printf(".");
            std::fflush(stdout);
        }

        // Paper presentation: worst-first, then the average magnitude
        // of the rest.
        std::sort(entries.begin(), entries.end(),
                  [](const Entry &a, const Entry &b) {
                      return std::abs(a.bias) > std::abs(b.bias);
                  });
        const std::size_t worst_count =
            std::min<std::size_t>(10, entries.size());
        double rest_abs = 0.0;
        for (std::size_t i = worst_count; i < entries.size(); ++i)
            rest_abs += std::abs(entries[i].bias);
        if (entries.size() > worst_count)
            rest_abs /= static_cast<double>(entries.size() - worst_count);

        int under2 = 0;
        for (std::size_t i = 0; i < worst_count; ++i) {
            table.row()
                .add(config.name)
                .add(entries[i].name)
                .addPercent(entries[i].bias, 2)
                .add(std::abs(entries[i].bias) < 0.02 ? "yes" : "NO");
        }
        for (const Entry &e : entries)
            under2 += std::abs(e.bias) < 0.02 ? 1 : 0;
        table.row()
            .add(config.name)
            .add("avg. rest (abs)")
            .addPercent(rest_abs, 2)
            .add("-");

        std::printf("\n%s: %d/%zu benchmarks under ±2%% bias\n",
                    config.name.c_str(), under2, entries.size());
    }
    std::printf("\n");
    emit(table, opt);
    return 0;
}
