/**
 * @file
 * Figure 8 reproduction: CPI error of SimPoint vs SMARTS per
 * benchmark on the 8-way configuration.
 *
 * Paper shape to match: SimPoint's average error is several times
 * SMARTS's (3.7% vs 0.6%) with a much worse worst case (-14.3% on
 * gcc-2, a benchmark whose similarly-profiled basic-block sequences
 * behave differently across dynamic instances); SMARTS errors stay
 * small and carry confidence intervals.
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>

#include "bench_common.hh"
#include "core/checkpoint_store.hh"
#include "core/sampler.hh"
#include "exec/thread_pool.hh"
#include "simpoint/simpoint.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt = parseOptions(
        argc, argv, /*default_quick=*/true, "fig8_simpoint.csv");
    // Both methodologies need populations much larger than their
    // sampling windows; default to Small scale unless overridden.
    bool scale_flag = false;
    for (int i = 1; i < argc; ++i)
        scale_flag |= std::string(argv[i]).rfind("--scale=", 0) == 0;
    if (!scale_flag)
        opt.scale = workloads::Scale::Small;
    banner("Figure 8: SimPoint vs SMARTS CPI error (8-way)", opt);

    const auto config = uarch::MachineConfig::eightWay();
    core::ReferenceRunner runner(opt.scale, config);

    // --store= makes the SMARTS half store-backed and sharded
    // (bit-identical by contract; SimPoint has no warm state to
    // reuse, so its half is unchanged).
    std::optional<core::CheckpointStore> store;
    std::optional<exec::ThreadPool> pool;
    if (!opt.storePath.empty()) {
        store.emplace(opt.storePath);
        pool.emplace();
    }

    TextTable table({"benchmark", "SimPoint err", "SMARTS err",
                     "SMARTS 99.7% CI", "SimPoint insts (M)",
                     "SMARTS insts (M)"});

    stats::OnlineStats sp_abs, sm_abs;
    double sp_worst = 0, sm_worst = 0;

    for (const auto &spec : opt.suite()) {
        const core::ReferenceResult ref = runner.get(spec);
        const auto factory = [&] {
            return std::make_unique<core::SimSession>(spec, config);
        };

        // SimPoint: interval scaled from the published 100M to keep
        // ~the paper's interval:benchmark ratio; up to 10 clusters.
        simpoint::SimPointConfig sp_cfg;
        // Large absolute intervals amortize SimPoint's cold-state
        // start (the published setup used 100M-instruction windows).
        sp_cfg.intervalSize = std::max<std::uint64_t>(
            ref.instructions / 100, 100'000);
        sp_cfg.maxK = 10;
        const simpoint::SimPointEstimate sp =
            simpoint::runSimPoint(factory, sp_cfg);
        const double sp_err = (sp.cpi - ref.cpi) / ref.cpi;

        // SMARTS with a comparable detailed budget.
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = recommendedW(config);
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            ref.instructions, sc.unitSize,
            std::max<std::uint64_t>(ref.instructions / 1000 / 4, 60));
        core::SmartsEstimate sm;
        if (store) {
            sm = core::SystematicSampler(sc).runSharded(
                factory, spec, config, ref.instructions, 8, *pool,
                *store);
        } else {
            auto session = factory();
            sm = core::SystematicSampler(sc).run(*session);
        }
        const double sm_err = (sm.cpi() - ref.cpi) / ref.cpi;

        sp_abs.add(std::abs(sp_err));
        sm_abs.add(std::abs(sm_err));
        sp_worst = std::max(sp_worst, std::abs(sp_err));
        sm_worst = std::max(sm_worst, std::abs(sm_err));

        table.row()
            .add(spec.name)
            .addPercent(sp_err, 2)
            .addPercent(sm_err, 2)
            .addPercent(sm.cpiConfidenceInterval(0.997), 2)
            .add(static_cast<double>(sp.instructionsDetailed) / 1e6, 2)
            .add(static_cast<double>(sm.instructionsMeasured +
                                     sm.instructionsWarmed +
                                     sm.instructionsDropped) /
                     1e6,
                 2);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    emit(table, opt);

    std::printf("mean |error|: SimPoint %.2f%% vs SMARTS %.2f%% "
                "(paper: 3.7%% vs 0.6%%)\nworst case: SimPoint %.2f%% "
                "vs SMARTS %.2f%% (paper: 14.3%% vs ~1%%)\n",
                sp_abs.mean() * 100.0, sm_abs.mean() * 100.0,
                sp_worst * 100.0, sm_worst * 100.0);
    return 0;
}
