/**
 * @file
 * Shared infrastructure for the experiment-reproduction benches: one
 * binary per paper table/figure, each printing the paper-style series
 * and writing a CSV artifact next to the binary.
 *
 * Common flags (all optional):
 *   --scale=mini|small|large   benchmark scale (default mini)
 *   --suite=quick|standard     benchmark set (default per bench)
 *   --machine=8|16|both        machine configuration(s)
 *   --csv=<path>               CSV output path override
 *   --section=<name>           run only one section of the bench
 *                              (benches that have sections)
 *   --store=<dir>              checkpoint-store root for benches
 *                              that persist/reuse warm libraries
 *   --runner-bin=<path>        smarts_runner binary for sections
 *                              that launch runner subprocesses
 *                              (default: <bench dir>/../tools/
 *                              smarts_runner)
 *   --json=<path>              machine-readable perf artifact for
 *                              benches that emit one (e.g. the
 *                              livepoint section's
 *                              BENCH_livepoints.json)
 */

#ifndef SMARTS_BENCH_COMMON_HH
#define SMARTS_BENCH_COMMON_HH

#include <chrono>
#include <string>
#include <vector>

#include "core/reference.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "uarch/config.hh"
#include "util/table.hh"
#include "workloads/benchmark.hh"

namespace smarts::bench {

/** Parsed common command-line options. */
struct BenchOptions
{
    workloads::Scale scale = workloads::Scale::Mini;
    bool quickSuite = true;
    bool runEight = true;
    bool runSixteen = false;
    std::string csvPath;
    std::string section; ///< empty = every section of the bench.
    std::string storePath; ///< checkpoint-store root (--store=).
    std::string runnerBin; ///< smarts_runner override (--runner-bin=).
    std::string jsonPath;  ///< perf-artifact output path (--json=).
    std::string argv0;     ///< the bench binary's own path.

    std::vector<workloads::BenchmarkSpec>
    suite() const
    {
        return quickSuite ? workloads::quickSuite(scale)
                          : workloads::standardSuite(scale);
    }

    const char *
    scaleName() const
    {
        switch (scale) {
          case workloads::Scale::Mini: return "mini";
          case workloads::Scale::Small: return "small";
          case workloads::Scale::Large: return "large";
        }
        return "?";
    }
};

/**
 * Parse common flags. @p default_quick selects the suite when no
 * --suite flag is given.
 */
BenchOptions parseOptions(int argc, char **argv, bool default_quick,
                          const std::string &default_csv);

/** Machine configs selected by the options. */
std::vector<uarch::MachineConfig> machines(const BenchOptions &opt);

/**
 * Path of the smarts_runner binary for sections that launch runner
 * subprocesses: --runner-bin= when given, else
 * <dir of the bench binary>/../tools/smarts_runner.
 */
std::string runnerBinary(const BenchOptions &opt);

/** Paper-recommended detailed warming W for a machine (Section 5.1). */
std::uint64_t recommendedW(const uarch::MachineConfig &config);

/** Print a standard bench banner. */
void banner(const std::string &title, const BenchOptions &opt);

/** Emit the table to stdout and CSV (path from options). */
void emit(const TextTable &table, const BenchOptions &opt);

/** Wall-clock helper. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace smarts::bench

#endif // SMARTS_BENCH_COMMON_HH
