/**
 * @file
 * Table 4 reproduction: detailed warming requirements *without*
 * functional warming. For each benchmark, find the smallest W (from a
 * fixed ladder) whose 5-phase average bias is below ±1.5%, with
 * U = 1000 and dense systematic sampling.
 *
 * Paper shape to match: required W varies wildly across benchmarks —
 * many are satisfied by the smallest W, some need 10x more, and a few
 * exceed the largest W tested (the unpredictability that motivates
 * functional warming). Our W ladder is scaled down ~10x from the
 * paper's 50k-500k because the synthetic benchmarks' working sets
 * (and hence stale-state horizons) are smaller than SPEC2K's.
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hh"
#include "core/bias.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    BenchOptions opt =
        parseOptions(argc, argv, /*default_quick=*/true,
                     "table4_detailed_warming.csv");
    // Meaningful W sweeps need inter-unit gaps larger than the
    // biggest W; default to Small scale unless overridden.
    bool scale_flag = false;
    for (int i = 1; i < argc; ++i)
        scale_flag |= std::string(argv[i]).rfind("--scale=", 0) == 0;
    if (!scale_flag)
        opt.scale = workloads::Scale::Small;
    banner("Table 4: detailed warming needed without functional "
           "warming (8-way)",
           opt);

    const auto config = uarch::MachineConfig::eightWay();
    core::ReferenceRunner runner(opt.scale, config);

    const std::vector<std::uint64_t> ladder = {2'000, 10'000, 40'000};
    const double threshold = 0.015;

    TextTable table({"benchmark", "bias W=2k", "bias W=10k",
                     "bias W=40k", "W class"});

    int unpredictable = 0;
    for (const auto &spec : opt.suite()) {
        const core::ReferenceResult ref = runner.get(spec);

        table.row().add(spec.name);
        std::string w_class = "> 40k";
        bool classified = false;
        for (const std::uint64_t w : ladder) {
            core::SamplingConfig sc;
            sc.unitSize = 1000;
            sc.detailedWarming = w;
            sc.interval = core::SamplingConfig::chooseInterval(
                ref.instructions, sc.unitSize, 60);
            sc.warming = core::WarmingMode::None;
            const core::BiasResult bias = core::measureBias(
                [&] {
                    return std::make_unique<core::SimSession>(spec,
                                                              config);
                },
                sc, 5, ref.cpi);
            table.addPercent(bias.relativeBias, 2);
            if (!classified &&
                std::abs(bias.relativeBias) < threshold) {
                w_class = "<= " + std::to_string(w / 1000) + "k";
                classified = true;
            }
        }
        if (!classified)
            ++unpredictable;
        table.add(w_class);
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    emit(table, opt);
    std::printf("shape check: required W spans the whole ladder, with "
                "%d benchmark(s) exceeding the largest tested W — the "
                "unpredictability that motivates functional warming "
                "(paper Section 4.3).\n",
                unpredictable);
    return 0;
}
