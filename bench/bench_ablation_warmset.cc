/**
 * @file
 * Ablation (DESIGN.md §5.2): which structures must functional warming
 * maintain? Compares the 5-phase bias of four warm sets — nothing,
 * caches+TLBs only, branch predictor only, and everything — at the
 * recommended small W.
 *
 * Expected reading: cache warming dominates for memory-bound
 * benchmarks, predictor warming for branch-heavy ones; only the full
 * warm set keeps every benchmark's bias small, which is why the paper
 * warms all long-history state.
 *
 * Execution: each benchmark (reference + 4 warm-set bias sweeps) is
 * one job on the exec-layer pool; rows are emitted in suite order,
 * so the output is identical at any thread count.
 */

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hh"
#include "core/bias.hh"
#include "exec/thread_pool.hh"

using namespace smarts;
using namespace smarts::bench;

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseOptions(
        argc, argv, /*default_quick=*/true, "ablation_warmset.csv");
    banner("Ablation: functional-warming warm set vs bias (8-way)",
           opt);

    const auto config = uarch::MachineConfig::eightWay();

    const struct
    {
        const char *label;
        core::WarmingMode mode;
    } modes[] = {
        {"none", core::WarmingMode::None},
        {"caches only", core::WarmingMode::CachesOnly},
        {"bpred only", core::WarmingMode::BpredOnly},
        {"full", core::WarmingMode::Functional},
    };

    const auto suite = opt.suite();
    std::vector<std::array<double, 4>> biases(suite.size());

    exec::ThreadPool pool; // one worker per hardware thread.
    exec::parallelForIndexed(pool, suite.size(), [&](std::size_t i) {
        const auto &spec = suite[i];
        core::ReferenceRunner runner(opt.scale, config);
        const core::ReferenceResult ref = runner.get(spec);
        for (int m = 0; m < 4; ++m) {
            core::SamplingConfig sc;
            sc.unitSize = 1000;
            sc.detailedWarming = 2000;
            sc.interval = core::SamplingConfig::chooseInterval(
                ref.instructions, sc.unitSize, 120);
            sc.warming = modes[m].mode;
            const core::BiasResult bias = core::measureBias(
                [&] {
                    return std::make_unique<core::SimSession>(spec,
                                                              config);
                },
                sc, 5, ref.cpi);
            biases[i][m] = bias.relativeBias;
        }
        std::printf(".");
        std::fflush(stdout);
    });
    std::printf("\n\n");

    TextTable table({"benchmark", "bias none", "bias caches",
                     "bias bpred", "bias full", "best partial set"});

    int full_wins = 0, total = 0;
    for (std::size_t i = 0; i < suite.size(); ++i) {
        table.row().add(suite[i].name);
        for (int m = 0; m < 4; ++m)
            table.addPercent(biases[i][m], 2);
        table.add(std::abs(biases[i][1]) <= std::abs(biases[i][2])
                      ? "caches"
                      : "bpred");
        ++total;
        if (std::abs(biases[i][3]) <=
            std::min(std::abs(biases[i][1]), std::abs(biases[i][2])) +
                0.005) {
            ++full_wins;
        }
    }
    emit(table, opt);
    std::printf("full warm set at-or-near the best partial set for "
                "%d/%d benchmarks; no partial set is safe across the "
                "suite (why the paper warms caches, TLBs and "
                "predictors together).\n",
                full_wins, total);
    return 0;
}
