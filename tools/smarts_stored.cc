/**
 * @file
 * smarts_stored: the checkpoint-store daemon (docs/store-service.md).
 * One binary, two roles:
 *
 * DAEMON (default): own ONE hot CheckpointStore — index, byte
 * budget, LRU GC, counters — and serve live-point lookups for any
 * number of concurrent leader processes over the file protocol of
 * distrib/store_service.hh. Same-key misses arriving in one scan
 * are captured ONCE (single-flight); every reply echoes the daemon's
 * cumulative counters so clients (and tests) can observe that from
 * the outside. Exits when --max-requests have been served, when the
 * service has been idle past --ttl, or when the presence marker is
 * removed; on exit it writes the --json stats artifact
 * (BENCH_store.json in CI).
 *
 *   smarts_stored --root=<store> --svc=<dir> [--budget=<bytes>]
 *       [--max-requests=<n>] [--ttl=<s>] [--poll-ms=<ms>]
 *       [--json=<file>]
 *
 * CLIENT (--lookup): one request through the full
 * StoreServiceClient path — publish, poll, validate, degrade to a
 * local store if the daemon is absent or dies — then report what
 * happened in grep-friendly key=value form. This is the two-leader
 * CI recipe's leader.
 *
 *   smarts_stored --lookup --svc=<dir> --store=<local-store>
 *       --benchmark=<name> [--scale=mini|small|large]
 *       [--machine=8|16] [--unit=<U>] [--warm=<W>]
 *       [--interval=<k>|0=auto] [--offset=<j>] [--timeout=<s>]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/checkpoint_store.hh"
#include "core/livepoint.hh"
#include "core/session.hh"
#include "distrib/protocol.hh"
#include "distrib/store_service.hh"
#include "uarch/config.hh"
#include "util/logging.hh"
#include "workloads/benchmark.hh"

using namespace smarts;

namespace fs = std::filesystem;

namespace {

struct Options
{
    bool lookup = false;
    std::string root;  ///< daemon: the store it owns.
    std::string svc;   ///< service directory (both roles).
    std::string store; ///< client: local fallback store.
    std::uint64_t budget = 0;
    std::uint64_t maxRequests = 0; ///< 0 = serve forever.
    double ttl = 0.0;              ///< idle exit; 0 = never.
    double pollMs = 20.0;
    std::string jsonPath;

    // Client-mode study parameters.
    std::string benchmark;
    workloads::Scale scale = workloads::Scale::Mini;
    bool sixteen = false;
    std::uint64_t unit = 1000;
    std::uint64_t warm = 2000;
    std::uint64_t interval = 0; ///< 0 = auto (chooseInterval).
    std::uint64_t offset = 0;
    double timeout = 120.0;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  %s --root=<store> --svc=<dir> [--budget=<bytes>] "
        "[--max-requests=<n>] [--ttl=<s>]\n"
        "      [--poll-ms=<ms>] [--json=<file>]\n"
        "  %s --lookup --svc=<dir> --store=<local-store> "
        "--benchmark=<name>\n"
        "      [--scale=mini|small|large] [--machine=8|16] "
        "[--unit=<U>] [--warm=<W>]\n"
        "      [--interval=<k>|0=auto] [--offset=<j>] "
        "[--timeout=<s>]\n"
        "see docs/store-service.md\n",
        argv0, argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0
                       ? arg.c_str() + std::strlen(prefix)
                       : nullptr;
        };
        if (arg == "--lookup") {
            opt.lookup = true;
        } else if (const char *v = value("--root=")) {
            opt.root = v;
        } else if (const char *v2 = value("--svc=")) {
            opt.svc = v2;
        } else if (const char *v3 = value("--store=")) {
            opt.store = v3;
        } else if (const char *v4 = value("--budget=")) {
            opt.budget = std::strtoull(v4, nullptr, 10);
        } else if (const char *v5 = value("--max-requests=")) {
            opt.maxRequests = std::strtoull(v5, nullptr, 10);
        } else if (const char *v6 = value("--ttl=")) {
            opt.ttl = std::atof(v6);
        } else if (const char *v7 = value("--poll-ms=")) {
            opt.pollMs = std::atof(v7);
            if (opt.pollMs <= 0.0)
                SMARTS_FATAL("--poll-ms must be positive");
        } else if (const char *v8 = value("--json=")) {
            opt.jsonPath = v8;
        } else if (const char *v9 = value("--benchmark=")) {
            opt.benchmark = v9;
        } else if (const char *v10 = value("--scale=")) {
            if (!std::strcmp(v10, "mini"))
                opt.scale = workloads::Scale::Mini;
            else if (!std::strcmp(v10, "small"))
                opt.scale = workloads::Scale::Small;
            else if (!std::strcmp(v10, "large"))
                opt.scale = workloads::Scale::Large;
            else
                SMARTS_FATAL("unknown scale '", v10, "'");
        } else if (const char *v11 = value("--machine=")) {
            opt.sixteen = !std::strcmp(v11, "16");
        } else if (const char *v12 = value("--unit=")) {
            opt.unit = std::strtoull(v12, nullptr, 10);
        } else if (const char *v13 = value("--warm=")) {
            opt.warm = std::strtoull(v13, nullptr, 10);
        } else if (const char *v14 = value("--interval=")) {
            opt.interval = std::strtoull(v14, nullptr, 10);
        } else if (const char *v15 = value("--offset=")) {
            opt.offset = std::strtoull(v15, nullptr, 10);
        } else if (const char *v16 = value("--timeout=")) {
            opt.timeout = std::atof(v16);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0]);
        }
    }
    if (opt.svc.empty())
        usage(argv[0]);
    if (opt.lookup && (opt.store.empty() || opt.benchmark.empty()))
        usage(argv[0]);
    if (!opt.lookup && opt.root.empty())
        usage(argv[0]);
    return opt;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q * static_cast<double>(sorted.size());
    std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
    idx = idx ? idx - 1 : 0;
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** Daemon-lifetime request accounting (reply echo + JSON export). */
struct DaemonStats
{
    std::uint64_t served = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t captures = 0;
    std::uint64_t refused = 0;
    std::vector<double> lookupMs;
};

void
writeStatsJson(const Options &opt, const DaemonStats &stats,
               const core::StoreCounters &counters,
               std::uint64_t totalBytes)
{
    if (opt.jsonPath.empty())
        return;
    std::FILE *json = std::fopen(opt.jsonPath.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "smarts_stored: cannot write %s\n",
                     opt.jsonPath.c_str());
        return;
    }
    const std::uint64_t looked = stats.hits + stats.misses;
    std::fprintf(
        json,
        "{\n"
        "  \"tool\": \"smarts_stored\",\n"
        "  \"budget_bytes\": %llu,\n"
        "  \"requests\": %llu,\n"
        "  \"hits\": %llu,\n"
        "  \"misses\": %llu,\n"
        "  \"captures\": %llu,\n"
        "  \"refused\": %llu,\n"
        "  \"hit_rate\": %.4f,\n"
        "  \"evictions\": %llu,\n"
        "  \"bytes_evicted\": %llu,\n"
        "  \"pin_skips\": %llu,\n"
        "  \"gc_runs\": %llu,\n"
        "  \"rebuilds\": %llu,\n"
        "  \"total_bytes\": %llu,\n"
        "  \"lookup_ms\": {\"p50\": %.3f, \"p90\": %.3f, "
        "\"p99\": %.3f, \"max\": %.3f}\n"
        "}\n",
        static_cast<unsigned long long>(opt.budget),
        static_cast<unsigned long long>(stats.served),
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.captures),
        static_cast<unsigned long long>(stats.refused),
        looked ? static_cast<double>(stats.hits) /
                     static_cast<double>(looked)
               : 0.0,
        static_cast<unsigned long long>(counters.evictions),
        static_cast<unsigned long long>(counters.bytesEvicted),
        static_cast<unsigned long long>(counters.pinSkips),
        static_cast<unsigned long long>(counters.gcRuns),
        static_cast<unsigned long long>(counters.rebuilds),
        static_cast<unsigned long long>(totalBytes),
        percentile(stats.lookupMs, 0.50),
        percentile(stats.lookupMs, 0.90),
        percentile(stats.lookupMs, 0.99),
        stats.lookupMs.empty()
            ? 0.0
            : *std::max_element(stats.lookupMs.begin(),
                                stats.lookupMs.end()));
    std::fclose(json);
    std::printf("smarts_stored: json %s\n", opt.jsonPath.c_str());
}

/** One pending request with its service-latency start mark. */
struct Pending
{
    std::string file;  ///< request file path.
    std::string reqId; ///< file stem (authoritative for the reply).
    std::optional<distrib::StoreRequest> request;
    std::string error;
    distrib::StoreReplyStatus status =
        distrib::StoreReplyStatus::Refused;
    std::chrono::steady_clock::time_point start;
};

int
daemonMain(const Options &opt)
{
    std::error_code ec;
    fs::create_directories(fs::path(opt.svc) / "requests", ec);
    fs::create_directories(fs::path(opt.svc) / "replies", ec);

    // Exactly one daemon per service directory: publish the
    // presence marker atomically and refuse to start over a live
    // one. Removing the marker is the polite external stop signal.
    const std::string marker = distrib::daemonMarkerPath(opt.svc);
    if (fs::exists(marker, ec)) {
        std::fprintf(stderr,
                     "smarts_stored: %s already exists (daemon "
                     "running? remove it to force)\n",
                     marker.c_str());
        return 1;
    }
    {
        const std::string tmp =
            log::format(marker, ".tmp.", ::getpid());
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (!f)
            SMARTS_FATAL("cannot write ", tmp);
        std::fprintf(f, "%d\n", static_cast<int>(::getpid()));
        std::fclose(f);
        fs::rename(tmp, marker, ec);
        if (ec)
            SMARTS_FATAL("cannot publish ", marker);
    }

    core::StoreOptions sopt;
    sopt.budgetBytes = opt.budget;
    core::CheckpointStore store(opt.root, sopt);

    std::printf("smarts_stored: serving %s at %s (budget %llu "
                "bytes)\n",
                opt.root.c_str(), opt.svc.c_str(),
                static_cast<unsigned long long>(opt.budget));
    std::fflush(stdout);

    DaemonStats stats;
    distrib::PollBackoff backoff(opt.pollMs);
    auto lastActivity = std::chrono::steady_clock::now();
    const std::string requestsDir =
        (fs::path(opt.svc) / "requests").string();

    bool stop = false;
    while (!stop) {
        // The marker doubles as the kill switch: removal (or a
        // crashed cleanup from a previous test) means stop serving.
        if (!fs::exists(marker, ec))
            break;

        // Collect this scan's requests in name order (deterministic
        // service order for tests).
        std::vector<Pending> pending;
        {
            fs::directory_iterator it(requestsDir, ec);
            if (!ec) {
                for (const fs::directory_entry &entry : it) {
                    if (entry.path().extension() != ".req")
                        continue;
                    Pending p;
                    p.file = entry.path().string();
                    p.reqId = entry.path().stem().string();
                    pending.push_back(std::move(p));
                }
            }
            std::sort(pending.begin(), pending.end(),
                      [](const Pending &a, const Pending &b) {
                          return a.file < b.file;
                      });
        }

        if (pending.empty()) {
            const auto now = std::chrono::steady_clock::now();
            if (opt.ttl > 0.0 &&
                std::chrono::duration<double>(now - lastActivity)
                        .count() >= opt.ttl)
                break;
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    backoff.nextMs()));
            continue;
        }
        backoff.reset();
        lastActivity = std::chrono::steady_clock::now();

        // Parse everything first, then group misses by entry path:
        // same-key requests from N leaders trigger ONE capture
        // (single-flight), and every waiter's reply names the same
        // published entry.
        std::map<std::string, std::vector<std::size_t>> groups;
        for (std::size_t i = 0; i < pending.size(); ++i) {
            Pending &p = pending[i];
            p.start = std::chrono::steady_clock::now();
            p.request = distrib::StoreRequest::load(p.file, &p.error);
            if (p.request)
                groups[store.livePointPathFor(p.request->key())]
                    .push_back(i);
        }

        for (auto &[entryPath, members] : groups) {
            const distrib::StoreRequest &head =
                *pending[members.front()].request;
            const bool present = fs::exists(entryPath, ec);
            std::uint64_t captured = 0;
            if (!present) {
                captured = store.ensureLivePoints(
                    head.benchmark, {head.machine}, head.sampling);
                stats.captures += captured;
                std::printf("smarts_stored: captured %llu "
                            "librar%s for %s (%zu waiter%s)\n",
                            static_cast<unsigned long long>(
                                captured),
                            captured == 1 ? "y" : "ies",
                            entryPath.c_str(), members.size(),
                            members.size() == 1 ? "" : "s");
                std::fflush(stdout);
            }
            const bool ok = present || fs::exists(entryPath, ec);
            for (const std::size_t i : members) {
                Pending &p = pending[i];
                if (ok) {
                    present ? ++stats.hits : ++stats.misses;
                    p.status =
                        present
                            ? distrib::StoreReplyStatus::Hit
                            : distrib::StoreReplyStatus::Captured;
                    store.touch(p.request->key(), true);
                } else {
                    p.error = log::format(
                        "live-point capture failed for ",
                        entryPath);
                }
            }
        }

        for (Pending &p : pending) {
            distrib::StoreReply reply;
            reply.reqId = p.reqId;
            if (p.request && p.error.empty()) {
                reply.status = p.status;
                reply.path =
                    store.livePointPathFor(p.request->key());
            } else {
                reply.status = distrib::StoreReplyStatus::Refused;
                reply.error = p.error;
                ++stats.refused;
            }
            const core::StoreCounters counters = store.counters();
            reply.hits = stats.hits;
            reply.misses = stats.misses;
            reply.captures = stats.captures;
            reply.evictions = counters.evictions;
            std::string error;
            if (!reply.save(
                    distrib::replyPath(opt.svc, p.reqId), &error))
                std::fprintf(stderr,
                             "smarts_stored: cannot reply to %s: "
                             "%s\n",
                             p.reqId.c_str(), error.c_str());
            fs::remove(p.file, ec);
            stats.lookupMs.push_back(
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - p.start)
                    .count());
            ++stats.served;
            if (opt.maxRequests &&
                stats.served >= opt.maxRequests) {
                stop = true;
            }
        }
    }

    fs::remove(marker, ec);
    const core::StoreCounters counters = store.counters();
    writeStatsJson(opt, stats, counters, store.totalBytes());
    std::printf("smarts_stored: exiting after %llu request(s) "
                "(%llu hit, %llu miss, %llu captured, %llu "
                "refused, %llu evicted)\n",
                static_cast<unsigned long long>(stats.served),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.captures),
                static_cast<unsigned long long>(stats.refused),
                static_cast<unsigned long long>(counters.evictions));
    return 0;
}

int
lookupMain(const Options &opt)
{
    const workloads::BenchmarkSpec spec =
        workloads::findBenchmark(opt.benchmark, opt.scale);
    const uarch::MachineConfig machine =
        opt.sixteen ? uarch::MachineConfig::sixteenWay()
                    : uarch::MachineConfig::eightWay();

    core::SamplingConfig sc;
    sc.unitSize = opt.unit;
    sc.detailedWarming = opt.warm;
    sc.warming = core::WarmingMode::Functional;
    sc.offset = opt.offset;
    if (opt.interval) {
        sc.interval = opt.interval;
    } else {
        core::SimSession probe(spec, machine);
        const std::uint64_t length =
            probe.fastForward(~0ull >> 1, core::WarmingMode::None);
        sc.interval = core::SamplingConfig::chooseInterval(
            length, sc.unitSize, length / sc.unitSize / 4);
    }

    core::CheckpointStore local(opt.store);
    distrib::StoreServiceClient client(opt.svc);
    const distrib::StoreServiceOutcome outcome =
        client.ensureLivePoints(local, spec, machine, sc,
                                opt.timeout);

    std::printf(
        "smarts_stored lookup: ok=%d degraded=%d captured=%d "
        "units=%zu daemon_hits=%llu daemon_misses=%llu "
        "daemon_captures=%llu daemon_evictions=%llu\n",
        outcome.library ? 1 : 0, outcome.degraded ? 1 : 0,
        outcome.captured ? 1 : 0,
        outcome.library ? outcome.library->unitCount() : 0,
        static_cast<unsigned long long>(
            outcome.reply ? outcome.reply->hits : 0),
        static_cast<unsigned long long>(
            outcome.reply ? outcome.reply->misses : 0),
        static_cast<unsigned long long>(
            outcome.reply ? outcome.reply->captures : 0),
        static_cast<unsigned long long>(
            outcome.reply ? outcome.reply->evictions : 0));
    if (!outcome.library) {
        std::fprintf(stderr, "smarts_stored lookup: %s\n",
                     outcome.error.c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    return opt.lookup ? lookupMain(opt) : daemonMain(opt);
}
