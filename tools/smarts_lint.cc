/**
 * @file
 * CLI front end for the smarts_lint contract checks (lint/lint.hh):
 * scan a tree (--root) or explicit files, print file:line
 * diagnostics, exit nonzero when any contract is violated. Wired
 * into ctest as `lint_contracts` (the real tree must stay clean)
 * and into CI's lint job; docs/determinism-contracts.md is the
 * human-readable statement of what the checks enforce.
 *
 *   smarts_lint --root=.                 # lint include/ + src/
 *   smarts_lint --check=serializer-completeness file.hh
 *   smarts_lint --list-checks
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] [files...]\n"
        "  --root=DIR       lint every .hh/.cc under DIR/include and"
        " DIR/src\n"
        "  --check=NAME     run only the named check (repeatable)\n"
        "  --no-check=NAME  skip the named check (repeatable)\n"
        "  --list-checks    print the check names and exit\n"
        "  --quiet          suppress the summary line\n"
        "exit status: 0 clean, 1 contract violations, 2 usage/IO\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace smarts::lint;

    Options options;
    std::vector<std::string> files;
    std::vector<std::string> roots;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) {
            return arg.substr(std::strlen(prefix));
        };
        if (arg.rfind("--root=", 0) == 0) {
            roots.push_back(value("--root="));
        } else if (arg.rfind("--check=", 0) == 0) {
            const std::string name = value("--check=");
            if (!knownCheck(name)) {
                std::fprintf(stderr,
                             "smarts_lint: unknown check '%s' "
                             "(--list-checks)\n",
                             name.c_str());
                return 2;
            }
            options.enabled.push_back(name);
        } else if (arg.rfind("--no-check=", 0) == 0) {
            const std::string name = value("--no-check=");
            if (!knownCheck(name)) {
                std::fprintf(stderr,
                             "smarts_lint: unknown check '%s' "
                             "(--list-checks)\n",
                             name.c_str());
                return 2;
            }
            options.disabled.push_back(name);
        } else if (arg == "--list-checks") {
            for (const std::string &name : checkNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage(argv[0]);
        } else {
            files.push_back(arg);
        }
    }

    for (const std::string &root : roots) {
        std::string error;
        if (!collectTreeSources(root, files, &error)) {
            std::fprintf(stderr, "smarts_lint: %s\n", error.c_str());
            return 2;
        }
    }
    if (files.empty())
        return usage(argv[0]);

    const Report report = lintFiles(files, options);
    for (const Diagnostic &d : report.diagnostics)
        std::printf("%s\n", formatDiagnostic(d).c_str());

    if (!quiet) {
        if (report.clean())
            std::printf("smarts_lint: clean (%d files, %d "
                        "justified suppressions honored)\n",
                        report.filesScanned,
                        report.suppressionsHonored);
        else
            std::printf("smarts_lint: %zu violation(s) across %d "
                        "files (see docs/determinism-contracts.md)\n",
                        report.diagnostics.size(),
                        report.filesScanned);
    }
    return report.clean() ? 0 : 1;
}
