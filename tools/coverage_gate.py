#!/usr/bin/env python3
"""Line-coverage gate for the core + mem tiers.

Walks a --coverage build tree for .gcda files, runs gcov in JSON
mode, and aggregates line coverage for the gated scopes: src/core/
(the sampler/session/checkpoint engine) and the header-only mem tier
include/smarts/mem/ (there is no src/mem/ — every cache model lives
in headers). Lines are merged across translation units the way lcov
merges them: a line is instrumented if any TU instruments it and hit
if any TU hits it.

Writes a coverage.json summary and compares the gated percentage
against the recorded baseline (tests/coverage_baseline.txt):

    coverage_gate.py --build <dir> [--json coverage.json]
        gate mode: exit 1 if gated coverage < baseline.
    coverage_gate.py --build <dir> --record
        rewrite the baseline from this run (floor to one decimal,
        so sub-0.1%% jitter between hosts never trips the gate).

CI and local baseline recording both run THIS script, so the gate
compares like with like; the lcov HTML artifact is presentation
only.
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile

SCOPES = ("src/core/", "include/smarts/mem/")
BASELINE = os.path.join("tests", "coverage_baseline.txt")


def in_scope(path):
    # gcov reports paths as the compiler saw them; normalize away
    # build-relative prefixes before matching.
    norm = os.path.normpath(path).replace(os.sep, "/")
    return any(scope in norm for scope in SCOPES)


def scope_key(path):
    norm = os.path.normpath(path).replace(os.sep, "/")
    for scope in SCOPES:
        at = norm.find(scope)
        if at >= 0:
            return norm[at:]
    return None


def collect(build_dir):
    """file -> {line -> hit_count (merged max across TUs)}."""
    gcdas = []
    # Absolute paths: gcov runs from a scratch cwd below.
    build_dir = os.path.abspath(build_dir)
    for root, _dirs, files in os.walk(build_dir):
        gcdas.extend(
            os.path.join(root, f) for f in files if f.endswith(".gcda")
        )
    if not gcdas:
        sys.exit(f"no .gcda files under {build_dir}; build with "
                 "-DSMARTS_COVERAGE=ON and run the unit tier first")

    merged = {}
    with tempfile.TemporaryDirectory() as scratch:
        for gcda in gcdas:
            subprocess.run(
                ["gcov", "--json-format",
                 "--object-directory", os.path.dirname(gcda), gcda],
                cwd=scratch, check=False,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            for name in os.listdir(scratch):
                if not name.endswith(".gcov.json.gz"):
                    continue
                full = os.path.join(scratch, name)
                with gzip.open(full, "rt") as fh:
                    data = json.load(fh)
                os.unlink(full)
                for entry in data.get("files", []):
                    key = scope_key(entry.get("file", ""))
                    if key is None:
                        continue
                    lines = merged.setdefault(key, {})
                    for line in entry.get("lines", []):
                        n = line["line_number"]
                        lines[n] = max(lines.get(n, 0), line["count"])
    return merged


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build", required=True)
    ap.add_argument("--json", default="coverage.json")
    ap.add_argument("--record", action="store_true")
    args = ap.parse_args()

    merged = collect(args.build)
    total = sum(len(lines) for lines in merged.values())
    hit = sum(
        1 for lines in merged.values() for c in lines.values() if c
    )
    if not total:
        sys.exit("no instrumented lines found in the gated scopes")
    pct = 100.0 * hit / total

    per_file = {
        f: {
            "lines": len(lines),
            "hit": sum(1 for c in lines.values() if c),
        }
        for f, lines in sorted(merged.items())
    }
    with open(args.json, "w") as fh:
        json.dump(
            {
                "scopes": list(SCOPES),
                "line_total": total,
                "line_hit": hit,
                "line_coverage_pct": round(pct, 2),
                "files": per_file,
            },
            fh, indent=2,
        )
        fh.write("\n")
    print(f"gated line coverage ({' + '.join(SCOPES)}): "
          f"{hit}/{total} = {pct:.2f}%")

    if args.record:
        floored = int(pct * 10) / 10.0
        with open(BASELINE, "w") as fh:
            fh.write(f"{floored}\n")
        print(f"baseline recorded: {floored} -> {BASELINE}")
        return

    try:
        with open(BASELINE) as fh:
            baseline = float(fh.read().strip())
    except OSError:
        sys.exit(f"missing baseline file {BASELINE}; run with "
                 "--record to create it")
    print(f"recorded baseline: {baseline:.1f}%")
    if pct < baseline:
        sys.exit(f"coverage regression: {pct:.2f}% < baseline "
                 f"{baseline:.1f}%")
    print("coverage gate: OK")


if __name__ == "__main__":
    main()
