/**
 * @file
 * smarts_runner: the distributed shard runner CLI
 * (docs/distributed-runners.md). One binary, two roles:
 *
 * RUNNER (default): point it at a queue directory and a checkpoint
 * store, it waits for the leader's manifest, claims every available
 * (config × shard) job, executes each through the shared slice
 * machinery, publishes checksummed result files, and exits.
 *
 *   smarts_runner --dir=queue --store=store [--id=host-3]
 *                 [--wait=30] [--stale=600]
 *
 * LEADER (--leader): plan a study, capture/ship the checkpoint
 * store, publish the manifest, work alongside the runners (unless
 * --no-work), and fold the completed shards into per-config
 * estimates — bit-identical to the serial SystematicSampler::run()
 * at any runner count, which --serial-check verifies on the spot.
 *
 *   smarts_runner --leader --dir=queue --store=store \
 *       --benchmark=sort-1 --scale=mini --machine=8 [--shards=8] \
 *       [--unit=1000] [--warm=2000] [--interval=0 (auto)] \
 *       [--offset=0] [--timeout=600] [--no-work] [--serial-check] \
 *       [--mode=shard|units] [--jobs=N]
 *
 * --mode=units publishes unit-range jobs over the store's live-point
 * libraries instead of checkpoint shards: the live partition under
 * <queue>/ranges/ re-grains as runners join (collectStudy splits
 * remaining ranges), and the tiling merge stays bit-identical to
 * serial run() through any split history. --jobs seeds the initial
 * range count (default 2 x --shards).
 *
 * The queue directory is plain files — share it over NFS, rsync, or
 * any mounted filesystem; runners on other hosts only need the same
 * (or a copied) store directory.
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint_store.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "distrib/leader.hh"
#include "distrib/protocol.hh"
#include "distrib/runner.hh"
#include "uarch/config.hh"
#include "util/logging.hh"
#include "workloads/benchmark.hh"

#include <unistd.h>

using namespace smarts;

namespace {

struct Options
{
    bool leader = false;
    std::string dir;
    std::string store;
    std::string id;
    double wait = 30.0;
    double stale = -1.0;
    double pollMs = 100.0; ///< seeds the idle-poll backoff.

    // Leader-mode study parameters.
    std::string benchmark;
    workloads::Scale scale = workloads::Scale::Mini;
    bool runEight = true;
    bool runSixteen = false;
    std::uint64_t unit = 1000;
    std::uint64_t warm = 2000;
    std::uint64_t interval = 0; ///< 0 = auto (chooseInterval).
    std::uint64_t offset = 0;
    std::size_t shards = 8;
    double timeout = 600.0;
    bool work = true;
    bool serialCheck = false;
    distrib::JobMode mode = distrib::JobMode::Shard;
    std::size_t jobs = 0; ///< 0 = auto (2 x shards).
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  %s --dir=<queue> --store=<store> [--id=<name>] "
        "[--wait=<s>] [--stale=<s>] [--poll-ms=<ms>]\n"
        "  %s --leader --dir=<queue> --store=<store> "
        "--benchmark=<name> [--scale=mini|small|large]\n"
        "      [--machine=8|16|both] [--unit=<U>] [--warm=<W>] "
        "[--interval=<k>|0=auto] [--offset=<j>]\n"
        "      [--shards=<S>] [--timeout=<s>] [--poll-ms=<ms>] "
        "[--no-work] [--serial-check]\n"
        "      [--mode=shard|units] [--jobs=<N>]\n"
        "see docs/distributed-runners.md\n",
        argv0, argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            return arg.rfind(prefix, 0) == 0
                       ? arg.c_str() + std::strlen(prefix)
                       : nullptr;
        };
        if (arg == "--leader") {
            opt.leader = true;
        } else if (arg == "--no-work") {
            opt.work = false;
        } else if (arg == "--serial-check") {
            opt.serialCheck = true;
        } else if (const char *v = value("--dir=")) {
            opt.dir = v;
        } else if (const char *v2 = value("--store=")) {
            opt.store = v2;
        } else if (const char *v3 = value("--id=")) {
            opt.id = v3;
        } else if (const char *v4 = value("--wait=")) {
            opt.wait = std::atof(v4);
        } else if (const char *v5 = value("--stale=")) {
            opt.stale = std::atof(v5);
        } else if (const char *v6 = value("--benchmark=")) {
            opt.benchmark = v6;
        } else if (const char *v7 = value("--scale=")) {
            if (!std::strcmp(v7, "mini"))
                opt.scale = workloads::Scale::Mini;
            else if (!std::strcmp(v7, "small"))
                opt.scale = workloads::Scale::Small;
            else if (!std::strcmp(v7, "large"))
                opt.scale = workloads::Scale::Large;
            else
                SMARTS_FATAL("unknown scale '", v7, "'");
        } else if (const char *v8 = value("--machine=")) {
            opt.runEight =
                !std::strcmp(v8, "8") || !std::strcmp(v8, "both");
            opt.runSixteen =
                !std::strcmp(v8, "16") || !std::strcmp(v8, "both");
        } else if (const char *v9 = value("--unit=")) {
            opt.unit = std::strtoull(v9, nullptr, 10);
        } else if (const char *v10 = value("--warm=")) {
            opt.warm = std::strtoull(v10, nullptr, 10);
        } else if (const char *v11 = value("--interval=")) {
            opt.interval = std::strtoull(v11, nullptr, 10);
        } else if (const char *v12 = value("--offset=")) {
            opt.offset = std::strtoull(v12, nullptr, 10);
        } else if (const char *v13 = value("--shards=")) {
            opt.shards = std::strtoull(v13, nullptr, 10);
        } else if (const char *v14 = value("--timeout=")) {
            opt.timeout = std::atof(v14);
        } else if (const char *v15 = value("--poll-ms=")) {
            opt.pollMs = std::atof(v15);
            if (opt.pollMs <= 0.0)
                SMARTS_FATAL("--poll-ms must be positive");
        } else if (const char *v16 = value("--mode=")) {
            if (!std::strcmp(v16, "shard"))
                opt.mode = distrib::JobMode::Shard;
            else if (!std::strcmp(v16, "units"))
                opt.mode = distrib::JobMode::UnitRange;
            else
                SMARTS_FATAL("unknown mode '", v16,
                             "' (expected shard|units)");
        } else if (const char *v17 = value("--jobs=")) {
            opt.jobs = std::strtoull(v17, nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        }
    }
    if (opt.dir.empty() || opt.store.empty())
        usage(argv[0]);
    if (opt.leader && opt.benchmark.empty())
        usage(argv[0]);
    if (opt.id.empty())
        opt.id = log::format(opt.leader ? "leader-" : "runner-",
                             ::getpid());
    return opt;
}

int
runnerMain(const Options &opt)
{
    distrib::RunnerOptions ropt;
    ropt.id = opt.id;
    ropt.staleClaimSeconds = opt.stale;
    distrib::Runner runner(opt.dir, opt.store, ropt);

    std::string error;
    const auto manifest =
        runner.awaitManifest(opt.wait, &error, opt.pollMs);
    if (!manifest) {
        std::fprintf(stderr, "smarts_runner %s: %s\n",
                     opt.id.c_str(), error.c_str());
        return 1;
    }
    std::printf("smarts_runner %s: study %016llx — %s at U=%llu "
                "W=%llu k=%llu j=%llu, %zu config(s) x %zu %s\n",
                opt.id.c_str(),
                static_cast<unsigned long long>(manifest->studyId),
                manifest->benchmark.name.c_str(),
                static_cast<unsigned long long>(
                    manifest->sampling.unitSize),
                static_cast<unsigned long long>(
                    manifest->sampling.detailedWarming),
                static_cast<unsigned long long>(
                    manifest->sampling.interval),
                static_cast<unsigned long long>(
                    manifest->sampling.offset),
                manifest->configs.size(),
                manifest->mode == distrib::JobMode::UnitRange
                    ? manifest->ranges.size()
                    : manifest->plan.size(),
                manifest->mode == distrib::JobMode::UnitRange
                    ? "unit-range(s)"
                    : "shard(s)");

    const std::size_t executed = runner.drain(*manifest);
    std::printf("smarts_runner %s: executed %zu of %zu job(s)\n",
                opt.id.c_str(), executed, manifest->jobCount());
    return 0;
}

int
leaderMain(const Options &opt)
{
    const workloads::BenchmarkSpec spec =
        workloads::findBenchmark(opt.benchmark, opt.scale);
    std::vector<uarch::MachineConfig> configs;
    if (opt.runEight)
        configs.push_back(uarch::MachineConfig::eightWay());
    if (opt.runSixteen)
        configs.push_back(uarch::MachineConfig::sixteenWay());
    if (configs.empty())
        SMARTS_FATAL("--machine selected no configs");

    // The true stream length anchors the shard plan (one functional
    // pass — the same contract every sharded path imposes).
    std::uint64_t length;
    {
        core::SimSession probe(spec, configs.front());
        length =
            probe.fastForward(~0ull >> 1, core::WarmingMode::None);
    }

    core::SamplingConfig sc;
    sc.unitSize = opt.unit;
    sc.detailedWarming = opt.warm;
    sc.warming = core::WarmingMode::Functional;
    sc.offset = opt.offset;
    sc.interval =
        opt.interval
            ? opt.interval
            : core::SamplingConfig::chooseInterval(
                  length, sc.unitSize, length / sc.unitSize / 4);

    core::CheckpointStore store(opt.store);
    distrib::JobManifest manifest;
    if (opt.mode == distrib::JobMode::UnitRange) {
        const distrib::LivePointPlan plan =
            distrib::ensureStudyLivePoints(store, spec, configs, sc);
        const std::size_t jobs =
            opt.jobs ? opt.jobs : 2 * opt.shards;
        manifest = distrib::planUnitStudy(spec, configs, sc,
                                          plan.streamLength,
                                          plan.totalUnits, jobs);
    } else {
        manifest =
            distrib::planStudy(spec, configs, sc, length, opt.shards);
    }

    std::printf("leader: study %016llx — %s (%.1f M insts) at "
                "U=%llu W=%llu k=%llu j=%llu; %zu config(s) x %zu "
                "%s = %zu jobs\n",
                static_cast<unsigned long long>(manifest.studyId),
                spec.name.c_str(),
                static_cast<double>(length) / 1e6,
                static_cast<unsigned long long>(sc.unitSize),
                static_cast<unsigned long long>(sc.detailedWarming),
                static_cast<unsigned long long>(sc.interval),
                static_cast<unsigned long long>(sc.offset),
                manifest.configs.size(),
                manifest.mode == distrib::JobMode::UnitRange
                    ? manifest.ranges.size()
                    : manifest.plan.size(),
                manifest.mode == distrib::JobMode::UnitRange
                    ? "unit-range(s)"
                    : "shard(s)",
                manifest.jobCount());

    // Ship the store BEFORE publishing the manifest: runners that
    // pounce on the manifest find every resume library in place.
    const std::size_t captured =
        distrib::ensureStudyStore(store, manifest);
    std::printf("leader: store %s ready (%zu librar%s captured)\n",
                store.root().c_str(), captured,
                captured == 1 ? "y" : "ies");

    std::string error;
    if (!distrib::publishStudy(opt.dir, manifest, &error))
        SMARTS_FATAL("cannot publish manifest: ", error);
    std::printf("leader: manifest published at %s\n",
                distrib::manifestPath(opt.dir).c_str());

    distrib::RunnerOptions ropt;
    ropt.id = opt.id;
    ropt.staleClaimSeconds = opt.stale;
    distrib::Runner helper(opt.dir, opt.store, ropt);
    const auto estimates = distrib::collectStudy(
        opt.dir, manifest, opt.timeout,
        opt.work ? &helper : nullptr, &error, opt.pollMs);
    if (!estimates)
        SMARTS_FATAL("study failed: ", error);

    std::printf("\n");
    bool identical = true;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const core::SmartsEstimate &est = (*estimates)[c];
        std::printf("%-8s units %llu  CPI %.4f +/- %.2f%%  EPI "
                    "%.3f nJ  detailed %.2f%%\n",
                    configs[c].name.c_str(),
                    static_cast<unsigned long long>(est.units()),
                    est.cpi(),
                    est.cpiConfidenceInterval(0.997) * 100.0,
                    est.epi(), est.detailedFraction() * 100.0);
        if (opt.serialCheck) {
            core::SimSession serialSession(spec, configs[c]);
            const core::SmartsEstimate serial =
                core::SystematicSampler(sc).run(serialSession);
            const bool same =
                est.fingerprint() == serial.fingerprint();
            identical &= same;
            std::printf("%-8s bitwise identical to serial run(): "
                        "%s\n",
                        "", same ? "yes" : "NO");
        }
    }
    if (opt.serialCheck && !identical) {
        std::fprintf(stderr, "leader: merged estimate DIVERGED "
                             "from the serial run\n");
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    return opt.leader ? leaderMain(opt) : runnerMain(opt);
}
