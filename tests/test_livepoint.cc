/**
 * @file
 * Tests for live-points (core/livepoint.hh,
 * docs/checkpoint-format.md § Version 2): delta-codec roundtrip
 * byte-identity and its refusal matrix; `.smlp` save/load
 * roundtrips and the library's own refusals (truncated, corrupt,
 * version-bumped, mis-keyed, off-grid files are REJECTED with a
 * diagnostic, never loaded); same-seed shuffle reproducibility;
 * the early-stop estimate landing inside its confidence interval
 * of the full-run estimate; and the completion-mode bar —
 * runAnytime with epsilon = 0 must fold to an estimate
 * bit-identical to serial run() at 1, 2 and 5 threads. Runs under
 * TSan in CI to guard the batch-dispatch/pool handoff.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint_store.hh"
#include "core/livepoint.hh"
#include "core/procedure.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "exec/thread_pool.hh"
#include "uarch/config.hh"
#include "util/binary_io.hh"
#include "util/delta_codec.hh"
#include "workloads/benchmark.hh"

#include "check.hh"
#include "estimate_fingerprint.hh"

using namespace smarts;
using smarts::test::fingerprint;
namespace fs = std::filesystem;

namespace {

const char *kDir = "test_livepoint_store";

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Rewrite @p path's trailing checksum after tampering with it. */
void
resealChecksum(const std::string &path)
{
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    const std::size_t payload = bytes.size() - 8;
    const std::uint64_t sum = util::fnv1a(bytes.data(), payload);
    for (int i = 0; i < 8; ++i)
        bytes[payload + i] =
            static_cast<std::uint8_t>(sum >> (8 * i));
    writeFileBytes(path, bytes);
}

/** Roundtrip @p data against @p base and demand byte identity. */
void
checkCodecRoundtrip(const std::vector<std::uint8_t> &base,
                    const std::vector<std::uint8_t> &data)
{
    const std::vector<std::uint8_t> delta =
        util::deltaEncode(base, data);
    std::string error;
    const auto back = util::deltaDecode(base, delta, &error);
    CHECK(back.has_value());
    CHECK_EQ(error, std::string());
    CHECK(back.has_value() && *back == data);
}

void
testDeltaCodecRoundtrips()
{
    const std::vector<std::uint8_t> empty;
    std::vector<std::uint8_t> a(4096), b(4096);
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Realistic shape: long identical stretches with sparse
        // diffs, exactly what consecutive warm states look like.
        a[i] = static_cast<std::uint8_t>(i * 37 + (i >> 5));
        b[i] = a[i];
    }
    for (std::size_t i = 100; i < 130; ++i)
        b[i] ^= 0x5a;
    b[4000] ^= 1;

    checkCodecRoundtrip(empty, empty);
    checkCodecRoundtrip(empty, a);    // no base: all literal.
    checkCodecRoundtrip(a, a);        // identical: all zero runs.
    checkCodecRoundtrip(a, b);        // sparse diffs.
    checkCodecRoundtrip(b, a);
    checkCodecRoundtrip(a, empty);    // data shorter than base.
    checkCodecRoundtrip(
        std::vector<std::uint8_t>(a.begin(), a.begin() + 64),
        a);                           // data longer than base.
    checkCodecRoundtrip(a, std::vector<std::uint8_t>{0x42});

    // Identical data must compress to (nearly) nothing — the whole
    // point of chaining consecutive live-points.
    CHECK(util::deltaEncode(a, a).size() < 32);
    // Sparse diffs must cost far less than a full copy.
    CHECK(util::deltaEncode(a, b).size() < a.size() / 4);

    // Single-byte tamper anywhere in the delta must change the
    // decode (or refuse) — never silently yield the original.
    {
        std::vector<std::uint8_t> delta = util::deltaEncode(a, b);
        delta[delta.size() / 2] ^= 0x10;
        const auto mangled = util::deltaDecode(a, delta);
        CHECK(!mangled.has_value() || *mangled != b);
    }
}

void
testDeltaCodecRefusals()
{
    std::vector<std::uint8_t> base(256, 0x11);
    std::vector<std::uint8_t> data(256, 0x11);
    data[7] = 0x99;
    const std::vector<std::uint8_t> delta =
        util::deltaEncode(base, data);

    std::string error;

    // Truncated: any prefix must refuse, not decode short.
    for (const std::size_t keep :
         {std::size_t(0), std::size_t(4), std::size_t(9),
          delta.size() - 1}) {
        error.clear();
        const auto out = util::deltaDecode(
            base,
            std::vector<std::uint8_t>(delta.begin(),
                                      delta.begin() + keep),
            &error);
        CHECK(!out.has_value());
        CHECK(!error.empty());
    }

    // Trailing garbage after a well-formed stream.
    {
        std::vector<std::uint8_t> extra = delta;
        extra.push_back(0xee);
        error.clear();
        CHECK(!util::deltaDecode(base, extra, &error).has_value());
        CHECK(!error.empty());
    }

    // An absurd declared size must refuse before allocating.
    {
        util::BinaryWriter w;
        w.u64(~0ull >> 1);
        error.clear();
        CHECK(!util::deltaDecode(base, w.buffer(), &error)
                   .has_value());
        CHECK(!error.empty());
    }

    // Zero-progress ops (zeroRun = literalLen = 0) must refuse
    // instead of looping forever.
    {
        util::BinaryWriter w;
        w.u64(8);
        w.u32(0);
        w.u32(0);
        error.clear();
        CHECK(!util::deltaDecode(base, w.buffer(), &error)
                   .has_value());
        CHECK(!error.empty());
    }

    // Ops overrunning the declared size.
    {
        util::BinaryWriter w;
        w.u64(4);
        w.u32(8); // an 8-byte zero run into a 4-byte state.
        w.u32(0);
        error.clear();
        CHECK(!util::deltaDecode(base, w.buffer(), &error)
                   .has_value());
        CHECK(!error.empty());
    }
}

core::SamplingConfig
defaultSampling()
{
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 10;
    sc.warming = core::WarmingMode::Functional;
    return sc;
}

void
testLibraryCaptureGeometry()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();

    core::SimSession session(spec, config);
    const core::LivePointLibrary library =
        core::LivePointLibrary::build(session, sc);

    // The capture ran the stream out: its length is the truth.
    CHECK_EQ(library.streamLength(), session.instCount());
    CHECK(library.unitCount() > 0);
    CHECK(library.byteSize() > 0);

    // One live-point per grid unit, at most W before its unit, in
    // stream order.
    for (std::size_t i = 0; i < library.unitCount(); ++i) {
        const core::LivePoint &point = library.at(i);
        CHECK_EQ(point.unitIndex, sc.offset + i * sc.interval);
        const std::uint64_t unitStart =
            point.unitIndex * sc.unitSize;
        CHECK(point.position <= unitStart);
        CHECK(point.position + sc.detailedWarming >= unitStart);
        if (i)
            CHECK(point.position >= library.at(i - 1).position);
    }
}

void
testLibraryRoundtripAndRefusals()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("phase-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const core::LibraryKey key =
        core::LibraryKey::of(spec, config, sc);

    core::SimSession session(spec, config);
    const core::LivePointLibrary library =
        core::LivePointLibrary::build(session, sc);

    const std::string path =
        std::string(kDir) + "/roundtrip.smlp";
    std::string error;
    CHECK(library.save(key, path, &error));
    CHECK_EQ(error, std::string());

    // Loaded = saved, byte for byte: every point's identity and
    // serialized state must survive the delta chain.
    const auto loaded =
        core::LivePointLibrary::load(path, key, &error);
    CHECK(loaded.has_value());
    CHECK_EQ(error, std::string());
    CHECK_EQ(loaded->streamLength(), library.streamLength());
    CHECK_EQ(loaded->unitCount(), library.unitCount());
    for (std::size_t i = 0; i < library.unitCount(); ++i) {
        CHECK_EQ(loaded->at(i).unitIndex, library.at(i).unitIndex);
        CHECK_EQ(loaded->at(i).position, library.at(i).position);
        util::BinaryWriter a, b;
        library.at(i).arch.write(a);
        library.at(i).timing.write(a);
        loaded->at(i).arch.write(b);
        loaded->at(i).timing.write(b);
        if (!(a.buffer() == b.buffer())) {
            CHECK(a.buffer() == b.buffer());
            break; // one diagnostic is enough.
        }
    }

    auto refuses = [&key](const std::string &file) {
        std::string why;
        const bool refused =
            !core::LivePointLibrary::load(file, key, &why)
                 .has_value();
        CHECK(refused);
        CHECK(!why.empty());
        return refused;
    };
    const std::vector<std::uint8_t> good = readFileBytes(path);
    const std::string victim =
        std::string(kDir) + "/tampered.smlp";

    // Missing file.
    refuses(std::string(kDir) + "/nonexistent.smlp");

    // Truncation: the trailing file checksum catches it.
    writeFileBytes(victim,
                   std::vector<std::uint8_t>(
                       good.begin(), good.end() - good.size() / 3));
    refuses(victim);

    // Wrong magic (a shard library is not a live-point library).
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] = 'X';
        writeFileBytes(victim, bad);
        resealChecksum(victim);
        refuses(victim);
    }

    // Version bump: a future format must refuse, not misparse.
    {
        std::vector<std::uint8_t> bad = good;
        bad[8] = 4;
        writeFileBytes(victim, bad);
        resealChecksum(victim);
        refuses(victim);
    }

    // Flavor byte flipped to mix (1): reserved — no reader exists.
    {
        std::vector<std::uint8_t> bad = good;
        bad[16] = 1; // flavor u8 sits after magic+version+endian.
        writeFileBytes(victim, bad);
        resealChecksum(victim);
        refuses(victim);
    }

    // Endianness marker.
    {
        std::vector<std::uint8_t> bad = good;
        bad[12] ^= 0xff;
        writeFileBytes(victim, bad);
        resealChecksum(victim);
        refuses(victim);
    }

    // Record-state corruption: flip one byte mid-payload and
    // reseal the FILE checksum — the per-record state checksum (or
    // the codec itself) must still pin the damage.
    {
        std::vector<std::uint8_t> bad = good;
        bad[bad.size() / 2] ^= 0x20;
        writeFileBytes(victim, bad);
        resealChecksum(victim);
        refuses(victim);
    }

    // Mis-keyed: a different sampling design must refuse even
    // though the file itself is pristine.
    {
        core::SamplingConfig other = sc;
        other.interval = sc.interval + 1;
        std::string why;
        CHECK(!core::LivePointLibrary::load(
                   path, core::LibraryKey::of(spec, config, other),
                   &why)
                   .has_value());
        CHECK(!why.empty());
    }
    // ...and a different machine geometry likewise.
    {
        std::string why;
        CHECK(!core::LivePointLibrary::load(
                   path,
                   core::LibraryKey::of(
                       spec, uarch::MachineConfig::sixteenWay(), sc),
                   &why)
                   .has_value());
        CHECK(!why.empty());
    }
}

void
testStoreRoundtrip()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("stream-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const core::LibraryKey key =
        core::LibraryKey::of(spec, config, sc);

    core::CheckpointStore store(kDir);
    CHECK(!store.tryLoadLivePoints(key).has_value()); // cold miss.

    // ensureLivePoints captures every miss in one pass, then hits.
    CHECK_EQ(store.ensureLivePoints(spec, {config}, sc),
             std::size_t(1));
    CHECK_EQ(store.ensureLivePoints(spec, {config}, sc),
             std::size_t(0));
    const auto warm = store.tryLoadLivePoints(key);
    CHECK(warm.has_value());
    CHECK(warm->unitCount() > 0);

    // Live-point files live next to shard files, distinct suffix.
    CHECK(fs::exists(store.livePointPathFor(key)));
    CHECK(store.livePointPathFor(key) != store.pathFor(key));

    // Multi-config capture: one pass, per-config libraries each
    // byte-identical to a single-config capture of that config.
    const auto sixteen = uarch::MachineConfig::sixteenWay();
    CHECK_EQ(store.ensureLivePoints(spec, {config, sixteen}, sc),
             std::size_t(1)); // 8-way already stored.
    const core::LibraryKey key16 =
        core::LibraryKey::of(spec, sixteen, sc);
    const auto multi = store.tryLoadLivePoints(key16);
    CHECK(multi.has_value());

    core::SimSession solo(spec, sixteen);
    const core::LivePointLibrary direct =
        core::LivePointLibrary::build(solo, sc);
    CHECK_EQ(multi->unitCount(), direct.unitCount());
    CHECK_EQ(multi->streamLength(), direct.streamLength());
    bool statesMatch = true;
    for (std::size_t i = 0;
         statesMatch && i < direct.unitCount(); ++i) {
        util::BinaryWriter a, b;
        multi->at(i).arch.write(a);
        multi->at(i).timing.write(a);
        direct.at(i).arch.write(b);
        direct.at(i).timing.write(b);
        statesMatch = a.buffer() == b.buffer();
    }
    CHECK(statesMatch);
}

void
checkAnytimeCompletionIdentical(const workloads::BenchmarkSpec &spec,
                                const uarch::MachineConfig &config,
                                const core::SamplingConfig &sc)
{
    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };
    core::SimSession serialSession(spec, config);
    const core::SmartsEstimate serial =
        core::SystematicSampler(sc).run(serialSession);
    CHECK(serial.units() > 0);

    core::SimSession captureSession(spec, config);
    const core::LivePointLibrary library =
        core::LivePointLibrary::build(captureSession, sc);

    core::AnytimeOptions options;
    options.target.epsilon = 0.0; // completion mode: measure all.
    for (const std::size_t threads :
         {std::size_t(1), std::size_t(2), std::size_t(5)}) {
        exec::ThreadPool pool(threads);
        const core::AnytimeResult result =
            core::SystematicSampler(sc).runAnytime(factory, library,
                                                   pool, options);
        CHECK(!result.earlyStopped);
        CHECK_EQ(result.unitsMeasured, result.unitsAvailable);
        CHECK(fingerprint(result.estimate) == fingerprint(serial));
    }
}

void
testAnytimeCompletionBitIdentical()
{
    const auto config = uarch::MachineConfig::eightWay();

    // The shard-identity roster: data-dependent branches, phase
    // alternation, pointer chasing.
    for (const char *name : {"sort-1", "phase-1", "chase-1"})
        checkAnytimeCompletionIdentical(
            workloads::findBenchmark(name, workloads::Scale::Mini),
            config, defaultSampling());

    // Nonzero offset, 16-way machine, sparser grid.
    {
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = 4000;
        sc.interval = 17;
        sc.offset = 5;
        sc.warming = core::WarmingMode::Functional;
        checkAnytimeCompletionIdentical(
            workloads::findBenchmark("fsm-1",
                                     workloads::Scale::Mini),
            uarch::MachineConfig::sixteenWay(), sc);
    }

    // Truncation-prone: k=1, U coprime-ish with the stream length,
    // so the final unit is cut short; the dropped-instruction
    // accounting must match serial bit for bit.
    {
        core::SamplingConfig sc;
        sc.unitSize = 999;
        sc.detailedWarming = 0;
        sc.interval = 1;
        sc.warming = core::WarmingMode::Functional;
        const auto spec = workloads::findBenchmark(
            "alu-1", workloads::Scale::Mini);
        core::SimSession serialSession(spec, config);
        const core::SmartsEstimate serial =
            core::SystematicSampler(sc).run(serialSession);
        CHECK(serial.instructionsDropped > 0);
        checkAnytimeCompletionIdentical(spec, config, sc);
    }
}

void
testLeapfrogColdOverlapBitIdentical()
{
    // The LEAPFROG cold path: capture and measurement overlap at
    // per-unit grain, then the anytime stop rule is replayed over
    // the complete sample set — so the result must be bit-identical
    // to serial run() (completion mode) and to a warm-path
    // runAnytime (early-stop mode), at any thread count.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };

    core::SimSession serialSession(spec, config);
    const core::SmartsEstimate serial =
        core::SystematicSampler(sc).run(serialSession);

    core::AnytimeOptions options;
    options.target.epsilon = 0.0; // completion mode: measure all.
    for (const std::size_t threads :
         {std::size_t(1), std::size_t(2), std::size_t(5)}) {
        exec::ThreadPool pool(threads);
        core::SimSession captureSession(spec, config);
        core::LivePointLibrary collected;
        const core::AnytimeResult result =
            core::SystematicSampler(sc).runAnytimeLeapfrog(
                captureSession, factory, pool, options, &collected);
        CHECK(!result.earlyStopped);
        CHECK_EQ(result.unitsMeasured, result.unitsAvailable);
        CHECK(fingerprint(result.estimate) == fingerprint(serial));

        // The collected library is the real thing: a warm anytime
        // run over it folds to the same estimate.
        CHECK_EQ(collected.unitCount(), result.unitsAvailable);
        const core::AnytimeResult warm =
            core::SystematicSampler(sc).runAnytime(
                factory, collected, pool, options);
        CHECK(fingerprint(warm.estimate) == fingerprint(serial));
    }

    // Early-stop replay: with a real confidence target the leapfrog
    // run measures EVERY unit (the stop rule cannot fire mid-capture
    // without biasing the shuffle) yet must report the identical
    // measured-set size, stop flag and estimate as the warm path
    // over the library it just captured.
    {
        const auto dense =
            workloads::findBenchmark("bsearch-1",
                                     workloads::Scale::Mini);
        auto denseFactory = [&dense, &config] {
            return std::make_unique<core::SimSession>(dense, config);
        };
        core::SamplingConfig dsc = defaultSampling();
        dsc.interval = 2;
        core::AnytimeOptions target;
        target.target.level = 0.997;
        target.target.epsilon = 0.03;
        target.seed = 7;

        exec::ThreadPool pool(2);
        core::SimSession captureSession(dense, config);
        core::LivePointLibrary collected;
        const core::AnytimeResult leap =
            core::SystematicSampler(dsc).runAnytimeLeapfrog(
                captureSession, denseFactory, pool, target,
                &collected);
        const core::AnytimeResult warm =
            core::SystematicSampler(dsc).runAnytime(
                denseFactory, collected, pool, target);
        CHECK(leap.earlyStopped);
        CHECK_EQ(leap.earlyStopped, warm.earlyStopped);
        CHECK_EQ(leap.unitsMeasured, warm.unitsMeasured);
        CHECK(leap.unitsMeasured < leap.unitsAvailable);
        CHECK(fingerprint(leap.estimate) ==
              fingerprint(warm.estimate));
    }
}

void
testShuffleReproducibilityAndEarlyStop()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("bsearch-1",
                                 workloads::Scale::Mini);

    // A dense grid (k = 2) on a moderate-variance stream: Eq. 3
    // wants ~a quarter of the ~900 available units at 99.7%/±3%,
    // so the stop rule reliably fires long before the grid runs
    // out.
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 2;
    sc.warming = core::WarmingMode::Functional;

    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };
    core::SimSession captureSession(spec, config);
    const core::LivePointLibrary library =
        core::LivePointLibrary::build(captureSession, sc);
    CHECK(library.unitCount() > 64);

    exec::ThreadPool pool(2);
    core::AnytimeOptions options;
    options.target.level = 0.997;
    options.target.epsilon = 0.03;
    options.seed = 7;

    const core::AnytimeResult first =
        core::SystematicSampler(sc).runAnytime(factory, library,
                                               pool, options);

    // Same seed -> the identical measured set and estimate, run
    // after run and at another thread count.
    {
        const core::AnytimeResult again =
            core::SystematicSampler(sc).runAnytime(factory, library,
                                                   pool, options);
        CHECK_EQ(again.unitsMeasured, first.unitsMeasured);
        CHECK(fingerprint(again.estimate) ==
              fingerprint(first.estimate));
        exec::ThreadPool five(5);
        const core::AnytimeResult wide =
            core::SystematicSampler(sc).runAnytime(factory, library,
                                                   five, options);
        CHECK_EQ(wide.unitsMeasured, first.unitsMeasured);
        CHECK(fingerprint(wide.estimate) ==
              fingerprint(first.estimate));
    }

    // The early stop must actually save work here...
    CHECK(first.earlyStopped);
    CHECK(first.unitsMeasured < first.unitsAvailable);
    CHECK(first.unitsMeasured >= options.minUnits);

    // ...and the estimate it stops at must sit inside its own
    // confidence interval of the full-population estimate.
    core::AnytimeOptions full;
    full.target.epsilon = 0.0;
    const core::AnytimeResult complete =
        core::SystematicSampler(sc).runAnytime(factory, library,
                                               pool, full);
    const double ci =
        first.estimate.cpiConfidenceInterval(options.target.level) *
        first.estimate.cpi();
    CHECK(std::fabs(first.estimate.cpi() -
                    complete.estimate.cpi()) <= ci);

    // A different seed measures a different prefix (overwhelmingly
    // likely on >64 units) but must stop at a compatible estimate.
    core::AnytimeOptions reseeded = options;
    reseeded.seed = 99;
    const core::AnytimeResult other =
        core::SystematicSampler(sc).runAnytime(factory, library,
                                               pool, reseeded);
    CHECK(std::fabs(other.estimate.cpi() -
                    complete.estimate.cpi()) <=
          other.estimate.cpiConfidenceInterval(
              options.target.level) *
              other.estimate.cpi());
}

void
testEstimateAnytimeEndToEnd()
{
    // The procedure-level wrapper: cold call captures and persists,
    // warm call loads — and both yield the identical estimate.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("bsearch-1",
                                 workloads::Scale::Mini);
    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };

    std::uint64_t length;
    {
        core::SimSession probe(spec, config);
        length =
            probe.fastForward(~0ull >> 1, core::WarmingMode::None);
    }

    core::ProcedureConfig pc;
    pc.nInit = 200;
    core::SmartsProcedure procedure(pc);
    core::CheckpointStore store(kDir);
    exec::ThreadPool pool(2);

    const core::AnytimeResult cold = procedure.estimateAnytime(
        factory, spec, config, length, pool, store);
    CHECK(cold.unitsMeasured > 0);
    const core::AnytimeResult rewarm = procedure.estimateAnytime(
        factory, spec, config, length, pool, store);
    CHECK_EQ(rewarm.unitsMeasured, cold.unitsMeasured);
    CHECK(fingerprint(rewarm.estimate) ==
          fingerprint(cold.estimate));
}

} // namespace

int
main()
{
    fs::remove_all(kDir);
    fs::create_directories(kDir);

    testDeltaCodecRoundtrips();
    testDeltaCodecRefusals();
    testLibraryCaptureGeometry();
    testLibraryRoundtripAndRefusals();
    testStoreRoundtrip();
    testAnytimeCompletionBitIdentical();
    testLeapfrogColdOverlapBitIdentical();
    testShuffleReproducibilityAndEarlyStop();
    testEstimateAnytimeEndToEnd();
    TEST_MAIN_SUMMARY();
}
