/**
 * @file
 * End-to-end core-layer tests: the sampled SMARTS estimate tracks
 * the full-stream reference, V_CPI(U) falls with U (the Figure 2
 * property), the rate model has the paper's shape, and the two-pass
 * procedure engages when the target is tight. Everything here is
 * deterministic (fixed seeds, fixed streams).
 */

#include "core/bias.hh"
#include "core/perf_model.hh"
#include "core/procedure.hh"
#include "core/reference.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

#include "check.hh"

using namespace smarts;

namespace {

void
testSampledEstimateTracksReference()
{
    const auto config = uarch::MachineConfig::eightWay();
    core::ReferenceRunner runner(workloads::Scale::Mini, config);

    for (const char *name : {"fsm-1", "mix-1", "alu-1"}) {
        const auto spec =
            workloads::findBenchmark(name, workloads::Scale::Mini);
        const core::ReferenceResult &ref = runner.get(spec);
        CHECK(ref.cpi > 0.05);
        CHECK(ref.cpi < 30.0);
        CHECK(ref.epi > 0.0);

        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = 2000;
        sc.warming = core::WarmingMode::Functional;
        sc.interval = core::SamplingConfig::chooseInterval(
            ref.instructions, sc.unitSize, 150);
        core::SimSession session(spec, config);
        const core::SmartsEstimate est =
            core::SystematicSampler(sc).run(session);

        CHECK(est.units() >= 100);
        const double err = (est.cpi() - ref.cpi) / ref.cpi;
        // Functional warming + W=2000 must land near the truth.
        CHECK(std::fabs(err) < 0.10);
        CHECK(est.cpiConfidenceInterval(0.997) > 0.0);
    }
}

void
testCvFallsWithUnitSize()
{
    const auto config = uarch::MachineConfig::eightWay();
    core::ReferenceRunner runner(workloads::Scale::Mini, config);
    for (const char *name : {"mix-1", "bsearch-1", "phase-1"}) {
        const auto spec =
            workloads::findBenchmark(name, workloads::Scale::Mini);
        const core::ReferenceResult &ref = runner.get(spec);
        const double v10 = core::cvAtUnitSize(ref, 10);
        const double v1k = core::cvAtUnitSize(ref, 1000);
        const double v100k = core::cvAtUnitSize(ref, 100'000);
        CHECK(v10 > 0.0);
        // The Figure 2 trend: steep fall below U=1000, still
        // falling (or flat) after.
        CHECK(v1k < v10);
        CHECK(v100k <= v1k + 1e-9);
    }
}

void
testRateModelShape()
{
    const core::RateParams paper{1.0, 1.0 / 60.0, 0.55};
    const std::uint64_t n = 10'000, u = 1000;
    const std::uint64_t big = 10'000'000'000ull;

    // Falls from ~S_F toward S_D as W grows.
    const double atW0 =
        core::smartsRateDetailedWarming(big, n, u, 0, paper);
    const double atW1e5 =
        core::smartsRateDetailedWarming(big, n, u, 100'000, paper);
    const double atWHuge =
        core::smartsRateDetailedWarming(big, n, u, 10'000'000, paper);
    CHECK(atW0 > 0.9);
    CHECK(atW1e5 < atW0);
    CHECK_NEAR(atWHuge, paper.detailed, 1e-6); // clamped limit.

    // Functional warming pins the rate near S_FW regardless of the
    // detailed-warming sweep.
    const double fw =
        core::smartsRateFunctionalWarming(big, n, u, 2000, paper);
    CHECK(fw > 0.4);
    CHECK(fw < paper.functionalWarming);
    CHECK_NEAR(core::speedupOverDetailed(fw, paper), fw * 60.0,
               1e-9);
}

void
testProcedureTwoPass()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("mix-1", workloads::Scale::Mini);
    std::uint64_t length;
    {
        core::SimSession probe(spec, config);
        length = probe.fastForward(~0ull >> 1,
                                   core::WarmingMode::None);
    }
    const auto factory = [&] {
        return std::make_unique<core::SimSession>(spec, config);
    };

    // A deliberately tiny first sample with a tight target: the
    // procedure must rerun with n_tuned and tighten the CI.
    core::ProcedureConfig pc;
    pc.unitSize = 1000;
    pc.detailedWarming = 2000;
    pc.warming = core::WarmingMode::Functional;
    pc.target = {0.997, 0.005};
    pc.nInit = 40;
    const core::ProcedureResult tight =
        core::SmartsProcedure(pc).estimate(factory, length);
    CHECK(!tight.metOnFirstTry());
    CHECK(tight.recommendedN > tight.initial.units());
    CHECK(tight.tuned.has_value());
    CHECK(tight.final().units() > tight.initial.units());
    CHECK(tight.final().cpiConfidenceInterval(0.997) <
          tight.initial.cpiConfidenceInterval(0.997));

    // A loose target met on the first try.
    pc.target = {0.95, 0.2};
    pc.nInit = 100;
    const core::ProcedureResult loose =
        core::SmartsProcedure(pc).estimate(factory, length);
    CHECK(loose.metOnFirstTry());
    CHECK(&loose.final() == &loose.initial);
}

void
testMeasureBiasPhases()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("fsm-1", workloads::Scale::Mini);
    core::ReferenceRunner runner(workloads::Scale::Mini, config);
    const core::ReferenceResult &ref = runner.get(spec);

    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.warming = core::WarmingMode::Functional;
    sc.interval = core::SamplingConfig::chooseInterval(
        ref.instructions, sc.unitSize, 100);
    const core::BiasResult bias = core::measureBias(
        [&] {
            return std::make_unique<core::SimSession>(spec, config);
        },
        sc, 3, ref.cpi);
    CHECK(bias.phaseCpi.size() == 3);
    CHECK(std::fabs(bias.relativeBias) < 0.10);
    CHECK_NEAR(bias.referenceCpi, ref.cpi, 1e-12);
}

} // namespace

int
main()
{
    testSampledEstimateTracksReference();
    testCvFallsWithUnitSize();
    testRateModelShape();
    testProcedureTwoPass();
    testMeasureBiasPhases();
    TEST_MAIN_SUMMARY();
}
