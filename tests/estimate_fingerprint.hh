/**
 * @file
 * Shared bit-exact fingerprint of a SmartsEstimate for the
 * determinism suites (test_checkpoint.cc, test_persist.cc): every
 * statistical accumulator and instruction counter, doubles compared
 * by bit pattern. ONE definition on purpose — when SmartsEstimate
 * grows a field, adding it here tightens every bit-identity
 * contract at once instead of silently narrowing one suite's.
 */

#ifndef SMARTS_TESTS_ESTIMATE_FINGERPRINT_HH
#define SMARTS_TESTS_ESTIMATE_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/sampler.hh"

namespace smarts::test {

inline std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/** Every field of the estimate, bit-exact. */
inline std::vector<std::uint64_t>
fingerprint(const core::SmartsEstimate &est)
{
    return {est.cpiStats.count(),    bitsOf(est.cpiStats.mean()),
            bitsOf(est.cpiStats.variance()),
            est.epiStats.count(),    bitsOf(est.epiStats.mean()),
            bitsOf(est.epiStats.variance()),
            est.instructionsMeasured, est.instructionsWarmed,
            est.instructionsDropped, est.streamLength};
}

} // namespace smarts::test

#endif // SMARTS_TESTS_ESTIMATE_FINGERPRINT_HH
