/**
 * @file
 * Test-suite alias for the bit-exact SmartsEstimate fingerprint.
 * The ONE definition lives on the estimate itself
 * (core/sampler.hh, SmartsEstimate::fingerprint) so the tests, the
 * golden benches and smarts_runner --serial-check all tighten
 * together when the estimate grows a field; this header only keeps
 * the suites' free-function spelling.
 */

#ifndef SMARTS_TESTS_ESTIMATE_FINGERPRINT_HH
#define SMARTS_TESTS_ESTIMATE_FINGERPRINT_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/sampler.hh"

namespace smarts::test {

/** Raw bit pattern of a double (bit-exact comparisons in checks). */
inline std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

inline std::vector<std::uint64_t>
fingerprint(const core::SmartsEstimate &est)
{
    return est.fingerprint();
}

} // namespace smarts::test

#endif // SMARTS_TESTS_ESTIMATE_FINGERPRINT_HH
