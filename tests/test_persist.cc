/**
 * @file
 * Tests for persistent checkpoint libraries (core/checkpoint.hh
 * save/load, core/checkpoint_store.hh): load-vs-capture bit-identity
 * at 1/2/5 shards, the store-backed sampler and two-pass procedure
 * paths, one-pass multi-config capture equivalence, geometry-keyed
 * cross-config reuse — and, just as load-bearing, the refusals: a
 * truncated, corrupted, version-bumped or mis-keyed file must be
 * REJECTED with a diagnostic, never silently mis-warm a shard.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.hh"
#include "core/checkpoint_store.hh"
#include "core/procedure.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "exec/thread_pool.hh"
#include "uarch/config.hh"
#include "util/binary_io.hh"
#include "workloads/benchmark.hh"

#include "check.hh"
#include "estimate_fingerprint.hh"

using namespace smarts;
using smarts::test::fingerprint;
namespace fs = std::filesystem;

namespace {

const char *kRoot = "test_persist_store";

core::SamplingConfig
defaultSampling()
{
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 10;
    sc.warming = core::WarmingMode::Functional;
    return sc;
}

std::uint64_t
streamLengthOf(const workloads::BenchmarkSpec &spec,
               const uarch::MachineConfig &config)
{
    core::SimSession probe(spec, config);
    return probe.fastForward(~0ull >> 1, core::WarmingMode::None);
}

std::vector<std::uint8_t>
serializedBytes(const core::CheckpointLibrary &library,
                const core::LibraryKey &key)
{
    util::BinaryWriter out;
    library.serialize(key, out);
    return out.buffer();
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** Rewrite @p path's trailing checksum after tampering with it. */
void
resealChecksum(const std::string &path)
{
    std::vector<std::uint8_t> bytes = readFileBytes(path);
    const std::size_t payload = bytes.size() - 8;
    const std::uint64_t sum = util::fnv1a(bytes.data(), payload);
    for (int i = 0; i < 8; ++i)
        bytes[payload + i] =
            static_cast<std::uint8_t>(sum >> (8 * i));
    writeFileBytes(path, bytes);
}

void
testLoadVsCaptureBitIdentity()
{
    // A saved-then-loaded library must measure every unit
    // bit-identically to the serial run AND to the in-memory
    // library it came from, at 1, 2 and 5 shards.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("sort-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, config);
    const core::LibraryKey key = core::LibraryKey::of(spec, config, sc);

    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };
    core::SimSession serialSession(spec, config);
    const core::SmartsEstimate serial =
        core::SystematicSampler(sc).run(serialSession);
    CHECK(serial.units() > 0);

    exec::ThreadPool pool(2);
    for (const std::size_t shards : {std::size_t(1), std::size_t(2),
                                     std::size_t(5)}) {
        const auto plan =
            core::CheckpointLibrary::planShards(sc, length, shards);
        core::SimSession captureSession(spec, config);
        const auto built = core::CheckpointLibrary::build(
            captureSession, sc, plan);

        const std::string path =
            (fs::path(kRoot) /
             ("roundtrip_" + std::to_string(shards) + ".smck"))
                .string();
        std::string error;
        CHECK(built.save(key, path, &error));
        CHECK_EQ(error, std::string());

        const auto loaded =
            core::CheckpointLibrary::load(path, key, &error);
        CHECK(loaded.has_value());
        CHECK_EQ(error, std::string());

        // Byte-level identity of the reloaded library...
        CHECK(serializedBytes(*loaded, key) ==
              serializedBytes(built, key));
        // ...and estimate-level identity of what it measures.
        const core::SmartsEstimate warm =
            core::SystematicSampler(sc).runSharded(factory, *loaded,
                                                   pool);
        CHECK(fingerprint(warm) == fingerprint(serial));
    }
}

void
testStoreBackedSamplerAndProcedure()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("chase-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, config);
    const core::LibraryKey key = core::LibraryKey::of(spec, config, sc);

    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };
    core::SimSession serialSession(spec, config);
    const core::SmartsEstimate serial =
        core::SystematicSampler(sc).run(serialSession);

    exec::ThreadPool pool(2);
    core::CheckpointStore store(kRoot);
    CHECK(!store.contains(key));

    // Cold call: miss -> pipelined capture -> persisted library.
    const core::SmartsEstimate cold =
        core::SystematicSampler(sc).runSharded(factory, spec, config,
                                               length, 3, pool, store);
    CHECK(fingerprint(cold) == fingerprint(serial));
    CHECK(store.contains(key));
    std::string error;
    CHECK(store.tryLoad(key, &error).has_value());

    // Warm call: loads the persisted library (different requested
    // shard count on purpose — the stored plan wins, the estimate
    // cannot tell).
    const core::SmartsEstimate warm =
        core::SystematicSampler(sc).runSharded(factory, spec, config,
                                               length, 7, pool, store);
    CHECK(fingerprint(warm) == fingerprint(serial));

    // Store-backed two-pass procedure: bit-identical to the serial
    // procedure, and the rerun hits the store on every pass.
    core::ProcedureConfig procCfg;
    procCfg.unitSize = sc.unitSize;
    procCfg.detailedWarming = sc.detailedWarming;
    procCfg.warming = sc.warming;
    procCfg.nInit = 200;
    const core::SmartsProcedure proc(procCfg);

    const core::ProcedureResult reference =
        proc.estimate(factory, length);
    const core::ProcedureResult first = proc.estimateSharded(
        factory, spec, config, length, pool, 3, store);
    const core::ProcedureResult second = proc.estimateSharded(
        factory, spec, config, length, pool, 5, store);
    CHECK(fingerprint(first.final()) ==
          fingerprint(reference.final()));
    CHECK(fingerprint(second.final()) ==
          fingerprint(reference.final()));
    CHECK_EQ(first.metOnFirstTry(), reference.metOnFirstTry());
}

void
testRefusals()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("fsm-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, config);
    const core::LibraryKey key = core::LibraryKey::of(spec, config, sc);

    const auto plan =
        core::CheckpointLibrary::planShards(sc, length, 3);
    core::SimSession captureSession(spec, config);
    const auto library =
        core::CheckpointLibrary::build(captureSession, sc, plan);
    const std::string path =
        (fs::path(kRoot) / "refusals.smck").string();
    std::string error;
    CHECK(library.save(key, path, &error));
    const std::vector<std::uint8_t> good = readFileBytes(path);
    CHECK(good.size() > 64);

    auto expectRefusal = [&](const char *what, const char *needle) {
        std::string why;
        const auto result =
            core::CheckpointLibrary::load(path, key, &why);
        CHECK(!result.has_value());
        const bool mentions =
            why.find(needle) != std::string::npos;
        CHECK(mentions);
        if (!mentions)
            std::fprintf(stderr,
                         "  %s: diagnostic \"%s\" lacks \"%s\"\n",
                         what, why.c_str(), needle);
    };

    // Truncated file: cut mid-checkpoint.
    writeFileBytes(path, std::vector<std::uint8_t>(
                             good.begin(),
                             good.begin() + good.size() / 2));
    expectRefusal("truncation", "checksum");

    // Single flipped payload byte: the checksum catches it.
    {
        std::vector<std::uint8_t> bad = good;
        bad[bad.size() / 2] ^= 0x40;
        writeFileBytes(path, bad);
        expectRefusal("corruption", "checksum");
    }

    // Version bump (resealed checksum so only the version differs):
    // a future-format file must be refused, not misread.
    {
        std::vector<std::uint8_t> bad = good;
        bad[8] = 3; // version u32 sits right after the 8-byte magic.
        writeFileBytes(path, bad);
        resealChecksum(path);
        expectRefusal("version bump", "format version 3");
    }

    // Flavor byte flipped to mix (1): a co-run payload must be
    // routed to mp::MixLibrary, never misread as solo state.
    {
        std::vector<std::uint8_t> bad = good;
        bad[16] = 1; // flavor u8 sits after magic+version+endian.
        writeFileBytes(path, bad);
        resealChecksum(path);
        expectRefusal("mix flavor", "mp::MixLibrary");
    }

    // Bad magic.
    {
        std::vector<std::uint8_t> bad = good;
        bad[0] = 'X';
        writeFileBytes(path, bad);
        resealChecksum(path);
        expectRefusal("magic", "not a smarts checkpoint library");
    }

    // Restore the good bytes: mis-keyed loads must refuse even when
    // the file itself is pristine.
    writeFileBytes(path, good);

    // Geometry mismatch: same benchmark and sampling design, other
    // machine. Silently loading would mis-warm every structure.
    {
        const core::LibraryKey key16 = core::LibraryKey::of(
            spec, uarch::MachineConfig::sixteenWay(), sc);
        std::string why;
        const auto result =
            core::CheckpointLibrary::load(path, key16, &why);
        CHECK(!result.has_value());
        CHECK(why.find("geometry") != std::string::npos);
    }

    // Sampling-design mismatch (different interval).
    {
        core::LibraryKey keyK = key;
        keyK.sampling.interval = 17;
        std::string why;
        const auto result =
            core::CheckpointLibrary::load(path, keyK, &why);
        CHECK(!result.has_value());
        CHECK(why.find("sampling-design") != std::string::npos);
    }

    // Benchmark mismatch.
    {
        core::LibraryKey keyB = key;
        keyB.benchmark = workloads::findBenchmark(
            "sort-1", workloads::Scale::Mini);
        std::string why;
        const auto result =
            core::CheckpointLibrary::load(path, keyB, &why);
        CHECK(!result.has_value());
        CHECK(why.find("benchmark") != std::string::npos);
    }

    // The pristine file still loads (the refusals above were about
    // the probe, not lingering state).
    CHECK(core::CheckpointLibrary::load(path, key, &error)
              .has_value());

    // Malformed plan: a checksum-valid, correctly-keyed file whose
    // plan no planShards() could produce (tail flag on shard 0)
    // must refuse — executing it would mis-measure, not mis-warm.
    {
        auto badPlan = plan;
        badPlan[0].runsTail = true;
        auto bad = core::CheckpointLibrary::prepare(sc, badPlan);
        for (std::size_t s = 1; s < badPlan.size(); ++s)
            bad.record(s, library.at(s));
        const std::string badPath =
            (fs::path(kRoot) / "badplan.smck").string();
        CHECK(bad.save(key, badPath, &error));
        std::string why;
        CHECK(!core::CheckpointLibrary::load(badPath, key, &why)
                   .has_value());
        CHECK(why.find("plan geometry") != std::string::npos);
    }

    // A store miss stays silent (no diagnostic), a refusal does not.
    core::CheckpointStore store(kRoot);
    core::LibraryKey missing = key;
    missing.sampling.offset = 123;
    std::string why;
    CHECK(!store.tryLoad(missing, &why).has_value());
    CHECK_EQ(why, std::string());

    // Hostile vector length: 4 * n overflows u64, which must not
    // bypass the bounds check — the reader fails, it never
    // allocates. (External writers can produce a valid checksum, so
    // the parser cannot trust any length field.)
    {
        util::BinaryWriter hostile;
        hostile.u64(1ull << 62);
        util::BinaryReader reader(hostile.buffer());
        CHECK(reader.vecU32().empty());
        CHECK(reader.failed());
    }
}

void
testMultiConfigCapture()
{
    // ONE MultiSession capture pass must produce, per config, the
    // byte-identical library a dedicated single-config pass builds.
    const auto cfg8 = uarch::MachineConfig::eightWay();
    const auto cfg16 = uarch::MachineConfig::sixteenWay();
    const auto spec =
        workloads::findBenchmark("bsearch-1", workloads::Scale::Mini);
    const core::SamplingConfig sc = defaultSampling();
    const std::uint64_t length = streamLengthOf(spec, cfg8);
    const auto plan =
        core::CheckpointLibrary::planShards(sc, length, 4);

    core::MultiSession multi(spec, {cfg8, cfg16});
    const auto libraries =
        core::CheckpointLibrary::buildMulti(multi, sc, plan);
    CHECK_EQ(libraries.size(), std::size_t(2));

    const uarch::MachineConfig singles[] = {cfg8, cfg16};
    for (std::size_t c = 0; c < 2; ++c) {
        core::SimSession session(spec, singles[c]);
        const auto reference =
            core::CheckpointLibrary::build(session, sc, plan);
        const core::LibraryKey key =
            core::LibraryKey::of(spec, singles[c], sc);
        CHECK(serializedBytes(libraries[c], key) ==
              serializedBytes(reference, key));
    }

    // The store's ensure(): one pass for all misses, zero on rerun.
    core::CheckpointStore store(kRoot);
    core::SamplingConfig scEnsure = sc;
    scEnsure.detailedWarming = 4000; // distinct key space for this test.
    CHECK_EQ(store.ensure(spec, {cfg8, cfg16}, scEnsure, length, 4),
             std::size_t(2));
    CHECK_EQ(store.ensure(spec, {cfg8, cfg16}, scEnsure, length, 4),
             std::size_t(0));

    // "Stored" means LOADABLE: corrupt one file and ensure() must
    // recapture it, not report it present on mere existence.
    {
        const core::LibraryKey key8 =
            core::LibraryKey::of(spec, cfg8, scEnsure);
        const std::string path = store.pathFor(key8);
        std::vector<std::uint8_t> bytes = readFileBytes(path);
        bytes[bytes.size() / 2] ^= 0x10;
        writeFileBytes(path, bytes);
        CHECK(!store.tryLoad(key8).has_value());
        CHECK_EQ(store.ensure(spec, {cfg8, cfg16}, scEnsure, length,
                              4),
                 std::size_t(1));
        CHECK(store.tryLoad(key8).has_value());
    }
}

void
testOverstatedStreamLengthNotPersisted()
{
    // A mis-stated (too long) streamLength makes the tail shard
    // boundaries unreachable: the capture must stop BEFORE snapping
    // a bogus end-of-stream checkpoint, the incomplete library must
    // not be persisted (a saved one would be refused on every later
    // run, turning the store into a permanent recapture loop), and
    // the estimate must still equal serial.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("alu-1", workloads::Scale::Mini);
    core::SamplingConfig sc = defaultSampling();
    sc.detailedWarming = 500; // distinct key space for this test.
    const std::uint64_t length = streamLengthOf(spec, config);
    const core::LibraryKey key = core::LibraryKey::of(spec, config, sc);

    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };
    core::SimSession serialSession(spec, config);
    const core::SmartsEstimate serial =
        core::SystematicSampler(sc).run(serialSession);

    exec::ThreadPool pool(2);
    core::CheckpointStore store(kRoot);
    const core::SmartsEstimate overstated =
        core::SystematicSampler(sc).runSharded(
            factory, spec, config, 2 * length, 3, pool, store);
    CHECK(fingerprint(overstated) == fingerprint(serial));
    CHECK(!store.contains(key)); // incomplete library: save refused.

    // With the true length the capture completes, persists, and the
    // next call loads it.
    const core::SmartsEstimate good =
        core::SystematicSampler(sc).runSharded(
            factory, spec, config, length, 3, pool, store);
    CHECK(fingerprint(good) == fingerprint(serial));
    CHECK(store.tryLoad(key).has_value());
}

void
testGeometryKeyedCrossConfigReuse()
{
    // Timing-only config changes hash to the same warm-state
    // geometry: the library captured for the baseline must serve
    // the variant, and the variant's store-backed estimate must
    // still be bit-identical to ITS OWN serial run.
    const auto base = uarch::MachineConfig::eightWay();
    auto variant = base;
    variant.name = "8-way-slow-mem";
    variant.mem.memLatency = 200;
    variant.energy.memAccess = 4.0;
    CHECK_EQ(uarch::warmGeometryHash(base),
             uarch::warmGeometryHash(variant));

    // A geometry change must NOT collide.
    auto bigger = base;
    bigger.mem.l1d.sizeBytes *= 2;
    CHECK(uarch::warmGeometryHash(base) !=
          uarch::warmGeometryHash(bigger));

    const auto spec =
        workloads::findBenchmark("stream-1", workloads::Scale::Mini);
    core::SamplingConfig sc = defaultSampling();
    sc.offset = 2; // distinct key space for this test.
    const std::uint64_t length = streamLengthOf(spec, base);

    exec::ThreadPool pool(2);
    core::CheckpointStore store(kRoot);

    // Populate with the BASE config...
    auto baseFactory = [&spec, &base] {
        return std::make_unique<core::SimSession>(spec, base);
    };
    core::SystematicSampler(sc).runSharded(baseFactory, spec, base,
                                           length, 3, pool, store);
    // ...and the variant's key must already be a hit.
    CHECK(store.contains(core::LibraryKey::of(spec, variant, sc)));

    auto variantFactory = [&spec, &variant] {
        return std::make_unique<core::SimSession>(spec, variant);
    };
    core::SimSession variantSerial(spec, variant);
    const core::SmartsEstimate serial =
        core::SystematicSampler(sc).run(variantSerial);
    const core::SmartsEstimate viaStore =
        core::SystematicSampler(sc).runSharded(
            variantFactory, spec, variant, length, 3, pool, store);
    CHECK(fingerprint(viaStore) == fingerprint(serial));
}

} // namespace

int
main()
{
    fs::remove_all(kRoot);
    fs::create_directories(kRoot);

    testLoadVsCaptureBitIdentity();
    testStoreBackedSamplerAndProcedure();
    testRefusals();
    testMultiConfigCapture();
    testGeometryKeyedCrossConfigReuse();
    testOverstatedStreamLengthNotPersisted();
    TEST_MAIN_SUMMARY();
}
