/**
 * @file
 * smarts_lint fixture: iterating an unordered container in
 * determinism scope (the path contains /core/) must fire
 * no-unordered-iteration. Never compiled into the build — the
 * linter is lexical, so this file only needs to read like the code
 * it polices.
 */

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

struct HistogramMerge
{
    std::unordered_map<std::string, std::uint64_t> counts;

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const auto &entry : counts)
            sum += entry.second;
        return sum;
    }
};

} // namespace fixture
