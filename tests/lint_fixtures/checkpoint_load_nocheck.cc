/**
 * @file
 * smarts_lint fixture: a tryLoad* routine in load scope (the file
 * name contains "checkpoint") that decodes payload bytes before any
 * checksum/magic validation must fire checksum-before-use.
 */

#include <cstdint>
#include <optional>

namespace util {
class BinaryReader;
} // namespace util

namespace fixture {

struct Blob
{
    std::uint64_t ticks = 0;
};

inline std::optional<Blob>
tryLoadBlob(util::BinaryReader &in)
{
    Blob blob;
    blob.ticks = in.u64();
    return blob;
}

} // namespace fixture
