/**
 * @file
 * smarts_lint fixture: a clock read carrying a justified allow()
 * suppression must lint clean — this file exercises the suppression
 * path end to end and must produce zero diagnostics.
 */

#include <chrono>

namespace fixture {

inline long
nowTicks()
{
    // smarts-lint: allow(no-ambient-nondeterminism) fixture: proves
    // a justified suppression silences the diagnostic.
    return std::chrono::steady_clock::now()
        .time_since_epoch()
        .count();
}

} // namespace fixture
