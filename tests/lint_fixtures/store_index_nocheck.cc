/**
 * @file
 * smarts_lint fixture: a journal loader in load scope (the file
 * name contains "store_index") that decodes a record's payload
 * BEFORE validating its per-record checksum must fire
 * checksum-before-use, anchored at the premature decode.
 */

#include <cstdint>
#include <optional>

namespace util {
std::uint64_t fnv1a(const std::uint8_t *data, std::uint64_t size);
class BinaryReader;
} // namespace util

namespace fixture {

struct IndexRecord
{
    std::uint64_t bytes = 0;
    std::uint64_t atime = 0;
};

inline std::optional<IndexRecord>
loadIndexRecord(util::BinaryReader &in)
{
    IndexRecord record;
    record.bytes = in.u64(); // decoded before the checksum below.
    record.atime = in.u64();
    if (in.u64() != util::fnv1a(nullptr, 0))
        return std::nullopt;
    return record;
}

} // namespace fixture
