/**
 * @file
 * smarts_lint fixture: ambient clock and libc randomness reads must
 * fire no-ambient-nondeterminism in any file, no scoping needed.
 */

#include <chrono>
#include <cstdlib>

namespace fixture {

inline double
sampleOffset()
{
    const auto now = std::chrono::steady_clock::now();
    (void)now;
    return static_cast<double>(rand());
}

} // namespace fixture
