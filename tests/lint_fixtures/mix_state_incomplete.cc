/**
 * @file
 * smarts_lint fixture: the co-run tier's state-struct shapes. A
 * dual-world fixed-point lane state that forgets its newest counter
 * (MixLaneFixtureState::shadowMisses) in write()/read(), and an
 * owner-tagged shared-cache state whose read() order disagrees with
 * its write() order, must fire serializer-completeness exactly as
 * the solo shapes do.
 */

#include <cstdint>
#include <vector>

namespace util {
class BinaryWriter;
class BinaryReader;
} // namespace util

namespace fixture {

struct MixLaneFixtureState
{
    std::uint64_t coCyclesFx = 0;
    std::uint64_t soloCyclesFx = 0;
    std::uint64_t shadowMisses = 0;

    void
    write(util::BinaryWriter &out) const
    {
        out.u64(coCyclesFx);
        out.u64(soloCyclesFx);
    }

    void
    read(util::BinaryReader &in)
    {
        coCyclesFx = in.u64();
        soloCyclesFx = in.u64();
    }
};

struct SharedTagsFixtureState
{
    std::vector<std::uint32_t> tags;
    std::vector<std::uint8_t> owners;

    void
    write(util::BinaryWriter &out) const
    {
        out.vecU32(tags);
        out.vecU8(owners);
    }

    void
    read(util::BinaryReader &in)
    {
        owners = in.vecU8();
        tags = in.vecU32();
    }
};

} // namespace fixture
