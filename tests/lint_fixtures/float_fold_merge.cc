/**
 * @file
 * smarts_lint fixture: bare double accumulation on a merge path
 * (opted in via the merge-path marker below) must fire
 * float-fold-discipline, both for += and for std::accumulate.
 */

// smarts-lint: merge-path

#include <numeric>
#include <vector>

namespace fixture {

inline double
foldCpi(const std::vector<double> &perShard)
{
    double sum = 0.0;
    for (double v : perShard)
        sum += v;
    const double alt =
        std::accumulate(perShard.begin(), perShard.end(), 0.0);
    return sum + alt;
}

} // namespace fixture
