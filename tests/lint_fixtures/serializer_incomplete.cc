/**
 * @file
 * smarts_lint fixture: a state struct whose write()/read() skip a
 * field (PartialState::loads) and one whose read order disagrees
 * with its write order (SwappedState) must both fire
 * serializer-completeness.
 */

#include <cstdint>

namespace util {
class BinaryWriter;
class BinaryReader;
} // namespace util

namespace fixture {

struct PartialState
{
    std::uint64_t ticks = 0;
    std::uint64_t loads = 0;
    double cpi = 0.0;

    void
    write(util::BinaryWriter &out) const
    {
        out.u64(ticks);
        out.f64(cpi);
    }

    void
    read(util::BinaryReader &in)
    {
        ticks = in.u64();
        cpi = in.f64();
    }
};

struct SwappedState
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    void
    write(util::BinaryWriter &out) const
    {
        out.u64(hits);
        out.u64(misses);
    }

    void
    read(util::BinaryReader &in)
    {
        misses = in.u64();
        hits = in.u64();
    }
};

} // namespace fixture
