/**
 * @file
 * Property tests for the shared hierarchy and its shadow L2 tags —
 * the co-run tier's whole correctness claim. Three pins:
 *
 *  1. A one-program mix degenerates to a real solo run, bit for bit
 *     (SharedCache with one owner IS mem::Cache; the mix timing
 *     accounting IS core::TimingModel).
 *  2. Inside a two-program co-run, each program's shadow-L2 access
 *     and miss counts and its solo-world CPI/EPI are bit-exactly
 *     equal, per sampling unit, to an ACTUAL solo run of the same
 *     unit — across 8-way and 16-way L2 geometries and both
 *     partitioning policies, on a mix with real L2 contention (a
 *     guard fails the test if the shared L2 never diverges from the
 *     shadow, which would make the pin vacuous).
 *  3. MixState (arch + shared hierarchy + lanes) serializes and
 *     restores losslessly: re-serialization is byte-identical and a
 *     restored session continues bit-identically.
 */

#include <cstdint>
#include <vector>

#include "check.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "estimate_fingerprint.hh"
#include "mp/mix_sampler.hh"
#include "mp/mix_session.hh"
#include "uarch/config.hh"
#include "util/binary_io.hh"
#include "workloads/benchmark.hh"

namespace {

using namespace smarts;
using smarts::test::bitsOf;

core::SamplingConfig
smallConfig()
{
    core::SamplingConfig cfg;
    cfg.unitSize = 500;
    cfg.detailedWarming = 1000;
    cfg.interval = 50;
    cfg.offset = 0;
    cfg.warming = core::WarmingMode::Functional;
    return cfg;
}

/**
 * A one-program Shared-policy mix must reproduce the real solo
 * sampler bit for bit in BOTH worlds: with a single owner the shared
 * L2 and the shadow L2 see the identical stream, so co-run == solo
 * == a plain SimSession run of the same schedule.
 */
void
testSoloDegenerateMix()
{
    const workloads::BenchmarkSpec spec =
        workloads::findBenchmark("fsm-1", workloads::Scale::Mini);
    const uarch::MachineConfig machine =
        uarch::MachineConfig::sixteenWay();
    const core::SamplingConfig cfg = smallConfig();

    core::SimSession session(spec, machine);
    const core::SmartsEstimate ref =
        core::SystematicSampler(cfg).run(session);

    const mp::MixEstimate est =
        mp::runMix(mp::WorkloadMix::of({spec}), machine, cfg);
    CHECK_EQ(est.perProgram.size(), std::size_t(1));
    const mp::MixProgramEstimate &pe = est.perProgram[0];

    CHECK(test::fingerprint(pe.coRun) == test::fingerprint(ref));
    CHECK(test::fingerprint(pe.solo) == test::fingerprint(ref));

    // Alone, the shared and shadow L2s are the same cache.
    CHECK_EQ(pe.sharedAccesses, pe.shadowAccesses);
    CHECK_EQ(pe.sharedMisses, pe.shadowMisses);
    CHECK_EQ(bitsOf(pe.slowdown()), bitsOf(1.0));
    CHECK_EQ(bitsOf(pe.cpiDelta.mean()), bitsOf(0.0));
}

/** Per-unit ground truth from an actual solo run of one program. */
struct SoloUnit
{
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    double cpi = 0.0;
    double epi = 0.0;
};

/**
 * Run @p spec solo under the mix's U/W/k schedule, snapshotting the
 * L2 counters around every measured unit. This is the reference the
 * shadow tags claim to reproduce from inside a co-run.
 */
std::vector<SoloUnit>
runSoloSchedule(const workloads::BenchmarkSpec &spec,
                const uarch::MachineConfig &machine,
                const core::SamplingConfig &cfg)
{
    core::SimSession session(spec, machine);
    const std::uint64_t u = cfg.unitSize;
    const std::uint64_t w = cfg.detailedWarming;

    std::vector<SoloUnit> units;
    std::uint64_t pos = 0;
    std::uint64_t unitIdx = cfg.offset;
    while (!session.finished()) {
        const std::uint64_t unitStart = unitIdx * u;
        const std::uint64_t warmStart =
            unitStart > w ? unitStart - w : 0;
        if (warmStart > pos) {
            pos += session.fastForward(warmStart - pos, cfg.warming);
            if (session.finished())
                break;
        }
        if (unitStart > pos) {
            const core::Segment warm =
                session.detailedRun(unitStart - pos);
            pos += warm.instructions;
            if (session.finished())
                break;
        }

        core::ArchState arch0;
        core::TimingState t0;
        session.saveState(arch0, t0);
        const core::Segment seg = session.detailedRun(u);
        pos += seg.instructions;
        if (seg.instructions != u)
            break;
        core::ArchState arch1;
        core::TimingState t1;
        session.saveState(arch1, t1);

        SoloUnit su;
        su.l2Accesses = (t1.mem.l2.loads + t1.mem.l2.stores) -
                        (t0.mem.l2.loads + t0.mem.l2.stores);
        su.l2Misses = t1.mem.l2.misses - t0.mem.l2.misses;
        su.cpi = static_cast<double>(seg.cycles) /
                 static_cast<double>(u);
        su.epi = seg.energyNj / static_cast<double>(u);
        units.push_back(su);
        unitIdx += cfg.interval;
    }
    return units;
}

/**
 * The shadow-tag pin: per sampling unit of a two-program co-run,
 * each program's shadow-L2 traffic and solo-world timing must be
 * bit-exactly what an actual solo run of that unit measures.
 */
void
checkShadowAgainstSolo(const uarch::MachineConfig &machine,
                       mem::PartitionPolicy policy,
                       const char *nameA, const char *nameB)
{
    const core::SamplingConfig cfg = smallConfig();
    const mp::WorkloadMix mix = mp::WorkloadMix::of(
        {workloads::findBenchmark(nameA, workloads::Scale::Mini),
         workloads::findBenchmark(nameB, workloads::Scale::Mini)},
        policy);

    const mp::MixSampler sampler(mix, machine, cfg);
    mp::MixSession session = sampler.makeSession();
    core::ShardSpec whole;
    whole.firstUnitIndex = cfg.offset;
    whole.runsTail = true;
    const mp::MixSliceResult slice =
        sampler.runSlice(session, whole);
    CHECK(!slice.obs.empty());

    bool contended = false;
    for (std::size_t p = 0; p < mix.programs.size(); ++p) {
        const std::vector<SoloUnit> solo =
            runSoloSchedule(mix.programs[p], machine, cfg);
        CHECK(solo.size() >= slice.obs.size());
        for (std::size_t i = 0; i < slice.obs.size(); ++i) {
            const mp::MixLaneObservation &lo = slice.obs[i].per[p];
            CHECK_EQ(lo.shadowAccesses, solo[i].l2Accesses);
            CHECK_EQ(lo.shadowMisses, solo[i].l2Misses);
            CHECK_EQ(bitsOf(lo.soloCpi), bitsOf(solo[i].cpi));
            CHECK_EQ(bitsOf(lo.soloEpi), bitsOf(solo[i].epi));
            // L1s are private, so both worlds issue the same L2
            // requests; only the hit/miss split may differ.
            CHECK_EQ(lo.sharedAccesses, lo.shadowAccesses);
            if (lo.sharedMisses != lo.shadowMisses)
                contended = true;
        }
    }
    // The pin must not pass vacuously: a co-run where the shared L2
    // never diverges from the shadow L2 exercised nothing.
    CHECK(contended);
}

/**
 * MixState roundtrip: serialize -> read -> re-serialize is
 * byte-identical, and a session restored from the read-back state
 * continues bit-identically to the original.
 */
void
testStateSerializationRoundtrip()
{
    const uarch::MachineConfig machine =
        uarch::MachineConfig::eightWay();
    const mp::WorkloadMix mix = mp::WorkloadMix::of(
        {workloads::findBenchmark("fsm-1", workloads::Scale::Mini),
         workloads::findBenchmark("chase-1",
                                  workloads::Scale::Mini)},
        mem::PartitionPolicy::WayPartitioned);

    mp::MixSession session(mix, machine);
    session.fastForward(20000, core::WarmingMode::Functional);
    session.detailedRun(3000);

    mp::MixState state;
    session.saveState(state);
    util::BinaryWriter out;
    state.write(out);

    util::BinaryReader in(out.buffer());
    mp::MixState back;
    back.read(in);
    CHECK(!in.failed());
    CHECK_EQ(in.remaining(), std::size_t(0));

    util::BinaryWriter out2;
    back.write(out2);
    CHECK(out.buffer() == out2.buffer());

    mp::MixSession restored(mix, machine);
    restored.restoreState(back);
    CHECK_EQ(restored.roundCount(), session.roundCount());

    const mp::MixSegment a = session.detailedRun(2000);
    const mp::MixSegment b = restored.detailedRun(2000);
    CHECK_EQ(a.rounds, b.rounds);
    for (std::size_t p = 0; p < a.per.size(); ++p) {
        CHECK_EQ(a.per[p].coCycles, b.per[p].coCycles);
        CHECK_EQ(a.per[p].soloCycles, b.per[p].soloCycles);
        CHECK_EQ(bitsOf(a.per[p].coEnergyNj),
                 bitsOf(b.per[p].coEnergyNj));
        CHECK_EQ(bitsOf(a.per[p].soloEnergyNj),
                 bitsOf(b.per[p].soloEnergyNj));
        CHECK_EQ(a.per[p].sharedMisses, b.per[p].sharedMisses);
        CHECK_EQ(a.per[p].shadowMisses, b.per[p].shadowMisses);
    }
}

} // namespace

int
main()
{
    testSoloDegenerateMix();
    // chase-1 + mix-1 is the quick suite's contended pair: both
    // programs' L2 working sets overflow the shared 256 KiB array,
    // so co-run misses genuinely diverge from the shadow's solo
    // stream. The 16-way variant keeps the capacity (and thus the
    // contention) while doubling the ways the partition policy
    // splits.
    const uarch::MachineConfig eightWayL2 =
        uarch::MachineConfig::eightWay();
    uarch::MachineConfig sixteenWayL2 =
        uarch::MachineConfig::eightWay();
    sixteenWayL2.mem.l2.assoc = 16;
    for (const uarch::MachineConfig &machine :
         {eightWayL2, sixteenWayL2}) {
        checkShadowAgainstSolo(machine,
                               mem::PartitionPolicy::Shared,
                               "chase-1", "mix-1");
        checkShadowAgainstSolo(machine,
                               mem::PartitionPolicy::WayPartitioned,
                               "chase-1", "mix-1");
    }
    testStateSerializationRoundtrip();
    TEST_MAIN_SUMMARY();
}
