# Smoke-test driver: run a bench binary with the given args and
# verify it exits cleanly AND emits a well-formed CSV artifact
# (guards the bench_common CSV plumbing end to end): a header with
# at least one column, at least one data row, every row with exactly
# the header's column count, and no empty cells.
#
# Usage: cmake -DBENCH=<binary> -DCSV=<expected csv path>
#              -DARGS=<;-separated extra args> -P run_bench_smoke.cmake

if(NOT BENCH OR NOT CSV)
  message(FATAL_ERROR "run_bench_smoke.cmake needs -DBENCH= and -DCSV=")
endif()

file(REMOVE "${CSV}")

execute_process(
  COMMAND "${BENCH}" ${ARGS} "--csv=${CSV}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output
)

if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
    "${BENCH} failed with exit code ${exit_code}:\n${output}")
endif()

if(NOT EXISTS "${CSV}")
  message(FATAL_ERROR "${BENCH} did not write its CSV artifact ${CSV}")
endif()

file(STRINGS "${CSV}" csv_lines)
list(LENGTH csv_lines csv_line_count)
if(csv_line_count LESS 2)
  message(FATAL_ERROR
    "${CSV} has ${csv_line_count} line(s); expected a header plus "
    "at least one data row")
endif()

# Column discipline: every row must have the header's cell count and
# no empty cells. (Cells in these artifacts never contain commas, so
# a plain split is exact.)
set(expected_cols -1)
set(row_number 0)
foreach(line IN LISTS csv_lines)
  math(EXPR row_number "${row_number} + 1")
  string(REPLACE "," ";" cells "${line}")
  list(LENGTH cells col_count)
  if(expected_cols EQUAL -1)
    set(expected_cols ${col_count})
    if(expected_cols LESS 1)
      message(FATAL_ERROR "${CSV} header has no columns")
    endif()
  elseif(NOT col_count EQUAL expected_cols)
    message(FATAL_ERROR
      "${CSV} row ${row_number} has ${col_count} column(s); the "
      "header has ${expected_cols}")
  endif()
  # An empty cell collapses in the ;-list, so also catch the literal
  # patterns a missing value produces.
  if(line MATCHES "^," OR line MATCHES ",$" OR line MATCHES ",,")
    message(FATAL_ERROR
      "${CSV} row ${row_number} has an empty cell: '${line}'")
  endif()
  foreach(cell IN LISTS cells)
    string(STRIP "${cell}" stripped)
    if(stripped STREQUAL "")
      message(FATAL_ERROR
        "${CSV} row ${row_number} has a blank cell: '${line}'")
    endif()
  endforeach()
endforeach()

message(STATUS "smoke OK: ${BENCH} wrote ${CSV} "
               "(${csv_line_count} rows x ${expected_cols} cols)")
