# Smoke-test driver: run a bench binary with the given args and
# verify it exits cleanly AND emits its CSV artifact (guards the
# bench_common CSV plumbing end to end).
#
# Usage: cmake -DBENCH=<binary> -DCSV=<expected csv path>
#              -DARGS=<;-separated extra args> -P run_bench_smoke.cmake

if(NOT BENCH OR NOT CSV)
  message(FATAL_ERROR "run_bench_smoke.cmake needs -DBENCH= and -DCSV=")
endif()

file(REMOVE "${CSV}")

execute_process(
  COMMAND "${BENCH}" ${ARGS} "--csv=${CSV}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output
)

if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
    "${BENCH} failed with exit code ${exit_code}:\n${output}")
endif()

if(NOT EXISTS "${CSV}")
  message(FATAL_ERROR "${BENCH} did not write its CSV artifact ${CSV}")
endif()

file(STRINGS "${CSV}" csv_lines)
list(LENGTH csv_lines csv_line_count)
if(csv_line_count LESS 2)
  message(FATAL_ERROR
    "${CSV} has ${csv_line_count} line(s); expected a header plus "
    "at least one data row")
endif()

message(STATUS "smoke OK: ${BENCH} wrote ${CSV} "
               "(${csv_line_count} lines)")
