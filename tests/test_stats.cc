/**
 * @file
 * Unit tests for stats::OnlineStats and the confidence-interval
 * math (known-variance fixtures; paper Eq. 1-3).
 */

#include <initializer_list>

#include "stats/confidence.hh"
#include "stats/online_stats.hh"

#include "check.hh"

using namespace smarts;

namespace {

void
testOnlineStatsFixture()
{
    // Classic fixture: mean 5, sample variance 32/7.
    const double xs[] = {2, 4, 4, 4, 5, 5, 7, 9};
    stats::OnlineStats s;
    for (const double x : xs)
        s.add(x);
    CHECK(s.count() == 8);
    CHECK_NEAR(s.mean(), 5.0, 1e-12);
    CHECK_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    CHECK_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    CHECK_NEAR(s.cv(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
    CHECK_NEAR(s.meanError(), std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
}

void
testOnlineStatsEdge()
{
    stats::OnlineStats s;
    CHECK(s.count() == 0);
    CHECK_NEAR(s.mean(), 0.0, 0.0);
    CHECK_NEAR(s.variance(), 0.0, 0.0);
    s.add(3.0);
    CHECK_NEAR(s.mean(), 3.0, 1e-12);
    CHECK_NEAR(s.variance(), 0.0, 0.0); // undefined -> 0 by contract.
}

void
testOnlineStatsMerge()
{
    stats::OnlineStats all, a, b;
    for (int i = 0; i < 40; ++i) {
        const double x = 0.25 * i * i - 3.0 * i + 1.0;
        all.add(x);
        (i % 3 ? a : b).add(x);
    }
    a.merge(b);
    CHECK(a.count() == all.count());
    CHECK_NEAR(a.mean(), all.mean(), 1e-9);
    CHECK_NEAR(a.variance(), all.variance(), 1e-9);
}

void
testOnlineStatsMergeSplitStreams()
{
    // Any contiguous split of a stream, merged shard by shard in
    // order, must match the single-stream accumulation for
    // mean/variance/cv — the property runSharded's per-shard
    // statistics lean on. (Replay, not merge, gives runSharded its
    // BIT-identity; merge is the streaming-aggregation path and is
    // held to analytic accuracy here.)
    const int n = 57;
    auto sample = [](int i) {
        return 1.0 + 0.37 * i - 0.011 * i * i +
               (i % 7) * 0.23; // lumpy, non-monotonic.
    };
    stats::OnlineStats whole;
    for (int i = 0; i < n; ++i)
        whole.add(sample(i));

    // Shard counts that produce empty, single-element, and lopsided
    // shards (57 elements into up to 60 pieces).
    for (const int shards : {1, 2, 5, 13, 60}) {
        stats::OnlineStats merged;
        for (int s = 0; s < shards; ++s) {
            stats::OnlineStats shard;
            for (int i = n * s / shards; i < n * (s + 1) / shards;
                 ++i)
                shard.add(sample(i));
            merged.merge(shard);
        }
        CHECK(merged.count() == whole.count());
        CHECK_NEAR(merged.mean(), whole.mean(), 1e-9);
        CHECK_NEAR(merged.variance(), whole.variance(), 1e-9);
        CHECK_NEAR(merged.cv(), whole.cv(), 1e-9);
    }
}

void
testOnlineStatsMergeEdges()
{
    // Empty into empty.
    stats::OnlineStats a, b;
    a.merge(b);
    CHECK(a.count() == 0);
    CHECK_NEAR(a.mean(), 0.0, 0.0);

    // Empty into populated leaves it untouched.
    stats::OnlineStats c;
    c.add(2.0);
    c.add(4.0);
    c.merge(b);
    CHECK(c.count() == 2);
    CHECK_NEAR(c.mean(), 3.0, 1e-12);
    CHECK_NEAR(c.variance(), 2.0, 1e-12);

    // Populated into empty adopts it wholesale.
    stats::OnlineStats d;
    d.merge(c);
    CHECK(d.count() == 2);
    CHECK_NEAR(d.mean(), 3.0, 1e-12);
    CHECK_NEAR(d.variance(), 2.0, 1e-12);

    // A chain of single-element shards equals sequential add.
    stats::OnlineStats singles, sequential;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        stats::OnlineStats one;
        one.add(x);
        singles.merge(one);
        sequential.add(x);
    }
    CHECK(singles.count() == sequential.count());
    CHECK_NEAR(singles.mean(), sequential.mean(), 1e-12);
    CHECK_NEAR(singles.variance(), sequential.variance(), 1e-12);
}

void
testZScores()
{
    // Two-sided critical values of the standard normal.
    CHECK_NEAR(stats::zScore(0.95), 1.959964, 1e-4);
    CHECK_NEAR(stats::zScore(0.99), 2.575829, 1e-4);
    CHECK_NEAR(stats::zScore(0.997), 2.967738, 1e-4);
    CHECK_NEAR(stats::zScore(0.6827), 1.0, 2e-3);
}

void
testRequiredSampleSize()
{
    // n = ceil((z V / eps)^2), Eq. 3.
    const stats::ConfidenceSpec spec =
        stats::ConfidenceSpec::virtuallyCertain3pct();
    CHECK(stats::requiredSampleSize(0.3, spec) == 881);
    // Quadrupling: halving epsilon costs 4x the units.
    const std::uint64_t n3 =
        stats::requiredSampleSize(0.5, {0.95, 0.03});
    const std::uint64_t n15 =
        stats::requiredSampleSize(0.5, {0.95, 0.015});
    CHECK(n15 >= 4 * n3 - 4 && n15 <= 4 * n3 + 4);
    // Zero variability still returns the floor of 2.
    CHECK(stats::requiredSampleSize(0.0, spec) == 2);
}

void
testHalfWidthInverse()
{
    // The CI at the required n must meet the target epsilon.
    for (const double cv : {0.1, 0.37, 1.4}) {
        for (const stats::ConfidenceSpec spec :
             {stats::ConfidenceSpec::ninetyFive3pct(),
              stats::ConfidenceSpec::virtuallyCertain3pct(),
              stats::ConfidenceSpec::virtuallyCertain1pct()}) {
            const std::uint64_t n =
                stats::requiredSampleSize(cv, spec);
            CHECK(stats::confidenceHalfWidth(cv, n, spec.level) <=
                  spec.epsilon + 1e-12);
            // And one fewer unit (below the floor of 2) would not.
            if (n > 2)
                CHECK(stats::confidenceHalfWidth(cv, n - 1,
                                                 spec.level) >
                      spec.epsilon - 1e-12);
        }
    }
    CHECK_NEAR(stats::confidenceHalfWidth(0.5, 0, 0.95), 0.0, 0.0);
}

} // namespace

int
main()
{
    testOnlineStatsFixture();
    testOnlineStatsEdge();
    testOnlineStatsMerge();
    testOnlineStatsMergeSplitStreams();
    testOnlineStatsMergeEdges();
    testZScores();
    testRequiredSampleSize();
    testHalfWidthInverse();
    TEST_MAIN_SUMMARY();
}
