/**
 * @file
 * Unit tests for the microarchitectural state functional warming
 * maintains: cache LRU behaviour, hierarchy warm-vs-timing
 * equivalence, TLB, branch predictor training, and SISA encoding
 * round-trips.
 */

#include "bpred/branch_unit.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "sisa/encoding.hh"
#include "uarch/config.hh"
#include "util/rng.hh"

#include "check.hh"

using namespace smarts;

namespace {

void
testEncodingRoundTrip()
{
    const auto di =
        sisa::decode(sisa::encode(sisa::Opcode::BNE, 1, 2, 0, -16));
    CHECK(di.op == sisa::Opcode::BNE);
    CHECK(di.a == 1);
    CHECK(di.b == 2);
    CHECK(di.imm == -16);
    CHECK(di.isCondBranch());
    CHECK(!di.isMem());
    CHECK(di.branchTarget(0x1000) == 0x1000 - 16);

    const auto rt =
        sisa::decode(sisa::encode(sisa::Opcode::ADD, 5, 6, 7, 0));
    CHECK(rt.op == sisa::Opcode::ADD);
    CHECK(rt.a == 5);
    CHECK(rt.b == 6);
    CHECK(rt.c == 7);

    const auto ld =
        sisa::decode(sisa::encode(sisa::Opcode::LD, 3, 4, 0, 32000));
    CHECK(ld.isLoad());
    CHECK(ld.imm == 32000);
}

void
testCacheLru()
{
    // 2 sets x 2 ways of 32B lines.
    mem::Cache cache("t", {128, 2, 32, 1});
    CHECK(!cache.access(0x000, false).hit); // set 0 way A.
    CHECK(!cache.access(0x040, false).hit); // set 0 way B.
    CHECK(cache.access(0x000, false).hit);
    CHECK(cache.access(0x040, false).hit);
    // Third line in set 0 evicts the LRU (0x000 was touched less
    // recently than... order: 0x000 then 0x040 re-touched; 0x000
    // touched 3rd, 0x040 touched 4th -> LRU is 0x000? No: both
    // re-accessed; 0x000 at t3, 0x040 at t4, so 0x000 is LRU.
    CHECK(!cache.access(0x080, false).hit); // evicts 0x000.
    CHECK(!cache.access(0x000, false).hit); // gone.
    CHECK(cache.probe(0x080));
    CHECK(cache.misses() >= 4);

    cache.reset();
    CHECK(!cache.probe(0x080));
    CHECK(cache.accesses() == 0);
}

void
testHierarchyWarmEqualsTimingState()
{
    // A warm access and a timing access must leave identical cache
    // state: that is the functional-warming contract.
    const auto config = uarch::MachineConfig::eightWay().mem;
    mem::MemHierarchy warm(config), timed(config);
    Xoshiro256StarStar rng(7);
    std::vector<std::uint32_t> addrs;
    for (int i = 0; i < 20000; ++i)
        addrs.push_back(
            static_cast<std::uint32_t>(rng.below(1 << 22)));
    for (const std::uint32_t a : addrs) {
        warm.warmLoad(a);
        timed.load(a);
    }
    // Same misses observed by probing a fresh sweep.
    int disagree = 0;
    for (std::uint32_t a = 0; a < (1u << 22); a += 4096)
        disagree += warm.l1d().probe(a) != timed.l1d().probe(a);
    CHECK(disagree == 0);
    CHECK(warm.l1d().misses() == timed.l1d().misses());
    CHECK(warm.l2().misses() == timed.l2().misses());
}

void
testHierarchyLatencies()
{
    const auto config = uarch::MachineConfig::eightWay().mem;
    mem::MemHierarchy hier(config);
    const std::uint32_t addr = 0x123400;
    const mem::MemResult cold = hier.load(addr);
    CHECK(cold.level == mem::ServedBy::Memory);
    CHECK(cold.latency >= config.memLatency);
    const mem::MemResult hot = hier.load(addr);
    CHECK(hot.level == mem::ServedBy::L1);
    CHECK(hot.latency <= config.l1d.latency +
                             config.dtlb.missLatency);
    // A second touch of the same page cannot miss the TLB.
    const mem::MemResult samePage = hier.load(addr + 64);
    CHECK(!samePage.tlbMiss);
}

void
testBranchPredictorLearns()
{
    bpred::BranchUnit unit(uarch::MachineConfig::eightWay().bpred);
    const auto di =
        sisa::decode(sisa::encode(sisa::Opcode::BNE, 1, 2, 0, -64));
    const std::uint32_t pc = 0x2000;
    // Train always-taken past the point where the 12-bit gshare
    // history saturates (so predict reads a trained entry).
    for (int i = 0; i < 20; ++i)
        unit.update(pc, di, true, pc - 64);
    const bpred::Prediction p = unit.predict(pc, di);
    CHECK(p.taken);
    CHECK(p.target == pc - 64);
    // Re-train not-taken; prediction flips.
    for (int i = 0; i < 20; ++i)
        unit.update(pc, di, false, pc + 4);
    CHECK(!unit.predict(pc, di).taken);
    CHECK(unit.lookups() == 2);
}

void
testMachineConfigs()
{
    const auto eight = uarch::MachineConfig::eightWay();
    const auto sixteen = uarch::MachineConfig::sixteenWay();
    CHECK(eight.name == "8-way");
    CHECK(sixteen.name == "16-way");
    CHECK(sixteen.width == 2 * eight.width);
    CHECK(sixteen.mem.l2.sizeBytes > eight.mem.l2.sizeBytes);
    CHECK(sixteen.bpred.historyBits > eight.bpred.historyBits);
    CHECK(eight.modelWrongPath);
}

} // namespace

int
main()
{
    testEncodingRoundTrip();
    testCacheLru();
    testHierarchyWarmEqualsTimingState();
    testHierarchyLatencies();
    testBranchPredictorLearns();
    testMachineConfigs();
    TEST_MAIN_SUMMARY();
}
