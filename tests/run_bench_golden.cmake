# Golden-value regression driver: run a bench binary with pinned
# arguments, then diff its CSV artifact against the checked-in
# golden copy with csv_diff's numeric tolerance. Numeric drift in a
# reproduced figure/table now fails ctest instead of passing
# silently.
#
# Regenerate a golden (after an intentional model change) with:
#   <bench> <pinned args> --csv=tests/golden/<name>.csv
#
# Usage: cmake -DBENCH=<binary> -DCSV=<output csv> -DGOLDEN=<golden csv>
#              -DDIFF=<csv_diff binary> -DARGS=<;-separated args>
#              [-DRTOL=<rel tol>] [-DCLEAN_DIR=<dir>]
#              -P run_bench_golden.cmake
#
# CLEAN_DIR (optional) is removed before the run: the persist-section
# pair uses it so the COLD run starts from an empty checkpoint store
# while the WARM run (no CLEAN_DIR) inherits the store the cold run
# populated and exercises the load path.

foreach(required BENCH CSV GOLDEN DIFF)
  if(NOT ${required})
    message(FATAL_ERROR
      "run_bench_golden.cmake needs -D${required}=")
  endif()
endforeach()

if(NOT RTOL)
  set(RTOL 0.02)
endif()

if(CLEAN_DIR)
  file(REMOVE_RECURSE "${CLEAN_DIR}")
endif()

file(REMOVE "${CSV}")

execute_process(
  COMMAND "${BENCH}" ${ARGS} "--csv=${CSV}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output
)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
    "${BENCH} failed with exit code ${exit_code}:\n${output}")
endif()
if(NOT EXISTS "${CSV}")
  message(FATAL_ERROR "${BENCH} did not write ${CSV}")
endif()

execute_process(
  COMMAND "${DIFF}" "${GOLDEN}" "${CSV}" "${RTOL}"
  RESULT_VARIABLE diff_code
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_out
)
if(NOT diff_code EQUAL 0)
  message(FATAL_ERROR
    "golden mismatch for ${GOLDEN}:\n${diff_out}\n"
    "If the change is intentional, regenerate the golden CSV "
    "(see the header of run_bench_golden.cmake).")
endif()

message(STATUS "golden OK: ${CSV} matches ${GOLDEN} (rtol ${RTOL})")
