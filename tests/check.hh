/**
 * @file
 * Micro test harness: CHECK/CHECK_EQ/CHECK_NEAR record failures with
 * the file:line of the failing assertion (and the observed values
 * for the comparison forms); TEST_MAIN_SUMMARY prints a [PASS]/[FAIL]
 * count summary and returns nonzero when any check failed. Zero
 * dependencies so the tests build on any toolchain CI throws at us.
 */

#ifndef SMARTS_TESTS_CHECK_HH
#define SMARTS_TESTS_CHECK_HH

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

namespace smarts::test {

inline int failures = 0;
inline int checks = 0;

inline void
report(bool ok, const char *expr, const char *file, int line)
{
    ++checks;
    if (!ok) {
        ++failures;
        std::fprintf(stderr, "FAIL %s:%d: %s\n", file, line, expr);
    }
}

template <typename T>
std::string
valueText(const T &value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

template <typename A, typename B>
void
reportEq(const A &a, const B &b, const char *exprA, const char *exprB,
         const char *file, int line)
{
    const bool ok = a == b;
    report(ok, exprA, file, line);
    if (!ok)
        std::fprintf(stderr, "  %s == %s: got %s, want %s\n", exprA,
                     exprB, valueText(a).c_str(),
                     valueText(b).c_str());
}

} // namespace smarts::test

#define CHECK(cond)                                                    \
    ::smarts::test::report((cond), #cond, __FILE__, __LINE__)

/** Equality check that prints both values on failure. */
#define CHECK_EQ(a, b)                                                 \
    ::smarts::test::reportEq((a), (b), #a, #b, __FILE__, __LINE__)

#define CHECK_NEAR(a, b, tol)                                          \
    do {                                                               \
        const double check_a = (a);                                    \
        const double check_b = (b);                                    \
        const bool check_ok =                                          \
            std::fabs(check_a - check_b) <= (tol);                     \
        ::smarts::test::report(check_ok, #a " ~= " #b, __FILE__,      \
                               __LINE__);                              \
        if (!check_ok)                                                 \
            std::fprintf(stderr, "  got %.10g, want %.10g (+/- %g)\n", \
                         check_a, check_b, (double)(tol));             \
    } while (0)

#define TEST_MAIN_SUMMARY()                                            \
    do {                                                               \
        if (::smarts::test::failures)                                  \
            std::printf("[FAIL] %d of %d checks failed\n",             \
                        ::smarts::test::failures,                      \
                        ::smarts::test::checks);                       \
        else                                                           \
            std::printf("[PASS] %d checks\n",                          \
                        ::smarts::test::checks);                       \
        return ::smarts::test::failures ? 1 : 0;                       \
    } while (0)

#endif // SMARTS_TESTS_CHECK_HH
