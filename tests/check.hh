/**
 * @file
 * Micro test harness: CHECK/CHECK_NEAR record failures and the
 * TEST_MAIN summary returns nonzero when any check failed. Zero
 * dependencies so the tests build on any toolchain CI throws at us.
 */

#ifndef SMARTS_TESTS_CHECK_HH
#define SMARTS_TESTS_CHECK_HH

#include <cmath>
#include <cstdio>

namespace smarts::test {

inline int failures = 0;
inline int checks = 0;

inline void
report(bool ok, const char *expr, const char *file, int line)
{
    ++checks;
    if (!ok) {
        ++failures;
        std::fprintf(stderr, "FAIL %s:%d: %s\n", file, line, expr);
    }
}

} // namespace smarts::test

#define CHECK(cond)                                                    \
    ::smarts::test::report((cond), #cond, __FILE__, __LINE__)

#define CHECK_NEAR(a, b, tol)                                          \
    do {                                                               \
        const double check_a = (a);                                    \
        const double check_b = (b);                                    \
        const bool check_ok =                                          \
            std::fabs(check_a - check_b) <= (tol);                     \
        ::smarts::test::report(check_ok, #a " ~= " #b, __FILE__,      \
                               __LINE__);                              \
        if (!check_ok)                                                 \
            std::fprintf(stderr, "  got %.10g, want %.10g (+/- %g)\n", \
                         check_a, check_b, (double)(tol));             \
    } while (0)

#define TEST_MAIN_SUMMARY()                                            \
    do {                                                               \
        std::printf("%d checks, %d failures\n",                        \
                    ::smarts::test::checks,                            \
                    ::smarts::test::failures);                         \
        return ::smarts::test::failures ? 1 : 0;                       \
    } while (0)

#endif // SMARTS_TESTS_CHECK_HH
