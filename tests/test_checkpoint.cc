/**
 * @file
 * Tests for the checkpoint subsystem (core/checkpoint.hh): shard
 * planning geometry, save/restore state roundtrips, and the
 * determinism bar — SystematicSampler::runSharded must produce a
 * SmartsEstimate bit-identical to the serial run() at any shard and
 * thread count, including streams with truncated final units and
 * nonzero sampling offsets. Runs under TSan in CI to guard the
 * capture-thread/pool handoff.
 */

#include <cstring>
#include <memory>
#include <vector>

#include "core/checkpoint.hh"
#include "core/sampler.hh"
#include "core/session.hh"
#include "exec/thread_pool.hh"
#include "uarch/config.hh"
#include "workloads/benchmark.hh"

#include "check.hh"
#include "estimate_fingerprint.hh"

using namespace smarts;
using smarts::test::bitsOf;
using smarts::test::fingerprint;

namespace {

void
testPlanShards()
{
    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.interval = 10;
    sc.offset = 3;

    // 100 measured units (indices 3, 13, ..., 993) in a 1M stream.
    const auto plan =
        core::CheckpointLibrary::planShards(sc, 1'000'000, 4);
    CHECK_EQ(plan.size(), std::size_t(4));
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < plan.size(); ++s) {
        total += plan[s].unitCount;
        CHECK_EQ(plan[s].runsTail, s + 1 == plan.size());
        if (s) {
            // Contiguity: shard s starts where s-1's units end.
            CHECK_EQ(plan[s].firstUnitIndex,
                     plan[s - 1].firstUnitIndex +
                         plan[s - 1].unitCount * sc.interval);
            // Resume at the previous measured unit's end.
            CHECK_EQ(plan[s].resumePos,
                     (plan[s].firstUnitIndex - sc.interval) *
                             sc.unitSize +
                         sc.unitSize);
        }
    }
    CHECK_EQ(total, std::uint64_t(100));
    CHECK_EQ(plan[0].resumePos, std::uint64_t(0));

    // More shards than units: clamped to one shard per unit.
    const auto clamped =
        core::CheckpointLibrary::planShards(sc, 40'000, 64);
    CHECK_EQ(clamped.size(), std::size_t(4)); // units 3,13,23,33.
    for (const auto &shard : clamped)
        CHECK_EQ(shard.unitCount, std::uint64_t(1));

    // Offset beyond the stream: a single tail-only shard.
    core::SamplingConfig far = sc;
    far.offset = 1'000'000;
    const auto none =
        core::CheckpointLibrary::planShards(far, 1'000'000, 8);
    CHECK_EQ(none.size(), std::size_t(1));
    CHECK_EQ(none[0].unitCount, std::uint64_t(0));
    CHECK(none[0].runsTail);
}

void
testSaveRestoreRoundtrip()
{
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("mix-1", workloads::Scale::Mini);

    // Drive a session through a mixed prefix, snapshot it, and
    // resume the snapshot in a fresh session: every subsequent
    // measurement must be bit-identical.
    core::SimSession a(spec, config);
    a.fastForward(20'000, core::WarmingMode::Functional);
    a.detailedRun(5'000);
    a.fastForward(10'000, core::WarmingMode::Functional);

    core::ArchState arch;
    core::TimingState timing;
    a.saveState(arch, timing);

    core::SimSession b(spec, config);
    b.restoreState(arch, timing);
    CHECK_EQ(b.instCount(), a.instCount());
    CHECK_EQ(b.pc(), a.pc());

    for (int i = 0; i < 3; ++i) {
        const core::Segment sa = a.detailedRun(2'000);
        const core::Segment sb = b.detailedRun(2'000);
        CHECK_EQ(sa.instructions, sb.instructions);
        CHECK_EQ(sa.cycles, sb.cycles);
        CHECK_EQ(bitsOf(sa.energyNj), bitsOf(sb.energyNj));
        a.fastForward(7'000, core::WarmingMode::Functional);
        b.fastForward(7'000, core::WarmingMode::Functional);
    }
    CHECK_EQ(a.instCount(), b.instCount());
    CHECK_EQ(a.pc(), b.pc());
}

void
testWarmAsDetailedMatchesDetailedState()
{
    // After the same instruction window, warmAsDetailed must leave
    // the microarchitectural state bit-identical to detailedRun —
    // the property the capture pass stands on (wrong-path pollution
    // included: eightWay models it).
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("bsearch-1", workloads::Scale::Mini);

    core::SimSession viaDetailed(spec, config);
    core::SimSession viaWarm(spec, config);
    viaDetailed.fastForward(10'000, core::WarmingMode::Functional);
    viaWarm.fastForward(10'000, core::WarmingMode::Functional);

    viaDetailed.detailedRun(30'000);
    viaWarm.warmAsDetailed(30'000);

    // Compare by measuring from here: identical caches, TLBs,
    // predictor and fetch-line state yield identical segments
    // (accumulator offsets cannot leak in: fixed-point deltas).
    const core::Segment sd = viaDetailed.detailedRun(5'000);
    const core::Segment sw = viaWarm.detailedRun(5'000);
    CHECK_EQ(sd.cycles, sw.cycles);
    CHECK_EQ(bitsOf(sd.energyNj), bitsOf(sw.energyNj));
}

void
checkShardedIdentical(const workloads::BenchmarkSpec &spec,
                      const uarch::MachineConfig &config,
                      const core::SamplingConfig &sc,
                      exec::ThreadPool &pool)
{
    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };

    core::SimSession serialSession(spec, config);
    const core::SmartsEstimate serial =
        core::SystematicSampler(sc).run(serialSession);
    CHECK(serial.units() > 0);

    for (const std::size_t shards : {std::size_t(1), std::size_t(2),
                                     std::size_t(5)}) {
        const core::SmartsEstimate sharded =
            core::SystematicSampler(sc).runSharded(
                factory, serial.streamLength, shards, pool);
        CHECK(fingerprint(sharded) == fingerprint(serial));
    }
}

void
testShardedBitIdentical()
{
    const auto config = uarch::MachineConfig::eightWay();
    exec::ThreadPool pool(2);

    // Distinct personalities: data-dependent branches, phase
    // alternation (worst-case state sensitivity), pointer chasing.
    for (const char *name : {"sort-1", "phase-1", "chase-1"}) {
        const auto spec =
            workloads::findBenchmark(name, workloads::Scale::Mini);
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = 2000;
        sc.interval = 10;
        sc.warming = core::WarmingMode::Functional;
        checkShardedIdentical(spec, config, sc, pool);
    }

    // Nonzero offset, 16-way machine, sparser grid.
    {
        const auto spec = workloads::findBenchmark(
            "fsm-1", workloads::Scale::Mini);
        core::SamplingConfig sc;
        sc.unitSize = 1000;
        sc.detailedWarming = 4000;
        sc.interval = 17;
        sc.offset = 5;
        sc.warming = core::WarmingMode::Functional;
        checkShardedIdentical(
            spec, uarch::MachineConfig::sixteenWay(), sc, pool);
    }

    // Truncation-prone: k=1 measures every unit, so the stream end
    // lands inside a unit unless the length divides U; the dropped
    // instructions must match the serial accounting bit for bit.
    {
        const auto spec = workloads::findBenchmark(
            "alu-1", workloads::Scale::Mini);
        core::SamplingConfig sc;
        sc.unitSize = 999; // coprime-ish with the stream length.
        sc.detailedWarming = 0;
        sc.interval = 1;
        sc.warming = core::WarmingMode::Functional;

        auto factory = [&spec, &config] {
            return std::make_unique<core::SimSession>(spec, config);
        };
        core::SimSession serialSession(spec, config);
        const core::SmartsEstimate serial =
            core::SystematicSampler(sc).run(serialSession);
        CHECK(serial.instructionsDropped > 0);
        CHECK_EQ(serial.instructionsMeasured,
                 serial.units() * sc.unitSize);
        const core::SmartsEstimate sharded =
            core::SystematicSampler(sc).runSharded(
                factory, serial.streamLength, 3, pool);
        CHECK(fingerprint(sharded) == fingerprint(serial));
    }
}

void
testCheckpointPositions()
{
    // Captured checkpoints must sit exactly at the planned resume
    // positions, and their footprint must be reported.
    const auto config = uarch::MachineConfig::eightWay();
    const auto spec =
        workloads::findBenchmark("stream-1", workloads::Scale::Mini);

    core::SimSession probe(spec, config);
    const std::uint64_t length =
        probe.fastForward(~0ull >> 1, core::WarmingMode::None);

    core::SamplingConfig sc;
    sc.unitSize = 1000;
    sc.detailedWarming = 2000;
    sc.interval = 20;
    sc.warming = core::WarmingMode::Functional;

    const auto plan =
        core::CheckpointLibrary::planShards(sc, length, 4);
    core::SimSession captureSession(spec, config);
    const core::CheckpointLibrary library =
        core::CheckpointLibrary::build(captureSession, sc, plan);
    CHECK_EQ(library.shardCount(), plan.size());
    CHECK(library.byteSize() > 0);
    for (std::size_t s = 1; s < plan.size(); ++s) {
        CHECK_EQ(library.at(s).position, plan[s].resumePos);
        CHECK_EQ(library.at(s).unitIndex, plan[s].firstUnitIndex);
        CHECK(library.at(s).byteSize() > 0);
    }
    // The capture pass stops at the last boundary, not stream end.
    CHECK(captureSession.instCount() <= plan.back().resumePos);

    // Library reuse: resuming shards from the prebuilt library (no
    // capture pass) still reproduces the serial estimate bit for
    // bit, run after run.
    auto factory = [&spec, &config] {
        return std::make_unique<core::SimSession>(spec, config);
    };
    core::SimSession serialSession(spec, config);
    const core::SmartsEstimate serial =
        core::SystematicSampler(sc).run(serialSession);
    exec::ThreadPool pool(2);
    for (int rerun = 0; rerun < 2; ++rerun) {
        const core::SmartsEstimate warm =
            core::SystematicSampler(sc).runSharded(factory, library,
                                                   pool);
        CHECK(fingerprint(warm) == fingerprint(serial));
    }
}

} // namespace

int
main()
{
    testPlanShards();
    testSaveRestoreRoundtrip();
    testWarmAsDetailedMatchesDetailedState();
    testShardedBitIdentical();
    testCheckpointPositions();
    TEST_MAIN_SUMMARY();
}
